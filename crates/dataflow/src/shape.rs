//! Abstract interpretation of collection shapes over the dataflow graph.
//!
//! This generalises Algorithm 1 (`PROPAGATEDEPTHS`, §3.1) from a single
//! actual-depth integer per port into a small per-port **lattice**, the
//! [`Shape`]:
//!
//! * a **depth interval** [`DepthRange`] — collapsed to a point on
//!   well-formed workflows, widened to a proper interval when a
//!   dot-iteration conflict (E002) makes the depth ambiguous, so one
//!   defect no longer stops the analysis of everything downstream;
//! * a **may-contain-error** bit — whether a value on the port can carry
//!   error tokens (`Atom::Error`) at runtime: errors originate at task
//!   invocations and propagate along arcs, so everything downstream of a
//!   fallible processor is tainted while pure input-to-output paths are
//!   provably clean;
//! * a **fan-out class** [`FanoutClass`] — how many implicit-iteration
//!   levels produced the value: `Iterated { degree: k }` means the
//!   invocation count multiplies by one list length per level, the static
//!   analogue of the paper's `d^l` trace-size growth (§4.2).
//!
//! The pass is *total*: it never fails on a validated graph, recording
//! [`DotConflict`]s instead of aborting and continuing with the widest
//! fragment. [`crate::DepthInfo`] — the exact form the engine and
//! INDEXPROJ consume — is now a thin projection of this pass (see
//! [`ShapeInfo::conflicts`]), and the advisory lints (E002/W005/I001) read
//! their facts from here instead of re-propagating depths by hand.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use prov_model::ProcessorName;

use crate::depths::ProjectionLayout;
use crate::graph::{ArcSrc, Dataflow, IterationStrategy, ProcessorKind, ProcessorSpec};
use crate::toposort::toposort;
use crate::Result;

/// An inclusive interval of possible nesting depths. On a conflict-free
/// workflow every range is exact (`lo == hi`); dot-iteration conflicts
/// widen the range downstream of the conflicting processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DepthRange {
    /// Smallest possible depth.
    pub lo: usize,
    /// Largest possible depth.
    pub hi: usize,
}

impl DepthRange {
    /// A point interval.
    pub fn exact(d: usize) -> Self {
        DepthRange { lo: d, hi: d }
    }

    /// An interval from explicit bounds (normalised so `lo <= hi`).
    pub fn new(lo: usize, hi: usize) -> Self {
        DepthRange { lo: lo.min(hi), hi: lo.max(hi) }
    }

    /// Whether the interval is a single point.
    pub fn is_exact(self) -> bool {
        self.lo == self.hi
    }

    /// Lattice join: the interval hull.
    pub fn join(self, other: DepthRange) -> Self {
        DepthRange { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Shifts both bounds up by a constant (declared output depth).
    pub fn shift(self, by: usize) -> Self {
        DepthRange { lo: self.lo + by, hi: self.hi + by }
    }
}

/// Interval addition (used when summing per-port iteration fragments).
impl std::ops::Add for DepthRange {
    type Output = DepthRange;

    fn add(self, other: DepthRange) -> Self {
        DepthRange { lo: self.lo + other.lo, hi: self.hi + other.hi }
    }
}

impl fmt::Display for DepthRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_exact() {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "{}..{}", self.lo, self.hi)
        }
    }
}

/// How many implicit-iteration levels multiplied the invocation count that
/// produced a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FanoutClass {
    /// One invocation, no iteration (`degree == 0`).
    Singleton,
    /// `degree` nested iteration levels: the invocation count is a product
    /// of `degree` list lengths (polynomial of that degree in the input
    /// size).
    Iterated {
        /// Number of iteration levels.
        degree: usize,
    },
}

impl FanoutClass {
    /// Builds the class from an iteration-level count.
    pub fn from_degree(degree: usize) -> Self {
        if degree == 0 {
            FanoutClass::Singleton
        } else {
            FanoutClass::Iterated { degree }
        }
    }

    /// The iteration-level count (0 for [`FanoutClass::Singleton`]).
    pub fn degree(self) -> usize {
        match self {
            FanoutClass::Singleton => 0,
            FanoutClass::Iterated { degree } => degree,
        }
    }
}

impl fmt::Display for FanoutClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FanoutClass::Singleton => f.write_str("singleton"),
            FanoutClass::Iterated { degree } => write!(f, "iterated^{degree}"),
        }
    }
}

/// The abstract collection shape of one port: what the static analysis
/// knows about every value that can flow through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shape {
    /// Possible actual nesting depths.
    pub depth: DepthRange,
    /// Whether the value may contain error tokens.
    pub may_error: bool,
    /// Iteration fan-out that produced the value.
    pub fanout: FanoutClass,
}

impl Shape {
    /// A precisely known, error-free, un-iterated shape (workflow inputs
    /// and design-time defaults).
    pub fn pristine(depth: usize) -> Self {
        Shape { depth: DepthRange::exact(depth), may_error: false, fanout: FanoutClass::Singleton }
    }

    /// Lattice join (hull / or / max degree).
    pub fn join(self, other: Shape) -> Self {
        Shape {
            depth: self.depth.join(other.depth),
            may_error: self.may_error || other.may_error,
            fanout: FanoutClass::from_degree(self.fanout.degree().max(other.fanout.degree())),
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "depth {} {} {}",
            self.depth,
            if self.may_error { "may-error" } else { "error-free" },
            self.fanout
        )
    }
}

/// A port's declared depth together with the inferred shape of the values
/// actually reaching it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortShape {
    /// The declared depth `dd(X)`.
    pub declared: usize,
    /// The inferred shape.
    pub shape: Shape,
}

impl PortShape {
    /// The static mismatch interval `δ_s(X) = depth(X) − dd(X)` (each
    /// bound may be negative: singleton wrapping).
    pub fn mismatch_hi(&self) -> i64 {
        self.shape.depth.hi as i64 - self.declared as i64
    }

    /// Lower bound of the mismatch.
    pub fn mismatch_lo(&self) -> i64 {
        self.shape.depth.lo as i64 - self.declared as i64
    }

    /// The interval of index components this port contributes to the
    /// iteration index: `max(δ_s, 0)` on both bounds.
    pub fn fragment_range(&self) -> DepthRange {
        DepthRange {
            lo: self.mismatch_lo().max(0) as usize,
            hi: self.mismatch_hi().max(0) as usize,
        }
    }
}

/// A dot-iteration processor whose positive mismatches disagree — the
/// tolerant record of what [`crate::DepthInfo::compute`] turns into
/// [`crate::DataflowError::DotMismatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DotConflict {
    /// The conflicting processor.
    pub processor: ProcessorName,
    /// The ports with positive mismatch and their fragment lengths, in
    /// port order.
    pub ports: Vec<(Arc<str>, usize)>,
}

impl DotConflict {
    /// The conflicting fragment lengths, in port order.
    pub fn lens(&self) -> Vec<usize> {
        self.ports.iter().map(|(_, l)| *l).collect()
    }
}

/// The result of the abstract shape interpretation over one dataflow.
///
/// Unlike the exact pass this is computed *tolerantly*: dot conflicts are
/// recorded in [`ShapeInfo::conflicts`] and the analysis keeps going with
/// the widest fragment, so one defect does not hide facts downstream.
/// Fails only on graphs with no topological order (cycles), which
/// [`crate::validate`] rejects anyway.
#[derive(Debug, Clone)]
pub struct ShapeInfo {
    pub(crate) inputs: HashMap<(ProcessorName, Arc<str>), PortShape>,
    pub(crate) outputs: HashMap<(ProcessorName, Arc<str>), PortShape>,
    pub(crate) workflow_outputs: HashMap<Arc<str>, PortShape>,
    pub(crate) layouts: HashMap<ProcessorName, ProjectionLayout>,
    /// Per processor: the iteration-depth interval `Σ max(δ_s, 0)`.
    pub(crate) totals: HashMap<ProcessorName, DepthRange>,
    pub(crate) conflicts: Vec<DotConflict>,
    pub(crate) topo: Vec<ProcessorName>,
}

impl ShapeInfo {
    /// Runs the abstract interpretation (the lattice form of Algorithm 1).
    pub fn compute(df: &Dataflow) -> Result<Self> {
        let topo = toposort(df)?;
        let mut info = ShapeInfo {
            inputs: HashMap::new(),
            outputs: HashMap::new(),
            workflow_outputs: HashMap::new(),
            layouts: HashMap::new(),
            totals: HashMap::new(),
            conflicts: Vec::new(),
            topo,
        };

        for pname in info.topo.clone() {
            let Some(p) = df.processor(&pname) else { continue };

            // Rule 1 (lattice form): shape of each input port.
            let mut port_shapes = Vec::with_capacity(p.inputs.len());
            for port in &p.inputs {
                let declared = port.declared.depth;
                let shape = match df.arc_into(&pname, &port.name) {
                    Some(arc) => info.src_shape(df, &arc.src, declared),
                    // No incoming arc: bound to its design-time default,
                    // which is of the declared type.
                    None => Shape::pristine(declared),
                };
                let ps = PortShape { declared, shape };
                info.inputs.insert((pname.clone(), port.name.clone()), ps);
                port_shapes.push((port.name.clone(), ps));
            }

            // Projection layout (widest-fragment form) and iteration total.
            let (layout, total) = Self::layout(&pname, &port_shapes, p, &mut info.conflicts);
            info.layouts.insert(pname.clone(), layout);
            info.totals.insert(pname.clone(), total);

            // Rule 2 (lattice form): each output gains the iteration depth,
            // taints with fallibility, and carries the fan-out class.
            let may_error =
                port_shapes.iter().any(|(_, ps)| ps.shape.may_error) || Self::is_fallible(&p.kind);
            for port in &p.outputs {
                let declared = port.declared.depth;
                let shape = Shape {
                    depth: total.shift(declared),
                    may_error,
                    fanout: FanoutClass::from_degree(total.hi),
                };
                info.outputs
                    .insert((pname.clone(), port.name.clone()), PortShape { declared, shape });
            }
        }

        // Workflow outputs take the shape of whatever feeds them.
        for out in &df.outputs {
            let declared = out.declared.depth;
            let shape = match df.arc_into_output(&out.name) {
                Some(arc) => info.src_shape(df, &arc.src, declared),
                None => Shape::pristine(declared), // unreachable post-validation
            };
            info.workflow_outputs.insert(out.name.clone(), PortShape { declared, shape });
        }

        Ok(info)
    }

    /// Whether values computed by this processor kind can originate error
    /// tokens: every task invocation may fail; a nested dataflow is
    /// fallible iff it (recursively) contains a task.
    fn is_fallible(kind: &ProcessorKind) -> bool {
        match kind {
            ProcessorKind::Task { .. } => true,
            ProcessorKind::Nested { dataflow } => {
                dataflow.processors.iter().any(|p| Self::is_fallible(&p.kind))
            }
        }
    }

    /// Computes the projection layout (fragments by the widest bound, as
    /// the tolerant pass always did) plus the iteration-total interval,
    /// recording a [`DotConflict`] instead of failing.
    fn layout(
        pname: &ProcessorName,
        port_shapes: &[(Arc<str>, PortShape)],
        p: &ProcessorSpec,
        conflicts: &mut Vec<DotConflict>,
    ) -> (ProjectionLayout, DepthRange) {
        match p.iteration {
            IterationStrategy::Cross => {
                let mut fragments = Vec::with_capacity(port_shapes.len());
                let mut offset = 0usize;
                let mut total = DepthRange::exact(0);
                for (_, ps) in port_shapes {
                    let range = ps.fragment_range();
                    fragments.push((offset, range.hi));
                    offset += range.hi;
                    total = total + range;
                }
                (ProjectionLayout { fragments, total: offset, strategy: p.iteration }, total)
            }
            IterationStrategy::Dot => {
                // The zip combinator iterates mismatched ports in lockstep:
                // they share ONE index fragment, so all positive fragment
                // lengths must agree. On disagreement, record the conflict
                // and continue with the widest fragment.
                let positive: Vec<(Arc<str>, usize)> = port_shapes
                    .iter()
                    .filter(|(_, ps)| ps.fragment_range().hi > 0)
                    .map(|(n, ps)| (n.clone(), ps.fragment_range().hi))
                    .collect();
                let lens: Vec<usize> = positive.iter().map(|(_, l)| *l).collect();
                let widest = lens.iter().copied().max().unwrap_or(0);
                let narrowest = lens.iter().copied().min().unwrap_or(0);
                if lens.windows(2).any(|w| w[0] != w[1]) {
                    conflicts.push(DotConflict { processor: pname.clone(), ports: positive });
                }
                let fragments = port_shapes
                    .iter()
                    .map(|(_, ps)| if ps.fragment_range().hi > 0 { (0, widest) } else { (0, 0) })
                    .collect();
                (
                    ProjectionLayout { fragments, total: widest, strategy: p.iteration },
                    DepthRange::new(narrowest, widest),
                )
            }
        }
    }

    /// Shape delivered by an arc source. `fallback_depth` (the destination
    /// port's declared depth) is used when the source port is unknown —
    /// `validate` rejects such graphs, but the tolerant pass degrades to
    /// "the port gets what it declared" instead of inventing a mismatch.
    fn src_shape(&self, df: &Dataflow, src: &ArcSrc, fallback_depth: usize) -> Shape {
        match src {
            ArcSrc::WorkflowInput { port } => {
                // Assumption 2: top-level inputs carry values of the
                // declared type, and cannot contain error tokens.
                Shape::pristine(df.input(port).map(|p| p.declared.depth).unwrap_or(fallback_depth))
            }
            ArcSrc::Processor { processor, port } => self
                .outputs
                .get(&(processor.clone(), port.clone()))
                .map(|ps| ps.shape)
                .unwrap_or_else(|| Shape::pristine(fallback_depth)),
        }
    }

    /// Shape of a processor input port.
    pub fn input_shape(&self, processor: &ProcessorName, port: &str) -> Option<PortShape> {
        self.inputs.get(&(processor.clone(), Arc::from(port))).copied()
    }

    /// Shape of a processor output port.
    pub fn output_shape(&self, processor: &ProcessorName, port: &str) -> Option<PortShape> {
        self.outputs.get(&(processor.clone(), Arc::from(port))).copied()
    }

    /// Shape of a workflow output port.
    pub fn workflow_output_shape(&self, port: &str) -> Option<PortShape> {
        self.workflow_outputs.get(&Arc::from(port) as &Arc<str>).copied()
    }

    /// The projection layout of a processor (widest-fragment form under
    /// conflicts; exact otherwise).
    pub fn layout_of(&self, processor: &ProcessorName) -> Option<&ProjectionLayout> {
        self.layouts.get(processor)
    }

    /// The iteration-depth interval `Σ max(δ_s, 0)` of a processor.
    pub fn iteration_total(&self, processor: &ProcessorName) -> Option<DepthRange> {
        self.totals.get(processor).copied()
    }

    /// The fan-out class of a processor (from the widest iteration total).
    pub fn fanout_of(&self, processor: &ProcessorName) -> FanoutClass {
        FanoutClass::from_degree(self.totals.get(processor).map(|t| t.hi).unwrap_or(0))
    }

    /// The recorded dot-iteration conflicts, in topological order.
    pub fn conflicts(&self) -> &[DotConflict] {
        &self.conflicts
    }

    /// Whether every depth in the analysis is exact (no conflicts).
    pub fn is_exact(&self) -> bool {
        self.conflicts.is_empty()
    }

    /// The topological order used.
    pub fn topo_order(&self) -> &[ProcessorName] {
        &self.topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaseType, DataflowBuilder, PortType};

    fn fig3() -> Dataflow {
        let mut b = DataflowBuilder::new("wf");
        b.input("v", PortType::list(BaseType::String));
        b.input("w", PortType::atom(BaseType::String));
        b.input("c", PortType::list(BaseType::String));
        b.processor("Q")
            .in_port("X", PortType::atom(BaseType::String))
            .out_port("Y", PortType::atom(BaseType::String));
        b.processor("R")
            .in_port("X", PortType::atom(BaseType::String))
            .out_port("Y", PortType::list(BaseType::String));
        b.processor("P")
            .in_port("X1", PortType::atom(BaseType::String))
            .in_port("X2", PortType::list(BaseType::String))
            .in_port("X3", PortType::atom(BaseType::String))
            .out_port("Y", PortType::atom(BaseType::String));
        b.arc_from_input("v", "Q", "X").unwrap();
        b.arc_from_input("w", "R", "X").unwrap();
        b.arc_from_input("c", "P", "X2").unwrap();
        b.arc("Q", "Y", "P", "X1").unwrap();
        b.arc("R", "Y", "P", "X3").unwrap();
        b.output("y", PortType::atom(BaseType::String));
        b.arc_to_output("P", "Y", "y").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn exact_graphs_produce_point_intervals() {
        let df = fig3();
        let info = ShapeInfo::compute(&df).unwrap();
        assert!(info.is_exact());
        let py = info.output_shape(&"P".into(), "Y").unwrap();
        assert_eq!(py.shape.depth, DepthRange::exact(2));
        assert_eq!(py.shape.fanout, FanoutClass::Iterated { degree: 2 });
        // Q iterates once over v.
        assert_eq!(info.fanout_of(&"Q".into()), FanoutClass::Iterated { degree: 1 });
        assert_eq!(info.iteration_total(&"P".into()), Some(DepthRange::exact(2)));
    }

    #[test]
    fn error_taint_starts_at_tasks_and_propagates() {
        let df = fig3();
        let info = ShapeInfo::compute(&df).unwrap();
        // Workflow inputs are pristine...
        assert!(!info.input_shape(&"Q".into(), "X").unwrap().shape.may_error);
        // ...but every task output may fail, and the taint propagates.
        assert!(info.output_shape(&"Q".into(), "Y").unwrap().shape.may_error);
        assert!(info.input_shape(&"P".into(), "X1").unwrap().shape.may_error);
        assert!(info.workflow_output_shape("y").unwrap().shape.may_error);
    }

    #[test]
    fn dot_conflict_widens_instead_of_failing() {
        let mut b = DataflowBuilder::new("wf");
        b.input("a", PortType::list(BaseType::Int));
        b.input("b", PortType::nested(BaseType::Int, 2));
        b.processor("zip")
            .in_port("x", PortType::atom(BaseType::Int))
            .in_port("y", PortType::atom(BaseType::Int))
            .out_port("z", PortType::atom(BaseType::Int))
            .dot_iteration();
        b.processor("after")
            .in_port("x", PortType::atom(BaseType::Int))
            .out_port("y", PortType::atom(BaseType::Int));
        b.arc_from_input("a", "zip", "x").unwrap();
        b.arc_from_input("b", "zip", "y").unwrap();
        b.arc("zip", "z", "after", "x").unwrap();
        b.output("o", PortType::list(BaseType::Int));
        b.arc_to_output("after", "y", "o").unwrap();
        let df = b.build().unwrap();
        let info = ShapeInfo::compute(&df).unwrap();
        assert_eq!(info.conflicts().len(), 1);
        assert_eq!(info.conflicts()[0].processor.as_str(), "zip");
        assert_eq!(info.conflicts()[0].lens(), vec![1, 2]);
        // The conflict widens the downstream interval instead of killing
        // the analysis: zip:z has depth 1..2 and `after` still has a shape.
        let z = info.output_shape(&"zip".into(), "z").unwrap();
        assert_eq!(z.shape.depth, DepthRange::new(1, 2));
        let after_out = info.output_shape(&"after".into(), "y").unwrap();
        assert!(!after_out.shape.depth.is_exact());
        assert_eq!(after_out.shape.depth.hi, 2);
    }

    #[test]
    fn lattice_ops_behave() {
        let a = DepthRange::exact(1);
        let b = DepthRange::new(2, 3);
        assert_eq!(a.join(b), DepthRange::new(1, 3));
        assert_eq!(a + b, DepthRange::new(3, 4));
        assert_eq!(FanoutClass::from_degree(0), FanoutClass::Singleton);
        let s = Shape::pristine(1).join(Shape {
            depth: DepthRange::exact(3),
            may_error: true,
            fanout: FanoutClass::Iterated { degree: 2 },
        });
        assert_eq!(s.depth, DepthRange::new(1, 3));
        assert!(s.may_error);
        assert_eq!(s.fanout.degree(), 2);
        assert_eq!(format!("{}", DepthRange::new(1, 3)), "1..3");
        assert_eq!(format!("{}", DepthRange::exact(2)), "2");
    }

    #[test]
    fn nested_fallibility_requires_an_inner_task() {
        // A nested dataflow that only rewires its input contains no task,
        // so its output stays error-free.
        let mut inner = DataflowBuilder::new("sub");
        inner.input("in", PortType::list(BaseType::Int));
        inner.output("out", PortType::list(BaseType::Int));
        inner.arc_input_to_output("in", "out").unwrap();
        let inner = Arc::new(inner.build().unwrap());

        let mut b = DataflowBuilder::new("wf");
        b.input("a", PortType::list(BaseType::Int));
        b.nested("S", inner);
        b.arc_from_input("a", "S", "in").unwrap();
        b.output("o", PortType::list(BaseType::Int));
        b.arc_to_output("S", "out", "o").unwrap();
        let df = b.build().unwrap();
        let info = ShapeInfo::compute(&df).unwrap();
        assert!(!info.output_shape(&"S".into(), "out").unwrap().shape.may_error);
    }
}
