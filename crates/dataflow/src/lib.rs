//! # prov-dataflow
//!
//! The workflow *specification* layer (paper §2.1): a dataflow is a directed
//! graph `D = (N, E)` whose nodes are processors `⟨P, I_P, O_P⟩` with
//! **ordered** input and output ports, and whose arcs `P:Y → P′:X` are data
//! dependencies. Processors may themselves be nested dataflows.
//!
//! Beyond the graph representation this crate implements the static
//! analyses the paper's INDEXPROJ algorithm relies on:
//!
//! * topological sorting of the processor graph;
//! * **Algorithm 1** (`PROPAGATEDEPTHS`): propagating declared depths
//!   through the graph so that the depth mismatch `δ_s(X)` of every port is
//!   known *statically*, independent of runtime values (§3.1);
//! * the per-processor index-projection layout derived from the mismatches
//!   (offsets and fragment lengths used by Def. 4).
//!
//! The distinction matters: lineage queries that only consult this
//! (small) specification graph scale with the workflow size, not with the
//! (large) provenance trace — the paper's central claim.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod analyze;
mod builder;
mod depths;
mod dot;
mod error;
mod graph;
mod shape;
mod toposort;
mod validate;
mod views;

pub use analyze::{
    analyze, analyze_with, error_count, json_records, render_json, render_text, sort_diagnostics,
    AnalyzeConfig, DiagCode, Diagnostic, DiagnosticJson, Location, NodeRef, Severity,
};
pub use builder::{DataflowBuilder, ProcessorBuilder};
pub use depths::{DepthInfo, PortDepths, ProjectionLayout};
pub use dot::{to_dot, to_dot_with_diagnostics};
pub use error::DataflowError;
pub use graph::{
    ArcDst, ArcSrc, Dataflow, DataflowArc, InputPort, IterationStrategy, OutputPort, ProcessorKind,
    ProcessorSpec,
};
pub use prov_model::{BaseType, Depth, PortType};
pub use shape::{DepthRange, DotConflict, FanoutClass, PortShape, Shape, ShapeInfo};
pub use toposort::toposort;
pub use validate::validate;
pub use views::CompositeView;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, DataflowError>;
