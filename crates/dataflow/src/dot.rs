//! Graphviz (DOT) rendering of dataflow specifications.

use std::fmt::Write as _;

use crate::graph::{ArcDst, ArcSrc, Dataflow, ProcessorKind};

/// Renders the dataflow as a Graphviz `digraph`, with workflow inputs and
/// outputs as house/invhouse shapes and processors as boxes (nested
/// dataflows as double boxes). Arc labels carry the port names.
pub fn to_dot(df: &Dataflow) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", df.name);
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");

    for input in &df.inputs {
        let _ = writeln!(
            out,
            "  \"in:{}\" [shape=house, label=\"{}\\n{}\"];",
            input.name, input.name, input.declared
        );
    }
    for output in &df.outputs {
        let _ = writeln!(
            out,
            "  \"out:{}\" [shape=invhouse, label=\"{}\\n{}\"];",
            output.name, output.name, output.declared
        );
    }
    for p in &df.processors {
        let shape = match p.kind {
            ProcessorKind::Task { .. } => "box",
            ProcessorKind::Nested { .. } => "box3d",
        };
        let _ = writeln!(out, "  \"{}\" [shape={shape}];", p.name);
    }
    for arc in &df.arcs {
        let (src, src_port) = match &arc.src {
            ArcSrc::WorkflowInput { port } => (format!("in:{port}"), String::new()),
            ArcSrc::Processor { processor, port } => (processor.to_string(), port.to_string()),
        };
        let (dst, dst_port) = match &arc.dst {
            ArcDst::Processor { processor, port } => (processor.to_string(), port.to_string()),
            ArcDst::WorkflowOutput { port } => (format!("out:{port}"), String::new()),
        };
        let label = match (src_port.is_empty(), dst_port.is_empty()) {
            (true, true) => String::new(),
            (true, false) => dst_port,
            (false, true) => src_port,
            (false, false) => format!("{src_port}→{dst_port}"),
        };
        if label.is_empty() {
            let _ = writeln!(out, "  \"{src}\" -> \"{dst}\";");
        } else {
            let _ = writeln!(out, "  \"{src}\" -> \"{dst}\" [label=\"{label}\"];");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaseType, DataflowBuilder, PortType};

    #[test]
    fn dot_contains_all_nodes_and_arcs() {
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::list(BaseType::String));
        b.processor("P")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        b.arc_from_input("in", "P", "x").unwrap();
        b.output("out", PortType::list(BaseType::String));
        b.arc_to_output("P", "y", "out").unwrap();
        let dot = to_dot(&b.build().unwrap());
        assert!(dot.starts_with("digraph \"wf\""));
        assert!(dot.contains("\"in:in\" [shape=house"));
        assert!(dot.contains("\"P\" [shape=box]"));
        assert!(dot.contains("\"out:out\" [shape=invhouse"));
        assert!(dot.contains("\"in:in\" -> \"P\""));
        assert!(dot.contains("\"P\" -> \"out:out\""));
        assert!(dot.ends_with("}\n"));
    }
}
