//! Graphviz (DOT) rendering of dataflow specifications.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::analyze::{Diagnostic, NodeRef, Severity};
use crate::graph::{ArcDst, ArcSrc, Dataflow, ProcessorKind};

/// Renders the dataflow as a Graphviz `digraph`, with workflow inputs and
/// outputs as house/invhouse shapes and processors as boxes (nested
/// dataflows as double boxes). Arc labels carry the port names.
pub fn to_dot(df: &Dataflow) -> String {
    render(df, &[])
}

/// Like [`to_dot`], but colors the nodes and arcs that carry diagnostics:
/// red for errors, orange for warnings, blue for infos. Diagnostics inside
/// nested dataflows color the nested processor node that contains them.
pub fn to_dot_with_diagnostics(df: &Dataflow, diagnostics: &[Diagnostic]) -> String {
    render(df, diagnostics)
}

enum Target {
    Node(String),
    Edge(String),
}

/// Maps a diagnostic to the top-level graph element it colors: a direct
/// element for top-scope diagnostics, the containing nested processor for
/// nested-scope ones.
fn target_of(df: &Dataflow, d: &Diagnostic) -> Option<Target> {
    if d.location.scope == df.name.as_str() {
        Some(match &d.location.node {
            NodeRef::Processor(p) => Target::Node(p.clone()),
            NodeRef::InputPort { processor, .. } => Target::Node(processor.clone()),
            NodeRef::WorkflowInput(p) => Target::Node(format!("in:{p}")),
            NodeRef::WorkflowOutput(p) => Target::Node(format!("out:{p}")),
            NodeRef::Arc(a) => Target::Edge(a.clone()),
        })
    } else {
        let rest = d.location.scope.strip_prefix(&format!("{}/", df.name))?;
        let nested = rest.split('/').next()?;
        Some(Target::Node(nested.to_string()))
    }
}

fn worst(a: Severity, b: Severity) -> Severity {
    if b.rank() < a.rank() {
        b
    } else {
        a
    }
}

fn node_attrs(sev: Severity) -> &'static str {
    match sev {
        Severity::Error => ", color=red, penwidth=2, style=filled, fillcolor=mistyrose",
        Severity::Warning => ", color=orange, penwidth=2, style=filled, fillcolor=cornsilk",
        Severity::Info => ", color=blue",
    }
}

fn edge_color(sev: Severity) -> &'static str {
    match sev {
        Severity::Error => "red",
        Severity::Warning => "orange",
        Severity::Info => "blue",
    }
}

fn render(df: &Dataflow, diagnostics: &[Diagnostic]) -> String {
    let mut node_sev: HashMap<String, Severity> = HashMap::new();
    let mut edge_sev: HashMap<String, Severity> = HashMap::new();
    for d in diagnostics {
        match target_of(df, d) {
            Some(Target::Node(id)) => {
                let entry = node_sev.entry(id).or_insert_with(|| d.severity());
                *entry = worst(*entry, d.severity());
            }
            Some(Target::Edge(id)) => {
                let entry = edge_sev.entry(id).or_insert_with(|| d.severity());
                *entry = worst(*entry, d.severity());
            }
            None => {}
        }
    }
    let extra = |id: &str| node_sev.get(id).map(|&s| node_attrs(s)).unwrap_or("");

    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", df.name);
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");

    for input in &df.inputs {
        let id = format!("in:{}", input.name);
        let _ = writeln!(
            out,
            "  \"{id}\" [shape=house, label=\"{}\\n{}\"{}];",
            input.name,
            input.declared,
            extra(&id)
        );
    }
    for output in &df.outputs {
        let id = format!("out:{}", output.name);
        let _ = writeln!(
            out,
            "  \"{id}\" [shape=invhouse, label=\"{}\\n{}\"{}];",
            output.name,
            output.declared,
            extra(&id)
        );
    }
    for p in &df.processors {
        let shape = match p.kind {
            ProcessorKind::Task { .. } => "box",
            ProcessorKind::Nested { .. } => "box3d",
        };
        let _ = writeln!(out, "  \"{}\" [shape={shape}{}];", p.name, extra(p.name.as_str()));
    }
    for arc in &df.arcs {
        let (src, src_port) = match &arc.src {
            ArcSrc::WorkflowInput { port } => (format!("in:{port}"), String::new()),
            ArcSrc::Processor { processor, port } => (processor.to_string(), port.to_string()),
        };
        let (dst, dst_port) = match &arc.dst {
            ArcDst::Processor { processor, port } => (processor.to_string(), port.to_string()),
            ArcDst::WorkflowOutput { port } => (format!("out:{port}"), String::new()),
        };
        let label = match (src_port.is_empty(), dst_port.is_empty()) {
            (true, true) => String::new(),
            (true, false) => dst_port,
            (false, true) => src_port,
            (false, false) => format!("{src_port}→{dst_port}"),
        };
        let mut attrs: Vec<String> = Vec::new();
        if !label.is_empty() {
            attrs.push(format!("label=\"{label}\""));
        }
        if let Some(&sev) = edge_sev.get(&arc.to_string()) {
            attrs.push(format!("color={}, penwidth=2", edge_color(sev)));
        }
        if attrs.is_empty() {
            let _ = writeln!(out, "  \"{src}\" -> \"{dst}\";");
        } else {
            let _ = writeln!(out, "  \"{src}\" -> \"{dst}\" [{}];", attrs.join(", "));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, BaseType, DataflowBuilder, PortType};

    #[test]
    fn dot_contains_all_nodes_and_arcs() {
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::list(BaseType::String));
        b.processor("P")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        b.arc_from_input("in", "P", "x").unwrap();
        b.output("out", PortType::list(BaseType::String));
        b.arc_to_output("P", "y", "out").unwrap();
        let dot = to_dot(&b.build().unwrap());
        assert!(dot.starts_with("digraph \"wf\""));
        assert!(dot.contains("\"in:in\" [shape=house"));
        assert!(dot.contains("\"P\" [shape=box]"));
        assert!(dot.contains("\"out:out\" [shape=invhouse"));
        assert!(dot.contains("\"in:in\" -> \"P\""));
        assert!(dot.contains("\"P\" -> \"out:out\""));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn diagnostics_color_nodes_and_edges() {
        // `unused` gets W003 (warning, node), the int→string arc gets E001
        // (error, edge), and Q — fed by it — stays a plain box.
        let mut b = DataflowBuilder::new("wf");
        b.input("a", PortType::atom(BaseType::Int));
        b.input("unused", PortType::atom(BaseType::Int));
        b.processor("Q")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        b.arc_from_input("a", "Q", "x").unwrap();
        b.output("o", PortType::atom(BaseType::String));
        b.arc_to_output("Q", "y", "o").unwrap();
        let df = b.build().unwrap();
        let diags = analyze(&df);
        let dot = to_dot_with_diagnostics(&df, &diags);
        assert!(dot.contains("\"in:unused\" [shape=house, label=\"unused\\nint\", color=orange"));
        assert!(dot.contains("\"in:a\" -> \"Q\" [label=\"x\", color=red, penwidth=2];"));
        assert!(dot.contains("\"Q\" [shape=box];"));
        // Without diagnostics, nothing is colored.
        assert!(!to_dot(&df).contains("color="));
    }
}
