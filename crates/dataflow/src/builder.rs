//! Fluent construction of validated dataflows.

use std::sync::Arc;

use prov_model::{PortType, ProcessorName, Value};

use crate::graph::{
    ArcDst, ArcSrc, Dataflow, DataflowArc, InputPort, IterationStrategy, OutputPort, ProcessorKind,
    ProcessorSpec,
};
use crate::{validate, DataflowError, Result};

/// Builds a [`Dataflow`], validating the result on [`DataflowBuilder::build`].
///
/// ```
/// use prov_dataflow::{BaseType, DataflowBuilder, PortType};
///
/// let mut b = DataflowBuilder::new("wf");
/// b.input("xs", PortType::list(BaseType::Int));
/// b.processor("double")
///     .in_port("x", PortType::atom(BaseType::Int))
///     .out_port("y", PortType::atom(BaseType::Int));
/// b.arc_from_input("xs", "double", "x").unwrap();
/// b.output("ys", PortType::list(BaseType::Int));
/// b.arc_to_output("double", "y", "ys").unwrap();
/// let wf = b.build().unwrap();
/// assert_eq!(wf.node_count(), 1);
/// ```
#[derive(Debug)]
pub struct DataflowBuilder {
    name: ProcessorName,
    inputs: Vec<InputPort>,
    outputs: Vec<OutputPort>,
    processors: Vec<ProcessorSpec>,
    arcs: Vec<DataflowArc>,
}

impl DataflowBuilder {
    /// Starts a new dataflow with the given name.
    pub fn new(name: &str) -> Self {
        DataflowBuilder {
            name: ProcessorName::from(name),
            inputs: Vec::new(),
            outputs: Vec::new(),
            processors: Vec::new(),
            arcs: Vec::new(),
        }
    }

    /// Declares a top-level workflow input port.
    pub fn input(&mut self, name: &str, declared: PortType) -> &mut Self {
        self.inputs.push(InputPort::new(name, declared));
        self
    }

    /// Declares a top-level workflow output port.
    pub fn output(&mut self, name: &str, declared: PortType) -> &mut Self {
        self.outputs.push(OutputPort::new(name, declared));
        self
    }

    /// Adds a task processor whose behaviour registry key equals its name.
    /// Returns a [`ProcessorBuilder`] for declaring its ports.
    pub fn processor(&mut self, name: &str) -> ProcessorBuilder<'_> {
        self.processor_with_behavior(name, name)
    }

    /// Adds a task processor with an explicit behaviour key (several
    /// processors may share one behaviour, e.g. the chain stages of the
    /// synthetic testbed).
    pub fn processor_with_behavior(&mut self, name: &str, behavior: &str) -> ProcessorBuilder<'_> {
        self.processors.push(ProcessorSpec {
            name: ProcessorName::from(name),
            inputs: Vec::new(),
            outputs: Vec::new(),
            kind: ProcessorKind::Task { behavior: behavior.to_string() },
            iteration: IterationStrategy::Cross,
        });
        let last = self.processors.len() - 1;
        ProcessorBuilder { spec: &mut self.processors[last] }
    }

    /// Adds a nested-dataflow processor. Its ports are derived from the
    /// sub-workflow's interface.
    pub fn nested(&mut self, name: &str, dataflow: Arc<Dataflow>) -> ProcessorBuilder<'_> {
        let inputs = dataflow.inputs.clone();
        let outputs = dataflow.outputs.clone();
        self.processors.push(ProcessorSpec {
            name: ProcessorName::from(name),
            inputs,
            outputs,
            kind: ProcessorKind::Nested { dataflow },
            iteration: IterationStrategy::Cross,
        });
        let last = self.processors.len() - 1;
        ProcessorBuilder { spec: &mut self.processors[last] }
    }

    /// Adds an arc from one processor's output port to another's input port.
    pub fn arc(
        &mut self,
        src_proc: &str,
        src_port: &str,
        dst_proc: &str,
        dst_port: &str,
    ) -> Result<&mut Self> {
        self.check_output(src_proc, src_port)?;
        self.check_input(dst_proc, dst_port)?;
        self.arcs.push(DataflowArc {
            src: ArcSrc::Processor {
                processor: ProcessorName::from(src_proc),
                port: Arc::from(src_port),
            },
            dst: ArcDst::Processor {
                processor: ProcessorName::from(dst_proc),
                port: Arc::from(dst_port),
            },
        });
        Ok(self)
    }

    /// Adds an arc from a workflow input to a processor input port.
    pub fn arc_from_input(
        &mut self,
        wf_port: &str,
        dst_proc: &str,
        dst_port: &str,
    ) -> Result<&mut Self> {
        if !self.inputs.iter().any(|p| &*p.name == wf_port) {
            return Err(DataflowError::UnknownPort {
                processor: self.name.to_string(),
                port: wf_port.to_string(),
            });
        }
        self.check_input(dst_proc, dst_port)?;
        self.arcs.push(DataflowArc {
            src: ArcSrc::WorkflowInput { port: Arc::from(wf_port) },
            dst: ArcDst::Processor {
                processor: ProcessorName::from(dst_proc),
                port: Arc::from(dst_port),
            },
        });
        Ok(self)
    }

    /// Adds an arc from a processor output port to a workflow output.
    pub fn arc_to_output(
        &mut self,
        src_proc: &str,
        src_port: &str,
        wf_port: &str,
    ) -> Result<&mut Self> {
        self.check_output(src_proc, src_port)?;
        if !self.outputs.iter().any(|p| &*p.name == wf_port) {
            return Err(DataflowError::UnknownPort {
                processor: self.name.to_string(),
                port: wf_port.to_string(),
            });
        }
        self.arcs.push(DataflowArc {
            src: ArcSrc::Processor {
                processor: ProcessorName::from(src_proc),
                port: Arc::from(src_port),
            },
            dst: ArcDst::WorkflowOutput { port: Arc::from(wf_port) },
        });
        Ok(self)
    }

    /// Adds a pass-through arc from a workflow input directly to a workflow
    /// output (occasionally useful in generated workflows).
    pub fn arc_input_to_output(&mut self, wf_in: &str, wf_out: &str) -> Result<&mut Self> {
        if !self.inputs.iter().any(|p| &*p.name == wf_in) {
            return Err(DataflowError::UnknownPort {
                processor: self.name.to_string(),
                port: wf_in.to_string(),
            });
        }
        if !self.outputs.iter().any(|p| &*p.name == wf_out) {
            return Err(DataflowError::UnknownPort {
                processor: self.name.to_string(),
                port: wf_out.to_string(),
            });
        }
        self.arcs.push(DataflowArc {
            src: ArcSrc::WorkflowInput { port: Arc::from(wf_in) },
            dst: ArcDst::WorkflowOutput { port: Arc::from(wf_out) },
        });
        Ok(self)
    }

    /// Validates and produces the dataflow.
    pub fn build(self) -> Result<Dataflow> {
        let df =
            Dataflow::assemble(self.name, self.inputs, self.outputs, self.processors, self.arcs);
        validate(&df)?;
        Ok(df)
    }

    fn check_input(&self, proc: &str, port: &str) -> Result<()> {
        let p = self
            .processors
            .iter()
            .find(|p| p.name.as_str() == proc)
            .ok_or_else(|| DataflowError::UnknownProcessor(proc.to_string()))?;
        if p.input(port).is_none() {
            return Err(DataflowError::UnknownPort {
                processor: proc.to_string(),
                port: port.to_string(),
            });
        }
        Ok(())
    }

    fn check_output(&self, proc: &str, port: &str) -> Result<()> {
        let p = self
            .processors
            .iter()
            .find(|p| p.name.as_str() == proc)
            .ok_or_else(|| DataflowError::UnknownProcessor(proc.to_string()))?;
        if p.output(port).is_none() {
            return Err(DataflowError::UnknownPort {
                processor: proc.to_string(),
                port: port.to_string(),
            });
        }
        Ok(())
    }
}

/// Declares the ports of the processor just added to a [`DataflowBuilder`].
#[derive(Debug)]
pub struct ProcessorBuilder<'a> {
    spec: &'a mut ProcessorSpec,
}

impl ProcessorBuilder<'_> {
    /// Appends an input port (order is significant: it defines the
    /// index-projection layout of Def. 4).
    pub fn in_port(self, name: &str, declared: PortType) -> Self {
        self.spec.inputs.push(InputPort::new(name, declared));
        self
    }

    /// Appends an input port with a design-time default value.
    pub fn in_port_with_default(self, name: &str, declared: PortType, default: Value) -> Self {
        self.spec.inputs.push(InputPort::with_default(name, declared, default));
        self
    }

    /// Appends an output port.
    pub fn out_port(self, name: &str, declared: PortType) -> Self {
        self.spec.outputs.push(OutputPort::new(name, declared));
        self
    }

    /// Selects the dot-product (zip) iteration strategy for this processor.
    pub fn dot_iteration(self) -> Self {
        self.spec.iteration = IterationStrategy::Dot;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::BaseType;

    #[test]
    fn builder_rejects_arcs_to_unknown_ports() {
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::list(BaseType::String));
        b.processor("P")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        assert!(matches!(
            b.arc_from_input("nope", "P", "x"),
            Err(DataflowError::UnknownPort { .. })
        ));
        assert!(matches!(
            b.arc_from_input("in", "P", "nope"),
            Err(DataflowError::UnknownPort { .. })
        ));
        assert!(matches!(b.arc("P", "y", "Q", "x"), Err(DataflowError::UnknownProcessor(_))));
    }

    #[test]
    fn nested_processor_inherits_interface() {
        let mut inner = DataflowBuilder::new("inner");
        inner.input("a", PortType::atom(BaseType::Int));
        inner
            .processor("id")
            .in_port("x", PortType::atom(BaseType::Int))
            .out_port("y", PortType::atom(BaseType::Int));
        inner.arc_from_input("a", "id", "x").unwrap();
        inner.output("b", PortType::atom(BaseType::Int));
        inner.arc_to_output("id", "y", "b").unwrap();
        let inner = Arc::new(inner.build().unwrap());

        let mut outer = DataflowBuilder::new("outer");
        outer.input("v", PortType::atom(BaseType::Int));
        outer.nested("sub", inner);
        outer.arc_from_input("v", "sub", "a").unwrap();
        outer.output("w", PortType::atom(BaseType::Int));
        outer.arc_to_output("sub", "b", "w").unwrap();
        let wf = outer.build().unwrap();
        let sub = wf.processor(&"sub".into()).unwrap();
        assert_eq!(&*sub.inputs[0].name, "a");
        assert_eq!(&*sub.outputs[0].name, "b");
        assert!(matches!(sub.kind, ProcessorKind::Nested { .. }));
    }

    #[test]
    fn dot_iteration_flag_is_recorded() {
        let mut b = DataflowBuilder::new("wf");
        b.input("a", PortType::list(BaseType::Int));
        b.input("b", PortType::list(BaseType::Int));
        b.processor("zipadd")
            .in_port("x", PortType::atom(BaseType::Int))
            .in_port("y", PortType::atom(BaseType::Int))
            .out_port("z", PortType::atom(BaseType::Int))
            .dot_iteration();
        b.arc_from_input("a", "zipadd", "x").unwrap();
        b.arc_from_input("b", "zipadd", "y").unwrap();
        b.output("out", PortType::list(BaseType::Int));
        b.arc_to_output("zipadd", "z", "out").unwrap();
        let wf = b.build().unwrap();
        assert_eq!(wf.processor(&"zipadd".into()).unwrap().iteration, IterationStrategy::Dot);
    }

    #[test]
    fn input_to_output_passthrough() {
        let mut b = DataflowBuilder::new("wf");
        b.input("a", PortType::atom(BaseType::Int));
        b.output("b", PortType::atom(BaseType::Int));
        b.arc_input_to_output("a", "b").unwrap();
        let wf = b.build().unwrap();
        assert_eq!(wf.arcs.len(), 1);
    }
}
