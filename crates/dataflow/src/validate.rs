//! Structural validation of dataflow specifications.

use std::collections::HashSet;

use crate::graph::{ArcDst, Dataflow, ProcessorKind};
use crate::toposort::toposort;
use crate::{DataflowError, Result};

/// Checks the structural invariants a dataflow must satisfy before it can
/// be executed or analysed:
///
/// 1. processor names are unique, and distinct from the workflow name;
/// 2. port names are unique per processor side, and workflow I/O port names
///    are unique per side;
/// 3. every processor input port and every workflow output port is the
///    destination of **at most one** arc (workflow outputs: exactly one);
/// 4. the processor graph is acyclic;
/// 5. nested processors expose exactly their sub-workflow's interface.
///
/// Arcs referencing unknown processors/ports are rejected earlier by the
/// builder; `validate` re-checks nothing the type system already enforces.
pub fn validate(df: &Dataflow) -> Result<()> {
    // (1) unique processor names.
    let mut names = HashSet::with_capacity(df.processors.len() + 1);
    names.insert(df.name.as_str());
    for p in &df.processors {
        if !names.insert(p.name.as_str()) {
            return Err(DataflowError::DuplicateName(p.name.to_string()));
        }
    }

    // (2) unique port names per side.
    for p in &df.processors {
        unique_port_names(p.name.as_str(), p.inputs.iter().map(|x| &*x.name))?;
        unique_port_names(p.name.as_str(), p.outputs.iter().map(|x| &*x.name))?;
    }
    unique_port_names(df.name.as_str(), df.inputs.iter().map(|x| &*x.name))?;
    unique_port_names(df.name.as_str(), df.outputs.iter().map(|x| &*x.name))?;

    // (3) single writer per destination.
    let mut destinations = HashSet::with_capacity(df.arcs.len());
    for arc in &df.arcs {
        let key = match &arc.dst {
            ArcDst::Processor { processor, port } => format!("{processor}:{port}"),
            ArcDst::WorkflowOutput { port } => format!("out:{port}"),
        };
        if !destinations.insert(key.clone()) {
            return Err(DataflowError::MultipleWriters { destination: key });
        }
    }
    for out in &df.outputs {
        if df.arc_into_output(&out.name).is_none() {
            return Err(DataflowError::UnboundOutput(out.name.to_string()));
        }
    }

    // (4) acyclicity.
    toposort(df)?;

    // (5) nested interfaces match.
    for p in &df.processors {
        if let ProcessorKind::Nested { dataflow } = &p.kind {
            let ins_match = p.inputs.len() == dataflow.inputs.len()
                && p.inputs
                    .iter()
                    .zip(&dataflow.inputs)
                    .all(|(a, b)| a.name == b.name && a.declared == b.declared);
            let outs_match = p.outputs.len() == dataflow.outputs.len()
                && p.outputs
                    .iter()
                    .zip(&dataflow.outputs)
                    .all(|(a, b)| a.name == b.name && a.declared == b.declared);
            if !ins_match || !outs_match {
                return Err(DataflowError::NestedInterfaceMismatch {
                    processor: p.name.to_string(),
                });
            }
            // Nested dataflows must themselves be valid.
            validate(dataflow)?;
        }
    }

    Ok(())
}

fn unique_port_names<'a>(owner: &str, names: impl Iterator<Item = &'a str>) -> Result<()> {
    let mut seen = HashSet::new();
    for n in names {
        if !seen.insert(n) {
            return Err(DataflowError::DuplicateName(format!("{owner}:{n}")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::graph::{ArcSrc, DataflowArc, InputPort, OutputPort, ProcessorSpec};
    use crate::{BaseType, DataflowBuilder, DataflowError, PortType};
    use prov_model::ProcessorName;
    use std::sync::Arc;

    #[test]
    fn duplicate_processor_names_rejected() {
        let mut b = DataflowBuilder::new("wf");
        b.processor("P")
            .in_port("x", PortType::atom(BaseType::Int))
            .out_port("y", PortType::atom(BaseType::Int));
        b.processor("P")
            .in_port("x", PortType::atom(BaseType::Int))
            .out_port("y", PortType::atom(BaseType::Int));
        assert!(matches!(b.build(), Err(DataflowError::DuplicateName(_))));
    }

    #[test]
    fn duplicate_port_names_rejected() {
        let mut b = DataflowBuilder::new("wf");
        b.processor("P")
            .in_port("x", PortType::atom(BaseType::Int))
            .in_port("x", PortType::atom(BaseType::Int))
            .out_port("y", PortType::atom(BaseType::Int));
        assert!(matches!(b.build(), Err(DataflowError::DuplicateName(_))));
    }

    #[test]
    fn processor_named_like_workflow_rejected() {
        let mut b = DataflowBuilder::new("wf");
        b.processor("wf").out_port("y", PortType::atom(BaseType::Int));
        assert!(matches!(b.build(), Err(DataflowError::DuplicateName(_))));
    }

    #[test]
    fn two_writers_to_one_port_rejected() {
        let mut b = DataflowBuilder::new("wf");
        b.input("a", PortType::atom(BaseType::Int));
        b.input("b", PortType::atom(BaseType::Int));
        b.processor("P")
            .in_port("x", PortType::atom(BaseType::Int))
            .out_port("y", PortType::atom(BaseType::Int));
        b.arc_from_input("a", "P", "x").unwrap();
        b.arc_from_input("b", "P", "x").unwrap();
        assert!(matches!(b.build(), Err(DataflowError::MultipleWriters { .. })));
    }

    #[test]
    fn unbound_workflow_output_rejected() {
        let mut b = DataflowBuilder::new("wf");
        b.output("o", PortType::atom(BaseType::Int));
        assert!(matches!(b.build(), Err(DataflowError::UnboundOutput(_))));
    }

    #[test]
    fn cycles_rejected() {
        let mut b = DataflowBuilder::new("wf");
        b.processor("P")
            .in_port("x", PortType::atom(BaseType::Int))
            .out_port("y", PortType::atom(BaseType::Int));
        b.processor("Q")
            .in_port("x", PortType::atom(BaseType::Int))
            .out_port("y", PortType::atom(BaseType::Int));
        b.arc("P", "y", "Q", "x").unwrap();
        b.arc("Q", "y", "P", "x").unwrap();
        assert!(matches!(b.build(), Err(DataflowError::Cyclic { .. })));
    }

    #[test]
    fn nested_interface_mismatch_rejected() {
        // Build a valid inner workflow, then tamper with the outer
        // processor's ports so they no longer match.
        let mut inner = DataflowBuilder::new("inner");
        inner.input("a", PortType::atom(BaseType::Int));
        inner.output("b", PortType::atom(BaseType::Int));
        inner.arc_input_to_output("a", "b").unwrap();
        let inner = Arc::new(inner.build().unwrap());

        let mut outer = DataflowBuilder::new("outer");
        outer.input("v", PortType::atom(BaseType::Int));
        outer.nested("sub", inner.clone());
        outer.arc_from_input("v", "sub", "a").unwrap();
        outer.output("w", PortType::atom(BaseType::Int));
        outer.arc_to_output("sub", "b", "w").unwrap();
        let mut wf = outer.build().unwrap();
        // Tamper: change the declared type of the nested processor's port.
        if let Some(p) = wf.processors.iter_mut().find(|p| p.name.as_str() == "sub") {
            p.inputs[0].declared = PortType::list(BaseType::Int);
        }
        assert!(matches!(crate::validate(&wf), Err(DataflowError::NestedInterfaceMismatch { .. })));
    }

    #[test]
    fn valid_diamond_passes() {
        // in → P → (Q, R) → S → out : a diamond with a two-input join.
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::atom(BaseType::Int));
        for name in ["P", "Q", "R"] {
            b.processor(name)
                .in_port("x", PortType::atom(BaseType::Int))
                .out_port("y", PortType::atom(BaseType::Int));
        }
        b.processor("S")
            .in_port("x1", PortType::atom(BaseType::Int))
            .in_port("x2", PortType::atom(BaseType::Int))
            .out_port("y", PortType::atom(BaseType::Int));
        b.arc_from_input("in", "P", "x").unwrap();
        b.arc("P", "y", "Q", "x").unwrap();
        b.arc("P", "y", "R", "x").unwrap();
        b.arc("Q", "y", "S", "x1").unwrap();
        b.arc("R", "y", "S", "x2").unwrap();
        b.output("out", PortType::atom(BaseType::Int));
        b.arc_to_output("S", "y", "out").unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn validate_rechecks_raw_assembled_graphs() {
        // Bypass the builder to assemble a malformed graph directly.
        let p = ProcessorSpec {
            name: ProcessorName::from("P"),
            inputs: vec![InputPort::new("x", PortType::atom(BaseType::Int))],
            outputs: vec![OutputPort::new("y", PortType::atom(BaseType::Int))],
            kind: crate::ProcessorKind::Task { behavior: "P".into() },
            iteration: Default::default(),
        };
        let arcs = vec![DataflowArc {
            src: ArcSrc::Processor { processor: "P".into(), port: "y".into() },
            dst: crate::ArcDst::Processor { processor: "P".into(), port: "x".into() },
        }];
        let df = crate::graph::Dataflow::assemble("wf".into(), vec![], vec![], vec![p], arcs);
        assert!(matches!(crate::validate(&df), Err(DataflowError::Cyclic { .. })));
    }
}
