//! Topological ordering of the processor graph (Kahn's algorithm).

use std::collections::{HashMap, VecDeque};

use prov_model::ProcessorName;

use crate::graph::{ArcDst, ArcSrc, Dataflow};
use crate::{DataflowError, Result};

/// Returns the processors of `df` in a topological order of the
/// data-dependency graph, erroring with [`DataflowError::Cyclic`] if the
/// graph has a cycle.
///
/// Algorithm 1 requires the depths of all of a processor's inputs before
/// its outputs can be computed; the paper achieves this with exactly such a
/// sort ("we perform a topological sort of the graph prior to propagating
/// the depths"). Ties are broken by declaration order, making the result
/// deterministic.
pub fn toposort(df: &Dataflow) -> Result<Vec<ProcessorName>> {
    let n = df.processors.len();
    let position: HashMap<&ProcessorName, usize> =
        df.processors.iter().enumerate().map(|(i, p)| (&p.name, i)).collect();

    let mut indegree = vec![0usize; n];
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for arc in &df.arcs {
        if let (ArcSrc::Processor { processor: s, .. }, ArcDst::Processor { processor: d, .. }) =
            (&arc.src, &arc.dst)
        {
            let (si, di) = (position[s], position[d]);
            successors[si].push(di);
            indegree[di] += 1;
        }
    }

    // Kahn's algorithm; the queue is seeded in declaration order so the
    // output is stable across runs.
    let mut queue: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop_front() {
        order.push(df.processors[i].name.clone());
        for &j in &successors[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                queue.push_back(j);
            }
        }
    }

    if order.len() != n {
        // Some processor kept a nonzero indegree: it lies on a cycle.
        let witness = indegree
            .iter()
            .position(|&d| d > 0)
            .map(|i| df.processors[i].name.to_string())
            .unwrap_or_default();
        return Err(DataflowError::Cyclic { witness });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaseType, DataflowBuilder, PortType};

    fn chain(names: &[&str]) -> Dataflow {
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::atom(BaseType::Int));
        for name in names {
            b.processor(name)
                .in_port("x", PortType::atom(BaseType::Int))
                .out_port("y", PortType::atom(BaseType::Int));
        }
        b.arc_from_input("in", names[0], "x").unwrap();
        for w in names.windows(2) {
            b.arc(w[0], "y", w[1], "x").unwrap();
        }
        b.output("out", PortType::atom(BaseType::Int));
        b.arc_to_output(names[names.len() - 1], "y", "out").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn chain_sorts_in_data_order() {
        let df = chain(&["C", "A", "B"]); // declaration order ≠ data order
        let order = toposort(&df).unwrap();
        let names: Vec<&str> = order.iter().map(|n| n.as_str()).collect();
        assert_eq!(names, vec!["C", "A", "B"]);
    }

    #[test]
    fn independent_processors_keep_declaration_order() {
        let mut b = DataflowBuilder::new("wf");
        for name in ["Z", "M", "A"] {
            b.processor(name).out_port("y", PortType::atom(BaseType::Int));
        }
        let df = b.build().unwrap();
        let order = toposort(&df).unwrap();
        let names: Vec<&str> = order.iter().map(|n| n.as_str()).collect();
        assert_eq!(names, vec!["Z", "M", "A"]);
    }

    #[test]
    fn diamond_respects_all_dependencies() {
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::atom(BaseType::Int));
        for name in ["S", "L", "R"] {
            b.processor(name)
                .in_port("x", PortType::atom(BaseType::Int))
                .out_port("y", PortType::atom(BaseType::Int));
        }
        b.processor("J")
            .in_port("a", PortType::atom(BaseType::Int))
            .in_port("b", PortType::atom(BaseType::Int))
            .out_port("y", PortType::atom(BaseType::Int));
        b.arc_from_input("in", "S", "x").unwrap();
        b.arc("S", "y", "L", "x").unwrap();
        b.arc("S", "y", "R", "x").unwrap();
        b.arc("L", "y", "J", "a").unwrap();
        b.arc("R", "y", "J", "b").unwrap();
        b.output("out", PortType::atom(BaseType::Int));
        b.arc_to_output("J", "y", "out").unwrap();
        let df = b.build().unwrap();

        let order = toposort(&df).unwrap();
        let pos = |n: &str| order.iter().position(|x| x.as_str() == n).unwrap();
        assert!(pos("S") < pos("L"));
        assert!(pos("S") < pos("R"));
        assert!(pos("L") < pos("J"));
        assert!(pos("R") < pos("J"));
    }
}
