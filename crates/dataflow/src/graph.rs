//! The dataflow specification graph.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use prov_model::{PortType, ProcessorName, Value};

use crate::{DataflowError, Result};

/// An input port of a processor (or of the workflow itself).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputPort {
    /// Port name, unique within the processor's inputs.
    pub name: Arc<str>,
    /// Declared type; `declared.depth` is the paper's `dd(X)`.
    pub declared: PortType,
    /// Default value bound when no arc targets this port (the paper notes
    /// ports with no incoming arcs are bound to design-time defaults).
    pub default: Option<Value>,
}

impl InputPort {
    /// Builds a port with no default.
    pub fn new(name: &str, declared: PortType) -> Self {
        InputPort { name: Arc::from(name), declared, default: None }
    }

    /// Builds a port with a design-time default value.
    pub fn with_default(name: &str, declared: PortType, default: Value) -> Self {
        InputPort { name: Arc::from(name), declared, default: Some(default) }
    }
}

/// An output port of a processor (or of the workflow itself).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutputPort {
    /// Port name, unique within the processor's outputs.
    pub name: Arc<str>,
    /// Declared type; assumption 1 of §3.1 says the processor binds values
    /// of exactly this type on every elementary invocation.
    pub declared: PortType,
}

impl OutputPort {
    /// Builds an output port.
    pub fn new(name: &str, declared: PortType) -> Self {
        OutputPort { name: Arc::from(name), declared }
    }
}

/// How multiple mismatched input lists are combined into iteration tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum IterationStrategy {
    /// The generalized cross product of Def. 2 (Taverna's default).
    #[default]
    Cross,
    /// The "zip"/dot product of footnote 7: equal-length lists are iterated
    /// in lockstep, contributing **one** shared index fragment.
    Dot,
}

/// What a processor node *is*.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ProcessorKind {
    /// A black-box software component; `behavior` names an implementation
    /// registered with the engine's `BehaviorRegistry`.
    Task {
        /// Registry key of the behaviour.
        behavior: String,
    },
    /// A nested dataflow: the sub-workflow's inputs/outputs correspond
    /// positionally to this processor's input/output ports.
    Nested {
        /// The sub-workflow.
        dataflow: Arc<Dataflow>,
    },
}

/// A processor node `⟨P, I_P, O_P⟩` with ordered ports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcessorSpec {
    /// Unique name within the dataflow.
    pub name: ProcessorName,
    /// Ordered input ports (the order defines index-projection layout).
    pub inputs: Vec<InputPort>,
    /// Ordered output ports.
    pub outputs: Vec<OutputPort>,
    /// Task or nested dataflow.
    pub kind: ProcessorKind,
    /// Iteration combinator for depth-mismatched inputs.
    pub iteration: IterationStrategy,
}

impl ProcessorSpec {
    /// Position of the named input port.
    pub fn input_position(&self, port: &str) -> Option<usize> {
        self.inputs.iter().position(|p| &*p.name == port)
    }

    /// Position of the named output port.
    pub fn output_position(&self, port: &str) -> Option<usize> {
        self.outputs.iter().position(|p| &*p.name == port)
    }

    /// The named input port.
    pub fn input(&self, port: &str) -> Option<&InputPort> {
        self.inputs.iter().find(|p| &*p.name == port)
    }

    /// The named output port.
    pub fn output(&self, port: &str) -> Option<&OutputPort> {
        self.outputs.iter().find(|p| &*p.name == port)
    }
}

/// The source end of an arc.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArcSrc {
    /// A top-level workflow input port.
    WorkflowInput {
        /// The workflow input port name.
        port: Arc<str>,
    },
    /// An output port of a processor.
    Processor {
        /// Source processor.
        processor: ProcessorName,
        /// Source output port.
        port: Arc<str>,
    },
}

/// The destination end of an arc.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArcDst {
    /// An input port of a processor.
    Processor {
        /// Destination processor.
        processor: ProcessorName,
        /// Destination input port.
        port: Arc<str>,
    },
    /// A top-level workflow output port.
    WorkflowOutput {
        /// The workflow output port name.
        port: Arc<str>,
    },
}

/// A data dependency `src → dst` (an element of `E`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DataflowArc {
    /// Where the data comes from.
    pub src: ArcSrc,
    /// Where the data goes.
    pub dst: ArcDst,
}

impl fmt::Display for DataflowArc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.src {
            ArcSrc::WorkflowInput { port } => write!(f, "in:{port}")?,
            ArcSrc::Processor { processor, port } => write!(f, "{processor}:{port}")?,
        }
        write!(f, " -> ")?;
        match &self.dst {
            ArcDst::Processor { processor, port } => write!(f, "{processor}:{port}"),
            ArcDst::WorkflowOutput { port } => write!(f, "out:{port}"),
        }
    }
}

/// A dataflow specification `D = (N, E)` plus its external interface.
///
/// Construct via [`crate::DataflowBuilder`], which validates on `build()`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataflow {
    /// Workflow name; top-level workflow I/O bindings are reported under
    /// this name (the paper writes `workflow:paths_per_gene`).
    pub name: ProcessorName,
    /// Ordered top-level input ports.
    pub inputs: Vec<InputPort>,
    /// Ordered top-level output ports.
    pub outputs: Vec<OutputPort>,
    /// Processor nodes `N`.
    pub processors: Vec<ProcessorSpec>,
    /// Arcs `E`.
    pub arcs: Vec<DataflowArc>,
    /// Name → position in `processors` (rebuilt on deserialize).
    #[serde(skip)]
    index: HashMap<ProcessorName, usize>,
}

impl Dataflow {
    /// Assembles a dataflow (used by the builder; does **not** validate).
    pub(crate) fn assemble(
        name: ProcessorName,
        inputs: Vec<InputPort>,
        outputs: Vec<OutputPort>,
        processors: Vec<ProcessorSpec>,
        arcs: Vec<DataflowArc>,
    ) -> Self {
        let index = processors.iter().enumerate().map(|(i, p)| (p.name.clone(), i)).collect();
        Dataflow { name, inputs, outputs, processors, arcs, index }
    }

    /// Rebuilds the name index (needed after deserialization).
    pub fn reindex(&mut self) {
        self.index = self.processors.iter().enumerate().map(|(i, p)| (p.name.clone(), i)).collect();
    }

    /// Looks up a processor by name.
    pub fn processor(&self, name: &ProcessorName) -> Option<&ProcessorSpec> {
        if self.index.len() == self.processors.len() {
            self.index.get(name).map(|&i| &self.processors[i])
        } else {
            // Deserialized without reindex; fall back to a scan.
            self.processors.iter().find(|p| &p.name == name)
        }
    }

    /// Looks up a processor, erroring if absent.
    pub fn processor_required(&self, name: &ProcessorName) -> Result<&ProcessorSpec> {
        self.processor(name).ok_or_else(|| DataflowError::UnknownProcessor(name.to_string()))
    }

    /// Number of processor nodes.
    pub fn node_count(&self) -> usize {
        self.processors.len()
    }

    /// The named workflow input port.
    pub fn input(&self, port: &str) -> Option<&InputPort> {
        self.inputs.iter().find(|p| &*p.name == port)
    }

    /// The named workflow output port.
    pub fn output(&self, port: &str) -> Option<&OutputPort> {
        self.outputs.iter().find(|p| &*p.name == port)
    }

    /// All arcs whose destination is the given processor input port.
    pub fn arcs_into(&self, processor: &ProcessorName, port: &str) -> Vec<&DataflowArc> {
        self.arcs
            .iter()
            .filter(|a| {
                matches!(&a.dst, ArcDst::Processor { processor: p, port: q }
                    if p == processor && &**q == port)
            })
            .collect()
    }

    /// The single arc into a processor input port, if any (validation
    /// guarantees at most one).
    pub fn arc_into(&self, processor: &ProcessorName, port: &str) -> Option<&DataflowArc> {
        self.arcs_into(processor, port).into_iter().next()
    }

    /// All arcs whose destination is the given workflow output port.
    pub fn arc_into_output(&self, port: &str) -> Option<&DataflowArc> {
        self.arcs
            .iter()
            .find(|a| matches!(&a.dst, ArcDst::WorkflowOutput { port: q } if &**q == port))
    }

    /// All arcs leaving the given processor output port.
    pub fn arcs_from(&self, processor: &ProcessorName, port: &str) -> Vec<&DataflowArc> {
        self.arcs
            .iter()
            .filter(|a| {
                matches!(&a.src, ArcSrc::Processor { processor: p, port: q }
                    if p == processor && &**q == port)
            })
            .collect()
    }

    /// All arcs leaving the given workflow input port.
    pub fn arcs_from_input(&self, port: &str) -> Vec<&DataflowArc> {
        self.arcs
            .iter()
            .filter(|a| matches!(&a.src, ArcSrc::WorkflowInput { port: q } if &**q == port))
            .collect()
    }

    /// The set of predecessor processors `pred(P)` (processors with an arc
    /// into some input of `P`).
    pub fn predecessors(&self, processor: &ProcessorName) -> Vec<&ProcessorName> {
        let mut out = Vec::new();
        for arc in &self.arcs {
            if let ArcDst::Processor { processor: p, .. } = &arc.dst {
                if p == processor {
                    if let ArcSrc::Processor { processor: src, .. } = &arc.src {
                        if !out.contains(&src) {
                            out.push(src);
                        }
                    }
                }
            }
        }
        out
    }

    /// The set of successor processors of `P`.
    pub fn successors(&self, processor: &ProcessorName) -> Vec<&ProcessorName> {
        let mut out = Vec::new();
        for arc in &self.arcs {
            if let ArcSrc::Processor { processor: p, .. } = &arc.src {
                if p == processor {
                    if let ArcDst::Processor { processor: dst, .. } = &arc.dst {
                        if !out.contains(&dst) {
                            out.push(dst);
                        }
                    }
                }
            }
        }
        out
    }

    /// Total number of ports over all processors plus the workflow I/O
    /// ports — a measure of specification size used in Fig. 8.
    pub fn port_count(&self) -> usize {
        self.inputs.len()
            + self.outputs.len()
            + self.processors.iter().map(|p| p.inputs.len() + p.outputs.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataflowBuilder;
    use prov_model::BaseType;

    fn tiny() -> Dataflow {
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::list(BaseType::String));
        b.processor("P")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        b.processor("Q")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        b.arc_from_input("in", "P", "x").unwrap();
        b.arc("P", "y", "Q", "x").unwrap();
        b.output("out", PortType::list(BaseType::String));
        b.arc_to_output("Q", "y", "out").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn lookup_by_name_uses_index() {
        let d = tiny();
        assert!(d.processor(&"P".into()).is_some());
        assert!(d.processor(&"missing".into()).is_none());
        assert!(d.processor_required(&"missing".into()).is_err());
    }

    #[test]
    fn arc_navigation() {
        let d = tiny();
        assert_eq!(d.arcs_from_input("in").len(), 1);
        assert!(d.arc_into(&"Q".into(), "x").is_some());
        // P:x is fed by a workflow input: still a writer arc.
        assert!(matches!(
            d.arc_into(&"P".into(), "x").map(|a| &a.src),
            Some(ArcSrc::WorkflowInput { .. })
        ));
        assert!(d.arc_into_output("out").is_some());
        assert_eq!(d.arcs_from(&"P".into(), "y").len(), 1);
    }

    #[test]
    fn predecessors_and_successors() {
        let d = tiny();
        assert_eq!(d.predecessors(&"Q".into()), vec![&ProcessorName::from("P")]);
        assert!(d.predecessors(&"P".into()).is_empty());
        assert_eq!(d.successors(&"P".into()), vec![&ProcessorName::from("Q")]);
        assert!(d.successors(&"Q".into()).is_empty());
    }

    #[test]
    fn port_count_counts_everything() {
        let d = tiny();
        // 1 wf input + 1 wf output + 2 procs × (1 in + 1 out)
        assert_eq!(d.port_count(), 6);
    }

    #[test]
    fn serde_round_trip_with_reindex() {
        let d = tiny();
        let json = serde_json::to_string(&d).unwrap();
        let mut back: Dataflow = serde_json::from_str(&json).unwrap();
        // Index is skipped in serde; lookups still work via scan…
        assert!(back.processor(&"P".into()).is_some());
        // …and after reindex they use the map.
        back.reindex();
        assert!(back.processor(&"Q".into()).is_some());
        assert_eq!(back.node_count(), 2);
    }

    #[test]
    fn arc_display() {
        let d = tiny();
        let rendered: Vec<String> = d.arcs.iter().map(|a| a.to_string()).collect();
        assert!(rendered.contains(&"in:in -> P:x".to_string()));
        assert!(rendered.contains(&"P:y -> Q:x".to_string()));
        assert!(rendered.contains(&"Q:y -> out:out".to_string()));
    }
}
