//! Dataflow specification errors.

use std::fmt;

/// Errors raised while building, validating or analysing a dataflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataflowError {
    /// A referenced processor does not exist.
    UnknownProcessor(String),
    /// A referenced port does not exist on the given processor (or on the
    /// workflow interface when `processor` is the workflow name).
    UnknownPort {
        /// Owning processor (or workflow) name.
        processor: String,
        /// Missing port name.
        port: String,
    },
    /// Two processors (or two ports on one processor) share a name.
    DuplicateName(String),
    /// A processor input port (or workflow output) is the destination of
    /// more than one arc.
    MultipleWriters {
        /// Rendered destination, e.g. `P:x`.
        destination: String,
    },
    /// The processor graph contains a cycle (dataflows must be DAGs).
    Cyclic {
        /// A processor on the cycle.
        witness: String,
    },
    /// A workflow output port has no incoming arc.
    UnboundOutput(String),
    /// A nested processor's ports do not match its sub-workflow interface.
    NestedInterfaceMismatch {
        /// The nested processor name.
        processor: String,
    },
    /// A dot-iteration (zip) processor whose ports carry unequal positive
    /// depth mismatches — lockstep iteration is undefined for them.
    DotMismatch {
        /// The processor name.
        processor: String,
        /// The positive fragment lengths found, in input-port order.
        lens: Vec<usize>,
    },
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::UnknownProcessor(p) => write!(f, "unknown processor {p:?}"),
            DataflowError::UnknownPort { processor, port } => {
                write!(f, "unknown port {port:?} on {processor:?}")
            }
            DataflowError::DuplicateName(n) => write!(f, "duplicate name {n:?}"),
            DataflowError::MultipleWriters { destination } => {
                write!(f, "multiple arcs write to {destination}")
            }
            DataflowError::Cyclic { witness } => {
                write!(f, "dataflow graph is cyclic (through {witness:?})")
            }
            DataflowError::UnboundOutput(p) => {
                write!(f, "workflow output {p:?} has no incoming arc")
            }
            DataflowError::NestedInterfaceMismatch { processor } => {
                write!(
                    f,
                    "nested processor {processor:?} does not match its sub-workflow interface"
                )
            }
            DataflowError::DotMismatch { processor, lens } => {
                write!(
                    f,
                    "processor {processor:?}: dot iteration requires equal positive mismatches, found {lens:?}"
                )
            }
        }
    }
}

impl std::error::Error for DataflowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        assert!(DataflowError::UnknownProcessor("P".into()).to_string().contains("\"P\""));
        assert!(DataflowError::Cyclic { witness: "Q".into() }.to_string().contains("\"Q\""));
        assert!(DataflowError::MultipleWriters { destination: "P:x".into() }
            .to_string()
            .contains("P:x"));
    }
}
