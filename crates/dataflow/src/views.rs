//! Zoom-style composite views over a workflow (cf. Biton et al.'s
//! Zoom\*UserViews, discussed in the paper's related work §1.2).
//!
//! A [`CompositeView`] groups adjacent processors into named virtual
//! processors, producing a coarser picture of the workflow. The paper
//! positions its focused queries as *complementary* to such user views:
//! here the bridge is concrete — a view name used in a query's focus set
//! simply expands to its member processors ([`CompositeView::expand_focus`]),
//! so `lin(…, {alignment_stage})` asks about every processor inside the
//! composite.
//!
//! Groups must be **convex**: collapsing a group whose members can be
//! reached from outside via a path that left the group would create a
//! cycle in the condensed graph, making the view non-executable as a
//! workflow. Validation rejects that (the standard Zoom well-formedness
//! condition).

use std::collections::HashMap;

use prov_model::ProcessorName;

use crate::graph::{ArcDst, ArcSrc, Dataflow};
use crate::{DataflowError, Result};

/// A named grouping of processors into composite virtual processors.
#[derive(Debug, Clone, Default)]
pub struct CompositeView {
    groups: Vec<(String, Vec<ProcessorName>)>,
}

impl CompositeView {
    /// An empty view (every processor stays visible).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a composite group.
    pub fn group(mut self, name: &str, members: impl IntoIterator<Item = ProcessorName>) -> Self {
        self.groups.push((name.to_string(), members.into_iter().collect()));
        self
    }

    /// The groups, in declaration order.
    pub fn groups(&self) -> &[(String, Vec<ProcessorName>)] {
        &self.groups
    }

    /// Checks the view against a workflow: members exist, groups are
    /// disjoint, group names collide with nothing, and the condensed
    /// graph is acyclic (convexity).
    pub fn validate(&self, df: &Dataflow) -> Result<()> {
        let mut owner: HashMap<&ProcessorName, &str> = HashMap::new();
        for (name, members) in &self.groups {
            if df.processor(&ProcessorName::from(name.as_str())).is_some()
                || name == df.name.as_str()
                || self.groups.iter().filter(|(n, _)| n == name).count() > 1
            {
                return Err(DataflowError::DuplicateName(name.clone()));
            }
            if members.is_empty() {
                return Err(DataflowError::UnknownProcessor(format!(
                    "view group {name:?} is empty"
                )));
            }
            for m in members {
                if df.processor(m).is_none() {
                    return Err(DataflowError::UnknownProcessor(m.to_string()));
                }
                if owner.insert(m, name).is_some() {
                    return Err(DataflowError::DuplicateName(format!(
                        "{m} belongs to two view groups"
                    )));
                }
            }
        }
        // Convexity ⟺ the condensed graph is a DAG. Detect cycles with a
        // colour DFS over condensed nodes.
        let condensed = self.condense(df);
        let mut color: HashMap<&str, u8> = HashMap::new(); // 0 white 1 grey 2 black
        fn dfs<'a>(
            node: &'a str,
            edges: &'a HashMap<String, Vec<String>>,
            color: &mut HashMap<&'a str, u8>,
        ) -> bool {
            match color.get(node) {
                Some(1) => return false, // grey: cycle
                Some(2) => return true,
                _ => {}
            }
            color.insert(node, 1);
            if let Some(next) = edges.get(node) {
                for n in next {
                    // Resolve &String to a &str living in `edges`.
                    if !dfs(n.as_str(), edges, color) {
                        return false;
                    }
                }
            }
            color.insert(node, 2);
            true
        }
        let nodes: Vec<&String> = condensed.keys().collect();
        for n in nodes {
            if !dfs(n.as_str(), &condensed, &mut color) {
                return Err(DataflowError::Cyclic { witness: n.clone() });
            }
        }
        Ok(())
    }

    /// The condensed adjacency: every processor is replaced by its group
    /// name (or kept as itself), self-loops removed.
    fn condense(&self, df: &Dataflow) -> HashMap<String, Vec<String>> {
        let owner: HashMap<&ProcessorName, &str> = self
            .groups
            .iter()
            .flat_map(|(name, members)| members.iter().map(move |m| (m, name.as_str())))
            .collect();
        let rep = |p: &ProcessorName| -> String {
            owner.get(p).map(|s| s.to_string()).unwrap_or_else(|| p.to_string())
        };
        let mut edges: HashMap<String, Vec<String>> = HashMap::new();
        for p in &df.processors {
            edges.entry(rep(&p.name)).or_default();
        }
        for arc in &df.arcs {
            if let (
                ArcSrc::Processor { processor: s, .. },
                ArcDst::Processor { processor: d, .. },
            ) = (&arc.src, &arc.dst)
            {
                let (rs, rd) = (rep(s), rep(d));
                if rs != rd {
                    let v = edges.entry(rs).or_default();
                    if !v.contains(&rd) {
                        v.push(rd);
                    }
                }
            }
        }
        edges
    }

    /// Expands focus names: composite names become their members; other
    /// names pass through unchanged. This is how a view plugs into
    /// `LineageQuery::focused`.
    pub fn expand_focus(
        &self,
        names: impl IntoIterator<Item = ProcessorName>,
    ) -> Vec<ProcessorName> {
        let mut out = Vec::new();
        for name in names {
            match self.groups.iter().find(|(n, _)| n == name.as_str()) {
                Some((_, members)) => out.extend(members.iter().cloned()),
                None => out.push(name),
            }
        }
        out
    }

    /// Renders the condensed workflow as Graphviz DOT (composites as
    /// double octagons).
    pub fn to_dot(&self, df: &Dataflow) -> String {
        use std::fmt::Write as _;
        let condensed = self.condense(df);
        let composite: Vec<&str> = self.groups.iter().map(|(n, _)| n.as_str()).collect();
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}-view\" {{", df.name);
        let mut nodes: Vec<&String> = condensed.keys().collect();
        nodes.sort();
        for n in &nodes {
            let shape = if composite.contains(&n.as_str()) { "doubleoctagon" } else { "box" };
            let _ = writeln!(out, "  \"{n}\" [shape={shape}];");
        }
        for n in nodes {
            let mut targets = condensed[n].clone();
            targets.sort();
            for t in targets {
                let _ = writeln!(out, "  \"{n}\" -> \"{t}\";");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaseType, DataflowBuilder, PortType};

    /// A → B → C → D chain.
    fn chain() -> Dataflow {
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::atom(BaseType::Int));
        for n in ["A", "B", "C", "D"] {
            b.processor(n)
                .in_port("x", PortType::atom(BaseType::Int))
                .out_port("y", PortType::atom(BaseType::Int));
        }
        b.arc_from_input("in", "A", "x").unwrap();
        b.arc("A", "y", "B", "x").unwrap();
        b.arc("B", "y", "C", "x").unwrap();
        b.arc("C", "y", "D", "x").unwrap();
        b.output("out", PortType::atom(BaseType::Int));
        b.arc_to_output("D", "y", "out").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn contiguous_group_validates() {
        let df = chain();
        let view = CompositeView::new().group("middle", ["B".into(), "C".into()]);
        view.validate(&df).unwrap();
    }

    #[test]
    fn non_convex_group_is_rejected() {
        // Grouping A and C around the un-grouped B: condensed graph has
        // {A,C} → B → {A,C}, a cycle.
        let df = chain();
        let view = CompositeView::new().group("split", ["A".into(), "C".into()]);
        assert!(matches!(view.validate(&df), Err(DataflowError::Cyclic { .. })));
    }

    #[test]
    fn overlapping_groups_are_rejected() {
        let df = chain();
        let view = CompositeView::new()
            .group("g1", ["A".into(), "B".into()])
            .group("g2", ["B".into(), "C".into()]);
        assert!(matches!(view.validate(&df), Err(DataflowError::DuplicateName(_))));
    }

    #[test]
    fn unknown_member_and_name_collisions_rejected() {
        let df = chain();
        let view = CompositeView::new().group("g", ["ghost".into()]);
        assert!(matches!(view.validate(&df), Err(DataflowError::UnknownProcessor(_))));
        // A group named like an existing processor.
        let view = CompositeView::new().group("A", ["B".into()]);
        assert!(matches!(view.validate(&df), Err(DataflowError::DuplicateName(_))));
        // An empty group.
        let view = CompositeView::new().group("g", []);
        assert!(view.validate(&df).is_err());
    }

    #[test]
    fn expand_focus_mixes_composites_and_plain_names() {
        let view = CompositeView::new().group("mid", ["B".into(), "C".into()]);
        let expanded = view.expand_focus(["mid".into(), "D".into()]);
        assert_eq!(
            expanded,
            vec![ProcessorName::from("B"), ProcessorName::from("C"), ProcessorName::from("D")]
        );
    }

    #[test]
    fn condensed_dot_shows_composites() {
        let df = chain();
        let view = CompositeView::new().group("mid", ["B".into(), "C".into()]);
        view.validate(&df).unwrap();
        let dot = view.to_dot(&df);
        assert!(dot.contains("\"mid\" [shape=doubleoctagon]"));
        assert!(dot.contains("\"A\" -> \"mid\""));
        assert!(dot.contains("\"mid\" -> \"D\""));
        assert!(!dot.contains("\"B\""));
    }
}
