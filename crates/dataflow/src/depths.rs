//! **Algorithm 1** (`PROPAGATEDEPTHS`) and the derived index-projection
//! layout (paper §3.1 and Def. 4).
//!
//! Under the paper's two assumptions — (1) processors bind outputs of
//! exactly their declared type, and (2) top-level inputs are bound to
//! values of the declared type — the *actual* depth of every port, and
//! hence the depth mismatch `δ_s(X) = depth(X) − dd(X)`, is a **static**
//! property of the workflow graph. This module computes those depths once
//! per workflow, in topological order, and precomputes for each processor
//! the layout with which an output index `q` is apportioned to the input
//! ports (`q = p1 · … · pn`, Prop. 1).

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use prov_model::ProcessorName;

use crate::graph::{Dataflow, IterationStrategy};
use crate::shape::{PortShape, ShapeInfo};
use crate::{DataflowError, Result};

/// Declared and propagated (actual) depth of one port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortDepths {
    /// The declared depth `dd(X)`.
    pub declared: usize,
    /// The statically propagated actual depth `depth(P:X)`.
    pub actual: usize,
}

impl PortDepths {
    /// The static mismatch `δ_s(X) = depth(X) − dd(X)`. Positive mismatch
    /// triggers implicit iteration; negative mismatch triggers singleton
    /// wrapping; zero means the value is consumed whole.
    pub fn mismatch(self) -> i64 {
        self.actual as i64 - self.declared as i64
    }

    /// The number of index components this port contributes to the
    /// iteration index: `max(δ_s, 0)`.
    pub fn fragment_len(self) -> usize {
        self.mismatch().max(0) as usize
    }
}

/// How an output index of a processor is apportioned to its input ports —
/// the compiled form of Def. 4's projection `Π_{X_i}(p)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProjectionLayout {
    /// Per input port, in port order: `(offset, len)` of the fragment of
    /// the output index belonging to that port. Ports that do not iterate
    /// have `len == 0` (their lineage index is the empty, whole-value
    /// index).
    pub fragments: Vec<(usize, usize)>,
    /// The total iteration depth `l = Σ max(δ_s(X_i), 0)` (for the cross
    /// strategy) — also the number of leading components of an output
    /// index produced by iteration rather than by the value's own
    /// structure.
    pub total: usize,
    /// The iteration strategy the layout was computed for.
    pub strategy: IterationStrategy,
}

impl ProjectionLayout {
    /// Projects output index `q` onto input port `i`, returning the
    /// fragment `Π_{X_i}(q)` as (start, len) applied to `q`.
    pub fn fragment_of(&self, port_position: usize) -> (usize, usize) {
        self.fragments[port_position]
    }
}

/// The result of Algorithm 1 over one dataflow: static depths for every
/// port, plus per-processor projection layouts.
///
/// Computed **once per workflow definition** ("the algorithm is executed
/// only once for every new workflow definition graph") and shared by the
/// engine (to drive iteration) and by INDEXPROJ (to invert it).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DepthInfo {
    /// `depth`/`dd` per processor input port, keyed by `(P, X)`.
    inputs: HashMap<(ProcessorName, Arc<str>), PortDepths>,
    /// `depth`/`dd` per processor output port.
    outputs: HashMap<(ProcessorName, Arc<str>), PortDepths>,
    /// `depth`/`dd` per workflow output port.
    workflow_outputs: HashMap<Arc<str>, PortDepths>,
    /// Projection layouts per processor.
    layouts: HashMap<ProcessorName, ProjectionLayout>,
    /// The topological order used (cached for reuse by traversals).
    topo: Vec<ProcessorName>,
}

impl DepthInfo {
    /// Runs Algorithm 1 (`PROPAGATEDEPTHS`) on the dataflow.
    ///
    /// Since the shape lattice of [`ShapeInfo`] generalises this pass, the
    /// exact form is now a projection of it: run the tolerant abstract
    /// interpretation, reject the workflow if it recorded any dot-iteration
    /// conflict (the one condition under which depths are ambiguous), and
    /// collapse the point intervals — guaranteed exact in the absence of
    /// conflicts — into plain depths.
    pub fn compute(df: &Dataflow) -> Result<Self> {
        let shapes = ShapeInfo::compute(df)?;
        if let Some(c) = shapes.conflicts().first() {
            return Err(DataflowError::DotMismatch {
                processor: c.processor.to_string(),
                lens: c.lens(),
            });
        }
        Ok(Self::from_shapes(&shapes))
    }

    /// Collapses a conflict-free shape analysis into exact depths.
    fn from_shapes(shapes: &ShapeInfo) -> Self {
        fn exact(ps: &PortShape) -> PortDepths {
            // Without conflicts every interval is a point; `hi` == `lo`.
            PortDepths { declared: ps.declared, actual: ps.shape.depth.hi }
        }
        DepthInfo {
            inputs: shapes.inputs.iter().map(|(k, v)| (k.clone(), exact(v))).collect(),
            outputs: shapes.outputs.iter().map(|(k, v)| (k.clone(), exact(v))).collect(),
            workflow_outputs: shapes
                .workflow_outputs
                .iter()
                .map(|(k, v)| (k.clone(), exact(v)))
                .collect(),
            layouts: shapes.layouts.clone(),
            topo: shapes.topo.clone(),
        }
    }

    /// Depths of a processor input port.
    pub fn input_depths(&self, processor: &ProcessorName, port: &str) -> Option<PortDepths> {
        self.inputs.get(&(processor.clone(), Arc::from(port))).copied()
    }

    /// Depths of a processor output port.
    pub fn output_depths(&self, processor: &ProcessorName, port: &str) -> Option<PortDepths> {
        self.outputs.get(&(processor.clone(), Arc::from(port))).copied()
    }

    /// Depths of a workflow output port.
    pub fn workflow_output_depths(&self, port: &str) -> Option<PortDepths> {
        self.workflow_outputs.get(&Arc::from(port) as &Arc<str>).copied()
    }

    /// The projection layout of a processor.
    pub fn layout_of(&self, processor: &ProcessorName) -> Option<&ProjectionLayout> {
        self.layouts.get(processor)
    }

    /// The cached topological order of the processors.
    pub fn topo_order(&self) -> &[ProcessorName] {
        &self.topo
    }

    /// Static mismatch of a processor input port (`δ_s(X)`), if known.
    pub fn mismatch(&self, processor: &ProcessorName, port: &str) -> Option<i64> {
        self.input_depths(processor, port).map(PortDepths::mismatch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaseType, DataflowBuilder, PortType};

    /// The abstract workflow of the paper's Fig. 3:
    /// Q: X(string)→Y(string); R: X(string)→Y(list);
    /// P: X1(string), X2(list) [no iteration], X3(string) → Y(string);
    /// inputs: v = list(string) into Q, w = string into R, c = list(string) into P:X2.
    fn fig3() -> (Dataflow, DepthInfo) {
        let mut b = DataflowBuilder::new("wf");
        b.input("v", PortType::list(BaseType::String));
        b.input("w", PortType::atom(BaseType::String));
        b.input("c", PortType::list(BaseType::String));
        b.processor("Q")
            .in_port("X", PortType::atom(BaseType::String))
            .out_port("Y", PortType::atom(BaseType::String));
        b.processor("R")
            .in_port("X", PortType::atom(BaseType::String))
            .out_port("Y", PortType::list(BaseType::String));
        b.processor("P")
            .in_port("X1", PortType::atom(BaseType::String))
            .in_port("X2", PortType::list(BaseType::String))
            .in_port("X3", PortType::atom(BaseType::String))
            .out_port("Y", PortType::atom(BaseType::String));
        b.arc_from_input("v", "Q", "X").unwrap();
        b.arc_from_input("w", "R", "X").unwrap();
        b.arc_from_input("c", "P", "X2").unwrap();
        b.arc("Q", "Y", "P", "X1").unwrap();
        b.arc("R", "Y", "P", "X3").unwrap();
        b.output("y", PortType::atom(BaseType::String));
        b.arc_to_output("P", "Y", "y").unwrap();
        let df = b.build().unwrap();
        let info = DepthInfo::compute(&df).unwrap();
        (df, info)
    }

    #[test]
    fn fig3_mismatches_match_paper() {
        let (_, info) = fig3();
        // δs(Q:X) = 1 (list into string port)
        assert_eq!(info.mismatch(&"Q".into(), "X"), Some(1));
        // δs(R:X) = 0 (string into string port)
        assert_eq!(info.mismatch(&"R".into(), "X"), Some(0));
        // P: δs(X1)=1 (Q:Y gains Q's iteration depth 1), δs(X2)=0, δs(X3)=1
        assert_eq!(info.mismatch(&"P".into(), "X1"), Some(1));
        assert_eq!(info.mismatch(&"P".into(), "X2"), Some(0));
        assert_eq!(info.mismatch(&"P".into(), "X3"), Some(1));
    }

    #[test]
    fn fig3_output_depths_match_paper() {
        let (_, info) = fig3();
        // Q:Y actual = 0 + 1 = 1 (list of results)
        assert_eq!(info.output_depths(&"Q".into(), "Y").unwrap().actual, 1);
        // R:Y actual = 1 + 0 = 1 (R itself produces a list)
        assert_eq!(info.output_depths(&"R".into(), "Y").unwrap().actual, 1);
        // P:Y actual = 0 + (1 + 0 + 1) = 2: the paper's trace has Y[n,m].
        assert_eq!(info.output_depths(&"P".into(), "Y").unwrap().actual, 2);
        // and the workflow output sees that depth too.
        assert_eq!(info.workflow_output_depths("y").unwrap().actual, 2);
    }

    #[test]
    fn fig3_projection_layout_concatenates_in_port_order() {
        let (_, info) = fig3();
        let layout = info.layout_of(&"P".into()).unwrap();
        // q = p1 · p3 with |p1| = 1, |p2| = 0, |p3| = 1 → fragments
        // (0,1), (1,0) [empty], (1,1); total 2.
        assert_eq!(layout.total, 2);
        assert_eq!(layout.fragments, vec![(0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn unconnected_input_uses_declared_depth() {
        let mut b = DataflowBuilder::new("wf");
        b.processor("P")
            .in_port_with_default(
                "x",
                PortType::list(BaseType::Int),
                prov_model::Value::from(vec![1i64, 2]),
            )
            .out_port("y", PortType::atom(BaseType::Int));
        let df = b.build().unwrap();
        let info = DepthInfo::compute(&df).unwrap();
        assert_eq!(info.mismatch(&"P".into(), "x"), Some(0));
        assert_eq!(info.output_depths(&"P".into(), "y").unwrap().actual, 0);
    }

    #[test]
    fn negative_mismatch_does_not_iterate() {
        // An atom flowing into a port that declares list(string): δs = −1.
        let mut b = DataflowBuilder::new("wf");
        b.input("a", PortType::atom(BaseType::String));
        b.processor("P")
            .in_port("x", PortType::list(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        b.arc_from_input("a", "P", "x").unwrap();
        b.output("o", PortType::atom(BaseType::String));
        b.arc_to_output("P", "y", "o").unwrap();
        let df = b.build().unwrap();
        let info = DepthInfo::compute(&df).unwrap();
        assert_eq!(info.mismatch(&"P".into(), "x"), Some(-1));
        let layout = info.layout_of(&"P".into()).unwrap();
        assert_eq!(layout.total, 0);
        assert_eq!(layout.fragments, vec![(0, 0)]);
    }

    #[test]
    fn dot_layout_shares_one_fragment() {
        let mut b = DataflowBuilder::new("wf");
        b.input("a", PortType::list(BaseType::Int));
        b.input("b", PortType::list(BaseType::Int));
        b.processor("zip")
            .in_port("x", PortType::atom(BaseType::Int))
            .in_port("y", PortType::atom(BaseType::Int))
            .out_port("z", PortType::atom(BaseType::Int))
            .dot_iteration();
        b.arc_from_input("a", "zip", "x").unwrap();
        b.arc_from_input("b", "zip", "y").unwrap();
        b.output("o", PortType::list(BaseType::Int));
        b.arc_to_output("zip", "z", "o").unwrap();
        let df = b.build().unwrap();
        let info = DepthInfo::compute(&df).unwrap();
        let layout = info.layout_of(&"zip".into()).unwrap();
        assert_eq!(layout.total, 1);
        assert_eq!(layout.fragments, vec![(0, 1), (0, 1)]);
        // Output depth gains only ONE level for a zip.
        assert_eq!(info.output_depths(&"zip".into(), "z").unwrap().actual, 1);
    }

    #[test]
    fn dot_with_unequal_mismatches_is_rejected() {
        let mut b = DataflowBuilder::new("wf");
        b.input("a", PortType::list(BaseType::Int));
        b.input("b", PortType::nested(BaseType::Int, 2));
        b.processor("zip")
            .in_port("x", PortType::atom(BaseType::Int))
            .in_port("y", PortType::atom(BaseType::Int))
            .out_port("z", PortType::atom(BaseType::Int))
            .dot_iteration();
        b.arc_from_input("a", "zip", "x").unwrap();
        b.arc_from_input("b", "zip", "y").unwrap();
        b.output("o", PortType::list(BaseType::Int));
        b.arc_to_output("zip", "z", "o").unwrap();
        let df = b.build().unwrap();
        match DepthInfo::compute(&df) {
            Err(DataflowError::DotMismatch { processor, lens }) => {
                assert_eq!(processor, "zip");
                assert_eq!(lens, vec![1, 2]);
            }
            other => panic!("expected DotMismatch, got {other:?}"),
        }
    }

    #[test]
    fn depth_accumulates_along_chains() {
        // A chain of three depth-preserving processors fed by a depth-2
        // value into depth-0 ports: every stage iterates twice, but since
        // each stage's output regains the input's actual depth, mismatch
        // stays 2 at each stage.
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::nested(BaseType::Int, 2));
        for name in ["A", "B", "C"] {
            b.processor(name)
                .in_port("x", PortType::atom(BaseType::Int))
                .out_port("y", PortType::atom(BaseType::Int));
        }
        b.arc_from_input("in", "A", "x").unwrap();
        b.arc("A", "y", "B", "x").unwrap();
        b.arc("B", "y", "C", "x").unwrap();
        b.output("out", PortType::nested(BaseType::Int, 2));
        b.arc_to_output("C", "y", "out").unwrap();
        let df = b.build().unwrap();
        let info = DepthInfo::compute(&df).unwrap();
        for name in ["A", "B", "C"] {
            assert_eq!(info.mismatch(&name.into(), "x"), Some(2), "{name}");
            assert_eq!(info.output_depths(&name.into(), "y").unwrap().actual, 2);
        }
        assert_eq!(info.workflow_output_depths("out").unwrap().actual, 2);
    }
}
