//! The individual lint passes, each over one (possibly nested) scope.

use std::collections::HashSet;
use std::sync::Arc;

use prov_model::{BaseType, ProcessorName};

use crate::graph::{ArcDst, ArcSrc, Dataflow};
use crate::shape::ShapeInfo;

use super::{AnalyzeConfig, DiagCode, Diagnostic, Location, NodeRef};

/// Runs every lint over one scope, appending findings to `out`.
pub(super) fn check_scope(
    df: &Dataflow,
    scope: &str,
    config: &AnalyzeConfig,
    out: &mut Vec<Diagnostic>,
) {
    check_arc_base_types(df, scope, out);
    check_binding(df, scope, out);
    check_dead_processors(df, scope, out);
    check_unused_inputs(df, scope, out);
    check_shadowed_defaults(df, scope, out);
    check_depth_mismatches(df, scope, config, out);
}

fn diag(
    scope: &str,
    node: NodeRef,
    code: DiagCode,
    message: String,
    help: Option<String>,
) -> Diagnostic {
    Diagnostic { code, location: Location { scope: scope.to_string(), node }, message, help }
}

/// E001: every arc must connect ports of the same base type. Depth
/// mismatches are the paper's iteration mechanism; *base*-type mismatches
/// are just bugs — the engine moves values along arcs unconverted, so a
/// string flowing into an int port stays a string forever.
fn check_arc_base_types(df: &Dataflow, scope: &str, out: &mut Vec<Diagnostic>) {
    for arc in &df.arcs {
        let src = src_base(df, &arc.src);
        let dst = dst_base(df, &arc.dst);
        if let (Some(s), Some(d)) = (src, dst) {
            if s != d {
                out.push(diag(
                    scope,
                    NodeRef::Arc(arc.to_string()),
                    DiagCode::ArcBaseTypeMismatch,
                    format!("arc carries {s} values into a {d} port"),
                    Some(
                        "align the declared base types of the two ports, or insert a \
                         converting processor between them"
                            .into(),
                    ),
                ));
            }
        }
    }
}

fn src_base(df: &Dataflow, src: &ArcSrc) -> Option<BaseType> {
    match src {
        ArcSrc::WorkflowInput { port } => df.input(port).map(|p| p.declared.base),
        ArcSrc::Processor { processor, port } => {
            df.processor(processor).and_then(|p| p.output(port)).map(|o| o.declared.base)
        }
    }
}

fn dst_base(df: &Dataflow, dst: &ArcDst) -> Option<BaseType> {
    match dst {
        ArcDst::Processor { processor, port } => {
            df.processor(processor).and_then(|p| p.input(port)).map(|i| i.declared.base)
        }
        ArcDst::WorkflowOutput { port } => df.output(port).map(|o| o.declared.base),
    }
}

/// E003 + W002: a readiness fixpoint over the firing rule of §2.1 ("a
/// processor fires as soon as all of its connected inputs are bound").
///
/// A port is *satisfiable* when it has an arc from a workflow input, an arc
/// from a processor that can itself fire, or no arc but a default. A port
/// with no arc and no default is a **hole** (E003: binding is impossible);
/// every processor downstream of a hole can never fire (W002), even though
/// `validate` accepts the graph.
fn check_binding(df: &Dataflow, scope: &str, out: &mut Vec<Diagnostic>) {
    let mut holes: HashSet<&ProcessorName> = HashSet::new();
    for p in &df.processors {
        for port in &p.inputs {
            if df.arc_into(&p.name, &port.name).is_none() && port.default.is_none() {
                holes.insert(&p.name);
                out.push(diag(
                    scope,
                    NodeRef::InputPort {
                        processor: p.name.to_string(),
                        port: port.name.to_string(),
                    },
                    DiagCode::UnboundInput,
                    "input port has neither an incoming arc nor a default value".into(),
                    Some("connect an arc to this port or give it a design-time default".into()),
                ));
            }
        }
    }

    // Fixpoint: which processors can ever fire?
    let mut ready: HashSet<&ProcessorName> = HashSet::new();
    loop {
        let mut changed = false;
        for p in &df.processors {
            if ready.contains(&p.name) {
                continue;
            }
            let all_satisfied =
                p.inputs.iter().all(|port| match df.arc_into(&p.name, &port.name) {
                    Some(arc) => match &arc.src {
                        ArcSrc::WorkflowInput { .. } => true,
                        ArcSrc::Processor { processor, .. } => ready.contains(processor),
                    },
                    None => port.default.is_some(),
                });
            if all_satisfied {
                ready.insert(&p.name);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for p in &df.processors {
        // The hole itself already carries an E003; W002 marks the blast
        // radius: processors starved *transitively*.
        if !ready.contains(&p.name) && !holes.contains(&p.name) {
            let starving =
                p.inputs.iter().find_map(|port| match df.arc_into(&p.name, &port.name)?.src {
                    ArcSrc::Processor { ref processor, .. } if !ready.contains(processor) => {
                        Some((port.name.to_string(), processor.to_string()))
                    }
                    _ => None,
                });
            let message = match &starving {
                Some((port, upstream)) => format!(
                    "processor can never fire: input {port:?} is fed by {upstream:?}, \
                     which can never fire"
                ),
                None => "processor can never fire".to_string(),
            };
            out.push(diag(
                scope,
                NodeRef::Processor(p.name.to_string()),
                DiagCode::StarvedProcessor,
                message,
                Some("fix the unbound input ports upstream (see the E003 diagnostics)".into()),
            ));
        }
    }
}

/// W001: reverse reachability from the workflow outputs. A processor whose
/// results can never reach an output is computed (and traced!) for
/// nothing — in a provenance system that is rarely intentional.
fn check_dead_processors(df: &Dataflow, scope: &str, out: &mut Vec<Diagnostic>) {
    let mut live: HashSet<&ProcessorName> = HashSet::new();
    loop {
        let mut changed = false;
        for arc in &df.arcs {
            let ArcSrc::Processor { processor, .. } = &arc.src else { continue };
            if live.contains(processor) {
                continue;
            }
            let reaches = match &arc.dst {
                ArcDst::WorkflowOutput { .. } => true,
                ArcDst::Processor { processor: dst, .. } => live.contains(dst),
            };
            if reaches {
                live.insert(processor);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for p in &df.processors {
        if !live.contains(&p.name) {
            out.push(diag(
                scope,
                NodeRef::Processor(p.name.to_string()),
                DiagCode::DeadProcessor,
                "no path from this processor to any workflow output".into(),
                Some(
                    "its results are computed and traced but never observable; \
                     connect them to an output or remove the processor"
                        .into(),
                ),
            ));
        }
    }
}

/// W003: a workflow input nothing reads.
fn check_unused_inputs(df: &Dataflow, scope: &str, out: &mut Vec<Diagnostic>) {
    for port in &df.inputs {
        if df.arcs_from_input(&port.name).is_empty() {
            out.push(diag(
                scope,
                NodeRef::WorkflowInput(port.name.to_string()),
                DiagCode::UnusedWorkflowInput,
                "workflow input is not connected to any processor or output".into(),
                Some("remove the input port, or connect it".into()),
            ));
        }
    }
}

/// W004: a design-time default that an incoming arc always overrides.
fn check_shadowed_defaults(df: &Dataflow, scope: &str, out: &mut Vec<Diagnostic>) {
    for p in &df.processors {
        for port in &p.inputs {
            if port.default.is_none() {
                continue;
            }
            if let Some(arc) = df.arc_into(&p.name, &port.name) {
                out.push(diag(
                    scope,
                    NodeRef::InputPort {
                        processor: p.name.to_string(),
                        port: port.name.to_string(),
                    },
                    DiagCode::ShadowedDefault,
                    format!("design-time default is shadowed by arc {arc}"),
                    Some("remove the default or the arc to make the intent explicit".into()),
                ));
            }
        }
    }
}

/// E002 + W005 + I001: depth lints read off the *tolerant* shape lattice
/// of [`ShapeInfo`]. Where [`crate::DepthInfo::compute`] aborts on a
/// dot-strategy conflict, the shape pass records the conflict and keeps
/// propagating with the widest fragment, so one defect does not mask
/// diagnostics further downstream; this function just translates its facts
/// into diagnostics.
fn check_depth_mismatches(
    df: &Dataflow,
    scope: &str,
    config: &AnalyzeConfig,
    out: &mut Vec<Diagnostic>,
) {
    // Shape propagation needs an evaluation order; a cyclic graph has
    // already been rejected by `validate`, so just skip these lints there.
    let Ok(shapes) = ShapeInfo::compute(df) else { return };

    let describe = |ports: &[(Arc<str>, usize)]| {
        ports.iter().map(|(n, d)| format!("{n} (δ=+{d})")).collect::<Vec<_>>().join(", ")
    };

    for pname in shapes.topo_order() {
        let Some(p) = df.processor(pname) else { continue };

        // Positive mismatches drive the implicit iteration (widest bound
        // under upstream conflicts, as the tolerant pass always reported).
        let mut positive: Vec<(Arc<str>, usize)> = Vec::new();
        for port in &p.inputs {
            let Some(ps) = shapes.input_shape(pname, &port.name) else { continue };
            let delta = ps.mismatch_hi();
            if delta < 0 {
                out.push(diag(
                    scope,
                    NodeRef::InputPort {
                        processor: pname.to_string(),
                        port: port.name.to_string(),
                    },
                    DiagCode::NegativeMismatch,
                    format!(
                        "value of depth {} is wrapped up to the declared depth \
                         {} (δ = {delta})",
                        ps.shape.depth.hi, ps.declared
                    ),
                    Some(
                        "singleton wrapping (§3.1) is usually intentional; widen the \
                         declared type if the port should iterate instead"
                            .into(),
                    ),
                ));
            }
            if delta > 0 {
                positive.push((port.name.clone(), delta as usize));
            }
        }

        if shapes.conflicts().iter().any(|c| &c.processor == pname) {
            out.push(diag(
                scope,
                NodeRef::Processor(pname.to_string()),
                DiagCode::DotUnequalMismatch,
                format!(
                    "dot iteration requires equal positive mismatches, found {}",
                    describe(&positive)
                ),
                Some(
                    "make the mismatched depths agree, or switch the processor \
                     to cross iteration"
                        .into(),
                ),
            ));
        }

        let total = shapes.iteration_total(pname).map(|t| t.hi).unwrap_or(0);
        if total > 0 && total >= config.iteration_depth_threshold {
            out.push(diag(
                scope,
                NodeRef::Processor(pname.to_string()),
                DiagCode::IterationExplosion,
                format!(
                    "implicit iteration of depth {total} reaches the threshold {}; \
                     every level multiplies the invocation count by a list length",
                    config.iteration_depth_threshold
                ),
                Some(format!("mismatched ports: {}", describe(&positive))),
            ));
        }
    }
}
