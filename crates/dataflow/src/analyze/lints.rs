//! The individual lint passes, each over one (possibly nested) scope.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use prov_model::{BaseType, ProcessorName};

use crate::graph::{ArcDst, ArcSrc, Dataflow, IterationStrategy};
use crate::toposort::toposort;

use super::{AnalyzeConfig, DiagCode, Diagnostic, Location, NodeRef};

/// Runs every lint over one scope, appending findings to `out`.
pub(super) fn check_scope(
    df: &Dataflow,
    scope: &str,
    config: &AnalyzeConfig,
    out: &mut Vec<Diagnostic>,
) {
    check_arc_base_types(df, scope, out);
    check_binding(df, scope, out);
    check_dead_processors(df, scope, out);
    check_unused_inputs(df, scope, out);
    check_shadowed_defaults(df, scope, out);
    check_depth_mismatches(df, scope, config, out);
}

fn diag(
    scope: &str,
    node: NodeRef,
    code: DiagCode,
    message: String,
    help: Option<String>,
) -> Diagnostic {
    Diagnostic { code, location: Location { scope: scope.to_string(), node }, message, help }
}

/// E001: every arc must connect ports of the same base type. Depth
/// mismatches are the paper's iteration mechanism; *base*-type mismatches
/// are just bugs — the engine moves values along arcs unconverted, so a
/// string flowing into an int port stays a string forever.
fn check_arc_base_types(df: &Dataflow, scope: &str, out: &mut Vec<Diagnostic>) {
    for arc in &df.arcs {
        let src = src_base(df, &arc.src);
        let dst = dst_base(df, &arc.dst);
        if let (Some(s), Some(d)) = (src, dst) {
            if s != d {
                out.push(diag(
                    scope,
                    NodeRef::Arc(arc.to_string()),
                    DiagCode::ArcBaseTypeMismatch,
                    format!("arc carries {s} values into a {d} port"),
                    Some(
                        "align the declared base types of the two ports, or insert a \
                         converting processor between them"
                            .into(),
                    ),
                ));
            }
        }
    }
}

fn src_base(df: &Dataflow, src: &ArcSrc) -> Option<BaseType> {
    match src {
        ArcSrc::WorkflowInput { port } => df.input(port).map(|p| p.declared.base),
        ArcSrc::Processor { processor, port } => {
            df.processor(processor).and_then(|p| p.output(port)).map(|o| o.declared.base)
        }
    }
}

fn dst_base(df: &Dataflow, dst: &ArcDst) -> Option<BaseType> {
    match dst {
        ArcDst::Processor { processor, port } => {
            df.processor(processor).and_then(|p| p.input(port)).map(|i| i.declared.base)
        }
        ArcDst::WorkflowOutput { port } => df.output(port).map(|o| o.declared.base),
    }
}

/// E003 + W002: a readiness fixpoint over the firing rule of §2.1 ("a
/// processor fires as soon as all of its connected inputs are bound").
///
/// A port is *satisfiable* when it has an arc from a workflow input, an arc
/// from a processor that can itself fire, or no arc but a default. A port
/// with no arc and no default is a **hole** (E003: binding is impossible);
/// every processor downstream of a hole can never fire (W002), even though
/// `validate` accepts the graph.
fn check_binding(df: &Dataflow, scope: &str, out: &mut Vec<Diagnostic>) {
    let mut holes: HashSet<&ProcessorName> = HashSet::new();
    for p in &df.processors {
        for port in &p.inputs {
            if df.arc_into(&p.name, &port.name).is_none() && port.default.is_none() {
                holes.insert(&p.name);
                out.push(diag(
                    scope,
                    NodeRef::InputPort {
                        processor: p.name.to_string(),
                        port: port.name.to_string(),
                    },
                    DiagCode::UnboundInput,
                    "input port has neither an incoming arc nor a default value".into(),
                    Some("connect an arc to this port or give it a design-time default".into()),
                ));
            }
        }
    }

    // Fixpoint: which processors can ever fire?
    let mut ready: HashSet<&ProcessorName> = HashSet::new();
    loop {
        let mut changed = false;
        for p in &df.processors {
            if ready.contains(&p.name) {
                continue;
            }
            let all_satisfied =
                p.inputs.iter().all(|port| match df.arc_into(&p.name, &port.name) {
                    Some(arc) => match &arc.src {
                        ArcSrc::WorkflowInput { .. } => true,
                        ArcSrc::Processor { processor, .. } => ready.contains(processor),
                    },
                    None => port.default.is_some(),
                });
            if all_satisfied {
                ready.insert(&p.name);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for p in &df.processors {
        // The hole itself already carries an E003; W002 marks the blast
        // radius: processors starved *transitively*.
        if !ready.contains(&p.name) && !holes.contains(&p.name) {
            let starving =
                p.inputs.iter().find_map(|port| match df.arc_into(&p.name, &port.name)?.src {
                    ArcSrc::Processor { ref processor, .. } if !ready.contains(processor) => {
                        Some((port.name.to_string(), processor.to_string()))
                    }
                    _ => None,
                });
            let message = match &starving {
                Some((port, upstream)) => format!(
                    "processor can never fire: input {port:?} is fed by {upstream:?}, \
                     which can never fire"
                ),
                None => "processor can never fire".to_string(),
            };
            out.push(diag(
                scope,
                NodeRef::Processor(p.name.to_string()),
                DiagCode::StarvedProcessor,
                message,
                Some("fix the unbound input ports upstream (see the E003 diagnostics)".into()),
            ));
        }
    }
}

/// W001: reverse reachability from the workflow outputs. A processor whose
/// results can never reach an output is computed (and traced!) for
/// nothing — in a provenance system that is rarely intentional.
fn check_dead_processors(df: &Dataflow, scope: &str, out: &mut Vec<Diagnostic>) {
    let mut live: HashSet<&ProcessorName> = HashSet::new();
    loop {
        let mut changed = false;
        for arc in &df.arcs {
            let ArcSrc::Processor { processor, .. } = &arc.src else { continue };
            if live.contains(processor) {
                continue;
            }
            let reaches = match &arc.dst {
                ArcDst::WorkflowOutput { .. } => true,
                ArcDst::Processor { processor: dst, .. } => live.contains(dst),
            };
            if reaches {
                live.insert(processor);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for p in &df.processors {
        if !live.contains(&p.name) {
            out.push(diag(
                scope,
                NodeRef::Processor(p.name.to_string()),
                DiagCode::DeadProcessor,
                "no path from this processor to any workflow output".into(),
                Some(
                    "its results are computed and traced but never observable; \
                     connect them to an output or remove the processor"
                        .into(),
                ),
            ));
        }
    }
}

/// W003: a workflow input nothing reads.
fn check_unused_inputs(df: &Dataflow, scope: &str, out: &mut Vec<Diagnostic>) {
    for port in &df.inputs {
        if df.arcs_from_input(&port.name).is_empty() {
            out.push(diag(
                scope,
                NodeRef::WorkflowInput(port.name.to_string()),
                DiagCode::UnusedWorkflowInput,
                "workflow input is not connected to any processor or output".into(),
                Some("remove the input port, or connect it".into()),
            ));
        }
    }
}

/// W004: a design-time default that an incoming arc always overrides.
fn check_shadowed_defaults(df: &Dataflow, scope: &str, out: &mut Vec<Diagnostic>) {
    for p in &df.processors {
        for port in &p.inputs {
            if port.default.is_none() {
                continue;
            }
            if let Some(arc) = df.arc_into(&p.name, &port.name) {
                out.push(diag(
                    scope,
                    NodeRef::InputPort {
                        processor: p.name.to_string(),
                        port: port.name.to_string(),
                    },
                    DiagCode::ShadowedDefault,
                    format!("design-time default is shadowed by arc {arc}"),
                    Some("remove the default or the arc to make the intent explicit".into()),
                ));
            }
        }
    }
}

/// E002 + W005 + I001: a *tolerant* re-run of Algorithm 1
/// (`PROPAGATEDEPTHS`). Where [`crate::DepthInfo::compute`] aborts on a
/// dot-strategy conflict, this version records an E002 and keeps
/// propagating with the widest fragment, so one defect does not mask
/// diagnostics further downstream.
fn check_depth_mismatches(
    df: &Dataflow,
    scope: &str,
    config: &AnalyzeConfig,
    out: &mut Vec<Diagnostic>,
) {
    // Depth propagation needs an evaluation order; a cyclic graph has
    // already been rejected by `validate`, so just skip these lints there.
    let Ok(topo) = toposort(df) else { return };

    let mut out_depth: HashMap<(ProcessorName, Arc<str>), usize> = HashMap::new();
    for pname in topo {
        let Some(p) = df.processor(&pname) else { continue };

        // Rule 1: actual depth of each input port.
        let mut deltas: Vec<(Arc<str>, i64)> = Vec::with_capacity(p.inputs.len());
        for port in &p.inputs {
            let declared = port.declared.depth;
            let actual = match df.arc_into(&pname, &port.name).map(|a| &a.src) {
                Some(ArcSrc::WorkflowInput { port: w }) => {
                    df.input(w).map(|i| i.declared.depth).unwrap_or(declared)
                }
                Some(ArcSrc::Processor { processor, port: q }) => {
                    out_depth.get(&(processor.clone(), q.clone())).copied().unwrap_or(declared)
                }
                None => declared, // bound to its default, which has the declared type
            };
            let delta = actual as i64 - declared as i64;
            if delta < 0 {
                out.push(diag(
                    scope,
                    NodeRef::InputPort {
                        processor: pname.to_string(),
                        port: port.name.to_string(),
                    },
                    DiagCode::NegativeMismatch,
                    format!(
                        "value of depth {actual} is wrapped up to the declared depth \
                         {declared} (δ = {delta})"
                    ),
                    Some(
                        "singleton wrapping (§3.1) is usually intentional; widen the \
                         declared type if the port should iterate instead"
                            .into(),
                    ),
                ));
            }
            deltas.push((port.name.clone(), delta));
        }

        // Positive mismatches drive the implicit iteration.
        let positive: Vec<(&Arc<str>, usize)> =
            deltas.iter().filter(|(_, d)| *d > 0).map(|(n, d)| (n, *d as usize)).collect();
        let describe = |ports: &[(&Arc<str>, usize)]| {
            ports.iter().map(|(n, d)| format!("{n} (δ=+{d})")).collect::<Vec<_>>().join(", ")
        };

        let total = match p.iteration {
            IterationStrategy::Cross => positive.iter().map(|(_, d)| d).sum(),
            IterationStrategy::Dot => {
                let max = positive.iter().map(|(_, d)| *d).max().unwrap_or(0);
                if positive.iter().any(|(_, d)| *d != max) {
                    out.push(diag(
                        scope,
                        NodeRef::Processor(pname.to_string()),
                        DiagCode::DotUnequalMismatch,
                        format!(
                            "dot iteration requires equal positive mismatches, found {}",
                            describe(&positive)
                        ),
                        Some(
                            "make the mismatched depths agree, or switch the processor \
                             to cross iteration"
                                .into(),
                        ),
                    ));
                }
                max
            }
        };

        if total > 0 && total >= config.iteration_depth_threshold {
            out.push(diag(
                scope,
                NodeRef::Processor(pname.to_string()),
                DiagCode::IterationExplosion,
                format!(
                    "implicit iteration of depth {total} reaches the threshold {}; \
                     every level multiplies the invocation count by a list length",
                    config.iteration_depth_threshold
                ),
                Some(format!("mismatched ports: {}", describe(&positive))),
            ));
        }

        // Rule 2: output depths gain the iteration depth.
        for port in &p.outputs {
            out_depth.insert((pname.clone(), port.name.clone()), port.declared.depth + total);
        }
    }
}
