//! Text and JSON rendering of diagnostics.

use std::fmt::Write as _;

use serde::Serialize;

use super::{Diagnostic, Severity};

/// Renders diagnostics in the rustc style:
///
/// ```text
/// error[E001]: arc carries string values into a int port
///   --> wf :: in:a -> P:x
///   = help: align the declared base types of the two ports, ...
///
/// 1 error(s), 0 warning(s), 0 note(s)
/// ```
pub fn render_text(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diagnostics {
        let _ = writeln!(out, "{}[{}]: {}", d.severity(), d.code, d.message);
        let _ = writeln!(out, "  --> {}", d.location);
        if let Some(help) = &d.help {
            let _ = writeln!(out, "  = help: {help}");
        }
        out.push('\n');
    }
    let count = |s: Severity| diagnostics.iter().filter(|d| d.severity() == s).count();
    if diagnostics.is_empty() {
        out.push_str("no diagnostics\n");
    } else {
        let _ = writeln!(
            out,
            "{} error(s), {} warning(s), {} note(s)",
            count(Severity::Error),
            count(Severity::Warning),
            count(Severity::Info)
        );
    }
    out
}

/// Flat, serialization-friendly form of one diagnostic — what the CLI's
/// `--format json` emits, one record per diagnostic.
#[derive(Debug, Clone, Serialize)]
pub struct DiagnosticJson {
    /// Stable diagnostic code (`E001`, `W003`, …).
    pub code: String,
    /// Severity label: `error`, `warning` or `note`.
    pub severity: String,
    /// The (possibly nested) workflow scope the finding is in.
    pub scope: String,
    /// The node (processor, port or arc) the finding points at.
    pub location: String,
    /// Human-readable description.
    pub message: String,
    /// Optional remediation hint.
    pub help: Option<String>,
}

/// Diagnostics as flat serializable records, for callers that own the JSON
/// encoding (e.g. the CLI's shared `--format json` renderer).
pub fn json_records(diagnostics: &[Diagnostic]) -> Vec<DiagnosticJson> {
    diagnostics
        .iter()
        .map(|d| DiagnosticJson {
            code: d.code.as_str().to_string(),
            severity: d.severity().label().to_string(),
            scope: d.location.scope.clone(),
            location: d.location.node.to_string(),
            message: d.message.clone(),
            help: d.help.clone(),
        })
        .collect()
}

/// Renders diagnostics as a JSON array of
/// `{code, severity, scope, location, message, help}` records.
pub fn render_json(diagnostics: &[Diagnostic]) -> String {
    serde_json::to_string_pretty(&json_records(diagnostics)).unwrap_or_else(|_| "[]".to_string())
}

#[cfg(test)]
mod tests {
    use super::super::{DiagCode, Location, NodeRef};
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                code: DiagCode::ArcBaseTypeMismatch,
                location: Location { scope: "wf".into(), node: NodeRef::Arc("in:a -> P:x".into()) },
                message: "arc carries string values into a int port".into(),
                help: Some("align the declared base types".into()),
            },
            Diagnostic {
                code: DiagCode::DeadProcessor,
                location: Location { scope: "wf".into(), node: NodeRef::Processor("Q".into()) },
                message: "no path from this processor to any workflow output".into(),
                help: None,
            },
        ]
    }

    #[test]
    fn text_is_rustc_shaped() {
        let text = render_text(&sample());
        assert!(text.contains("error[E001]: arc carries string values into a int port"));
        assert!(text.contains("  --> wf :: in:a -> P:x"));
        assert!(text.contains("  = help: align the declared base types"));
        assert!(text.contains("warning[W001]:"));
        assert!(text.ends_with("1 error(s), 1 warning(s), 0 note(s)\n"));
    }

    #[test]
    fn empty_report_says_so() {
        assert_eq!(render_text(&[]), "no diagnostics\n");
    }

    #[test]
    fn json_carries_all_fields() {
        let json = render_json(&sample());
        assert!(json.contains("\"code\": \"E001\""));
        assert!(json.contains("\"severity\": \"error\""));
        assert!(json.contains("\"scope\": \"wf\""));
        assert!(json.contains("\"location\": \"Q\""));
        // A missing help serialises as null.
        assert!(json.contains("null"));
    }
}
