//! Static diagnostics over dataflow specifications (`prov-analyze`).
//!
//! [`crate::validate`] rejects specifications that are *structurally*
//! broken — duplicate names, cycles, multiple writers. This module is the
//! complementary **advisory** pass: a rustc-style diagnostics engine built
//! on top of Algorithm 1 (`PROPAGATEDEPTHS`, §3.1) that reports properties
//! `validate` cannot express, because they make a workflow *wrong* or
//! *surprising* rather than unbuildable:
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | E001 | error    | an arc connects ports of different base types |
//! | E002 | error    | dot-iteration ports with unequal positive mismatches |
//! | E003 | error    | input port with neither an incoming arc nor a default |
//! | W001 | warning  | dead processor: no path to any workflow output |
//! | W002 | warning  | processor can never fire (starved by an E003 upstream) |
//! | W003 | warning  | workflow input connected to nothing |
//! | W004 | warning  | design-time default shadowed by an incoming arc |
//! | W005 | warning  | implicit iteration depth reaches the configured threshold |
//! | I001 | info     | negative mismatch: the value will be singleton-wrapped |
//!
//! The `1xx` block belongs to the **plan verifier** (`prov-core`'s
//! `tprov explain`), which checks a compiled `LineagePlan` against a
//! store's `IndexCatalog` and reuses this crate's diagnostic machinery so
//! every static finding — spec lint or plan finding — shares one code
//! space, one severity model and one renderer:
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | E101 | error    | a plan step references an index the store cannot serve |
//! | E102 | error    | a plan step references a processor/port absent from the spec |
//! | W101 | warning  | uncovered step: the probe uses no index components (full scan) |
//! | W102 | warning  | span scan: the probe is shallower than the stored rows |
//! | W103 | warning  | clamped probe: the probe is deeper than the stored rows |
//!
//! Unlike [`crate::DepthInfo::compute`], the depth propagation used here is
//! *tolerant*: a dot-strategy conflict becomes an E002 diagnostic and the
//! analysis keeps going with the widest fragment, so one defect does not
//! hide the others. Nested dataflows are analysed recursively; their
//! diagnostics carry path-qualified locations (`outer/sub :: Q:X`).

mod lints;
mod render;

pub use render::{json_records, render_json, render_text, DiagnosticJson};

use std::fmt;

use crate::graph::{Dataflow, ProcessorKind};

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// The workflow will fail or produce meaningless results at runtime.
    Error,
    /// The workflow runs, but something is almost certainly not intended.
    Warning,
    /// Informational: a paper-defined behaviour worth knowing about.
    Info,
}

impl Severity {
    /// Lowercase label used in rendered output (`error`, `warning`, `note`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "note",
        }
    }

    /// Sort rank: errors first.
    pub(crate) fn rank(self) -> u8 {
        match self {
            Severity::Error => 0,
            Severity::Warning => 1,
            Severity::Info => 2,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Stable diagnostic codes. The numeric string (`E001`, …) is the public
/// contract: tools may match on it, so codes are never renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagCode {
    /// E001: an arc connects ports whose declared base types differ.
    ArcBaseTypeMismatch,
    /// E002: a dot-iteration processor whose positive depth mismatches are
    /// unequal — lockstep iteration is undefined.
    DotUnequalMismatch,
    /// E003: a processor input port with neither an incoming arc nor a
    /// design-time default; execution is guaranteed to fail.
    UnboundInput,
    /// W001: a processor with no path to any workflow output.
    DeadProcessor,
    /// W002: a processor that can never fire because an upstream input can
    /// never be bound.
    StarvedProcessor,
    /// W003: a workflow input port connected to nothing.
    UnusedWorkflowInput,
    /// W004: a design-time default shadowed by an incoming arc.
    ShadowedDefault,
    /// W005: total implicit-iteration depth at or above the configured
    /// threshold — invocation counts multiply per level.
    IterationExplosion,
    /// I001: negative depth mismatch; the value is singleton-wrapped.
    NegativeMismatch,
    /// E101: a lineage-plan step references a composite index the store's
    /// catalog cannot serve; the plan is unexecutable as compiled.
    UnservableIndex,
    /// E102: a lineage-plan step references a processor or port that does
    /// not exist in the workflow specification — the plan was compiled
    /// against a different spec.
    PlanSpecMismatch,
    /// W101: an uncovered plan step — the probe carries no index
    /// components while the stored rows are deep, so execution reads every
    /// row of the `(run, processor, port)` slice.
    UncoveredStep,
    /// W102: a plan step probing shallower than the stored rows; the point
    /// lookup widens to a span scan over every stored descendant.
    SpanScanStep,
    /// W103: a plan step probing deeper than the stored rows; the residual
    /// index components cannot be used and the probe clamps to ancestors.
    ClampedProbe,
}

impl DiagCode {
    /// The stable code string.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::ArcBaseTypeMismatch => "E001",
            DiagCode::DotUnequalMismatch => "E002",
            DiagCode::UnboundInput => "E003",
            DiagCode::DeadProcessor => "W001",
            DiagCode::StarvedProcessor => "W002",
            DiagCode::UnusedWorkflowInput => "W003",
            DiagCode::ShadowedDefault => "W004",
            DiagCode::IterationExplosion => "W005",
            DiagCode::NegativeMismatch => "I001",
            DiagCode::UnservableIndex => "E101",
            DiagCode::PlanSpecMismatch => "E102",
            DiagCode::UncoveredStep => "W101",
            DiagCode::SpanScanStep => "W102",
            DiagCode::ClampedProbe => "W103",
        }
    }

    /// The severity a code always carries.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::ArcBaseTypeMismatch
            | DiagCode::DotUnequalMismatch
            | DiagCode::UnboundInput
            | DiagCode::UnservableIndex
            | DiagCode::PlanSpecMismatch => Severity::Error,
            DiagCode::DeadProcessor
            | DiagCode::StarvedProcessor
            | DiagCode::UnusedWorkflowInput
            | DiagCode::ShadowedDefault
            | DiagCode::IterationExplosion
            | DiagCode::UncoveredStep
            | DiagCode::SpanScanStep
            | DiagCode::ClampedProbe => Severity::Warning,
            DiagCode::NegativeMismatch => Severity::Info,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The specification element a diagnostic is anchored to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeRef {
    /// A processor node.
    Processor(String),
    /// An input port of a processor.
    InputPort {
        /// Owning processor.
        processor: String,
        /// Port name.
        port: String,
    },
    /// A workflow input port.
    WorkflowInput(String),
    /// A workflow output port.
    WorkflowOutput(String),
    /// An arc, in its `src -> dst` rendering.
    Arc(String),
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRef::Processor(p) => write!(f, "{p}"),
            NodeRef::InputPort { processor, port } => write!(f, "{processor}:{port}"),
            NodeRef::WorkflowInput(p) => write!(f, "in:{p}"),
            NodeRef::WorkflowOutput(p) => write!(f, "out:{p}"),
            NodeRef::Arc(a) => write!(f, "{a}"),
        }
    }
}

/// Where a diagnostic points: a nesting path of dataflow scopes plus the
/// offending element within the innermost scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Location {
    /// Slash-separated scope path: the top-level workflow name, extended by
    /// one nested-processor name per nesting level (`wf/sub`).
    pub scope: String,
    /// The element within that scope.
    pub node: NodeRef,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :: {}", self.scope, self.node)
    }
}

/// One finding of the static analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (determines the severity).
    pub code: DiagCode,
    /// Where in the specification the problem sits.
    pub location: Location,
    /// One-line description of the problem.
    pub message: String,
    /// Optional suggestion for fixing it.
    pub help: Option<String>,
}

impl Diagnostic {
    /// The severity of this diagnostic (derived from the code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Whether this diagnostic is error-level.
    pub fn is_error(&self) -> bool {
        self.severity() == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {} ({})", self.severity(), self.code, self.message, self.location)
    }
}

/// Tunables of the analysis.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// W005 fires when a processor's total implicit-iteration depth
    /// `Σ max(δ_s, 0)` reaches this value. Each level multiplies the
    /// invocation count by a list length, so even small thresholds flag
    /// real blow-ups. Default: 3.
    pub iteration_depth_threshold: usize,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig { iteration_depth_threshold: 3 }
    }
}

/// Analyses a dataflow with the default configuration.
pub fn analyze(df: &Dataflow) -> Vec<Diagnostic> {
    analyze_with(df, &AnalyzeConfig::default())
}

/// Analyses a dataflow (and, recursively, every nested dataflow) and
/// returns all diagnostics, errors first, in a deterministic order.
///
/// The dataflow should already pass [`crate::validate`]; on graphs that do
/// not (e.g. cyclic ones), the depth-based lints degrade gracefully by
/// skipping themselves rather than panicking.
pub fn analyze_with(df: &Dataflow, config: &AnalyzeConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    analyze_scope(df, df.name.to_string(), config, &mut out);
    sort_diagnostics(&mut out);
    out
}

/// Sorts diagnostics into the stable report order: errors first, then by
/// code, location and finally message — a total order, so reports are
/// byte-identical across runs regardless of discovery order.
pub fn sort_diagnostics(diagnostics: &mut [Diagnostic]) {
    diagnostics.sort_by(|a, b| {
        (a.severity().rank(), a.code.as_str(), a.location.to_string(), &a.message).cmp(&(
            b.severity().rank(),
            b.code.as_str(),
            b.location.to_string(),
            &b.message,
        ))
    });
}

/// Number of error-level diagnostics in a report.
pub fn error_count(diagnostics: &[Diagnostic]) -> usize {
    diagnostics.iter().filter(|d| d.is_error()).count()
}

fn analyze_scope(df: &Dataflow, scope: String, config: &AnalyzeConfig, out: &mut Vec<Diagnostic>) {
    lints::check_scope(df, &scope, config, out);
    for p in &df.processors {
        if let ProcessorKind::Nested { dataflow } = &p.kind {
            analyze_scope(dataflow, format!("{scope}/{}", p.name), config, out);
        }
    }
}
