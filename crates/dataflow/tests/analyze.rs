//! One fixture workflow per diagnostic code: each test builds the smallest
//! specification that trips exactly the lint under test and asserts the
//! analyzer reports it — and nothing unexpected — at the right location.

use prov_dataflow::{
    analyze, analyze_with, error_count, AnalyzeConfig, BaseType, Dataflow, DataflowBuilder,
    DataflowError, DepthInfo, PortType,
};
use prov_model::Value;
use std::sync::Arc;

/// Diagnostic codes fired by `analyze`, in report order.
fn codes(df: &Dataflow) -> Vec<String> {
    analyze(df).into_iter().map(|d| d.code.as_str().to_string()).collect()
}

fn atom(b: BaseType) -> PortType {
    PortType::atom(b)
}

fn list(b: BaseType) -> PortType {
    PortType::list(b)
}

/// A minimal clean chain: in → P(identity-shaped ports) → out.
fn clean_chain() -> Dataflow {
    let mut b = DataflowBuilder::new("clean");
    b.input("a", atom(BaseType::Int));
    b.processor("P").in_port("x", atom(BaseType::Int)).out_port("y", atom(BaseType::Int));
    b.arc_from_input("a", "P", "x").unwrap();
    b.output("o", atom(BaseType::Int));
    b.arc_to_output("P", "y", "o").unwrap();
    b.build().unwrap()
}

#[test]
fn clean_workflow_yields_no_diagnostics() {
    assert_eq!(codes(&clean_chain()), Vec::<String>::new());
}

#[test]
fn e001_arc_base_type_mismatch() {
    let mut b = DataflowBuilder::new("wf");
    b.input("a", atom(BaseType::Int));
    b.processor("P").in_port("x", atom(BaseType::String)).out_port("y", atom(BaseType::String));
    b.arc_from_input("a", "P", "x").unwrap();
    b.output("o", atom(BaseType::String));
    b.arc_to_output("P", "y", "o").unwrap();
    let df = b.build().unwrap();

    assert_eq!(codes(&df), vec!["E001"]);
    let d = &analyze(&df)[0];
    assert!(d.is_error());
    assert_eq!(d.location.to_string(), "wf :: in:a -> P:x");
    assert!(d.message.contains("int") && d.message.contains("string"), "{}", d.message);
}

#[test]
fn e002_dot_iteration_with_unequal_mismatches() {
    // δ(x) = 1, δ(y) = 2 under Dot: DepthInfo refuses, the analyzer reports.
    let mut b = DataflowBuilder::new("wf");
    b.input("a", list(BaseType::Int));
    b.input("b", PortType::nested(BaseType::Int, 2));
    b.processor("zip")
        .in_port("x", atom(BaseType::Int))
        .in_port("y", atom(BaseType::Int))
        .out_port("z", atom(BaseType::Int))
        .dot_iteration();
    b.arc_from_input("a", "zip", "x").unwrap();
    b.arc_from_input("b", "zip", "y").unwrap();
    b.output("o", list(BaseType::Int));
    b.arc_to_output("zip", "z", "o").unwrap();
    let df = b.build().unwrap();

    // The strict depth pass rejects this workflow outright…
    assert!(matches!(DepthInfo::compute(&df), Err(DataflowError::DotMismatch { .. })));
    // …while the tolerant analyzer pinpoints the processor and keeps going.
    let diags = analyze(&df);
    assert!(diags.iter().any(|d| d.code.as_str() == "E002"), "{diags:?}");
    let e = diags.iter().find(|d| d.code.as_str() == "E002").unwrap();
    assert_eq!(e.location.to_string(), "wf :: zip");
}

#[test]
fn e003_unbound_input_port() {
    let mut b = DataflowBuilder::new("wf");
    b.input("a", atom(BaseType::Int));
    b.processor("P")
        .in_port("x", atom(BaseType::Int))
        .in_port("hole", atom(BaseType::Int)) // no arc, no default
        .out_port("y", atom(BaseType::Int));
    b.arc_from_input("a", "P", "x").unwrap();
    b.output("o", atom(BaseType::Int));
    b.arc_to_output("P", "y", "o").unwrap();
    let df = b.build().unwrap();

    assert_eq!(codes(&df), vec!["E003"]);
    assert_eq!(analyze(&df)[0].location.to_string(), "wf :: P:hole");
}

#[test]
fn w001_dead_processor() {
    let mut b = DataflowBuilder::new("wf");
    b.input("a", atom(BaseType::Int));
    b.processor("P").in_port("x", atom(BaseType::Int)).out_port("y", atom(BaseType::Int));
    b.processor("D").in_port("x", atom(BaseType::Int)).out_port("y", atom(BaseType::Int));
    b.arc_from_input("a", "P", "x").unwrap();
    b.arc_from_input("a", "D", "x").unwrap(); // D's output goes nowhere
    b.output("o", atom(BaseType::Int));
    b.arc_to_output("P", "y", "o").unwrap();
    let df = b.build().unwrap();

    assert_eq!(codes(&df), vec!["W001"]);
    assert_eq!(analyze(&df)[0].location.to_string(), "wf :: D");
}

#[test]
fn w002_starved_processor_downstream_of_a_hole() {
    // A has an unbound port (E003); B consumes A's output, so B can never
    // fire — but B's own wiring is fine, so it gets W002, not E003.
    let mut b = DataflowBuilder::new("wf");
    b.processor("A").in_port("x", atom(BaseType::Int)).out_port("y", atom(BaseType::Int));
    b.processor("B").in_port("x", atom(BaseType::Int)).out_port("y", atom(BaseType::Int));
    b.arc("A", "y", "B", "x").unwrap();
    b.output("o", atom(BaseType::Int));
    b.arc_to_output("B", "y", "o").unwrap();
    let df = b.build().unwrap();

    let diags = analyze(&df);
    let got: Vec<(String, String)> =
        diags.iter().map(|d| (d.code.as_str().to_string(), d.location.to_string())).collect();
    assert!(got.contains(&("E003".to_string(), "wf :: A:x".to_string())), "{got:?}");
    assert!(got.contains(&("W002".to_string(), "wf :: B".to_string())), "{got:?}");
    // B's port is starved, not unbound — no second E003.
    assert_eq!(diags.iter().filter(|d| d.code.as_str() == "E003").count(), 1);
}

#[test]
fn w003_unused_workflow_input() {
    let mut b = DataflowBuilder::new("wf");
    b.input("a", atom(BaseType::Int));
    b.input("spare", atom(BaseType::Int));
    b.processor("P").in_port("x", atom(BaseType::Int)).out_port("y", atom(BaseType::Int));
    b.arc_from_input("a", "P", "x").unwrap();
    b.output("o", atom(BaseType::Int));
    b.arc_to_output("P", "y", "o").unwrap();
    let df = b.build().unwrap();

    assert_eq!(codes(&df), vec!["W003"]);
    assert_eq!(analyze(&df)[0].location.to_string(), "wf :: in:spare");
}

#[test]
fn w004_shadowed_default() {
    let mut b = DataflowBuilder::new("wf");
    b.input("a", atom(BaseType::Int));
    b.processor("P")
        .in_port_with_default("x", atom(BaseType::Int), Value::int(7))
        .out_port("y", atom(BaseType::Int));
    b.arc_from_input("a", "P", "x").unwrap(); // arc wins; default is dead
    b.output("o", atom(BaseType::Int));
    b.arc_to_output("P", "y", "o").unwrap();
    let df = b.build().unwrap();

    assert_eq!(codes(&df), vec!["W004"]);
    assert_eq!(analyze(&df)[0].location.to_string(), "wf :: P:x");
}

#[test]
fn w005_iteration_explosion_respects_threshold() {
    // depth-3 collection into an atom port: δ = 3 ≥ default threshold 3.
    let mut b = DataflowBuilder::new("wf");
    b.input("a", PortType::nested(BaseType::Int, 3));
    b.processor("P").in_port("x", atom(BaseType::Int)).out_port("y", atom(BaseType::Int));
    b.arc_from_input("a", "P", "x").unwrap();
    b.output("o", PortType::nested(BaseType::Int, 3));
    b.arc_to_output("P", "y", "o").unwrap();
    let df = b.build().unwrap();

    assert_eq!(codes(&df), vec!["W005"]);
    let d = &analyze(&df)[0];
    assert_eq!(d.location.to_string(), "wf :: P");
    assert!(d.help.as_deref().unwrap_or("").contains("δ=+3"), "{:?}", d.help);

    // Raising the threshold silences the lint.
    let lax = AnalyzeConfig { iteration_depth_threshold: 4 };
    assert!(analyze_with(&df, &lax).is_empty());
}

#[test]
fn i001_negative_mismatch_notes_singleton_wrapping() {
    // atom into a list port: δ = −1 (§2.2: the value is wrapped up).
    let mut b = DataflowBuilder::new("wf");
    b.input("a", atom(BaseType::Int));
    b.processor("P").in_port("x", list(BaseType::Int)).out_port("y", atom(BaseType::Int));
    b.arc_from_input("a", "P", "x").unwrap();
    b.output("o", atom(BaseType::Int));
    b.arc_to_output("P", "y", "o").unwrap();
    let df = b.build().unwrap();

    assert_eq!(codes(&df), vec!["I001"]);
    let d = &analyze(&df)[0];
    assert!(!d.is_error());
    assert_eq!(d.location.to_string(), "wf :: P:x");
}

#[test]
fn nested_dataflow_diagnostics_carry_path_qualified_scope() {
    // The dead processor lives inside the nested dataflow; the diagnostic
    // must name the path outer/sub, not just the inner workflow.
    let mut inner = DataflowBuilder::new("sub");
    inner.input("a", atom(BaseType::Int));
    inner.processor("id").in_port("x", atom(BaseType::Int)).out_port("y", atom(BaseType::Int));
    inner.processor("dead").in_port("x", atom(BaseType::Int)).out_port("y", atom(BaseType::Int));
    inner.arc_from_input("a", "id", "x").unwrap();
    inner.arc_from_input("a", "dead", "x").unwrap();
    inner.output("b", atom(BaseType::Int));
    inner.arc_to_output("id", "y", "b").unwrap();
    let inner = Arc::new(inner.build().unwrap());

    let mut outer = DataflowBuilder::new("outer");
    outer.input("v", atom(BaseType::Int));
    outer.nested("sub", inner);
    outer.arc_from_input("v", "sub", "a").unwrap();
    outer.output("w", atom(BaseType::Int));
    outer.arc_to_output("sub", "b", "w").unwrap();
    let df = outer.build().unwrap();

    let diags = analyze(&df);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code.as_str(), "W001");
    assert_eq!(diags[0].location.to_string(), "outer/sub :: dead");
}

/// The ISSUE acceptance scenario: a workflow with a base-type-mismatched
/// arc, a dead processor, and a shadowed default reports all three with
/// distinct codes.
#[test]
fn acceptance_three_smells_three_distinct_codes() {
    let mut b = DataflowBuilder::new("smelly");
    b.input("a", atom(BaseType::Int));
    b.processor("Q")
        .in_port("x", atom(BaseType::String))
        .in_port_with_default("z", atom(BaseType::Int), Value::int(7))
        .out_port("y", atom(BaseType::String));
    b.processor("D").in_port("x", atom(BaseType::Int)).out_port("y", atom(BaseType::Int));
    b.arc_from_input("a", "Q", "x").unwrap(); // Int → String: E001
    b.arc_from_input("a", "Q", "z").unwrap(); // shadows default: W004
    b.arc_from_input("a", "D", "x").unwrap(); // never reaches an output: W001
    b.output("ys", atom(BaseType::String));
    b.arc_to_output("Q", "y", "ys").unwrap();
    let df = b.build().unwrap();

    let diags = analyze(&df);
    let mut got: Vec<&str> = diags.iter().map(|d| d.code.as_str()).collect();
    got.sort_unstable();
    assert_eq!(got, vec!["E001", "W001", "W004"]);
    assert_eq!(error_count(&diags), 1);
    // Errors sort first.
    assert_eq!(diags[0].code.as_str(), "E001");
}

/// The paper's Fig. 3 workflow — positive mismatches on Q:X, P:X1, P:X3
/// driving real iteration — lints clean: mismatch is a feature of the
/// model (§2.2), not a defect.
#[test]
fn fig3_workflow_lints_clean() {
    let mut b = DataflowBuilder::new("wf");
    b.input("v", list(BaseType::String));
    b.input("w", atom(BaseType::String));
    b.input("c", list(BaseType::String));
    b.processor("Q").in_port("X", atom(BaseType::String)).out_port("Y", atom(BaseType::String));
    b.processor("R").in_port("X", atom(BaseType::String)).out_port("Y", list(BaseType::String));
    b.processor("P")
        .in_port("X1", atom(BaseType::String))
        .in_port("X2", list(BaseType::String))
        .in_port("X3", atom(BaseType::String))
        .out_port("Y", atom(BaseType::String));
    b.arc_from_input("v", "Q", "X").unwrap();
    b.arc_from_input("w", "R", "X").unwrap();
    b.arc_from_input("c", "P", "X2").unwrap();
    b.arc("Q", "Y", "P", "X1").unwrap();
    b.arc("R", "Y", "P", "X3").unwrap();
    b.output("y", atom(BaseType::String));
    b.arc_to_output("P", "Y", "y").unwrap();
    let df = b.build().unwrap();

    assert_eq!(analyze(&df), Vec::new());
}

/// Golden test for the report order contract: `sort_diagnostics` is a
/// total order over (severity rank, code, location, message), so the
/// rendered report is byte-identical no matter what order lints discover
/// their findings in. The fixture deliberately includes pairs that tie on
/// every prefix of the sort key — same code at two locations, and two
/// findings at the *same* code and location differing only in message —
/// and feeds them in reversed and rotated orders.
#[test]
fn sorted_report_is_byte_identical_regardless_of_discovery_order() {
    use prov_dataflow::{render_text, sort_diagnostics, DiagCode, Diagnostic, Location, NodeRef};

    fn diag(code: DiagCode, scope: &str, node: NodeRef, message: &str) -> Diagnostic {
        Diagnostic {
            code,
            location: Location { scope: scope.to_string(), node },
            message: message.to_string(),
            help: None,
        }
    }

    let fixture = vec![
        // Info sorts last even though "I" < "W" lexicographically on code
        // alone — severity rank leads the key.
        diag(
            DiagCode::NegativeMismatch,
            "wf",
            NodeRef::InputPort { processor: "P".into(), port: "x".into() },
            "value will be singleton-wrapped",
        ),
        // Two W101s at the same location, distinguished only by message:
        // the message tie-break keeps even these stable.
        diag(
            DiagCode::UncoveredStep,
            "wf",
            NodeRef::InputPort { processor: "P".into(), port: "x".into() },
            "probe b has no index components",
        ),
        diag(
            DiagCode::UncoveredStep,
            "wf",
            NodeRef::InputPort { processor: "P".into(), port: "x".into() },
            "probe a has no index components",
        ),
        // Same code, different scopes: location breaks the tie.
        diag(DiagCode::DeadProcessor, "wf/sub", NodeRef::Processor("Q".into()), "dead"),
        diag(DiagCode::DeadProcessor, "wf", NodeRef::Processor("Q".into()), "dead"),
        // Errors lead the report; E101 sorts after E001.
        diag(
            DiagCode::UnservableIndex,
            "wf",
            NodeRef::InputPort { processor: "P".into(), port: "x".into() },
            "xform_in cannot be served",
        ),
        diag(DiagCode::ArcBaseTypeMismatch, "wf", NodeRef::Arc("P.y -> Q.x".into()), "type clash"),
    ];

    let golden = [
        ("E001", "wf :: P.y -> Q.x", "type clash"),
        ("E101", "wf :: P:x", "xform_in cannot be served"),
        ("W001", "wf :: Q", "dead"),
        ("W001", "wf/sub :: Q", "dead"),
        ("W101", "wf :: P:x", "probe a has no index components"),
        ("W101", "wf :: P:x", "probe b has no index components"),
        ("I001", "wf :: P:x", "value will be singleton-wrapped"),
    ];

    let mut sorted = fixture.clone();
    sort_diagnostics(&mut sorted);
    let got: Vec<(String, String, String)> = sorted
        .iter()
        .map(|d| (d.code.to_string(), d.location.to_string(), d.message.clone()))
        .collect();
    let want: Vec<(String, String, String)> =
        golden.iter().map(|(c, l, m)| (c.to_string(), l.to_string(), m.to_string())).collect();
    assert_eq!(got, want);

    // Any discovery order renders to the same bytes.
    let reference = render_text(&sorted);
    for rotation in 0..fixture.len() {
        let mut shuffled = fixture.clone();
        shuffled.rotate_left(rotation);
        shuffled.reverse();
        sort_diagnostics(&mut shuffled);
        assert_eq!(render_text(&shuffled), reference, "rotation {rotation}");
    }
}
