//! Property tests over randomly generated layered DAGs: topological-sort
//! correctness, Algorithm 1 invariants, and validation soundness.

use proptest::prelude::*;

use prov_dataflow::{toposort, BaseType, Dataflow, DataflowBuilder, DepthInfo, PortType};
use prov_model::ProcessorName;

/// Spec for one random layered DAG: `layers[i]` = number of processors in
/// layer i; each processor takes one input from a random processor in an
/// earlier layer (or the workflow input) and declares random small depths.
#[derive(Debug, Clone)]
struct DagSpec {
    layers: Vec<usize>,
    /// Per processor: (declared input depth, declared output depth, seed
    /// for choosing its upstream source).
    decls: Vec<(usize, usize, u64)>,
}

fn arb_dag() -> impl Strategy<Value = DagSpec> {
    proptest::collection::vec(1usize..4, 1..5).prop_flat_map(|layers| {
        let n: usize = layers.iter().sum();
        proptest::collection::vec((0usize..2, 0usize..2, any::<u64>()), n)
            .prop_map(move |decls| DagSpec { layers: layers.clone(), decls })
    })
}

fn build(spec: &DagSpec) -> Dataflow {
    let mut b = DataflowBuilder::new("wf");
    b.input("in", PortType::nested(BaseType::String, 2));
    let mut names: Vec<Vec<String>> = Vec::new();
    let mut k = 0usize;
    for (li, &width) in spec.layers.iter().enumerate() {
        let mut layer = Vec::new();
        for w in 0..width {
            let name = format!("L{li}N{w}");
            let (din, dout, seed) = spec.decls[k];
            k += 1;
            b.processor_with_behavior(&name, "any")
                .in_port("x", PortType::nested(BaseType::String, din))
                .out_port("y", PortType::nested(BaseType::String, dout));
            if li == 0 {
                b.arc_from_input("in", &name, "x").unwrap();
            } else {
                // Pick an upstream processor from any earlier layer.
                let flat: Vec<&String> = names.iter().flatten().collect();
                let src = flat[(seed as usize) % flat.len()];
                b.arc(src, "y", &name, "x").unwrap();
            }
            layer.push(name);
        }
        names.push(layer);
    }
    let last = names.last().unwrap().first().unwrap().clone();
    b.output("out", PortType::nested(BaseType::String, 4));
    b.arc_to_output(&last, "y", "out").unwrap();
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Toposort emits every processor exactly once, respecting all arcs.
    #[test]
    fn toposort_is_a_valid_linearisation(spec in arb_dag()) {
        let df = build(&spec);
        let order = toposort(&df).unwrap();
        prop_assert_eq!(order.len(), df.node_count());
        let pos = |n: &ProcessorName| order.iter().position(|x| x == n).unwrap();
        for p in &df.processors {
            for pred in df.predecessors(&p.name) {
                prop_assert!(pos(pred) < pos(&p.name), "{pred} !< {}", p.name);
            }
        }
    }

    /// Algorithm 1 invariants: (a) input actual depth equals the upstream
    /// output's actual depth; (b) output actual = declared + Σ max(δ,0);
    /// (c) fragment offsets are contiguous and total is their sum.
    #[test]
    fn depth_propagation_invariants(spec in arb_dag()) {
        let df = build(&spec);
        let info = DepthInfo::compute(&df).unwrap();
        for p in &df.processors {
            let mut expected_total = 0i64;
            for port in &p.inputs {
                let d = info.input_depths(&p.name, &port.name).unwrap();
                prop_assert_eq!(d.declared, port.declared.depth);
                expected_total += d.mismatch().max(0);
                // (a) arc source determines actual depth.
                if let Some(arc) = df.arc_into(&p.name, &port.name) {
                    let src_actual = match &arc.src {
                        prov_dataflow::ArcSrc::WorkflowInput { port } =>
                            df.input(port).unwrap().declared.depth,
                        prov_dataflow::ArcSrc::Processor { processor, port } =>
                            info.output_depths(processor, port).unwrap().actual,
                    };
                    prop_assert_eq!(d.actual, src_actual);
                }
            }
            let layout = info.layout_of(&p.name).unwrap();
            prop_assert_eq!(layout.total as i64, expected_total);
            // (c) fragments tile [0, total).
            let mut offset = 0usize;
            for &(off, len) in &layout.fragments {
                if len > 0 {
                    prop_assert_eq!(off, offset);
                    offset += len;
                }
            }
            prop_assert_eq!(offset, layout.total);
            for port in &p.outputs {
                let d = info.output_depths(&p.name, &port.name).unwrap();
                prop_assert_eq!(d.actual, port.declared.depth + layout.total);
            }
        }
    }

    /// Serde round-trip preserves structure and analyses.
    #[test]
    fn serde_round_trip_preserves_analyses(spec in arb_dag()) {
        let df = build(&spec);
        let json = serde_json::to_string(&df).unwrap();
        let mut back: Dataflow = serde_json::from_str(&json).unwrap();
        back.reindex();
        prov_dataflow::validate(&back).unwrap();
        let a = DepthInfo::compute(&df).unwrap();
        let b = DepthInfo::compute(&back).unwrap();
        for p in &df.processors {
            prop_assert_eq!(a.layout_of(&p.name), b.layout_of(&p.name));
        }
    }
}
