//! Offline integrity sweep over a store's WAL and snapshot files — the
//! engine behind `tprov wal verify <db>`.
//!
//! Every frame is CRC-checked *and* decoded through the streaming
//! [`WalCursor`], so a multi-GB log verifies in one frame's worth of
//! memory; every snapshot file beside the WAL is validated against the
//! same header+footer bracket recovery demands.

use std::path::{Path, PathBuf};

use prov_store::{TailState, TraceStore, WalCursor, WalError};

use crate::primary::{leading_marker, validate_snapshot};

/// The verdict on one snapshot file.
#[derive(Debug, Clone)]
pub struct SnapshotVerdict {
    /// The snapshot file.
    pub path: PathBuf,
    /// Generation parsed from the file name.
    pub generation: u64,
    /// Clean frame stream bracketed by the right markers?
    pub valid: bool,
}

/// The result of a full WAL + snapshot sweep.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Frames that scanned (CRC + decode) cleanly.
    pub wal_frames: u64,
    /// Bytes covered by those frames.
    pub wal_bytes: u64,
    /// What the sweep found past the clean prefix.
    pub tail: TailState,
    /// The WAL's lineage: its leading snapshot-marker generation, or 0
    /// for a marker-less (self-contained) log.
    pub generation: u64,
    /// When the WAL leads with a marker: is that generation's snapshot
    /// file present and valid? (`None` for marker-less logs.)
    pub marker_backed: Option<bool>,
    /// Every snapshot file found beside the WAL.
    pub snapshots: Vec<SnapshotVerdict>,
}

impl VerifyReport {
    /// Whether the store is undamaged. A torn tail does *not* fail
    /// verification — it is an interrupted write that recovery truncates,
    /// not corruption — but a corrupt frame, an invalid snapshot file, or
    /// a leading marker whose snapshot is unusable does.
    pub fn healthy(&self) -> bool {
        !matches!(self.tail, TailState::CorruptFrame { .. })
            && self.marker_backed != Some(false)
            && self.snapshots.iter().all(|s| s.valid)
    }
}

/// Sweeps the WAL at `db` and every snapshot file beside it. A missing
/// WAL file verifies as an empty clean log (a store never opened is not a
/// damaged store).
pub fn verify_store(db: &Path) -> Result<VerifyReport, WalError> {
    let mut wal_frames = 0u64;
    let mut tail = TailState::Clean;
    let mut wal_bytes = 0u64;
    match WalCursor::open(db) {
        Ok(mut cursor) => {
            while cursor.next_record()?.is_some() {
                wal_frames += 1;
            }
            tail = cursor.tail();
            wal_bytes = cursor.offset();
        }
        Err(WalError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }

    let generation = leading_marker(db).unwrap_or(0);
    let marker_backed = leading_marker(db).map(|g| {
        let snap = TraceStore::snapshot_file_for(db, g);
        validate_snapshot(&snap, g)
    });

    let mut snapshots = Vec::new();
    for path in TraceStore::snapshot_files(db) {
        let gen_of = path
            .extension()
            .and_then(|e| e.to_str())
            .and_then(|e| e.parse::<u64>().ok())
            .unwrap_or(0);
        let valid = validate_snapshot(&path, gen_of);
        snapshots.push(SnapshotVerdict { path, generation: gen_of, valid });
    }

    Ok(VerifyReport { wal_frames, wal_bytes, tail, generation, marker_backed, snapshots })
}
