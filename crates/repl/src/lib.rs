//! # prov-repl
//!
//! Replicated lineage serving: WAL shipping from a primary
//! [`prov_store::TraceStore`] to follower stores that replay continuously
//! and answer read-only lineage queries.
//!
//! The design leans on two properties the store already guarantees:
//!
//! 1. **The WAL is the state.** Shipping the durable frame stream (plus a
//!    snapshot file when the log leads with a compaction marker) and
//!    re-framing the identical payload bytes on the follower yields a
//!    local log that is a *byte-for-byte prefix* of the primary's — so
//!    ordinary crash recovery doubles as follower restart, and a prefix
//!    CRC in the handshake detects divergence by content.
//! 2. **Answers are a function of the durable prefix.** A follower paused
//!    at any frame boundary answers exactly the lineage of the records it
//!    has — the same invariant the crash-recovery torture suites assert —
//!    so replica reads are stale-but-consistent, never wrong.
//!
//! Modules: [`protocol`] (wire format), [`primary`] (fan-out server),
//! [`follower`] (replay loop + replica query endpoint), [`verify`]
//! (offline WAL/snapshot integrity sweep).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod follower;
pub mod primary;
pub mod protocol;
pub mod verify;

pub use follower::{
    execute_query, query_replica, status_path, Follower, FollowerConfig, ReplStatus,
    ReplicaQueryServer,
};
pub use primary::{snapshot_backs_marker, PrimaryConfig, ReplServer};
pub use protocol::{QueryError, QueryRequest, QueryResponse};
pub use verify::{verify_store, SnapshotVerdict, VerifyReport};

/// Typed replication errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplError {
    /// A socket or file operation failed.
    Io(String),
    /// The peer violated the wire protocol.
    Protocol(String),
    /// The local store refused an operation.
    Store(String),
    /// A replica refused to answer beyond the requested staleness bound.
    ReplicaStale {
        /// Frames the replica lagged by (`u64::MAX`: lag unknown — the
        /// replica has not heard from its primary).
        lag_frames: u64,
        /// The bound the request imposed.
        max_lag: u64,
    },
    /// The replica returned a typed error other than staleness.
    Remote {
        /// Machine-matchable error class.
        code: String,
        /// Human-oriented detail.
        message: String,
    },
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Io(m) => write!(f, "replication i/o: {m}"),
            ReplError::Protocol(m) => write!(f, "replication protocol: {m}"),
            ReplError::Store(m) => write!(f, "replication store: {m}"),
            ReplError::ReplicaStale { lag_frames, max_lag } => {
                if *lag_frames == u64::MAX {
                    write!(
                        f,
                        "replica stale: lag unknown (no primary contact), bound {max_lag} frames"
                    )
                } else {
                    write!(f, "replica stale: lags {lag_frames} frames, bound {max_lag}")
                }
            }
            ReplError::Remote { code, message } => write!(f, "replica error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ReplError {}
