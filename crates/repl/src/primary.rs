//! The primary side: accept followers, negotiate a start point, ship the
//! durable WAL prefix.
//!
//! The primary never sends bytes past its fsynced length
//! ([`prov_store::TraceStore::repl_position`]) — a follower can therefore
//! never hold state the primary might lose in a crash. When the primary's
//! WAL lineage changes under a live stream (snapshot or checkpoint rewrote
//! the log) the connection drops back to the handshake with a
//! [`protocol::Resync`] and the follower re-offers its prefix.

use std::fs::File;
use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use prov_obs::{Journal, JournalEvent};
use prov_store::{Crc32, LogRecord, TailState, TraceStore, WalCursor};

use crate::protocol::{self, BootstrapHeader, Hello, Resync, StreamFrom};
use crate::ReplError;

/// Tuning knobs for the shipping loop.
#[derive(Debug, Clone, Copy)]
pub struct PrimaryConfig {
    /// Target size of one [`protocol::TAG_FRAMES`] chunk (whole frames are
    /// never split, so a chunk may exceed this by one frame).
    pub chunk_bytes: usize,
    /// How long a caught-up connection sleeps before re-checking the
    /// durable position.
    pub poll_interval_ms: u64,
}

impl Default for PrimaryConfig {
    fn default() -> Self {
        PrimaryConfig { chunk_bytes: 32 * 1024, poll_interval_ms: 20 }
    }
}

/// A running replication listener: one accept thread, one thread per
/// follower connection. Dropping the handle shuts it down.
pub struct ReplServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for ReplServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplServer").field("addr", &self.addr).finish()
    }
}

impl ReplServer {
    /// Binds `listen` (e.g. `127.0.0.1:0`) and starts accepting followers
    /// of `store`. [`JournalEvent::ReplFrameShipped`] events are recorded
    /// to `journal` as chunks go out.
    pub fn spawn(
        store: Arc<TraceStore>,
        listen: &str,
        journal: Journal,
        config: PrimaryConfig,
    ) -> Result<ReplServer, ReplError> {
        if store.wal_path().is_none() {
            return Err(ReplError::Protocol("an in-memory store cannot serve replication".into()));
        }
        let listener =
            TcpListener::bind(listen).map_err(|e| ReplError::Io(format!("bind {listen}: {e}")))?;
        let addr = listener.local_addr().map_err(|e| ReplError::Io(e.to_string()))?;
        listener.set_nonblocking(true).map_err(|e| ReplError::Io(e.to_string()))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let store = Arc::clone(&store);
                            let shutdown = Arc::clone(&shutdown);
                            let journal = journal.clone();
                            let handle = std::thread::spawn(move || {
                                handle_follower(&store, stream, &shutdown, &journal, config);
                            });
                            conns.lock().push(handle);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            })
        };
        Ok(ReplServer { addr, shutdown, accept: Some(accept), conns })
    }

    /// The bound address (useful with a `:0` listen spec).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, asks connection threads to wind down, and joins
    /// them all.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.conns.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ReplServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Why a streaming loop returned to its caller.
enum StreamEnd {
    /// Socket closed / shutdown requested: drop the connection.
    Done,
    /// A resync was sent: go back to awaiting a fresh hello.
    Rehello,
}

fn handle_follower(
    store: &TraceStore,
    stream: TcpStream,
    shutdown: &AtomicBool,
    journal: &Journal,
    config: PrimaryConfig,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = stream.try_clone().map(BufReader::new);
    let Ok(reader) = reader.as_mut() else { return };
    let mut writer = stream;

    loop {
        // Await the follower's hello, polling the shutdown flag.
        let hello: Hello = loop {
            if shutdown.load(Ordering::Relaxed) {
                return;
            }
            match protocol::read_msg(reader) {
                Ok(Some((protocol::TAG_HELLO, payload))) => match protocol::decode(&payload) {
                    Ok(h) => break h,
                    Err(_) => return,
                },
                Ok(Some(_)) => return, // protocol violation
                Ok(None) => return,    // peer hung up
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(_) => return,
            }
        };

        let Some(wal) = store.wal_path().map(Path::to_path_buf) else { return };
        let pos = store.repl_position();
        let marker = leading_marker(&wal);

        // The follower's log must be a byte prefix of ours (checked by
        // content, not trusted by position), and a from-zero stream only
        // carries full state when the log is marker-less.
        let matches = !hello.force_bootstrap
            && hello.offset <= pos.durable_len
            && (hello.offset > 0 || marker.is_none())
            && prefix_crc(&wal, hello.offset).is_ok_and(|crc| crc == hello.prefix_crc);

        if matches {
            if protocol::write_json(
                &mut writer,
                protocol::TAG_STREAM_FROM,
                &StreamFrom { generation: pos.generation, offset: hello.offset },
            )
            .is_err()
            {
                return;
            }
            match stream_frames(
                store,
                &mut writer,
                &wal,
                hello.offset,
                pos.generation,
                shutdown,
                journal,
                config,
            ) {
                StreamEnd::Done => return,
                StreamEnd::Rehello => continue,
            }
        } else if marker.is_some() {
            if send_bootstrap(store, &mut writer, &wal).is_err() {
                return;
            }
            // Follower installs the snapshot and re-hellos.
        } else {
            // Marker-less log: a from-zero replay is lossless.
            if protocol::write_json(
                &mut writer,
                protocol::TAG_STREAM_FROM,
                &StreamFrom { generation: pos.generation, offset: 0 },
            )
            .is_err()
            {
                return;
            }
            match stream_frames(
                store,
                &mut writer,
                &wal,
                0,
                pos.generation,
                shutdown,
                journal,
                config,
            ) {
                StreamEnd::Done => return,
                StreamEnd::Rehello => continue,
            }
        }
    }
}

/// Ships the snapshot file backing the WAL's leading marker, cutting a
/// fresh snapshot first if the marked generation's file is missing or
/// fails validation.
fn send_bootstrap(store: &TraceStore, writer: &mut TcpStream, wal: &Path) -> io::Result<()> {
    let mut generation = leading_marker(wal);
    let mut snap = generation.map(|g| TraceStore::snapshot_file_for(wal, g));
    let valid = match (&generation, &snap) {
        (Some(g), Some(p)) => validate_snapshot(p, *g),
        _ => false,
    };
    if !valid {
        // The marked snapshot is unusable: cut a new one (this rewrites the
        // WAL to a fresh marker; live streams will resync to it).
        store.snapshot().map_err(|e| io::Error::other(format!("snapshot: {e}")))?;
        generation = leading_marker(wal);
        snap = generation.map(|g| TraceStore::snapshot_file_for(wal, g));
    }
    let (generation, snap) = match (generation, snap) {
        (Some(g), Some(p)) => (g, p),
        _ => return Err(io::Error::other("no snapshot to bootstrap from")),
    };
    let len = std::fs::metadata(&snap)?.len();
    protocol::write_json(writer, protocol::TAG_BOOTSTRAP, &BootstrapHeader { generation, len })?;
    let mut file = File::open(&snap)?;
    let mut buf = vec![0u8; 64 * 1024];
    let mut left = len;
    while left > 0 {
        let want = buf.len().min(left as usize);
        file.read_exact(&mut buf[..want])?;
        writer.write_all(&buf[..want])?;
        left -= want as u64;
    }
    writer.flush()
}

#[allow(clippy::too_many_arguments)]
fn stream_frames(
    store: &TraceStore,
    writer: &mut TcpStream,
    wal: &Path,
    start: u64,
    start_gen: u64,
    shutdown: &AtomicBool,
    journal: &Journal,
    config: PrimaryConfig,
) -> StreamEnd {
    let mut sent = start;
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return StreamEnd::Done;
        }
        let pos = store.repl_position();
        if pos.generation != start_gen {
            let _ = protocol::write_json(
                writer,
                protocol::TAG_RESYNC,
                &Resync { generation: pos.generation, reason: "wal lineage changed".into() },
            );
            return StreamEnd::Rehello;
        }
        if sent < pos.durable_len {
            let (chunk, frames, next) =
                match read_chunk(wal, sent, pos.durable_len, config.chunk_bytes) {
                    Ok(c) => c,
                    Err(_) => {
                        let _ = protocol::write_json(
                            writer,
                            protocol::TAG_RESYNC,
                            &Resync { generation: pos.generation, reason: "wal unreadable".into() },
                        );
                        return StreamEnd::Rehello;
                    }
                };
            if frames == 0 {
                // Durable region not advancing under the cursor: the log
                // was rewritten beneath us without (yet) a generation bump.
                let _ = protocol::write_json(
                    writer,
                    protocol::TAG_RESYNC,
                    &Resync { generation: pos.generation, reason: "wal rewritten".into() },
                );
                return StreamEnd::Rehello;
            }
            let bytes = chunk.len() as u64;
            if protocol::write_msg(writer, protocol::TAG_FRAMES, &chunk).is_err() {
                return StreamEnd::Done;
            }
            sent = next;
            journal.record(JournalEvent::ReplFrameShipped { frames, bytes, offset: sent });
            if protocol::write_json(writer, protocol::TAG_HEARTBEAT, &pos).is_err() {
                return StreamEnd::Done;
            }
        } else {
            if protocol::write_json(writer, protocol::TAG_HEARTBEAT, &pos).is_err() {
                return StreamEnd::Done;
            }
            std::thread::sleep(Duration::from_millis(config.poll_interval_ms));
        }
    }
}

/// Reads whole frames from `wal` starting at `from`, stopping at
/// `chunk_bytes` or the durable boundary `limit`, whichever comes first.
fn read_chunk(
    wal: &Path,
    from: u64,
    limit: u64,
    chunk_bytes: usize,
) -> Result<(Vec<u8>, u64, u64), prov_store::WalError> {
    let mut cursor = WalCursor::open_at(wal, from)?;
    let mut chunk = Vec::with_capacity(chunk_bytes.min(64 * 1024));
    let mut frames = 0u64;
    let mut end = from;
    while end < limit && chunk.len() < chunk_bytes {
        let before = chunk.len();
        match cursor.next_frame()? {
            Some(frame) => chunk.extend_from_slice(frame),
            None => break,
        }
        if cursor.offset() > limit {
            chunk.truncate(before); // frame straddles the durable boundary: not ours to ship
            break;
        }
        end = cursor.offset();
        frames += 1;
    }
    Ok((chunk, frames, end))
}

/// The generation of the WAL's leading snapshot marker, if any.
pub(crate) fn leading_marker(wal: &Path) -> Option<u64> {
    let mut cursor = WalCursor::open(wal).ok()?;
    match cursor.next_record().ok()? {
        Some(LogRecord::Snapshot { generation }) => Some(generation),
        _ => None,
    }
}

/// CRC-32 of the first `len` bytes of `path`, streamed in 64 KiB reads.
pub(crate) fn prefix_crc(path: &Path, len: u64) -> io::Result<u32> {
    let mut crc = Crc32::new();
    if len == 0 {
        return Ok(crc.finish());
    }
    let mut file = File::open(path)?;
    let mut buf = vec![0u8; 64 * 1024];
    let mut left = len;
    while left > 0 {
        let want = buf.len().min(left as usize);
        file.read_exact(&mut buf[..want])?;
        crc.update(&buf[..want]);
        left -= want as u64;
    }
    Ok(crc.finish())
}

/// A snapshot file is shippable when it is a clean frame stream that opens
/// and closes with the `Snapshot { generation }` marker — the same
/// header+footer bracket `prov-store`'s recovery demands, checked here
/// with the streaming cursor so a multi-GB snapshot never loads whole.
pub(crate) fn validate_snapshot(path: &Path, generation: u64) -> bool {
    let Ok(mut cursor) = WalCursor::open(path) else { return false };
    let marker = LogRecord::Snapshot { generation };
    let mut count = 0u64;
    let mut first_is_marker = false;
    let mut last_is_marker = false;
    loop {
        match cursor.next_record() {
            Ok(Some(record)) => {
                if count == 0 {
                    first_is_marker = record == marker;
                }
                last_is_marker = record == marker;
                count += 1;
            }
            Ok(None) => break,
            Err(_) => return false,
        }
    }
    cursor.tail() == TailState::Clean && count >= 2 && first_is_marker && last_is_marker
}

/// Does `path` exist with a valid snapshot for its leading marker? Used by
/// `tprov wal verify`.
pub fn snapshot_backs_marker(wal: &Path) -> Option<(u64, bool)> {
    let generation = leading_marker(wal)?;
    let snap = TraceStore::snapshot_file_for(wal, generation);
    Some((generation, validate_snapshot(&snap, generation)))
}
