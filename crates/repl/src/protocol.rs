//! Wire protocol for WAL shipping and replica queries.
//!
//! The *framing* — `tag (1 byte) | len (u32 LE) | payload[len]`, the
//! inbound length guards, and the timeout-safe readers — lives in the
//! shared [`prov_wire`] codec, re-exported here verbatim so replication
//! and the serve daemon speak one dialect. This module keeps the
//! replication-specific message vocabulary: control messages carry JSON
//! payloads; [`TAG_FRAMES`] carries a raw chunk of WAL frame bytes
//! exactly as they appear in the primary's log (the follower re-frames
//! the payloads, producing a byte-identical local log), and a
//! [`TAG_BOOTSTRAP`] header is followed by that many *raw* snapshot-file
//! bytes outside any message framing.
//!
//! The handshake is deliberately content-addressed rather than
//! position-trusting: the follower's [`Hello`] carries a CRC-32 of its
//! entire local durable WAL prefix, and the primary streams its own first
//! `offset` bytes through [`prov_store::Crc32`] to verify the follower's
//! log really is a byte prefix of its own. Generation numbers alone cannot
//! be trusted (a checkpoint epoch can collide with a snapshot generation
//! after a restart); bytes cannot lie.

use serde::{Deserialize, Serialize};

use prov_store::ReplPosition;

pub use prov_wire::{
    decode, frame_too_large, read_exact_retry, read_msg, read_raw, write_json, write_msg,
    FrameTooLarge, MAX_FRAME_LEN, MAX_RAW_LEN,
};

/// Follower → primary: identify the local log and ask for a plan.
pub const TAG_HELLO: u8 = 0x01;
/// Primary → follower: a snapshot file follows (raw bytes after the header).
pub const TAG_BOOTSTRAP: u8 = 0x02;
/// Primary → follower: frames will stream from the given offset.
pub const TAG_STREAM_FROM: u8 = 0x03;
/// Primary → follower: a raw chunk of whole WAL frames.
pub const TAG_FRAMES: u8 = 0x04;
/// Primary → follower: current durable position (lag accounting).
pub const TAG_HEARTBEAT: u8 = 0x05;
/// Primary → follower: the WAL lineage changed; re-handshake.
pub const TAG_RESYNC: u8 = 0x06;
/// Client → replica: execute a lineage/impact query.
pub const TAG_QUERY: u8 = 0x11;
/// Replica → client: rendered answers plus the replica's position.
pub const TAG_QUERY_OK: u8 = 0x12;
/// Replica → client: typed refusal (staleness bound, parse failure, ...).
pub const TAG_QUERY_ERR: u8 = 0x13;

/// Historical name for the shared frame bound, kept for callers that
/// predate the codec extraction into `prov-wire`.
pub const MAX_MESSAGE_LEN: u32 = MAX_FRAME_LEN;

/// The follower's opening offer: "my log is `offset` durable bytes /
/// `frames` frames whose CRC-32 is `prefix_crc`; lineage I last knew was
/// `generation`". `force_bootstrap` asks for a full re-seed regardless.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hello {
    /// WAL lineage the follower last synced to (advisory; the CRC decides).
    pub generation: u64,
    /// Durable length of the follower's local WAL in bytes.
    pub offset: u64,
    /// Durable frame count of the follower's local WAL.
    pub frames: u64,
    /// CRC-32 of the follower's first `offset` WAL bytes.
    pub prefix_crc: u32,
    /// Demand a snapshot bootstrap even if the prefix would match.
    pub force_bootstrap: bool,
}

/// Announces the raw snapshot bytes that follow a [`TAG_BOOTSTRAP`] header.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BootstrapHeader {
    /// Snapshot generation being shipped (the follower installs it as
    /// `<db>.snap.<generation>`).
    pub generation: u64,
    /// Exact byte length of the snapshot file.
    pub len: u64,
}

/// The primary's go-ahead: frames stream from `offset` of lineage
/// `generation`. Offset zero on a non-empty follower means "wipe and
/// replay from scratch".
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StreamFrom {
    /// WAL lineage being streamed.
    pub generation: u64,
    /// Byte offset the first shipped frame starts at.
    pub offset: u64,
}

/// Why the primary broke the stream and asked for a new handshake.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Resync {
    /// The primary's current lineage.
    pub generation: u64,
    /// Human-oriented cause ("generation changed", ...).
    pub reason: String,
}

/// A query shipped to a read replica.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryRequest {
    /// Query text, `lin(...)` or `impact(...)` (see `prov_core::parse_query`).
    pub query: String,
    /// Run (trace) id to query when `all_runs` is false.
    pub run: u64,
    /// Query every run the replica knows.
    pub all_runs: bool,
    /// `"ni"` or `"indexproj"`.
    pub algo: String,
    /// Workflow name for `indexproj` when the replica registers several.
    pub wf: Option<String>,
    /// Refuse to answer if the replica lags the primary by more than this
    /// many frames (`None`: answer at any staleness).
    pub max_lag_frames: Option<u64>,
}

/// A replica's successful answer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryResponse {
    /// Rendered [`prov_core::LineageAnswer`]s, one per queried run.
    pub answers: Vec<String>,
    /// Frames the replica lagged the primary by at answer time.
    pub lag_frames: u64,
    /// Bytes the replica lagged the primary by at answer time.
    pub lag_bytes: u64,
    /// Lineage the replica was on.
    pub generation: u64,
    /// The replica's durable WAL offset.
    pub offset: u64,
}

/// A replica's typed refusal. `code` is machine-matchable:
/// `"replica_stale"` for a staleness-bound violation, `"query_failed"` for
/// parse/execution errors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryError {
    /// Machine-matchable error class.
    pub code: String,
    /// Human-oriented detail.
    pub message: String,
    /// The replica's lag when it refused (staleness refusals).
    pub lag_frames: Option<u64>,
    /// The bound the request imposed (staleness refusals).
    pub max_lag: Option<u64>,
}

/// Re-exported so both ends speak the same position type.
pub type Position = ReplPosition;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;

    #[test]
    fn round_trips_control_and_raw_messages() {
        let mut wire = Vec::new();
        let hello = Hello {
            generation: 3,
            offset: 128,
            frames: 7,
            prefix_crc: 0xDEAD_BEEF,
            force_bootstrap: false,
        };
        write_json(&mut wire, TAG_HELLO, &hello).unwrap();
        write_msg(&mut wire, TAG_FRAMES, b"rawbytes").unwrap();

        let mut r = wire.as_slice();
        let (tag, payload) = read_msg(&mut r).unwrap().unwrap();
        assert_eq!(tag, TAG_HELLO);
        let back: Hello = decode(&payload).unwrap();
        assert_eq!(back.offset, 128);
        assert_eq!(back.prefix_crc, 0xDEAD_BEEF);

        let (tag, payload) = read_msg(&mut r).unwrap().unwrap();
        assert_eq!(tag, TAG_FRAMES);
        assert_eq!(payload, b"rawbytes");

        assert!(read_msg(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_length_is_rejected_not_allocated() {
        let mut wire = vec![TAG_FRAMES];
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_msg(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Regression: through the shared codec the refusal is typed, so a
        // follower fed a forged length can tell "hostile prefix" apart
        // from ordinary decode noise.
        let typed = frame_too_large(&err).expect("typed FrameTooLarge through repl path");
        assert_eq!(typed.max, u64::from(MAX_MESSAGE_LEN));
    }

    #[test]
    fn oversized_bootstrap_header_is_rejected_not_allocated() {
        // A malicious primary announcing a 2^63-byte snapshot must get a
        // typed refusal from the raw-body reader the bootstrap path uses.
        let err = read_raw(&mut io::empty(), 1u64 << 63).unwrap_err();
        assert!(frame_too_large(&err).is_some());
    }

    #[test]
    fn truncated_message_is_an_unexpected_eof() {
        let mut wire = Vec::new();
        write_msg(&mut wire, TAG_FRAMES, b"full payload").unwrap();
        wire.truncate(wire.len() - 3);
        let err = read_msg(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
