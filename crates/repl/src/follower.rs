//! The follower side: replay the primary's WAL continuously, serve
//! read-only lineage queries, survive kills and primary rewrites.
//!
//! A [`Follower`] owns a local [`TraceStore`] whose WAL is kept a
//! byte-for-byte prefix of the primary's: every shipped frame payload is
//! re-appended through [`TraceStore::apply_replicated`] (identical bytes →
//! identical frames) and fsynced per chunk, so a killed follower recovers
//! its durable prefix and resumes from exactly that offset. When the
//! handshake or a damaged chunk proves the local log is *not* a prefix
//! anymore, the follower wipes and re-seeds — either from a shipped
//! snapshot ([`protocol::TAG_BOOTSTRAP`]) or a from-zero replay.
//!
//! Staleness is tracked as `(primary durable frames) − (local durable
//! frames)` from the primary's heartbeats, persisted to a `<db>.repl.json`
//! sidecar (where `tprov metrics` picks up `repl.lag_frames` /
//! `repl.lag_bytes`), and enforced by the replica query endpoint: a
//! request with `max_lag_frames` beyond the current lag gets a typed
//! `replica_stale` refusal instead of a stale answer.

use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use prov_core::{parse_query, IndexProj, NaiveImpact, NaiveLineage, ParsedQuery};
use prov_dataflow::Dataflow;
use prov_engine::{Backoff, Clock, RetryPolicy, SystemClock};
use prov_model::{ProcessorName, RunId};
use prov_obs::{Journal, JournalEvent};
use prov_store::{FaultPlan, FaultReader, ReplPosition, TailState, TraceStore, WalCursor};

use crate::primary::prefix_crc;
use crate::protocol::{
    self, BootstrapHeader, Hello, QueryError, QueryRequest, QueryResponse, Resync, StreamFrom,
};
use crate::ReplError;

/// Where a follower of the store at `db` persists its replication status
/// (read back by `tprov metrics` for the `repl.*` gauges).
pub fn status_path(db: &Path) -> PathBuf {
    PathBuf::from(format!("{}.repl.json", db.display()))
}

/// Reconnection and fault-injection knobs for a follower.
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// Reconnect backoff schedule; attempts are 1-based and reset on every
    /// successful connect.
    pub backoff: RetryPolicy,
    /// Time source for the backoff sleeps (swap in a `VirtualClock` under
    /// test).
    pub clock: Arc<dyn Clock>,
    /// When set, the *first* established session's socket reads go
    /// through a [`FaultReader`] carrying this plan — the torture suite's
    /// way of tearing the stream mid-frame or mid-bootstrap. Later
    /// sessions run clean, so the follower is expected to heal.
    pub read_fault: Option<FaultPlan>,
    /// Heartbeat/idle window in milliseconds: a session that receives *no*
    /// frame of any kind (heartbeat, WAL chunk, resync...) for this long
    /// is declared stalled — the follower marks itself disconnected with
    /// unknown lag (so bounded queries refuse) and re-enters the
    /// reconnect backoff. `0` disables stall detection. Measured on
    /// [`FollowerConfig::clock`], so a `VirtualClock` drives it
    /// deterministically under test.
    pub idle_timeout_ms: u64,
}

impl Default for FollowerConfig {
    fn default() -> Self {
        FollowerConfig {
            backoff: RetryPolicy::attempts(u32::MAX)
                .with_backoff(Backoff::Exponential { base_micros: 50_000, max_micros: 2_000_000 })
                .with_jitter(0x0F01_10E5),
            clock: Arc::new(SystemClock),
            read_fault: None,
            idle_timeout_ms: 10_000,
        }
    }
}

/// A follower's replication state, serialized to the `<db>.repl.json`
/// sidecar after every status change.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReplStatus {
    /// Local WAL lineage (leading snapshot marker generation, 0 if none).
    pub generation: u64,
    /// Local durable WAL length in bytes.
    pub offset: u64,
    /// Local durable WAL frame count.
    pub frames: u64,
    /// Primary's lineage per its last heartbeat.
    pub primary_generation: u64,
    /// Primary's durable length per its last heartbeat.
    pub primary_offset: u64,
    /// Primary's durable frame count per its last heartbeat.
    pub primary_frames: u64,
    /// `primary_frames − frames` (saturating).
    pub lag_frames: u64,
    /// `primary_offset − offset` (saturating).
    pub lag_bytes: u64,
    /// A replication session is currently established.
    pub connected: bool,
    /// At least one heartbeat has arrived since the follower started —
    /// until then lag is unknown, and a bounded query is refused.
    pub heard_from_primary: bool,
    /// Resync round-trips (lineage changes, damaged chunks).
    pub resyncs: u64,
    /// Connection attempts after the first.
    pub reconnects: u64,
    /// Snapshot bootstraps installed.
    pub bootstraps: u64,
}

/// Why a replication session ended (internal to the reconnect loop).
enum SessionEnd {
    /// [`Follower::stop`] was called.
    Stopped,
    /// Socket error / peer hung up — or the primary stalled past the
    /// heartbeat window: reconnect with backoff.
    Disconnected,
    /// Local log proven divergent: reconnect immediately, demanding a
    /// bootstrap.
    NeedBootstrap,
}

/// A replicating read replica of a remote primary.
pub struct Follower {
    db: PathBuf,
    store: RwLock<Arc<TraceStore>>,
    status: Mutex<ReplStatus>,
    status_file: PathBuf,
    stop: AtomicBool,
    current: Mutex<Option<TcpStream>>,
    journal: Journal,
}

impl std::fmt::Debug for Follower {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Follower").field("db", &self.db).finish()
    }
}

impl Follower {
    /// Opens (or creates) the local store at `db`. Normal WAL recovery
    /// runs first, so a killed follower restarts from its durable prefix.
    /// [`JournalEvent::FollowerResync`] events are recorded to `journal`.
    pub fn open(db: impl AsRef<Path>, journal: Journal) -> Result<Arc<Follower>, ReplError> {
        let db = db.as_ref().to_path_buf();
        let store = TraceStore::open(&db).map_err(|e| ReplError::Store(e.to_string()))?;
        let pos = store.repl_position();
        let status = ReplStatus {
            generation: pos.generation,
            offset: pos.durable_len,
            frames: pos.durable_frames,
            ..ReplStatus::default()
        };
        let status_file = status_path(&db);
        let follower = Arc::new(Follower {
            db,
            store: RwLock::new(Arc::new(store)),
            status: Mutex::new(status),
            status_file,
            stop: AtomicBool::new(false),
            current: Mutex::new(None),
            journal,
        });
        follower.write_sidecar();
        Ok(follower)
    }

    /// The local database path.
    pub fn db(&self) -> &Path {
        &self.db
    }

    /// The current store (swapped atomically on bootstrap; queries holding
    /// an older `Arc` finish against the pre-bootstrap state).
    pub fn store(&self) -> Arc<TraceStore> {
        Arc::clone(&self.store.read())
    }

    /// A copy of the current replication status.
    pub fn status(&self) -> ReplStatus {
        self.status.lock().clone()
    }

    /// Starts the replication loop against `primary` (a `host:port`).
    pub fn start(
        self: &Arc<Self>,
        primary: impl Into<String>,
        config: FollowerConfig,
    ) -> JoinHandle<()> {
        let me = Arc::clone(self);
        let primary = primary.into();
        std::thread::spawn(move || me.run(&primary, &config))
    }

    /// Asks the replication loop to exit and unblocks any in-flight socket
    /// read.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(s) = self.current.lock().as_ref() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    /// Blocks until the follower is connected, has heard a heartbeat, and
    /// lags the primary by zero frames — or `timeout` elapses. Returns
    /// whether it caught up.
    pub fn wait_caught_up(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let s = self.status();
            if s.connected && s.heard_from_primary && s.lag_frames == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    fn run(&self, primary: &str, config: &FollowerConfig) {
        let mut attempt: u32 = 0;
        let mut force_bootstrap = false;
        let mut fault = config.read_fault;
        while !self.stopped() {
            if let Ok(stream) = TcpStream::connect(primary) {
                attempt = 0;
                let end = self.session(stream, &mut force_bootstrap, fault.take(), config);
                *self.current.lock() = None;
                self.with_status(|s| s.connected = false);
                match end {
                    SessionEnd::Stopped => break,
                    SessionEnd::Disconnected => {
                        self.with_status(|s| s.reconnects += 1);
                    }
                    SessionEnd::NeedBootstrap => {
                        force_bootstrap = true;
                        self.with_status(|s| s.reconnects += 1);
                        continue; // no backoff: the primary is up, we just diverged
                    }
                }
            }
            if self.stopped() {
                break;
            }
            attempt = attempt.saturating_add(1);
            config.clock.sleep_micros(config.backoff.delay_micros(attempt, 0));
        }
        *self.current.lock() = None;
        self.with_status(|s| s.connected = false);
    }

    /// One connected session: hello, then apply whatever the primary sends
    /// until the socket dies, a resync bounces us back to hello, local
    /// divergence demands a bootstrap, or the primary stalls past the
    /// heartbeat window.
    fn session(
        &self,
        stream: TcpStream,
        force: &mut bool,
        fault: Option<FaultPlan>,
        config: &FollowerConfig,
    ) -> SessionEnd {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        *self.current.lock() = stream.try_clone().ok();
        let Ok(mut writer) = stream.try_clone() else { return SessionEnd::Disconnected };
        let mut reader: Box<dyn Read> = match fault {
            Some(plan) => Box::new(FaultReader::new(stream, plan)),
            None => Box::new(stream),
        };
        let idle_micros = config.idle_timeout_ms.saturating_mul(1000);
        let mut last_heard = config.clock.now_micros();

        'handshake: loop {
            if self.stopped() {
                return SessionEnd::Stopped;
            }
            let hello = self.make_hello(*force);
            if protocol::write_json(&mut writer, protocol::TAG_HELLO, &hello).is_err() {
                return SessionEnd::Disconnected;
            }
            loop {
                if self.stopped() {
                    return SessionEnd::Stopped;
                }
                let (tag, payload) = match protocol::read_msg(&mut reader) {
                    Ok(Some(msg)) => msg,
                    Ok(None) => return SessionEnd::Disconnected,
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        // Stall detection: a primary that accepted us but
                        // has gone silent (wedged, partitioned) must not
                        // leave this replica claiming liveness — mark lag
                        // unknown and retry the connection under backoff.
                        if idle_micros > 0
                            && config.clock.now_micros().saturating_sub(last_heard) > idle_micros
                        {
                            self.with_status(|s| {
                                s.connected = false;
                                s.heard_from_primary = false;
                            });
                            return SessionEnd::Disconnected;
                        }
                        continue;
                    }
                    Err(_) => return SessionEnd::Disconnected,
                };
                last_heard = config.clock.now_micros();
                match tag {
                    protocol::TAG_STREAM_FROM => {
                        let Ok(sf) = protocol::decode::<StreamFrom>(&payload) else {
                            return SessionEnd::Disconnected;
                        };
                        let local = self.store().repl_position().durable_len;
                        if sf.offset == 0 && local > 0 {
                            // Full replay of a marker-less log: wipe first.
                            if self.reset_local("from-zero replay").is_err() {
                                return SessionEnd::Disconnected;
                            }
                        } else if sf.offset != 0 && sf.offset != local {
                            // The primary agreed to an offset we don't
                            // have — protocol anomaly; demand a re-seed.
                            self.note_resync(sf.generation, local, "offset anomaly");
                            return SessionEnd::NeedBootstrap;
                        }
                        *force = false;
                        self.with_status(|s| {
                            s.generation = sf.generation;
                            s.connected = true;
                        });
                    }
                    protocol::TAG_FRAMES => {
                        if let Err(reason) = self.apply_chunk(&payload) {
                            let pos = self.store().repl_position();
                            self.note_resync(pos.generation, pos.durable_len, &reason);
                            return SessionEnd::NeedBootstrap;
                        }
                        self.refresh_local();
                    }
                    protocol::TAG_HEARTBEAT => {
                        let Ok(pos) = protocol::decode::<ReplPosition>(&payload) else {
                            return SessionEnd::Disconnected;
                        };
                        self.with_status(|s| {
                            s.heard_from_primary = true;
                            s.connected = true;
                            s.primary_generation = pos.generation;
                            s.primary_offset = pos.durable_len;
                            s.primary_frames = pos.durable_frames;
                        });
                    }
                    protocol::TAG_BOOTSTRAP => {
                        let Ok(header) = protocol::decode::<BootstrapHeader>(&payload) else {
                            return SessionEnd::Disconnected;
                        };
                        if self.install_snapshot(&mut reader, header).is_err() {
                            return SessionEnd::Disconnected;
                        }
                        *force = false;
                        continue 'handshake;
                    }
                    protocol::TAG_RESYNC => {
                        let reason = protocol::decode::<Resync>(&payload)
                            .map(|r| r.reason)
                            .unwrap_or_else(|_| "resync".into());
                        let pos = self.store().repl_position();
                        self.note_resync(pos.generation, pos.durable_len, &reason);
                        continue 'handshake;
                    }
                    _ => return SessionEnd::Disconnected,
                }
            }
        }
    }

    /// The follower's handshake offer: its durable position plus the
    /// CRC-32 of its entire durable WAL prefix (the primary verifies the
    /// prefix by content, not position — see the protocol module docs).
    fn make_hello(&self, force: bool) -> Hello {
        let pos = self.store().repl_position();
        let prefix_crc = prefix_crc(&self.db, pos.durable_len).unwrap_or(0);
        Hello {
            generation: pos.generation,
            offset: pos.durable_len,
            frames: pos.durable_frames,
            prefix_crc,
            force_bootstrap: force,
        }
    }

    /// Re-frames and applies every WAL frame in `chunk`, then fsyncs. Any
    /// damage (CRC, torn frame, undecodable payload, local WAL poisoning)
    /// is an error — grounds for re-seed.
    fn apply_chunk(&self, chunk: &[u8]) -> Result<(), String> {
        let store = self.store();
        let data: &[u8] = chunk;
        let mut cursor = WalCursor::over(data);
        loop {
            match cursor.next_frame() {
                Ok(Some(_)) => {
                    store.apply_replicated(cursor.payload()).map_err(|e| e.to_string())?;
                }
                Ok(None) => break,
                Err(e) => return Err(e.to_string()),
            }
        }
        if cursor.tail() != TailState::Clean {
            return Err(format!("chunk damaged in flight: {:?}", cursor.tail()));
        }
        store.sync_wal().map_err(|e| e.to_string())
    }

    /// Reads the raw snapshot body off the wire into a scratch file, then
    /// wipes the local WAL + snapshots, installs the shipped file, and
    /// reopens the store (recovery loads the snapshot and rewrites the
    /// leading marker byte-identically to the primary's).
    fn install_snapshot(
        &self,
        reader: &mut dyn Read,
        header: BootstrapHeader,
    ) -> Result<(), ReplError> {
        let body = protocol::read_raw(reader, header.len)
            .map_err(|e| ReplError::Io(format!("bootstrap body: {e}")))?;
        let tmp = PathBuf::from(format!("{}.bootstrap.tmp", self.db.display()));
        std::fs::write(&tmp, &body).map_err(|e| ReplError::Io(e.to_string()))?;

        let mut guard = self.store.write();
        let _ = std::fs::remove_file(&self.db);
        for snap in TraceStore::snapshot_files(&self.db) {
            let _ = std::fs::remove_file(snap);
        }
        let target = TraceStore::snapshot_file_for(&self.db, header.generation);
        std::fs::rename(&tmp, &target).map_err(|e| ReplError::Io(e.to_string()))?;
        let store = TraceStore::open(&self.db).map_err(|e| ReplError::Store(e.to_string()))?;
        let pos = store.repl_position();
        *guard = Arc::new(store);
        drop(guard);

        self.with_status(|s| s.bootstraps += 1);
        self.refresh_local();
        self.journal.record(JournalEvent::FollowerResync {
            generation: header.generation,
            offset: pos.durable_len,
            reason: "snapshot bootstrap".into(),
        });
        Ok(())
    }

    /// Wipes the local WAL and snapshots and reopens empty — the prelude
    /// to a from-zero replay of a marker-less primary log.
    fn reset_local(&self, reason: &str) -> Result<(), ReplError> {
        let mut guard = self.store.write();
        let _ = std::fs::remove_file(&self.db);
        for snap in TraceStore::snapshot_files(&self.db) {
            let _ = std::fs::remove_file(snap);
        }
        let store = TraceStore::open(&self.db).map_err(|e| ReplError::Store(e.to_string()))?;
        *guard = Arc::new(store);
        drop(guard);
        self.refresh_local();
        self.journal.record(JournalEvent::FollowerResync {
            generation: 0,
            offset: 0,
            reason: reason.into(),
        });
        Ok(())
    }

    /// Pulls the local durable position into the status (and sidecar).
    fn refresh_local(&self) {
        let pos = self.store().repl_position();
        self.with_status(|s| {
            s.generation = pos.generation;
            s.offset = pos.durable_len;
            s.frames = pos.durable_frames;
        });
    }

    /// Counts a resync and records the journal event.
    fn note_resync(&self, generation: u64, offset: u64, reason: &str) {
        self.with_status(|s| s.resyncs += 1);
        self.journal.record(JournalEvent::FollowerResync {
            generation,
            offset,
            reason: reason.into(),
        });
    }

    /// Mutates the status under its lock, recomputes lag, persists the
    /// sidecar. Lag is only meaningful once a heartbeat has been heard —
    /// before that (and again after a stall resets `heard_from_primary`)
    /// it is reported as the unknown sentinel `u64::MAX`, matching the
    /// staleness gate's treatment of bounded queries.
    fn with_status(&self, f: impl FnOnce(&mut ReplStatus)) {
        {
            let mut s = self.status.lock();
            f(&mut s);
            if s.heard_from_primary {
                s.lag_frames = s.primary_frames.saturating_sub(s.frames);
                s.lag_bytes = s.primary_offset.saturating_sub(s.offset);
            } else {
                s.lag_frames = u64::MAX;
                s.lag_bytes = u64::MAX;
            }
        }
        self.write_sidecar();
    }

    /// Atomically rewrites `<db>.repl.json` with the current status.
    fn write_sidecar(&self) {
        let status = self.status.lock().clone();
        let Ok(json) = serde_json::to_string(&status) else { return };
        let tmp = PathBuf::from(format!("{}.tmp", self.status_file.display()));
        if std::fs::write(&tmp, json.as_bytes()).is_ok() {
            let _ = std::fs::rename(&tmp, &self.status_file);
        }
    }

    /// Binds `listen` and serves replica queries ([`protocol::TAG_QUERY`])
    /// against the follower's store until the handle is dropped.
    pub fn serve_queries(self: &Arc<Self>, listen: &str) -> Result<ReplicaQueryServer, ReplError> {
        let listener =
            TcpListener::bind(listen).map_err(|e| ReplError::Io(format!("bind {listen}: {e}")))?;
        let addr = listener.local_addr().map_err(|e| ReplError::Io(e.to_string()))?;
        listener.set_nonblocking(true).map_err(|e| ReplError::Io(e.to_string()))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let me = Arc::clone(self);
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let me = Arc::clone(&me);
                        let flag = Arc::clone(&flag);
                        std::thread::spawn(move || handle_query_conn(&me, stream, &flag));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
        });
        Ok(ReplicaQueryServer { addr, shutdown, handle: Some(handle) })
    }
}

/// A running replica query listener; dropping it shuts it down.
pub struct ReplicaQueryServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ReplicaQueryServer {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ReplicaQueryServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn handle_query_conn(follower: &Follower, mut stream: TcpStream, shutdown: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        let (tag, payload) = match protocol::read_msg(&mut stream) {
            Ok(Some(msg)) => msg,
            Ok(None) => return,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        };
        if tag != protocol::TAG_QUERY {
            return;
        }
        let Ok(req) = protocol::decode::<QueryRequest>(&payload) else { return };
        let status = follower.status();
        if let Some(err) = staleness_check(&status, req.max_lag_frames) {
            let _ = protocol::write_json(&mut stream, protocol::TAG_QUERY_ERR, &err);
            continue;
        }
        let store = follower.store();
        match execute_query(&store, &req) {
            Ok(answers) => {
                let resp = QueryResponse {
                    answers,
                    lag_frames: status.lag_frames,
                    lag_bytes: status.lag_bytes,
                    generation: status.generation,
                    offset: status.offset,
                };
                if protocol::write_json(&mut stream, protocol::TAG_QUERY_OK, &resp).is_err() {
                    return;
                }
            }
            Err(message) => {
                let err = QueryError {
                    code: "query_failed".into(),
                    message,
                    lag_frames: None,
                    max_lag: None,
                };
                if protocol::write_json(&mut stream, protocol::TAG_QUERY_ERR, &err).is_err() {
                    return;
                }
            }
        }
    }
}

/// The staleness gate: a request bounded by `max_lag_frames` is refused
/// (typed `replica_stale`) when the replica's lag exceeds the bound — and
/// a replica that has never heard a heartbeat treats its lag as unknown,
/// i.e. unbounded, so a bounded request is always refused until primary
/// contact. Unbounded requests (`None`) are never refused.
pub(crate) fn staleness_check(
    status: &ReplStatus,
    max_lag_frames: Option<u64>,
) -> Option<QueryError> {
    let max = max_lag_frames?;
    let known = status.heard_from_primary;
    let lag = if known { status.lag_frames } else { u64::MAX };
    if lag <= max {
        return None;
    }
    let message = if known {
        format!("replica lags the primary by {lag} frames (bound: {max})")
    } else {
        format!("replica has not heard from the primary; lag unknown (bound: {max})")
    };
    Some(QueryError {
        code: "replica_stale".into(),
        message,
        lag_frames: Some(lag),
        max_lag: Some(max),
    })
}

/// Resolves the workflow spec for an `indexproj` query from the replica's
/// *replicated* registry (workflow registrations travel through the WAL,
/// so a caught-up replica plans against the same spec as the primary).
fn replica_workflow(store: &TraceStore, wf: &Option<String>) -> Result<Dataflow, String> {
    let name = match wf {
        Some(n) => ProcessorName::from(n.as_str()),
        None => {
            let names = store.workflow_names();
            match names.as_slice() {
                [only] => only.clone(),
                [] => return Err("no workflow registered on the replica".into()),
                many => {
                    return Err(format!(
                        "replica registers {} workflows; name one with wf",
                        many.len()
                    ))
                }
            }
        }
    };
    let json = store
        .workflow_json(&name)
        .ok_or_else(|| format!("workflow {name:?} is not registered on the replica"))?;
    let mut df: Dataflow = serde_json::from_str(&json).map_err(|e| e.to_string())?;
    df.reindex();
    prov_dataflow::validate(&df).map_err(|e| e.to_string())?;
    Ok(df)
}

/// Executes a replica query against `store`, rendering each answer with
/// the same `Display` the CLI uses — primary and replica output are
/// comparable byte for byte.
pub fn execute_query(store: &TraceStore, req: &QueryRequest) -> Result<Vec<String>, String> {
    let runs: Vec<RunId> = if req.all_runs {
        store.runs().iter().map(|i| i.id).collect()
    } else {
        vec![RunId(req.run)]
    };
    match parse_query(&req.query).map_err(|e| e.to_string())? {
        ParsedQuery::Lineage(query) => match req.algo.as_str() {
            "ni" => NaiveLineage::new()
                .run_multi(store, &runs, &query)
                .map(|v| v.iter().map(|a| a.to_string()).collect())
                .map_err(|e| e.to_string()),
            "indexproj" => {
                let df = replica_workflow(store, &req.wf)?;
                let ip = IndexProj::new(&df);
                let plan = ip.plan(&query).map_err(|e| e.to_string())?;
                plan.execute_multi(store, &runs)
                    .map(|v| v.iter().map(|a| a.to_string()).collect())
                    .map_err(|e| e.to_string())
            }
            other => Err(format!("unknown algo {other:?} (use ni or indexproj)")),
        },
        ParsedQuery::Impact(query) => {
            let ni = NaiveImpact::new();
            let mut out = Vec::new();
            for run in &runs {
                out.push(ni.run(store, *run, &query).map_err(|e| e.to_string())?.to_string());
            }
            Ok(out)
        }
    }
}

/// Connects to a replica query endpoint, runs one request, returns the
/// typed result. A `replica_stale` refusal surfaces as
/// [`ReplError::ReplicaStale`].
pub fn query_replica(addr: &str, req: &QueryRequest) -> Result<QueryResponse, ReplError> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| ReplError::Io(format!("connect {addr}: {e}")))?;
    let _ = stream.set_nodelay(true);
    protocol::write_json(&mut stream, protocol::TAG_QUERY, req)
        .map_err(|e| ReplError::Io(e.to_string()))?;
    let (tag, payload) = match protocol::read_msg(&mut stream) {
        Ok(Some(msg)) => msg,
        Ok(None) => return Err(ReplError::Io("replica closed the connection".into())),
        Err(e) => return Err(ReplError::Io(e.to_string())),
    };
    match tag {
        protocol::TAG_QUERY_OK => {
            protocol::decode(&payload).map_err(|e| ReplError::Protocol(e.to_string()))
        }
        protocol::TAG_QUERY_ERR => {
            let err: QueryError =
                protocol::decode(&payload).map_err(|e| ReplError::Protocol(e.to_string()))?;
            if err.code == "replica_stale" {
                Err(ReplError::ReplicaStale {
                    lag_frames: err.lag_frames.unwrap_or(u64::MAX),
                    max_lag: err.max_lag.unwrap_or(0),
                })
            } else {
                Err(ReplError::Remote { code: err.code, message: err.message })
            }
        }
        other => Err(ReplError::Protocol(format!("unexpected reply tag {other:#x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(heard: bool, lag: u64) -> ReplStatus {
        ReplStatus { heard_from_primary: heard, lag_frames: lag, ..ReplStatus::default() }
    }

    #[test]
    fn unbounded_queries_are_never_refused() {
        assert!(staleness_check(&status(false, 0), None).is_none());
        assert!(staleness_check(&status(true, 1_000_000), None).is_none());
    }

    #[test]
    fn bounded_queries_refuse_beyond_the_lag_bound() {
        assert!(staleness_check(&status(true, 3), Some(3)).is_none());
        let err = staleness_check(&status(true, 4), Some(3)).unwrap();
        assert_eq!(err.code, "replica_stale");
        assert_eq!(err.lag_frames, Some(4));
        assert_eq!(err.max_lag, Some(3));
    }

    #[test]
    fn unknown_lag_refuses_any_bounded_query() {
        // Never heard a heartbeat: even a generous bound is refused, and
        // the reported lag is the unknown sentinel.
        let err = staleness_check(&status(false, 0), Some(1_000_000)).unwrap();
        assert_eq!(err.code, "replica_stale");
        assert_eq!(err.lag_frames, Some(u64::MAX));
    }

    #[test]
    fn zero_lag_satisfies_a_zero_bound() {
        assert!(staleness_check(&status(true, 0), Some(0)).is_none());
    }

    #[test]
    fn a_stalled_primary_trips_the_heartbeat_window() {
        use prov_engine::VirtualClock;
        use std::sync::atomic::AtomicBool;

        // A "primary" that accepts connections and then goes silent —
        // never a STREAM_FROM, never a heartbeat.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let stop_hold = Arc::new(AtomicBool::new(false));
        let hold_flag = Arc::clone(&stop_hold);
        let hold = std::thread::spawn(move || {
            let mut held = Vec::new();
            while !hold_flag.load(Ordering::Relaxed) {
                if let Ok((s, _)) = listener.accept() {
                    held.push(s);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        });

        let db = std::env::temp_dir().join(format!("stalled_primary_{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&db);
        let follower = Follower::open(&db, Journal::disabled()).unwrap();
        let clock = Arc::new(VirtualClock::new());
        let config = FollowerConfig {
            idle_timeout_ms: 50,
            clock: clock.clone(),
            ..FollowerConfig::default()
        };
        let handle = follower.start(&addr, config);

        // Wait for the session to establish (hello written, reader idle).
        std::thread::sleep(Duration::from_millis(100));
        // Advance the injected clock past the heartbeat window: the next
        // poll tick must declare the primary stalled.
        clock.sleep_micros(60 * 1000);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let s = follower.status();
            if s.reconnects >= 1 {
                assert!(!s.heard_from_primary, "stall must reset heard_from_primary");
                assert_eq!(s.lag_frames, u64::MAX, "stalled lag is the unknown sentinel");
                break;
            }
            assert!(Instant::now() < deadline, "stall was never detected: {s:?}");
            std::thread::sleep(Duration::from_millis(5));
        }

        follower.stop();
        let _ = handle.join();
        stop_hold.store(true, Ordering::Relaxed);
        let _ = hold.join();
        let _ = std::fs::remove_file(&db);
        let _ = std::fs::remove_file(status_path(&db));
    }
}
