//! Cost of the iteration machinery itself: building the generalized cross
//! product (Def. 2) and reassembling nested outputs (Def. 3's `map`
//! structure), without any behaviour or trace cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use prov_dataflow::IterationStrategy;
use prov_engine::{assemble_nested, iteration_tuples};
use prov_model::Value;

fn flat_list(n: usize) -> Value {
    Value::List((0..n).map(|i| Value::str(&format!("x{i}"))).collect())
}

fn bench_cross_product(c: &mut Criterion) {
    let mut group = c.benchmark_group("cross_product");
    for n in [10usize, 50, 100] {
        let a = flat_list(n);
        let b = flat_list(n);
        group.bench_with_input(BenchmarkId::new("n_x_n", n), &n, |bench, _| {
            bench.iter(|| {
                iteration_tuples("P", &[a.clone(), b.clone()], &[1, 1], IterationStrategy::Cross)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_dot_product(c: &mut Criterion) {
    let mut group = c.benchmark_group("dot_product");
    for n in [100usize, 1000] {
        let a = flat_list(n);
        let b = flat_list(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                iteration_tuples("P", &[a.clone(), b.clone()], &[1, 1], IterationStrategy::Dot)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_assemble(c: &mut Criterion) {
    let mut group = c.benchmark_group("assemble_nested");
    for n in [10usize, 50] {
        let pairs: Vec<_> = (0..n as u32)
            .flat_map(|i| {
                (0..n as u32).map(move |j| {
                    (prov_model::Index::from_slice(&[i, j]), Value::int((i * 100 + j) as i64))
                })
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("matrix", n), &n, |bench, _| {
            bench.iter(|| assemble_nested(pairs.clone(), 2));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cross_product, bench_dot_product, bench_assemble);
criterion_main!(benches);
