//! Serve-path round-trips: end-to-end ingest throughput through the
//! daemon's wire protocol swept over concurrent writer counts (the
//! group-commit applier should make writers roughly additive until the
//! fsync path saturates), and query round-trip latency against a served
//! store for both algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use prov_obs::Obs;
use prov_serve::protocol::ServeQuery;
use prov_serve::{ProvServer, RemoteSink, ServeClient, ServeConfig};
use prov_store::SharedStore;
use prov_workgen::testbed;

fn tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("prov-serve-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}-{}.wal", std::process::id()));
    cleanup(&path);
    path
}

fn cleanup(path: &std::path::PathBuf) {
    let _ = std::fs::remove_file(path);
    if let (Some(dir), Some(name)) = (path.parent(), path.file_name().and_then(|n| n.to_str())) {
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                if entry.file_name().to_string_lossy().starts_with(&format!("{name}.")) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
    }
}

fn daemon(tag: &str) -> (ProvServer, String, std::path::PathBuf) {
    let path = tmp(tag);
    let store = SharedStore::open(&path).unwrap();
    let server =
        ProvServer::start(store, Obs::disabled(), ServeConfig::default(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    (server, addr, path)
}

/// One iteration = `writers` clients each streaming a full testbed run
/// (connect, register, batch, ack, finish) into one shared daemon.
fn bench_ingest_writers(c: &mut Criterion) {
    let df = testbed::generate(3);
    let wf_json = serde_json::to_string(&df).unwrap();
    let mut group = c.benchmark_group("serve_ingest");
    group.sample_size(10);
    for writers in [1usize, 2, 4, 8] {
        let (server, addr, path) = daemon(&format!("ingest-{writers}"));
        group.bench_with_input(BenchmarkId::new("writers", writers), &writers, |b, &w| {
            b.iter(|| {
                let handles: Vec<_> = (0..w)
                    .map(|_| {
                        let (addr, wf, df) = (addr.clone(), wf_json.clone(), df.clone());
                        std::thread::spawn(move || {
                            let sink = RemoteSink::connect(&addr, Some(wf)).unwrap();
                            testbed::run(&df, 3, &sink);
                            assert!(sink.error().is_none(), "{:?}", sink.error());
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            });
        });
        server.shutdown();
        cleanup(&path);
    }
    group.finish();
}

/// Query round-trip (request → daemon-side execution → rendered answers
/// back) against a daemon holding one served run.
fn bench_query_roundtrip(c: &mut Criterion) {
    let df = testbed::generate(3);
    let wf_json = serde_json::to_string(&df).unwrap();
    let (server, addr, path) = daemon("query");
    let sink = RemoteSink::connect(&addr, Some(wf_json)).unwrap();
    testbed::run(&df, 3, &sink);
    assert!(sink.error().is_none(), "{:?}", sink.error());
    drop(sink);

    let mut group = c.benchmark_group("serve_query");
    for algo in ["ni", "indexproj"] {
        let mut client = ServeClient::connect(&addr).unwrap();
        let req = ServeQuery {
            query: "lin(<2TO1_FINAL:Y[0,1]>, {LISTGEN_1})".into(),
            run: 0,
            all_runs: false,
            algo: algo.to_string(),
            wf: None,
            deadline_ms: None,
        };
        group.bench_with_input(BenchmarkId::new("roundtrip", algo), &algo, |b, _| {
            b.iter(|| client.query(&req).unwrap());
        });
    }
    group.finish();
    server.shutdown();
    cleanup(&path);
}

criterion_group!(benches, bench_ingest_writers, bench_query_roundtrip);
criterion_main!(benches);
