//! Algorithm 1 (`PROPAGATEDEPTHS`) cost vs graph size — the static
//! analysis behind Fig. 8's `t1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use prov_dataflow::{toposort, DepthInfo};
use prov_workgen::testbed;

fn bench_depth_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagate_depths");
    for l in [10usize, 50, 150] {
        let df = testbed::generate(l);
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, _| {
            b.iter(|| DepthInfo::compute(&df).unwrap());
        });
    }
    group.finish();
}

fn bench_toposort(c: &mut Criterion) {
    let mut group = c.benchmark_group("toposort");
    for l in [10usize, 150] {
        let df = testbed::generate(l);
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, _| {
            b.iter(|| toposort(&df).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_depth_propagation, bench_toposort);
criterion_main!(benches);
