//! Trace-store access paths (ablation #3): insert throughput, exact point
//! lookups, prefix scans, and overlap lookups on populated stores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use prov_engine::{PortBinding, TraceSink, XformEvent};
use prov_model::{Index, ProcessorName, RunId, Value};
use prov_store::TraceStore;

fn populated(n: usize) -> (TraceStore, RunId) {
    let store = TraceStore::in_memory();
    let run = store.begin_run(&"wf".into());
    for i in 0..n as u32 {
        store.record_xform(
            run,
            XformEvent {
                processor: ProcessorName::from("P"),
                invocation: i,
                inputs: vec![PortBinding::new("x", Index::single(i), Value::int(i as i64))],
                outputs: vec![PortBinding::new("y", Index::single(i), Value::int(i as i64))],
            },
        );
    }
    (store, run)
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("insert_1000_xforms", |b| {
        b.iter(|| populated(1000));
    });
}

fn bench_lookups(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup");
    for n in [1_000usize, 10_000, 100_000] {
        let (store, run) = populated(n);
        let p = ProcessorName::from("P");
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| store.xforms_producing(run, &p, "y", &Index::single((n / 2) as u32)));
        });
        group.bench_with_input(BenchmarkId::new("q_input_bindings", n), &n, |b, _| {
            b.iter(|| store.input_bindings(run, &p, "x", &Index::single((n / 2) as u32)));
        });
    }
    group.finish();
}

fn bench_prefix_scan(c: &mut Criterion) {
    // Rows nested two deep; scan a one-component prefix.
    let store = TraceStore::in_memory();
    let run = store.begin_run(&"wf".into());
    for i in 0..100u32 {
        for j in 0..100u32 {
            store.record_xform(
                run,
                XformEvent {
                    processor: ProcessorName::from("P"),
                    invocation: i * 100 + j,
                    inputs: vec![PortBinding::new(
                        "x",
                        Index::from_slice(&[i, j]),
                        Value::int(j as i64),
                    )],
                    outputs: vec![PortBinding::new(
                        "y",
                        Index::from_slice(&[i, j]),
                        Value::int(j as i64),
                    )],
                },
            );
        }
    }
    let p = ProcessorName::from("P");
    c.bench_function("prefix_scan_100_of_10000", |b| {
        b.iter(|| store.xforms_producing(run, &p, "y", &Index::single(42)));
    });
}

criterion_group!(benches, bench_insert, bench_lookups, bench_prefix_scan);
criterion_main!(benches);
