//! Ablation #4: per-element (fine) vs whole-value (coarse) xfer recording
//! — the trade between trace size/recording cost and lineage precision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use prov_engine::{Engine, TraceGranularity};
use prov_store::TraceStore;
use prov_workgen::testbed;

fn bench_recording(c: &mut Criterion) {
    let mut group = c.benchmark_group("record_run");
    group.sample_size(20);
    let df = testbed::generate(20);
    for (name, g) in [("fine", TraceGranularity::Fine), ("coarse", TraceGranularity::Coarse)] {
        group.bench_with_input(BenchmarkId::new(name, 25), &g, |b, &g| {
            b.iter(|| {
                let store = TraceStore::in_memory();
                let engine = Engine::new(testbed::registry()).with_granularity(g);
                engine
                    .execute(&df, vec![("ListSize".into(), prov_model::Value::int(25))], &store)
                    .unwrap();
                store.total_record_count()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recording);
criterion_main!(benches);
