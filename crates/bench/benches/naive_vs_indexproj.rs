//! The headline comparison (ablation #1, #2): NI vs INDEXPROJ (cold and
//! warm) on focused testbed queries, across chain lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use prov_core::{IndexProj, NaiveLineage, PlanCache};
use prov_store::TraceStore;
use prov_workgen::testbed;

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("focused_query");
    for l in [10usize, 50, 100] {
        let d = 10usize;
        let df = testbed::generate(l);
        let store = TraceStore::in_memory();
        let run = testbed::run(&df, d, &store).run_id;
        let query = testbed::focused_query(&[3, 4]);

        group.bench_with_input(BenchmarkId::new("naive", l), &l, |b, _| {
            let ni = NaiveLineage::new();
            b.iter(|| ni.run(&store, run, &query).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("indexproj_cold", l), &l, |b, _| {
            b.iter(|| IndexProj::new(&df).run(&store, run, &query).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("indexproj_warm", l), &l, |b, _| {
            let cache = PlanCache::new(IndexProj::new(&df));
            cache.run(&store, run, &query).unwrap();
            b.iter(|| cache.run(&store, run, &query).unwrap());
        });
    }
    group.finish();
}

fn bench_multirun(c: &mut Criterion) {
    let mut group = c.benchmark_group("multirun_query");
    let df = testbed::generate(30);
    let store = TraceStore::in_memory();
    let runs: Vec<_> = (0..5).map(|_| testbed::run(&df, 10, &store).run_id).collect();
    let query = testbed::focused_query(&[1, 2]);

    group.bench_function("naive_5_runs", |b| {
        let ni = NaiveLineage::new();
        b.iter(|| ni.run_multi(&store, &runs, &query).unwrap());
    });
    group.bench_function("indexproj_5_runs_shared_plan", |b| {
        let ip = IndexProj::new(&df);
        let plan = ip.plan(&query).unwrap();
        b.iter(|| plan.execute_multi(&store, &runs).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_multirun);
criterion_main!(benches);
