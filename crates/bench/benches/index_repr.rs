//! Ablation #5: the inline index representation. Real workflow indices
//! stay within the inline capacity (≤8 components); this bench quantifies
//! what the inline storage buys on the hot operations (clone, concat,
//! ordering) against deep (heap-spilled) indices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use prov_model::Index;

fn index_of_len(n: usize) -> Index {
    (0..n as u32).collect()
}

fn bench_clone(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_clone");
    for n in [2usize, 8, 9, 16] {
        let idx = index_of_len(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(idx.clone()));
        });
    }
    group.finish();
}

fn bench_concat(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_concat");
    for n in [2usize, 4, 8, 12] {
        let a = index_of_len(n);
        let b_idx = index_of_len(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| a.concat(std::hint::black_box(&b_idx)));
        });
    }
    group.finish();
}

fn bench_ordering(c: &mut Criterion) {
    // Sorting a batch of indices, as the B-tree does on insert.
    let mut group = c.benchmark_group("index_sort_1000");
    for n in [2usize, 8, 12] {
        let items: Vec<Index> = (0..1000u32)
            .map(|i| {
                let mut v: Vec<u32> = (0..n as u32).collect();
                v[n - 1] = i;
                Index::from(v)
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut v = items.clone();
                v.sort();
                v
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clone, bench_concat, bench_ordering);
criterion_main!(benches);
