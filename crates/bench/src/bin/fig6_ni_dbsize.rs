//! **Fig. 6** — NI lineage query response time as the trace database grows
//! (traces for 1..10 runs accumulated; the queried run is fixed).
//!
//! Paper: for `l = 75, d = 50`, a 10× increase in records (≈15k → ≈150k)
//! produced only a ≈20% increase in NI response time, because every access
//! path is indexed. The reproduction should show the same flat-ish curve.

use prov_bench::{best_of, cell, cell_ms, quick_mode, Table};
use prov_core::NaiveLineage;
use prov_store::TraceStore;
use prov_workgen::testbed;

fn main() {
    let (l, d, max_runs) = if quick_mode() { (20, 10, 4) } else { (75, 50, 10) };

    println!("Fig. 6: NI response time vs accumulated DB size (l={l}, d={d})\n");
    let df = testbed::generate(l);
    let store = TraceStore::in_memory();
    let first = testbed::run(&df, d, &store).run_id;
    let query = testbed::focused_query(&[d as u32 / 2, d as u32 / 2]);
    let ni = NaiveLineage::new();

    let mut table = Table::new(&["runs_stored", "total_records", "ni_time_ms", "records_read"]);
    for n in 1..=max_runs {
        if n > 1 {
            testbed::run(&df, d, &store);
        }
        let before = store.stats().snapshot();
        let t = best_of(5, || {
            ni.run(&store, first, &query).expect("query succeeds");
        });
        let work = store.stats().snapshot().since(before);
        table.row(vec![
            cell(n),
            cell(store.total_record_count()),
            cell_ms(t),
            cell(work.records_read / 5), // per query (5 reps measured)
        ]);
    }

    table.print();
    let path = table.write_csv("fig6_ni_dbsize").expect("write results");
    println!("\ncsv: {}", path.display());
    let metrics = prov_bench::snapshot_store_metrics(&store);
    let jpath =
        prov_bench::write_bench_json("fig6_ni_dbsize", &table, &metrics).expect("write json");
    println!("json: {}", jpath.display());
}
