//! **Fig. 10** — INDEXPROJ response time for *partially unfocused*
//! queries: the focus set `𝒫` grows to nearly 50% of the processors.
//!
//! Paper: INDEXPROJ's phase s2 is one trace lookup per focused port, so
//! response time grows roughly linearly in `|𝒫|`, approaching NI as the
//! query approaches fully unfocused.

use prov_bench::{best_of, cell, cell_ms, quick_mode, Table};
use prov_core::{IndexProj, NaiveLineage};
use prov_store::TraceStore;
use prov_workgen::testbed;

fn main() {
    let (l, d) = if quick_mode() { (10, 5) } else { (75, 25) };

    println!("Fig. 10: INDEXPROJ response vs focus-set size (l={l}, d={d})\n");
    let df = testbed::generate(l);
    let total_procs = df.node_count();
    let store = TraceStore::in_memory();
    let run = testbed::run(&df, d, &store).run_id;

    // NI reference (focus size does not change NI's traversal cost).
    let ni_query = testbed::focused_query(&[d as u32 / 2, d as u32 / 2]);
    let t_ni = best_of(5, || {
        NaiveLineage::new().run(&store, run, &ni_query).expect("ni");
    });
    println!("NI reference time: {:.3} ms\n", prov_bench::ms(t_ni));

    let mut table = Table::new(&["focus_size", "focus_fraction_pct", "ip_time_ms", "plan_steps"]);
    let steps_k: Vec<usize> = if quick_mode() {
        vec![0, 1, 2]
    } else {
        vec![0, 2, 5, 9, 14, 18] // k per chain → |𝒫| = 2 + 2k
    };
    for &k in &steps_k {
        let query = testbed::partially_unfocused_query(&df, &[d as u32 / 2, d as u32 / 2], k);
        let ip = IndexProj::new(&df);
        let plan = ip.plan(&query).unwrap();
        let t = best_of(5, || {
            ip.run(&store, run, &query).expect("ip");
        });
        table.row(vec![
            cell(query.focus.len()),
            cell(format!("{:.1}", 100.0 * query.focus.len() as f64 / total_procs as f64)),
            cell_ms(t),
            cell(plan.steps.len()),
        ]);
    }

    table.print();
    let path = table.write_csv("fig10_unfocused").expect("write results");
    println!("\ncsv: {}", path.display());
    let metrics = prov_bench::snapshot_store_metrics(&store);
    let jpath =
        prov_bench::write_bench_json("fig10_unfocused", &table, &metrics).expect("write json");
    println!("json: {}", jpath.display());
}
