//! **Fig. 4** — query response time for focused and unfocused queries
//! ranging over multiple runs (1..10) of the two real-life workflows:
//! **GK** (`genes2Kegg`, short paths) and **PD** (protein discovery, long
//! paths).
//!
//! INDEXPROJ shares the spec-graph traversal (s1) across all runs in the
//! scope; only the per-run trace lookups (s2) repeat. Paper: GK and
//! focused-PD scale well over runs; unfocused-PD has a ~10× larger s2 and
//! so grows fastest. The reproduction should show the same ordering:
//!
//! `GK-focused ≈ PD-focused < GK-unfocused < PD-unfocused`, all linear in
//! the number of runs with slope = its own t2.

use std::sync::Arc;

use prov_bench::{best_of, cell, cell_ms, quick_mode, Table};
use prov_core::{IndexProj, LineageQuery};
use prov_model::{Index, PortRef, ProcessorName, RunId};
use prov_store::TraceStore;
use prov_workgen::bio;

fn main() {
    let max_runs = if quick_mode() { 3 } else { 10 };
    let pd_pad = if quick_mode() { 5 } else { 20 };

    println!("Fig. 4: multi-run focused/unfocused query response (GK, PD)\n");

    // --- GK: 10 runs over different gene inputs -----------------------
    let gk = bio::genes2kegg_workflow();
    let db = Arc::new(bio::KeggDb::small(7));
    let gk_store = TraceStore::in_memory();
    let gk_runs: Vec<RunId> = (0..max_runs)
        .map(|i| {
            bio::run_genes2kegg(
                &gk,
                Arc::clone(&db),
                bio::sample_gene_lists(3, 2, 100 + i as u64),
                &gk_store,
            )
            .run_id
        })
        .collect();
    let gk_focused = LineageQuery::focused(
        PortRef::new("genes2Kegg", "paths_per_gene"),
        Index::single(0),
        [ProcessorName::from("genes2Kegg")],
    );
    let gk_unfocused = LineageQuery::unfocused(
        PortRef::new("genes2Kegg", "paths_per_gene"),
        Index::single(0),
        &gk,
    );

    // --- PD: 10 runs over different query terms -----------------------
    let pd = bio::protein_discovery_workflow(pd_pad);
    let corpus = Arc::new(bio::PubMedCorpus::new(11, 60));
    let pd_store = TraceStore::in_memory();
    let terms = ["p53", "brca1", "egfr", "tnf", "myc", "kras", "pten", "akt1", "vegfa", "tp63"];
    let pd_runs: Vec<RunId> = (0..max_runs)
        .map(|i| {
            bio::run_protein_discovery(
                &pd,
                Arc::clone(&corpus),
                vec![terms[i % terms.len()], "tumor"],
                &pd_store,
            )
            .run_id
        })
        .collect();
    let pd_focused = LineageQuery::focused(
        PortRef::new("protein_discovery", "protein_terms"),
        Index::single(0),
        [ProcessorName::from("protein_discovery")],
    );
    let pd_unfocused = LineageQuery::unfocused(
        PortRef::new("protein_discovery", "protein_terms"),
        Index::single(0),
        &pd,
    );

    let mut table = Table::new(&[
        "runs",
        "gk_focused_ms",
        "gk_unfocused_ms",
        "pd_focused_ms",
        "pd_unfocused_ms",
    ]);

    let gk_ip = IndexProj::new(&gk);
    let pd_ip = IndexProj::new(&pd);
    // Plans compiled ONCE (the shared s1); multi-run cost is s1 + n × s2.
    let plans = [
        gk_ip.plan(&gk_focused).unwrap(),
        gk_ip.plan(&gk_unfocused).unwrap(),
        pd_ip.plan(&pd_focused).unwrap(),
        pd_ip.plan(&pd_unfocused).unwrap(),
    ];

    for n in 1..=max_runs {
        let cells: Vec<String> = plans
            .iter()
            .enumerate()
            .map(|(i, plan)| {
                let (store, runs) =
                    if i < 2 { (&gk_store, &gk_runs[..n]) } else { (&pd_store, &pd_runs[..n]) };
                cell_ms(best_of(5, || {
                    plan.execute_multi(store, runs).expect("query");
                }))
            })
            .collect();
        let mut row = vec![cell(n)];
        row.extend(cells);
        table.row(row);
    }

    table.print();
    println!(
        "\nplan sizes (s2 lookups/run): gk_focused={} gk_unfocused={} pd_focused={} pd_unfocused={}",
        plans[0].steps.len(),
        plans[1].steps.len(),
        plans[2].steps.len(),
        plans[3].steps.len(),
    );
    let path = table.write_csv("fig4_multirun").expect("write results");
    println!("csv: {}", path.display());
}
