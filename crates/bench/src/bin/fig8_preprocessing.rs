//! **Fig. 8** — pre-processing time `t1` (phase s1) as a function of the
//! workflow graph size, for `l` up to 200.
//!
//! `t1` covers the work done once per workflow/query shape before any
//! trace access: Algorithm 1 (`PROPAGATEDEPTHS`) plus the INDEXPROJ
//! traversal that compiles the plan. Paper: below one second for graphs of
//! up to 100 nodes; grows with graph size only.

use prov_bench::{best_of, cell, cell_ms, quick_mode, Table};
use prov_core::IndexProj;
use prov_dataflow::DepthInfo;
use prov_workgen::testbed;

fn main() {
    let ls: Vec<usize> =
        if quick_mode() { vec![10, 25] } else { vec![10, 28, 50, 75, 100, 150, 200] };

    println!("Fig. 8: pre-processing time t1 vs chain length l\n");
    let mut table =
        Table::new(&["l", "graph_nodes", "depth_prop_ms", "plan_ms", "t1_total_ms", "plan_steps"]);

    for &l in &ls {
        let df = testbed::generate(l);
        let query = testbed::focused_query(&[0, 0]);

        let t_depths = best_of(5, || {
            DepthInfo::compute(&df).expect("valid workflow");
        });
        // Fresh IndexProj per rep so the depth memo does not hide the cost.
        let t_plan = best_of(5, || {
            let ip = IndexProj::new(&df);
            ip.plan(&query).expect("plan succeeds");
        });
        let steps = IndexProj::new(&df).plan(&query).unwrap().steps.len();

        table.row(vec![
            cell(l),
            cell(df.node_count()),
            cell_ms(t_depths),
            cell_ms(t_plan),
            cell_ms(t_depths + t_plan),
            cell(steps),
        ]);
    }

    table.print();
    let path = table.write_csv("fig8_preprocessing").expect("write results");
    println!("\ncsv: {}", path.display());
    // Pure pre-processing: no trace store is touched, so the embedded
    // metrics block is empty — kept for a uniform BENCH_*.json shape.
    let metrics = prov_obs::MetricsSnapshot::default();
    let jpath =
        prov_bench::write_bench_json("fig8_preprocessing", &table, &metrics).expect("write json");
    println!("json: {}", jpath.display());
}
