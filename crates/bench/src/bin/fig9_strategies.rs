//! **Fig. 9** — focused lineage query response time across strategies as a
//! function of `l`, for `d = 10` and `d = 150`.
//!
//! Strategies:
//!
//! * **NI** — the naïve provenance-graph traversal;
//! * **INDEXPROJ (cold)** — spec-graph planning + trace lookups;
//! * **INDEXPROJ (warm)** — executing a cached plan (the third strategy:
//!   the traversal is shared across queries on the same workflow).
//!
//! Paper: NI grows with `l`; INDEXPROJ is "constantly low" (t2 reduces to
//! one indexed lookup for the focused query), and largely independent of
//! `d`. The query is `lin(⟨2TO1_FINAL:Y[p]⟩, {LISTGEN_1})`.

use prov_bench::{best_of, cell, cell_ms, quick_mode, Table};
use prov_core::{IndexProj, NaiveLineage, PlanCache};
use prov_store::TraceStore;
use prov_workgen::testbed;

fn main() {
    let (ls, ds): (Vec<usize>, Vec<usize>) = if quick_mode() {
        (vec![10, 20], vec![5])
    } else {
        (vec![10, 28, 50, 75, 100, 150], vec![10, 150])
    };

    println!("Fig. 9: response time by strategy vs l (focused query)\n");
    let mut table = Table::new(&[
        "d",
        "l",
        "ni_ms",
        "indexproj_cold_ms",
        "indexproj_warm_ms",
        "ni_records",
        "ip_records",
    ]);

    let mut metrics = prov_obs::MetricsSnapshot::default();
    for &d in &ds {
        for &l in &ls {
            let df = testbed::generate(l);
            let store = TraceStore::in_memory();
            let run = testbed::run(&df, d, &store).run_id;
            let query = testbed::focused_query(&[d as u32 / 2, d as u32 / 2]);

            let ni = NaiveLineage::new();
            let before = store.stats().snapshot();
            let t_ni = best_of(5, || {
                ni.run(&store, run, &query).expect("ni query");
            });
            let ni_work = store.stats().snapshot().since(before);

            let t_cold = best_of(5, || {
                let ip = IndexProj::new(&df);
                ip.run(&store, run, &query).expect("ip query");
            });

            let cache = PlanCache::new(IndexProj::new(&df));
            cache.run(&store, run, &query).expect("warm-up");
            let before = store.stats().snapshot();
            let t_warm = best_of(5, || {
                cache.run(&store, run, &query).expect("warm query");
            });
            let ip_work = store.stats().snapshot().since(before);

            table.row(vec![
                cell(d),
                cell(l),
                cell_ms(t_ni),
                cell_ms(t_cold),
                cell_ms(t_warm),
                cell(ni_work.records_read / 5),
                cell(ip_work.records_read / 5),
            ]);
            // The embedded snapshot reflects the largest (last) grid cell.
            metrics = prov_bench::snapshot_store_metrics(&store);
        }
    }

    table.print();
    let path = table.write_csv("fig9_strategies").expect("write results");
    println!("\ncsv: {}", path.display());
    let jpath =
        prov_bench::write_bench_json("fig9_strategies", &table, &metrics).expect("write json");
    println!("json: {}", jpath.display());
}
