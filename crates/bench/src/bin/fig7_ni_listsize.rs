//! **Fig. 7** — NI lineage query response times for varying input list
//! size `d`, at three chain lengths `l ∈ {28, 75, 150}`.
//!
//! Paper: response times grow only modestly with `d` (index sizes grow,
//! query complexity does not), while `l` dominates. The reproduction
//! should show near-flat lines per `l`, clearly ordered by `l`.

use prov_bench::{best_of, cell, cell_ms, quick_mode, Table};
use prov_core::NaiveLineage;
use prov_store::TraceStore;
use prov_workgen::testbed;

fn main() {
    let (ls, ds): (Vec<usize>, Vec<usize>) = if quick_mode() {
        (vec![10, 20], vec![5, 10])
    } else {
        (vec![28, 75, 150], testbed::PAPER_D.to_vec())
    };

    println!("Fig. 7: NI response time vs input list size d\n");
    let mut table = Table::new(&["l", "d", "trace_records", "ni_time_ms", "records_read"]);
    let ni = NaiveLineage::new();

    let mut metrics = prov_obs::MetricsSnapshot::default();
    for &l in &ls {
        let df = testbed::generate(l);
        for &d in &ds {
            let store = TraceStore::in_memory();
            let run = testbed::run(&df, d, &store).run_id;
            let query = testbed::focused_query(&[d as u32 / 2, d as u32 / 2]);
            let before = store.stats().snapshot();
            let t = best_of(5, || {
                ni.run(&store, run, &query).expect("query succeeds");
            });
            let work = store.stats().snapshot().since(before);
            table.row(vec![
                cell(l),
                cell(d),
                cell(store.trace_record_count(run)),
                cell_ms(t),
                cell(work.records_read / 5),
            ]);
            // The embedded snapshot reflects the largest (last) grid cell.
            metrics = prov_bench::snapshot_store_metrics(&store);
        }
    }

    table.print();
    let path = table.write_csv("fig7_ni_listsize").expect("write results");
    println!("\ncsv: {}", path.display());
    let jpath =
        prov_bench::write_bench_json("fig7_ni_listsize", &table, &metrics).expect("write json");
    println!("json: {}", jpath.display());
}
