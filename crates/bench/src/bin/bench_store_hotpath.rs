//! **Store hot path** — before/after measurement of the trace-store
//! overhaul: symbol interning + packed index keys, batched ingest with WAL
//! group-commit, and parallel plan execution.
//!
//! The *before* side is an in-binary replica of the seed store's layout —
//! `BTreeMap` secondary indexes keyed by `(run, ProcessorName, Arc<str>,
//! Index)` string tuples, one lock acquisition and one CRC-framed,
//! flushed WAL record **per event**, and a fresh `Arc::from(port)` +
//! `Index` clone allocated per probe — exercised on exactly the same
//! Fig. 9 testbed event stream as the real (new) [`TraceStore`]. The
//! *after* side is the live store: interned symbols, packed `u128` index
//! keys, per-invocation `record_batch` ingest with one WAL frame and one
//! flush per batch, and span-served run scans.
//!
//! Output: a table on stdout plus `BENCH_store_hotpath.json` at the
//! workspace root with throughputs, latencies and speedup ratios.
//! `--quick` shrinks the workload for CI smoke runs.

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use serde::Serialize;

use prov_bench::{best_of, cell, cell_ms, ms, quick_mode, Table};
use prov_core::{IndexProj, NaiveLineage, PlanCache};
use prov_engine::{TraceEvent, TraceSink, XferEvent, XformEvent};
use prov_model::{Index, ProcessorName, RunId, Value, ValueId};
use prov_store::{LogRecord, PortDirection, TraceStore, XferRecord, XformPortRecord, XformRecord};
use prov_workgen::testbed;

/// A sink that captures the engine's natural ingest batches (one per
/// invocation / scope-output flush), so both stores replay the identical
/// stream with identical batch boundaries.
#[derive(Default)]
struct BatchCapture {
    next: Mutex<u64>,
    batches: Mutex<Vec<Vec<TraceEvent>>>,
}

impl TraceSink for BatchCapture {
    fn begin_run(&self, _workflow: &ProcessorName) -> RunId {
        let mut next = self.next.lock().expect("lock");
        let id = RunId(*next);
        *next += 1;
        id
    }
    fn record_xform(&self, _run: RunId, event: XformEvent) {
        self.batches.lock().expect("lock").push(vec![TraceEvent::Xform(event)]);
    }
    fn record_xfer(&self, _run: RunId, event: XferEvent) {
        self.batches.lock().expect("lock").push(vec![TraceEvent::Xfer(event)]);
    }
    fn record_batch(&self, _run: RunId, events: Vec<TraceEvent>) {
        self.batches.lock().expect("lock").push(events);
    }
    fn finish_run(&self, _run: RunId) {}
}

/// The seed store's composite key: string-tuple ordered, one heap `Index`
/// and one `Arc<str>` materialised per probe.
type LegacyKey = (RunId, ProcessorName, Arc<str>, Index);

#[derive(Clone, Copy, PartialEq)]
enum LegacyRowRef {
    Xform(u64),
    Xfer(u64),
}

#[derive(Default)]
struct LegacyValues {
    by_value: HashMap<Value, ValueId>,
    by_id: Vec<Value>,
}

impl LegacyValues {
    fn intern(&mut self, value: &Value) -> ValueId {
        if let Some(&id) = self.by_value.get(value) {
            return id;
        }
        let id = ValueId(self.by_id.len() as u64);
        self.by_id.push(value.clone());
        self.by_value.insert(value.clone(), id);
        id
    }
}

#[derive(Default)]
struct LegacyInner {
    values: LegacyValues,
    xforms: Vec<XformRecord>,
    xfers: Vec<XferRecord>,
    xform_in: BTreeMap<LegacyKey, Vec<u64>>,
    xform_out: BTreeMap<LegacyKey, Vec<u64>>,
    xfer_dst: BTreeMap<LegacyKey, Vec<u64>>,
    xfer_src: BTreeMap<LegacyKey, Vec<u64>>,
    by_value: HashMap<ValueId, Vec<LegacyRowRef>>,
    counts: HashMap<RunId, (u64, u64)>,
}

impl LegacyInner {
    fn index_value(&mut self, value: ValueId, row: LegacyRowRef) {
        let rows = self.by_value.entry(value).or_default();
        if rows.last() != Some(&row) {
            rows.push(row);
        }
    }

    fn insert_xform(&mut self, run: RunId, event: &XformEvent) {
        let id = self.xforms.len() as u64;
        let mut ports = Vec::with_capacity(event.inputs.len() + event.outputs.len());
        for b in &event.inputs {
            let value = self.values.intern(&b.value);
            self.index_value(value, LegacyRowRef::Xform(id));
            ports.push(XformPortRecord {
                direction: PortDirection::In,
                port: b.port.clone(),
                index: b.index.clone(),
                value,
            });
            let key = (run, event.processor.clone(), b.port.clone(), b.index.clone());
            self.xform_in.entry(key).or_default().push(id);
        }
        for b in &event.outputs {
            let value = self.values.intern(&b.value);
            self.index_value(value, LegacyRowRef::Xform(id));
            ports.push(XformPortRecord {
                direction: PortDirection::Out,
                port: b.port.clone(),
                index: b.index.clone(),
                value,
            });
            let key = (run, event.processor.clone(), b.port.clone(), b.index.clone());
            self.xform_out.entry(key).or_default().push(id);
        }
        self.xforms.push(XformRecord {
            id,
            run,
            processor: event.processor.clone(),
            invocation: event.invocation,
            ports,
        });
        self.counts.entry(run).or_default().0 += 1;
    }

    fn insert_xfer(&mut self, run: RunId, event: &XferEvent) {
        let id = self.xfers.len() as u64;
        let value = self.values.intern(&event.value);
        self.index_value(value, LegacyRowRef::Xfer(id));
        let dst =
            (run, event.dst.processor.clone(), event.dst.port.clone(), event.dst_index.clone());
        self.xfer_dst.entry(dst).or_default().push(id);
        let src =
            (run, event.src.processor.clone(), event.src.port.clone(), event.src_index.clone());
        self.xfer_src.entry(src).or_default().push(id);
        self.xfers.push(XferRecord {
            id,
            run,
            src_processor: event.src.processor.clone(),
            src_port: event.src.port.clone(),
            src_index: event.src_index.clone(),
            dst_processor: event.dst.processor.clone(),
            dst_port: event.dst.port.clone(),
            dst_index: event.dst_index.clone(),
            value,
        });
        self.counts.entry(run).or_default().1 += 1;
    }
}

fn dedup_ids(mut ids: Vec<u64>) -> Vec<u64> {
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// The seed's byte-at-a-time CRC-32 table, frozen here so later
/// optimisation of the live `crc32` cannot leak into the baseline.
const LEGACY_CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

fn legacy_crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ LEGACY_CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// The seed's WAL writer, frozen: one tree-model JSON serialisation, one
/// byte-at-a-time CRC and one `len`/`crc` LE frame per record, buffered
/// (no flush per append) exactly as the seed `WalWriter` was.
struct LegacyWal {
    out: std::io::BufWriter<std::fs::File>,
}

impl LegacyWal {
    fn open(path: &std::path::Path) -> Self {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("open legacy wal");
        LegacyWal { out: std::io::BufWriter::new(file) }
    }

    fn append(&mut self, record: &LogRecord) {
        use std::io::Write;
        let payload = serde_json::to_vec(record).expect("encode legacy record");
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&legacy_crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.out.write_all(&frame).expect("write legacy frame");
    }
}

/// Replica of the pre-overhaul store: per-event locking, string-keyed
/// B-trees with a fresh `Arc<str>` + `Index` allocated per probe, and
/// (when durable) one framed-and-flushed WAL record per event — the
/// baseline the overhaul is measured against. Ingest and probe structure
/// mirror the seed `TraceStore` line for line (value interning, value
/// index, overlap probes, access counters); only the layout differs.
struct LegacyStore {
    inner: Mutex<LegacyInner>,
    wal: Option<Mutex<LegacyWal>>,
    lookups: AtomicU64,
    records: AtomicU64,
}

impl LegacyStore {
    fn in_memory() -> Self {
        LegacyStore {
            inner: Mutex::new(LegacyInner::default()),
            wal: None,
            lookups: AtomicU64::new(0),
            records: AtomicU64::new(0),
        }
    }

    fn durable(path: &std::path::Path) -> Self {
        let _ = std::fs::remove_file(path);
        LegacyStore { wal: Some(Mutex::new(LegacyWal::open(path))), ..LegacyStore::in_memory() }
    }

    fn record(&self, run: RunId, event: &TraceEvent) {
        if let Some(w) = &self.wal {
            let rec = match event {
                TraceEvent::Xform(e) => LogRecord::Xform { run, event: e.clone() },
                TraceEvent::Xfer(e) => LogRecord::Xfer { run, event: e.clone() },
            };
            w.lock().expect("lock").append(&rec);
        }
        let mut inner = self.inner.lock().expect("lock");
        match event {
            TraceEvent::Xform(e) => inner.insert_xform(run, e),
            TraceEvent::Xfer(e) => inner.insert_xfer(run, e),
        }
    }

    /// The seed's `get_exact`: a fresh `Arc<str>` and `Index` clone per
    /// call, then string-tuple B-tree comparisons.
    fn get_exact(
        &self,
        inner: &LegacyInner,
        run: RunId,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Vec<u64> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let key: LegacyKey = (run, processor.clone(), Arc::from(port), index.clone());
        let rows = inner.xform_out.get(&key).cloned().unwrap_or_default();
        self.records.fetch_add(rows.len() as u64, Ordering::Relaxed);
        rows
    }

    /// The seed's `scan_prefix`: one B-tree descent plus a bounded walk.
    fn scan_prefix(
        &self,
        inner: &LegacyInner,
        run: RunId,
        processor: &ProcessorName,
        port: &str,
        prefix: &Index,
    ) -> Vec<u64> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let port: Arc<str> = Arc::from(port);
        let start: LegacyKey = (run, processor.clone(), port.clone(), prefix.clone());
        let mut out = Vec::new();
        for ((r, p, q, idx), rows) in
            inner.xform_out.range((Bound::Included(start), Bound::Unbounded))
        {
            if *r != run || p != processor || *q != port || !prefix.is_prefix_of(idx) {
                break;
            }
            out.extend_from_slice(rows);
        }
        self.records.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// The seed's `get_overlapping`: ancestors (one exact get per index
    /// prefix) plus strict descendants.
    fn get_overlapping(
        &self,
        inner: &LegacyInner,
        run: RunId,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Vec<u64> {
        let mut out = Vec::new();
        for k in 0..=index.len() {
            out.extend(self.get_exact(inner, run, processor, port, &index.prefix(k)));
        }
        let descendants = self.scan_prefix(inner, run, processor, port, index);
        let exact = self.get_exact(inner, run, processor, port, index);
        out.extend(descendants.into_iter().filter(|r| !exact.contains(r)));
        out
    }

    /// The seed's `xforms_producing`: overlap probe, id dedup, then full
    /// record materialisation.
    fn xforms_producing(
        &self,
        run: RunId,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Vec<XformRecord> {
        let inner = self.inner.lock().expect("lock");
        let ids = self.get_overlapping(&inner, run, processor, port, index);
        dedup_ids(ids).into_iter().map(|id| inner.xforms[id as usize].clone()).collect()
    }
}

fn events_per_sec(events: usize, d: Duration) -> f64 {
    events as f64 / d.as_secs_f64().max(1e-12)
}

#[derive(Serialize)]
struct IngestReport {
    events: usize,
    batches: usize,
    legacy_mem_ms: f64,
    new_mem_ms: f64,
    mem_speedup: f64,
    legacy_wal_ms: f64,
    new_wal_ms: f64,
    wal_speedup: f64,
    legacy_wal_events_per_s: f64,
    new_wal_events_per_s: f64,
}

#[derive(Serialize)]
struct LookupReport {
    probes: usize,
    legacy_point_us: f64,
    new_point_us: f64,
    point_speedup: f64,
    scans: usize,
    legacy_scan_us: f64,
    new_scan_us: f64,
    scan_speedup: f64,
}

/// Cost of leaving the event journal on. The gated pair is the point
/// probes with an enabled journal attached to the store vs without —
/// attribution is per plan step in the query layer, never per probe, so
/// the ratio must stay ~1. The raw ring-write and disabled-branch costs
/// quantify what one event actually costs when the query layer does
/// record it.
#[derive(Serialize)]
struct JournalReport {
    probes: usize,
    off_point_us: f64,
    on_point_us: f64,
    /// on/off — CI gates this at ≤ 1.05 in quick mode.
    overhead_ratio: f64,
    /// One enabled ring write, steady state (ring saturated).
    ring_write_ns: f64,
    /// One `record()` on a disabled handle: the single-branch claim.
    disabled_branch_ns: f64,
    events_recorded: u64,
}

#[derive(Serialize)]
struct QueryReport {
    ni_ms: f64,
    indexproj_cold_ms: f64,
    indexproj_warm_ms: f64,
    plan_cache_hits: u64,
    plan_cache_misses: u64,
}

/// One cell of the multi-run scaling matrix: the shared plan executed
/// over `runs` runs with the query worker pool pinned to `threads`.
#[derive(Serialize)]
struct ScalePoint {
    runs: usize,
    threads: usize,
    parallel_ms: f64,
    /// Relative to the same workload on a single worker (fully inline).
    speedup: f64,
}

#[derive(Serialize)]
struct MultiRunReport {
    runs: usize,
    sequential_ms: f64,
    parallel_ms: f64,
    speedup: f64,
    scaling: Vec<ScalePoint>,
}

#[derive(Serialize)]
struct ReportMetrics {
    /// Read-path store counters (index lookups, records read, rows
    /// scanned) accumulated across the probe/scan/query sections, plus
    /// the size gauges of the populated store.
    query_store: prov_obs::MetricsSnapshot,
    /// WAL work accounting (frames, bytes, group commits, fsyncs) for one
    /// untimed durable ingest of the full event stream.
    durable_ingest: prov_obs::MetricsSnapshot,
}

#[derive(Serialize)]
struct Report {
    quick: bool,
    l: usize,
    d: usize,
    reps: usize,
    ingest: IngestReport,
    lookups: LookupReport,
    journal: JournalReport,
    fig9_query: QueryReport,
    multi_run: MultiRunReport,
    metrics: ReportMetrics,
}

fn workspace_root() -> PathBuf {
    std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn main() {
    let quick = quick_mode();
    let (l, d, n_runs, reps) = if quick { (10, 5, 4, 2) } else { (50, 50, 8, 5) };

    println!("store hot path: legacy layout vs overhauled TraceStore (l={l}, d={d})\n");

    // ---- Capture the canonical event stream once. --------------------
    let df = testbed::generate(l);
    let capture = BatchCapture::default();
    testbed::run(&df, d, &capture);
    let batches = capture.batches.into_inner().expect("lock");
    let events: usize = batches.iter().map(Vec::len).sum();

    let tmp = std::env::temp_dir().join(format!("prov-hotpath-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create tmp dir");

    // The engine hands the store owned batches; pre-clone one stream per
    // rep so the timed region moves them rather than deep-copying values.
    let mut pool: Vec<Vec<Vec<TraceEvent>>> = (0..reps).map(|_| batches.clone()).collect();

    // ---- Ingest: in-memory. ------------------------------------------
    let t_legacy_mem = best_of(reps, || {
        let store = LegacyStore::in_memory();
        for batch in &batches {
            for e in batch {
                store.record(RunId(0), e);
            }
        }
    });
    let t_new_mem = best_of(reps, || {
        let stream = pool.pop().expect("pool");
        let store = TraceStore::in_memory();
        let run = store.begin_run(&df.name);
        for batch in stream {
            store.record_batch(run, batch);
        }
    });

    // ---- Ingest: durable (WAL per event vs group-commit per batch). --
    let mut pool: Vec<Vec<Vec<TraceEvent>>> = (0..reps).map(|_| batches.clone()).collect();
    let legacy_wal = tmp.join("legacy.wal");
    let new_wal = tmp.join("new.wal");
    let t_legacy_dur = best_of(reps, || {
        let store = LegacyStore::durable(&legacy_wal);
        for batch in &batches {
            for e in batch {
                store.record(RunId(0), e);
            }
        }
    });
    let t_new_dur = best_of(reps, || {
        let stream = pool.pop().expect("pool");
        let _ = std::fs::remove_file(&new_wal);
        let store = TraceStore::open(&new_wal).expect("open store");
        let run = store.begin_run(&df.name);
        for batch in stream {
            store.record_batch(run, batch);
        }
    });

    // ---- Populate both stores once for the read-path comparison. -----
    let legacy = LegacyStore::in_memory();
    for batch in &batches {
        for e in batch {
            legacy.record(RunId(0), e);
        }
    }
    let store = TraceStore::in_memory();
    let run = store.begin_run(&df.name);
    for batch in &batches {
        store.record_batch(run, batch.clone());
    }

    // Point lookups: every chain step's per-element output, plus the join.
    let mut probes: Vec<(ProcessorName, &str, Index)> = Vec::new();
    for chain in ["A", "B"] {
        for i in 1..=l {
            let p = ProcessorName::from(format!("CHAIN_{chain}_{i}"));
            for j in 0..d {
                probes.push((p.clone(), "y", Index::single(j as u32)));
            }
        }
    }
    let join = ProcessorName::from("2TO1_FINAL");
    for a in 0..d {
        probes.push((join.clone(), "Y", Index::from_slice(&[a as u32, (d - 1 - a) as u32])));
    }

    let t_legacy_point = best_of(reps, || {
        for (p, x, idx) in &probes {
            let got = legacy.xforms_producing(RunId(0), p, x, idx);
            assert!(!got.is_empty(), "legacy probe missed");
        }
    });
    let t_new_point = best_of(reps, || {
        for (p, x, idx) in &probes {
            let got = store.xforms_producing(run, p, x, idx);
            assert!(!got.is_empty(), "new probe missed");
        }
    });

    // Prefix scans: each join row-prefix [a] covers d product cells, so
    // both sides walk and materialise d rows per probe.
    let scans: Vec<Index> = (0..d).map(|a| Index::single(a as u32)).collect();
    let t_legacy_scan = best_of(reps, || {
        for prefix in &scans {
            let got = legacy.xforms_producing(RunId(0), &join, "Y", prefix);
            assert_eq!(got.len(), d, "legacy scan size");
        }
    });
    let t_new_scan = best_of(reps, || {
        for prefix in &scans {
            let got = store.xforms_producing(run, &join, "Y", prefix);
            assert_eq!(got.len(), d, "new scan size");
        }
    });

    // ---- Journal overhead sweep. The probe hot path must not pay for
    // the always-on journal: attribution happens per plan *step* in the
    // query layer, never per probe, so the same point probes against a
    // store with an enabled journal attached must cost what they cost
    // without one (CI gates the ratio at ≤ 1.05 in quick mode — it
    // catches anyone journaling inside the probe path). The raw cost of
    // one ring write and of the disabled handle's single branch are
    // measured alongside for DESIGN.md's overhead table. ----
    let journal_reps = reps.max(3);
    let t_journal_off = best_of(journal_reps, || {
        for (p, x, idx) in &probes {
            let got = store.xforms_producing(run, p, x, idx);
            assert!(!got.is_empty(), "journal-off probe missed");
        }
    });
    let journal_on = prov_obs::Journal::new(1 << 16);
    store.attach_journal(&journal_on);
    let t_journal_on = best_of(journal_reps, || {
        for (p, x, idx) in &probes {
            let got = store.xforms_producing(run, p, x, idx);
            assert!(!got.is_empty(), "journal-on probe missed");
        }
    });

    // Raw per-event costs: an enabled ring write (steady state, ring
    // saturated so overwrites hit the dropped counter too) and the
    // disabled handle's branch. `black_box` keeps the dead-event loop
    // from being optimised away.
    let ring_events = 10_000usize;
    let plan_step = |step: u32| prov_obs::JournalEvent::PlanStep {
        trace: prov_obs::TraceId(1),
        run: 0,
        step,
        index_lookups: 1,
        records_read: 1,
        rows_scanned: 0,
        rows: 1,
        dur_ns: 0,
    };
    let t_ring_write = best_of(journal_reps, || {
        for i in 0..ring_events {
            std::hint::black_box(&journal_on).record(plan_step(i as u32));
        }
    });
    let journal_disabled = prov_obs::Journal::disabled();
    let t_disabled_branch = best_of(journal_reps, || {
        for i in 0..ring_events {
            std::hint::black_box(&journal_disabled).record(plan_step(i as u32));
        }
    });
    let journal_events_recorded = journal_on.drain().len() as u64 + journal_on.dropped();

    // ---- Fig. 9 canonical query on the new store. --------------------
    let query = testbed::focused_query(&[d as u32 / 2, d as u32 / 2]);
    let ni = NaiveLineage::new();
    let t_ni = best_of(reps, || {
        ni.run(&store, run, &query).expect("ni query");
    });
    let t_cold = best_of(reps, || {
        IndexProj::new(&df).run(&store, run, &query).expect("cold query");
    });
    let cache = PlanCache::new(IndexProj::new(&df));
    cache.run(&store, run, &query).expect("warm-up");
    let t_warm = best_of(reps, || {
        cache.run(&store, run, &query).expect("warm query");
    });
    let cache_stats = cache.stats();
    let (cache_hits, cache_misses) = (cache_stats.hits, cache_stats.misses);

    // ---- Multi-run: shared plan, sequential vs fanned-out (§3.4). ----
    // The unfocused query gives the plan one step per spec-graph port, so
    // each run carries enough lookups for fan-out to amortise its threads.
    let multi_store = TraceStore::in_memory();
    let runs: Vec<RunId> = (0..n_runs).map(|_| testbed::run(&df, d, &multi_store).run_id).collect();
    let multi_query = testbed::unfocused_query(&df, &[d as u32 / 2, d as u32 / 2]);
    let plan = IndexProj::new(&df).plan(&multi_query).expect("plan");
    let t_seq = best_of(reps, || {
        for &r in &runs {
            plan.execute(&multi_store, r).expect("seq execute");
        }
    });
    let t_par = best_of(reps, || {
        plan.execute_multi(&multi_store, &runs).expect("par execute");
    });

    // ---- Multi-run scaling matrix: runs × worker threads. ------------
    // The store is ingested once with the largest run count; each cell
    // re-executes the shared plan over the first `rc` runs with the
    // worker pool pinned to `t` threads via `set_query_threads`. The
    // per-run-count baseline is the same workload on a single worker
    // (fully inline), so speedups isolate what the thread pool buys on
    // this machine. Every execution pins per-run snapshots, so the
    // matrix exercises the lock-free read path at every pool size.
    let default_workers = prov_core::query_workers();
    let run_counts: &[usize] = if quick { &[1, 4, 8] } else { &[1, 8, 32, 128] };
    let max_runs = *run_counts.last().expect("run counts");
    let mut all_runs = runs.clone();
    while all_runs.len() < max_runs {
        all_runs.push(testbed::run(&df, d, &multi_store).run_id);
    }
    let mut thread_counts = vec![1usize, 2, 4, default_workers];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    let mut scaling = Vec::new();
    for &rc in run_counts {
        let subset = &all_runs[..rc];
        prov_core::set_query_threads(Some(1));
        let t_base = best_of(reps, || {
            plan.execute_multi(&multi_store, subset).expect("baseline execute");
        });
        for &t in &thread_counts {
            prov_core::set_query_threads(Some(t));
            let t_cell = best_of(reps, || {
                plan.execute_multi(&multi_store, subset).expect("scaled execute");
            });
            scaling.push(ScalePoint {
                runs: rc,
                threads: t,
                parallel_ms: ms(t_cell),
                speedup: t_base.as_secs_f64() / t_cell.as_secs_f64().max(1e-12),
            });
        }
    }
    prov_core::set_query_threads(None);

    // ---- Metrics block: machine-independent work accounting. ---------
    let query_metrics = prov_bench::snapshot_store_metrics(&store);
    let wal_metrics = {
        // One untimed durable ingest, so WAL frame/byte/commit counts for
        // the canonical stream ride along with the wall-clock numbers.
        let metrics_wal = tmp.join("metrics.wal");
        let store = TraceStore::open(&metrics_wal).expect("open store");
        let run = store.begin_run(&df.name);
        for batch in batches.clone() {
            store.record_batch(run, batch);
        }
        prov_bench::snapshot_store_metrics(&store)
    };

    let _ = std::fs::remove_dir_all(&tmp);

    // ---- Report. -----------------------------------------------------
    let report = Report {
        quick,
        l,
        d,
        reps,
        ingest: IngestReport {
            events,
            batches: batches.len(),
            legacy_mem_ms: ms(t_legacy_mem),
            new_mem_ms: ms(t_new_mem),
            mem_speedup: t_legacy_mem.as_secs_f64() / t_new_mem.as_secs_f64().max(1e-12),
            legacy_wal_ms: ms(t_legacy_dur),
            new_wal_ms: ms(t_new_dur),
            wal_speedup: t_legacy_dur.as_secs_f64() / t_new_dur.as_secs_f64().max(1e-12),
            legacy_wal_events_per_s: events_per_sec(events, t_legacy_dur),
            new_wal_events_per_s: events_per_sec(events, t_new_dur),
        },
        lookups: LookupReport {
            probes: probes.len(),
            legacy_point_us: ms(t_legacy_point) * 1e3 / probes.len() as f64,
            new_point_us: ms(t_new_point) * 1e3 / probes.len() as f64,
            point_speedup: t_legacy_point.as_secs_f64() / t_new_point.as_secs_f64().max(1e-12),
            scans: scans.len(),
            legacy_scan_us: ms(t_legacy_scan) * 1e3 / scans.len() as f64,
            new_scan_us: ms(t_new_scan) * 1e3 / scans.len() as f64,
            scan_speedup: t_legacy_scan.as_secs_f64() / t_new_scan.as_secs_f64().max(1e-12),
        },
        journal: JournalReport {
            probes: probes.len(),
            off_point_us: ms(t_journal_off) * 1e3 / probes.len() as f64,
            on_point_us: ms(t_journal_on) * 1e3 / probes.len() as f64,
            overhead_ratio: t_journal_on.as_secs_f64() / t_journal_off.as_secs_f64().max(1e-12),
            ring_write_ns: t_ring_write.as_secs_f64() * 1e9 / ring_events as f64,
            disabled_branch_ns: t_disabled_branch.as_secs_f64() * 1e9 / ring_events as f64,
            events_recorded: journal_events_recorded,
        },
        fig9_query: QueryReport {
            ni_ms: ms(t_ni),
            indexproj_cold_ms: ms(t_cold),
            indexproj_warm_ms: ms(t_warm),
            plan_cache_hits: cache_hits,
            plan_cache_misses: cache_misses,
        },
        multi_run: MultiRunReport {
            runs: runs.len(),
            sequential_ms: ms(t_seq),
            parallel_ms: ms(t_par),
            speedup: t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-12),
            scaling,
        },
        metrics: ReportMetrics { query_store: query_metrics, durable_ingest: wal_metrics },
    };

    let mut table = Table::new(&["section", "metric", "legacy", "new", "speedup"]);
    table.row(vec![
        cell("ingest"),
        cell("in-memory (ms)"),
        cell_ms(t_legacy_mem),
        cell_ms(t_new_mem),
        cell(format!("{:.2}x", report.ingest.mem_speedup)),
    ]);
    table.row(vec![
        cell("ingest"),
        cell("durable WAL (ms)"),
        cell_ms(t_legacy_dur),
        cell_ms(t_new_dur),
        cell(format!("{:.2}x", report.ingest.wal_speedup)),
    ]);
    table.row(vec![
        cell("lookup"),
        cell("point probe (us)"),
        cell(format!("{:.3}", report.lookups.legacy_point_us)),
        cell(format!("{:.3}", report.lookups.new_point_us)),
        cell(format!("{:.2}x", report.lookups.point_speedup)),
    ]);
    table.row(vec![
        cell("lookup"),
        cell("prefix scan (us)"),
        cell(format!("{:.3}", report.lookups.legacy_scan_us)),
        cell(format!("{:.3}", report.lookups.new_scan_us)),
        cell(format!("{:.2}x", report.lookups.scan_speedup)),
    ]);
    table.row(vec![
        cell("journal"),
        cell("point probe, off/on (us)"),
        cell(format!("{:.3}", report.journal.off_point_us)),
        cell(format!("{:.3}", report.journal.on_point_us)),
        cell(format!("{:.3}x overhead", report.journal.overhead_ratio)),
    ]);
    table.row(vec![
        cell("multi-run"),
        cell(format!("{} runs (ms)", runs.len())),
        cell_ms(t_seq),
        cell_ms(t_par),
        cell(format!("{:.2}x", report.multi_run.speedup)),
    ]);
    table.print();
    let mut scale_table = Table::new(&["runs", "threads", "parallel (ms)", "speedup vs 1 thread"]);
    for p in &report.multi_run.scaling {
        scale_table.row(vec![
            cell(p.runs.to_string()),
            cell(p.threads.to_string()),
            cell(format!("{:.3}", p.parallel_ms)),
            cell(format!("{:.2}x", p.speedup)),
        ]);
    }
    println!("\nmulti-run scaling ({} worker threads by default):", default_workers);
    scale_table.print();
    println!(
        "\nfig9 query: ni {:.3} ms, indexproj cold {:.3} ms, warm {:.3} ms (cache {}h/{}m)",
        report.fig9_query.ni_ms,
        report.fig9_query.indexproj_cold_ms,
        report.fig9_query.indexproj_warm_ms,
        cache_hits,
        cache_misses
    );
    println!(
        "journal: probe hot path {:.3} -> {:.3} us with journal attached ({:+.1}% overhead); \
         ring write {:.0} ns/event, disabled branch {:.1} ns/event",
        report.journal.off_point_us,
        report.journal.on_point_us,
        (report.journal.overhead_ratio - 1.0) * 100.0,
        report.journal.ring_write_ns,
        report.journal.disabled_branch_ns
    );

    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    let out = workspace_root().join("BENCH_store_hotpath.json");
    std::fs::write(&out, json + "\n").expect("write report");
    println!("json: {}", out.display());
}
