//! **Table 1** — number of trace database records for one run of the
//! synthetic testbed, over the configuration space `l × d`.
//!
//! Paper reference values (records for one run):
//!
//! ```text
//! d\l    10     28     50     75    100    150
//! 10    626   1346   2226   3226   4226   6226
//! 25   2306   4106   6306   8806  11306  16306
//! 50   7106  11000  15106  20106  25106  35106
//! 75  14406  15479  26406  33906  41406  49561
//! ```
//!
//! The reproduction should match the same growth law: linear in `l`
//! (chain records), linear in `d` for the chains plus a `d²` term from the
//! final cross product.

use prov_bench::{cell, quick_mode, Table};
use prov_store::TraceStore;
use prov_workgen::testbed;

fn main() {
    let (ls, ds): (Vec<usize>, Vec<usize>) = if quick_mode() {
        (vec![10, 28], vec![10, 25])
    } else {
        (testbed::PAPER_L.to_vec(), testbed::PAPER_D.to_vec())
    };

    println!("Table 1: trace records for one run, by chain length l and list size d\n");
    let mut headers = vec!["d \\ l".to_string()];
    headers.extend(ls.iter().map(|l| l.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    for &d in &ds {
        let mut row = vec![cell(d)];
        for &l in &ls {
            let df = testbed::generate(l);
            let store = TraceStore::in_memory();
            let run = testbed::run(&df, d, &store).run_id;
            row.push(cell(store.trace_record_count(run)));
        }
        table.row(row);
    }

    table.print();
    let path = table.write_csv("table1_trace_sizes").expect("write results");
    println!("\ncsv: {}", path.display());
}
