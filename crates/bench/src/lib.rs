//! # prov-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§4). Each experiment is a binary under `src/bin/`
//! (see DESIGN.md §2 for the per-experiment index); this library holds the
//! shared measurement and reporting machinery.
//!
//! Absolute times are hardware-dependent; every experiment therefore also
//! reports the store's machine-independent access counters (index lookups
//! and records read) alongside wall-clock times, and the *shapes* —
//! who wins, what grows with what — are what reproduce the paper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::fmt::Display;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Measures the best-of-`reps` wall time of `f`, matching the paper's
/// method: "the best response times over a sequence of five identical
/// queries for all strategies, i.e., assuming the best case of a warm
/// cache".
pub fn best_of<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

/// Milliseconds with microsecond resolution, for table printing.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// A simple fixed-width table printer for experiment output.
#[derive(Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV to `results/<name>.csv` (creating the
    /// directory if missing). Returns the path written.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut w = BufWriter::new(File::create(&path)?);
        writeln!(w, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(w, "{}", row.join(","))?;
        }
        w.flush()?;
        Ok(path)
    }

    /// The table as a serializable `{headers, rows}` pair.
    pub fn to_json(&self) -> TableJson {
        TableJson { headers: self.headers.clone(), rows: self.rows.clone() }
    }
}

/// Serializable form of a [`Table`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct TableJson {
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells, as rendered strings.
    pub rows: Vec<Vec<String>>,
}

/// The document written by [`write_bench_json`].
#[derive(serde::Serialize)]
struct BenchDoc {
    name: String,
    table: TableJson,
    metrics: prov_obs::MetricsSnapshot,
}

/// A registry snapshot of `store`'s counters (index lookups, records read,
/// rows scanned, WAL frames/bytes) and size gauges — the
/// machine-independent work accounting every experiment embeds next to its
/// wall-clock numbers.
pub fn snapshot_store_metrics(store: &prov_store::TraceStore) -> prov_obs::MetricsSnapshot {
    let registry = prov_obs::Registry::new();
    store.register_metrics(&registry);
    registry.snapshot()
}

/// Writes `results/BENCH_<name>.json`: the experiment's table plus a
/// metrics snapshot, so access counters ride along with every emitted
/// figure. Returns the path written.
pub fn write_bench_json(
    name: &str,
    table: &Table,
    metrics: &prov_obs::MetricsSnapshot,
) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    let doc = BenchDoc { name: name.to_string(), table: table.to_json(), metrics: metrics.clone() };
    let rendered = serde_json::to_string_pretty(&doc).map_err(std::io::Error::other)?;
    std::fs::write(&path, rendered)?;
    Ok(path)
}

/// The `results/` directory at the workspace root (falls back to CWD).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two up.
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    base.join("results")
}

/// Whether `--quick` was passed: experiments shrink their grids so the
/// whole suite stays test-friendly.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Formats a cell from any displayable value.
pub fn cell(v: impl Display) -> String {
    v.to_string()
}

/// Formats a milliseconds cell with 3 decimals.
pub fn cell_ms(d: Duration) -> String {
    format!("{:.3}", ms(d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_of_returns_a_plausible_minimum() {
        let d = best_of(3, || std::thread::sleep(Duration::from_millis(1)));
        assert!(d >= Duration::from_millis(1));
        assert!(d < Duration::from_millis(100));
    }

    #[test]
    fn table_renders_aligned_columns_and_csv() {
        let mut t = Table::new(&["l", "time_ms"]);
        t.row(vec![cell(10), cell_ms(Duration::from_micros(1500))]);
        t.row(vec![cell(150), cell("2.000")]);
        let s = t.render();
        assert!(s.contains("l  time_ms"));
        assert!(s.contains("1.500"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec![cell(1)]);
    }

    #[test]
    fn ms_converts() {
        assert!((ms(Duration::from_millis(2)) - 2.0).abs() < 1e-9);
    }
}
