//! # prov-serve
//!
//! A long-running provenance daemon: one durable [`prov_store`] instance
//! served over TCP to concurrent ingest streams (workflow engines pushing
//! trace events) and concurrent lineage/impact queries, speaking the
//! length-prefixed frame dialect of [`prov_wire`] on its own tag space.
//!
//! The paper's setting is a provenance *service*: many workflow runs feed
//! one store while analysts query lineage against it. This crate supplies
//! the robustness surface that setting needs —
//!
//! * **admission control**: a connection-limit semaphore with a typed
//!   `busy` refusal instead of unbounded accept queues;
//! * **per-request deadlines**: driven by the engine's injectable
//!   [`Clock`](prov_engine::Clock), propagated into
//!   [`QueryCtx`](prov_obs::QueryCtx) so a timed-out query aborts between
//!   plan steps with a typed `timeout` error;
//! * **ingest backpressure**: bounded per-session queues feeding the WAL
//!   group-commit path — a slow fsync becomes a slow client, counted in
//!   `serve.backpressure_waits`, never an unbounded buffer;
//! * **durability acks**: a batch is acknowledged only after its WAL
//!   group commit, so every acked batch survives any crash;
//! * **idle reaping** and a **graceful drain** (SIGTERM/ctrl-c/remote
//!   shutdown): stop accepting, let sessions finish and ack queued
//!   ingest, fsync, snapshot, exit cleanly.

#![warn(missing_docs)]
#![deny(unsafe_code)] // deny, not forbid: `signal` opts a single FFI shim back in
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod client;
mod execute;
pub mod protocol;
mod server;
pub mod signal;

pub use client::{RemoteSink, ServeClient, DEFAULT_BATCH_EVENTS, DEFAULT_PIPELINE_DEPTH};
pub use execute::{execute_query, ExecError};
pub use server::{DrainReport, ProvServer, ServeConfig};

/// Client-visible failure of a serve-protocol interaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A socket-level failure.
    Io(String),
    /// The peer violated the protocol (wrong tag, undecodable payload).
    Protocol(String),
    /// The daemon refused the connection at its connection limit.
    Busy {
        /// Sessions active at refusal time.
        active: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The request's deadline passed on the server.
    Timeout {
        /// Server-rendered detail (names the query).
        message: String,
    },
    /// The daemon is draining and refused new work.
    ShuttingDown,
    /// Any other typed server error (`query_failed`, `bad_request`, ...).
    Remote {
        /// The machine-matchable code.
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(m) => write!(f, "serve io error: {m}"),
            ServeError::Protocol(m) => write!(f, "serve protocol error: {m}"),
            ServeError::Busy { active, limit } => {
                write!(f, "server busy: {active} active sessions (limit {limit})")
            }
            ServeError::Timeout { message } => write!(f, "server timeout: {message}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Remote { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use prov_engine::{Clock, SystemClock, VirtualClock};
    use prov_obs::Obs;
    use prov_store::{SharedStore, TraceStore};

    fn start_server(cfg: ServeConfig) -> (ProvServer, String) {
        let store = SharedStore::new(TraceStore::in_memory());
        let server = ProvServer::start(store, Obs::enabled(), cfg, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();
        (server, addr)
    }

    #[test]
    fn ping_round_trips_and_reports_occupancy() {
        let (server, addr) = start_server(ServeConfig::default());
        let mut client = ServeClient::connect(&addr).unwrap();
        let pong = client.ping().unwrap();
        assert!(!pong.draining);
        assert_eq!(pong.active, 1);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn connections_beyond_the_limit_get_a_typed_busy() {
        let cfg = ServeConfig { max_connections: 1, ..ServeConfig::default() };
        let (server, addr) = start_server(cfg);
        let _held = ServeClient::connect(&addr).unwrap();
        // Admission is a CAS against the live count, so the second
        // connection must be refused with the typed occupancy error.
        let err = ServeClient::connect(&addr).unwrap_err();
        match err {
            ServeError::Busy { active, limit } => {
                assert_eq!(active, 1);
                assert_eq!(limit, 1);
            }
            other => panic!("expected Busy, got {other:?}"),
        }
        drop(_held);
        server.shutdown();
    }

    #[test]
    fn remote_shutdown_drains_and_refuses_new_work() {
        let (server, addr) = start_server(ServeConfig::default());
        let mut client = ServeClient::connect(&addr).unwrap();
        let pong = client.shutdown().unwrap();
        assert!(pong.draining);
        let report = server.shutdown();
        assert!(!report.forced, "sessions should drain cleanly: {report:?}");
    }

    #[test]
    fn idle_sessions_are_reaped_on_the_injected_clock() {
        let clock = Arc::new(VirtualClock::new());
        let cfg = ServeConfig {
            idle_timeout_ms: 50,
            clock: clock.clone() as Arc<dyn Clock>,
            ..ServeConfig::default()
        };
        let (server, addr) = start_server(cfg);
        let client = ServeClient::connect(&addr).unwrap();
        while server.active() == 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        // Advance the virtual clock past the idle window; the session's
        // next poll tick must reap the connection.
        clock.sleep_micros(60 * 1000);
        let started = std::time::Instant::now();
        while server.active() > 0 && started.elapsed() < std::time::Duration::from_secs(5) {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(server.active(), 0, "idle session was not reaped");
        drop(client);
        server.shutdown();
    }

    #[test]
    fn system_clock_is_the_default() {
        // Guards the Default impl against losing its real-time clock.
        let cfg = ServeConfig::default();
        let before = SystemClock.now_micros();
        assert!(cfg.clock.now_micros() >= before);
    }
}
