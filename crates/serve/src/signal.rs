//! Minimal async-signal-safe SIGTERM/SIGINT latch, with no libc
//! dependency: the handler does exactly one relaxed atomic store, and the
//! serve loop polls [`triggered`] between accept ticks to begin its
//! drain. On non-Unix targets both calls are no-ops.

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TRIGGERED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe by construction.
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    /// Installs the SIGTERM/SIGINT latch (idempotent).
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: `signal(2)` with a handler that performs a single
        // atomic store is async-signal-safe; the symbol signature matches
        // the C prototype (sighandler_t is pointer-sized on all supported
        // Unixes).
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    /// Whether a termination signal has arrived since [`install`].
    pub fn triggered() -> bool {
        TRIGGERED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod imp {
    /// No-op on non-Unix targets.
    pub fn install() {}
    /// Always `false` on non-Unix targets.
    pub fn triggered() -> bool {
        false
    }
}

/// Installs the SIGTERM/SIGINT latch (idempotent).
pub use imp::install;
/// Whether a termination signal has arrived since [`install`].
pub use imp::triggered;
