//! Deadline-aware query execution for the daemon.
//!
//! Mirrors the replica's query executor (`prov_repl::execute_query`) —
//! answers render through the same `Display` the CLI uses, so a served
//! answer is byte-identical to a local one — but threads a
//! [`QueryCtx`] through the `_ctx` entry points so a per-request deadline
//! driven by the daemon's injectable clock aborts the query *between plan
//! steps*, surfacing as a typed timeout instead of a hung session.

use prov_core::{parse_query, CoreError, IndexProj, NaiveImpact, NaiveLineage, ParsedQuery};
use prov_dataflow::Dataflow;
use prov_model::{ProcessorName, RunId};
use prov_obs::{Obs, QueryCtx};
use prov_store::TraceStore;

use crate::protocol::ServeQuery;

/// How a served query failed: a deadline expiry is distinguished so the
/// session can send the typed `timeout` error and journal it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The request's deadline passed; execution was abandoned between
    /// plan steps.
    Timeout {
        /// The query's source text.
        query: String,
    },
    /// Any other failure (parse error, unknown run, planner refusal...).
    Failed(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Timeout { query } => write!(f, "deadline exceeded executing {query:?}"),
            ExecError::Failed(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ExecError {}

fn core_err(e: CoreError) -> ExecError {
    match e {
        CoreError::DeadlineExceeded { query } => ExecError::Timeout { query },
        other => ExecError::Failed(other.to_string()),
    }
}

/// Resolves the workflow spec for an `indexproj` query from the store's
/// registry (the serve path registers specs via `IngestBegin`, so a
/// daemon plans against exactly what its writers declared).
fn registered_workflow(store: &TraceStore, wf: &Option<String>) -> Result<Dataflow, ExecError> {
    let name = match wf {
        Some(n) => ProcessorName::from(n.as_str()),
        None => {
            let names = store.workflow_names();
            match names.as_slice() {
                [only] => only.clone(),
                [] => return Err(ExecError::Failed("no workflow registered on the server".into())),
                many => {
                    return Err(ExecError::Failed(format!(
                        "server registers {} workflows; name one with wf",
                        many.len()
                    )))
                }
            }
        }
    };
    let json = store
        .workflow_json(&name)
        .ok_or_else(|| ExecError::Failed(format!("workflow {name:?} is not registered")))?;
    let mut df: Dataflow =
        serde_json::from_str(&json).map_err(|e| ExecError::Failed(e.to_string()))?;
    df.reindex();
    prov_dataflow::validate(&df).map_err(|e| ExecError::Failed(e.to_string()))?;
    Ok(df)
}

/// Executes one served query under `ctx` (which carries the request's
/// clock deadline). Answers use the CLI's rendering.
pub fn execute_query(
    store: &TraceStore,
    req: &ServeQuery,
    obs: &Obs,
    ctx: &QueryCtx,
) -> Result<Vec<String>, ExecError> {
    let runs: Vec<RunId> = if req.all_runs {
        store.runs().iter().map(|i| i.id).collect()
    } else {
        vec![RunId(req.run)]
    };
    match parse_query(&req.query).map_err(|e| ExecError::Failed(e.to_string()))? {
        ParsedQuery::Lineage(query) => match req.algo.as_str() {
            "ni" => NaiveLineage::new()
                .run_multi_ctx(store, &runs, &query, obs, ctx)
                .map(|v| v.iter().map(|a| a.to_string()).collect())
                .map_err(core_err),
            "indexproj" => {
                let df = registered_workflow(store, &req.wf)?;
                let ip = IndexProj::new(&df);
                let plan = ip.plan(&query).map_err(core_err)?;
                plan.execute_multi_ctx(store, &runs, obs, ctx)
                    .map(|v| v.iter().map(|a| a.to_string()).collect())
                    .map_err(core_err)
            }
            other => {
                Err(ExecError::Failed(format!("unknown algo {other:?} (use ni or indexproj)")))
            }
        },
        ParsedQuery::Impact(query) => {
            let ni = NaiveImpact::new();
            let mut out = Vec::new();
            for run in &runs {
                out.push(ni.run_ctx(store, *run, &query, obs, ctx).map_err(core_err)?.to_string());
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use prov_engine::TraceSink;
    use prov_engine::{PortBinding, XformEvent};
    use prov_model::{Index, Value};
    use prov_obs::TimeSource;

    #[derive(Debug)]
    struct Frozen(AtomicU64);
    impl TimeSource for Frozen {
        fn now_micros(&self) -> u64 {
            self.0.load(Ordering::SeqCst)
        }
    }

    fn seeded_store() -> (TraceStore, RunId) {
        let store = TraceStore::in_memory();
        let run = store.begin_run(&ProcessorName::from("wf"));
        store.record_xform(
            run,
            XformEvent {
                processor: ProcessorName::from("P"),
                invocation: 0,
                inputs: vec![PortBinding::new("x", Index::empty(), Value::str("in"))],
                outputs: vec![PortBinding::new("y", Index::empty(), Value::str("out"))],
            },
        );
        (store, run)
    }

    fn req(run: RunId, query: &str, algo: &str) -> ServeQuery {
        ServeQuery {
            query: query.into(),
            run: run.0,
            all_runs: false,
            algo: algo.into(),
            wf: None,
            deadline_ms: None,
        }
    }

    #[test]
    fn naive_lineage_answers_through_the_serve_executor() {
        let (store, run) = seeded_store();
        let obs = Obs::disabled();
        let ctx = QueryCtx::new("q");
        let out = execute_query(&store, &req(run, "lin(<P:y[]>)", "ni"), &obs, &ctx).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].starts_with("run:"), "answer uses the CLI rendering: {}", out[0]);
    }

    #[test]
    fn an_expired_clock_deadline_is_a_typed_timeout() {
        let (store, run) = seeded_store();
        let obs = Obs::disabled();
        // Deadline already in the past on the injected clock.
        let clock = Arc::new(Frozen(AtomicU64::new(10_000)));
        let ctx = QueryCtx::new("q").with_clock_deadline(clock, 1);
        let err = execute_query(&store, &req(run, "lin(<P:y[]>)", "ni"), &obs, &ctx).unwrap_err();
        assert!(matches!(err, ExecError::Timeout { .. }), "got {err:?}");
    }

    #[test]
    fn parse_failures_are_plain_failures_not_timeouts() {
        let (store, run) = seeded_store();
        let obs = Obs::disabled();
        let ctx = QueryCtx::new("q");
        let err = execute_query(&store, &req(run, "not a query", "ni"), &obs, &ctx).unwrap_err();
        assert!(matches!(err, ExecError::Failed(_)));
    }
}
