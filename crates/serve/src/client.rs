//! Client side of the serve protocol: a thin request/reply handle
//! ([`ServeClient`]) and an engine-facing [`RemoteSink`] that streams
//! trace events to a daemon with pipelined, durability-acknowledged
//! batches — `tprov run --server` plugs it in where the local store would
//! normally sit.

use std::io::Read;
use std::net::TcpStream;
use std::time::Duration;

use parking_lot::Mutex;
use prov_engine::{TraceEvent, TraceSink, XferEvent, XformEvent};
use prov_model::{ProcessorName, RunId};

use crate::protocol::{self as p, ServeErrorMsg};
use crate::server::error_from_msg;
use crate::ServeError;

fn io_err(e: impl std::fmt::Display) -> ServeError {
    ServeError::Io(e.to_string())
}

/// Reads one reply frame, mapping `TAG_ERR` to a typed [`ServeError`].
fn read_reply<R: Read>(r: &mut R) -> Result<(u8, Vec<u8>), ServeError> {
    match p::read_msg(r) {
        Ok(Some((p::TAG_ERR, payload))) => {
            let msg: ServeErrorMsg = p::decode(&payload).map_err(io_err)?;
            Err(error_from_msg(msg))
        }
        Ok(Some(other)) => Ok(other),
        Ok(None) => Err(ServeError::Io("server closed the connection".into())),
        Err(e) => Err(io_err(e)),
    }
}

/// One connection to a daemon. Replies are read in lock-step, so a
/// `ServeClient` is a plain sequential handle; open several for
/// concurrency.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects and consumes the `WELCOME` frame. A connection-limit
    /// refusal surfaces as [`ServeError::Busy`].
    pub fn connect(addr: &str) -> Result<Self, ServeError> {
        let mut stream = TcpStream::connect(addr).map_err(io_err)?;
        let _ = stream.set_nodelay(true);
        let (tag, payload) = read_reply(&mut stream)?;
        if tag != p::TAG_WELCOME {
            return Err(ServeError::Protocol(format!("expected WELCOME, got tag {tag:#x}")));
        }
        let welcome: p::Welcome = p::decode(&payload).map_err(io_err)?;
        if welcome.proto != p::PROTO_VERSION {
            return Err(ServeError::Protocol(format!(
                "server speaks protocol {} but this client speaks {}",
                welcome.proto,
                p::PROTO_VERSION
            )));
        }
        Ok(ServeClient { stream })
    }

    /// Sets a client-side read timeout (useful when probing a daemon that
    /// may be wedged).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ServeError> {
        self.stream.set_read_timeout(timeout).map_err(io_err)
    }

    /// Runs one query; a deadline expiry on the server surfaces as
    /// [`ServeError::Timeout`].
    pub fn query(&mut self, req: &p::ServeQuery) -> Result<Vec<String>, ServeError> {
        p::write_json(&mut self.stream, p::TAG_QUERY, req).map_err(io_err)?;
        let (tag, payload) = read_reply(&mut self.stream)?;
        if tag != p::TAG_QUERY_OK {
            return Err(ServeError::Protocol(format!("expected QUERY_OK, got tag {tag:#x}")));
        }
        let ok: p::ServeQueryOk = p::decode(&payload).map_err(io_err)?;
        Ok(ok.answers)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<p::Pong, ServeError> {
        p::write_msg(&mut self.stream, p::TAG_PING, &[]).map_err(io_err)?;
        let (tag, payload) = read_reply(&mut self.stream)?;
        if tag != p::TAG_PONG {
            return Err(ServeError::Protocol(format!("expected PONG, got tag {tag:#x}")));
        }
        p::decode(&payload).map_err(io_err)
    }

    /// Asks the daemon to drain and exit (the remote SIGTERM).
    pub fn shutdown(&mut self) -> Result<p::Pong, ServeError> {
        p::write_msg(&mut self.stream, p::TAG_SHUTDOWN, &[]).map_err(io_err)?;
        let (tag, payload) = read_reply(&mut self.stream)?;
        if tag != p::TAG_PONG {
            return Err(ServeError::Protocol(format!("expected PONG, got tag {tag:#x}")));
        }
        p::decode(&payload).map_err(io_err)
    }

    /// The raw stream, for protocol-level tests (mid-frame kills, fault
    /// injection).
    pub fn into_stream(self) -> TcpStream {
        self.stream
    }
}

/// How many events a [`RemoteSink`] buffers before shipping a batch.
pub const DEFAULT_BATCH_EVENTS: usize = 256;

/// How many unacked batches a [`RemoteSink`] keeps in flight. More than 1
/// pipelines the network against the server's group commit; the bound
/// keeps client memory and loss-on-crash finite.
pub const DEFAULT_PIPELINE_DEPTH: usize = 4;

struct SinkState {
    stream: TcpStream,
    run: Option<RunId>,
    buffer: Vec<TraceEvent>,
    next_seq: u64,
    outstanding: u64,
    last_acked_seq: Option<u64>,
    durable_frames: u64,
    error: Option<ServeError>,
}

/// A [`TraceSink`] that streams events to a daemon. Events buffer locally
/// into batches; batches pipeline up to a depth, each acknowledged by the
/// server only after its WAL group commit — so after a successful
/// [`RemoteSink::finish`], everything recorded is durable on the server.
///
/// `TraceSink` methods cannot return errors, so failures latch into the
/// sink; check [`RemoteSink::error`] after the run.
#[derive(Debug)]
pub struct RemoteSink {
    state: Mutex<SinkState>,
    workflow_json: Option<String>,
    batch_events: usize,
    pipeline_depth: u64,
}

impl std::fmt::Debug for SinkState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SinkState")
            .field("run", &self.run)
            .field("next_seq", &self.next_seq)
            .field("outstanding", &self.outstanding)
            .field("error", &self.error)
            .finish()
    }
}

impl RemoteSink {
    /// Connects to a daemon; `workflow_json` (the serialized `Dataflow`)
    /// is registered server-side at `begin_run` so `indexproj` queries can
    /// plan against it.
    pub fn connect(addr: &str, workflow_json: Option<String>) -> Result<Self, ServeError> {
        let client = ServeClient::connect(addr)?;
        Ok(RemoteSink {
            state: Mutex::new(SinkState {
                stream: client.into_stream(),
                run: None,
                buffer: Vec::new(),
                next_seq: 0,
                outstanding: 0,
                last_acked_seq: None,
                durable_frames: 0,
                error: None,
            }),
            workflow_json,
            batch_events: DEFAULT_BATCH_EVENTS,
            pipeline_depth: DEFAULT_PIPELINE_DEPTH as u64,
        })
    }

    /// Overrides the events-per-batch threshold (tests, benchmarks).
    pub fn with_batch_events(mut self, n: usize) -> Self {
        self.batch_events = n.max(1);
        self
    }

    /// Overrides the pipeline depth (1 = strict lock-step).
    pub fn with_pipeline_depth(mut self, n: usize) -> Self {
        self.pipeline_depth = n.max(1) as u64;
        self
    }

    /// The first error the sink hit, if any: a sink with an error has
    /// dropped events and the run must not be trusted as recorded.
    pub fn error(&self) -> Option<ServeError> {
        self.state.lock().error.clone()
    }

    /// WAL frames the server reported durable at the last ack.
    pub fn durable_frames(&self) -> u64 {
        self.state.lock().durable_frames
    }

    /// Flushes the buffer, waits for every outstanding ack, and closes
    /// the run stream. Returns the first latched error, making the
    /// durability handshake checkable (`TraceSink::finish_run` swallows
    /// it).
    pub fn finish(&self) -> Result<(), ServeError> {
        let mut st = self.state.lock();
        if let Some(run) = st.run {
            Self::flush_locked(&mut st, self.batch_events, true);
            if st.error.is_none() {
                let last = st.next_seq.wrapping_sub(1);
                let finish = p::IngestFinish {
                    run: run.0,
                    seq: if st.next_seq == 0 { u64::MAX } else { last },
                };
                if let Err(e) = p::write_json(&mut st.stream, p::TAG_INGEST_FINISH, &finish) {
                    st.error = Some(io_err(e));
                } else {
                    // The finish-ack follows any remaining batch acks.
                    Self::read_one_ack(&mut st);
                }
            }
            st.run = None;
        }
        match &st.error {
            None => Ok(()),
            Some(e) => Err(e.clone()),
        }
    }

    fn read_one_ack(st: &mut SinkState) {
        match read_reply(&mut st.stream) {
            Ok((p::TAG_INGEST_ACK, payload)) => match p::decode::<p::IngestAck>(&payload) {
                Ok(ack) => {
                    st.last_acked_seq = Some(ack.seq);
                    st.durable_frames = ack.durable_frames;
                    st.outstanding = st.outstanding.saturating_sub(1);
                }
                Err(e) => st.error = Some(io_err(e)),
            },
            Ok((tag, _)) => {
                st.error = Some(ServeError::Protocol(format!("expected ACK, got tag {tag:#x}")))
            }
            Err(e) => st.error = Some(e),
        }
    }

    /// Ships the buffered events as one batch; with `drain`, also waits
    /// for every outstanding ack.
    fn flush_locked(st: &mut SinkState, _batch_events: usize, drain: bool) {
        if st.error.is_some() {
            return;
        }
        let Some(run) = st.run else { return };
        if !st.buffer.is_empty() {
            let events = std::mem::take(&mut st.buffer);
            let batch = p::IngestBatch { run: run.0, seq: st.next_seq, events };
            st.next_seq += 1;
            if let Err(e) = p::write_json(&mut st.stream, p::TAG_INGEST_BATCH, &batch) {
                st.error = Some(io_err(e));
                return;
            }
            st.outstanding += 1;
        }
        while st.error.is_none() && st.outstanding > 0 && drain {
            Self::read_one_ack(st);
        }
    }

    fn push(&self, event: TraceEvent) {
        let mut st = self.state.lock();
        if st.error.is_some() {
            return;
        }
        st.buffer.push(event);
        if st.buffer.len() >= self.batch_events {
            Self::flush_locked(&mut st, self.batch_events, false);
            // Pipeline bound: absorb acks until back under the window.
            while st.error.is_none() && st.outstanding >= self.pipeline_depth {
                Self::read_one_ack(&mut st);
            }
        }
    }
}

impl TraceSink for RemoteSink {
    fn begin_run(&self, workflow: &ProcessorName) -> RunId {
        let mut st = self.state.lock();
        let begin = p::IngestBegin {
            workflow: workflow.to_string(),
            workflow_json: self.workflow_json.clone(),
        };
        if let Err(e) = p::write_json(&mut st.stream, p::TAG_INGEST_BEGIN, &begin) {
            st.error = Some(io_err(e));
            return RunId(u64::MAX);
        }
        match read_reply(&mut st.stream) {
            Ok((p::TAG_INGEST_BEGUN, payload)) => match p::decode::<p::IngestBegun>(&payload) {
                Ok(begun) => {
                    let run = RunId(begun.run);
                    st.run = Some(run);
                    st.next_seq = 0;
                    st.outstanding = 0;
                    run
                }
                Err(e) => {
                    st.error = Some(io_err(e));
                    RunId(u64::MAX)
                }
            },
            Ok((tag, _)) => {
                st.error = Some(ServeError::Protocol(format!("expected BEGUN, got tag {tag:#x}")));
                RunId(u64::MAX)
            }
            Err(e) => {
                st.error = Some(e);
                RunId(u64::MAX)
            }
        }
    }

    fn record_xform(&self, _run: RunId, event: XformEvent) {
        self.push(TraceEvent::Xform(event));
    }

    fn record_xfer(&self, _run: RunId, event: XferEvent) {
        self.push(TraceEvent::Xfer(event));
    }

    fn record_batch(&self, _run: RunId, events: Vec<TraceEvent>) {
        for event in events {
            self.push(event);
        }
    }

    fn finish_run(&self, _run: RunId) {
        let _ = self.finish();
    }
}
