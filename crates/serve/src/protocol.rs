//! Wire vocabulary of the serve daemon.
//!
//! The daemon reuses the framing dialect of [`prov_wire`] (one byte of
//! tag, a little-endian `u32` length, a JSON payload) on a tag space
//! disjoint from the replication stream's: client requests live in
//! `0x21..=0x2F`, server replies in `0x30..=0x3F`. Keeping the spaces
//! disjoint means a frame accidentally routed to the wrong daemon is a
//! typed protocol error, never a silent misparse.

use serde::{Deserialize, Serialize};

pub use prov_wire::{
    decode, frame_too_large, read_exact_retry, read_msg, write_json, write_msg, FrameTooLarge,
    MAX_FRAME_LEN,
};

use prov_engine::TraceEvent;

// ---- client -> server ------------------------------------------------

/// Opens an ingest stream for one run of `workflow`.
pub const TAG_INGEST_BEGIN: u8 = 0x21;
/// One ordered batch of trace events for an open ingest stream.
pub const TAG_INGEST_BATCH: u8 = 0x22;
/// Closes an ingest stream; the run is finished after the final ack.
pub const TAG_INGEST_FINISH: u8 = 0x23;
/// One lineage/impact query.
pub const TAG_QUERY: u8 = 0x24;
/// Liveness probe; answered with [`TAG_PONG`] even while draining.
pub const TAG_PING: u8 = 0x25;
/// Asks the daemon to drain and exit (same path as SIGTERM).
pub const TAG_SHUTDOWN: u8 = 0x26;

// ---- server -> client ------------------------------------------------

/// First frame on every accepted connection.
pub const TAG_WELCOME: u8 = 0x30;
/// Reply to [`TAG_INGEST_BEGIN`]: carries the assigned run id.
pub const TAG_INGEST_BEGUN: u8 = 0x31;
/// Durability acknowledgement for one ingest batch — sent only *after*
/// the batch has been group-committed (WAL appended **and** fsynced), so
/// an acked batch survives any crash.
pub const TAG_INGEST_ACK: u8 = 0x32;
/// Successful query reply.
pub const TAG_QUERY_OK: u8 = 0x33;
/// Reply to [`TAG_PING`] and [`TAG_SHUTDOWN`].
pub const TAG_PONG: u8 = 0x34;
/// Typed refusal/failure; see [`ServeErrorMsg::code`].
pub const TAG_ERR: u8 = 0x3F;

/// First frame on every accepted connection: protocol self-description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Welcome {
    /// Protocol revision (bump on incompatible change).
    pub proto: u32,
    /// The frame-size bound the server enforces on inbound frames.
    pub max_frame: u32,
}

/// Opens an ingest stream. When `workflow_json` is present the server
/// registers the workflow spec before beginning the run, so `indexproj`
/// queries can plan against it without out-of-band setup.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestBegin {
    /// Workflow (dataflow) name the run belongs to.
    pub workflow: String,
    /// Optional serialized `Dataflow` to register.
    pub workflow_json: Option<String>,
}

/// Reply to [`IngestBegin`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestBegun {
    /// The run id the server assigned; quote it in every later frame.
    pub run: u64,
}

/// One ordered batch of trace events. `seq` starts at 0 per stream and
/// increments by 1; the server acks each batch by `seq` once durable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestBatch {
    /// Run id from [`IngestBegun`].
    pub run: u64,
    /// Client-assigned batch sequence number.
    pub seq: u64,
    /// The events, in recording order.
    pub events: Vec<TraceEvent>,
}

/// Closes an ingest stream after the last batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestFinish {
    /// Run id from [`IngestBegun`].
    pub run: u64,
    /// Sequence number of the last batch sent (`u64::MAX` if none).
    pub seq: u64,
}

/// Durability acknowledgement for one batch (or, with
/// `seq == u64::MAX`, for a finished stream as a whole).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestAck {
    /// Run id.
    pub run: u64,
    /// The acknowledged batch sequence number.
    pub seq: u64,
    /// WAL frames durable on disk at ack time (monotonic).
    pub durable_frames: u64,
}

/// One query request, mirroring the CLI's `tprov query` surface.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeQuery {
    /// Query source text (`lineage ...` / `impact ...`).
    pub query: String,
    /// Target run id (ignored when `all_runs`).
    pub run: u64,
    /// Query every run in the store.
    pub all_runs: bool,
    /// `"ni"` or `"indexproj"` (lineage only).
    pub algo: String,
    /// Workflow name for `indexproj` planning (optional when the store
    /// registers exactly one).
    pub wf: Option<String>,
    /// Per-request deadline override in milliseconds; `None` uses the
    /// server's configured default.
    pub deadline_ms: Option<u64>,
}

/// Successful query reply: answers rendered with the same `Display` the
/// CLI uses, so served and local output are byte-comparable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeQueryOk {
    /// One rendered answer per queried run.
    pub answers: Vec<String>,
}

/// Reply to [`TAG_PING`] / [`TAG_SHUTDOWN`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pong {
    /// Whether the daemon is draining (refusing new work).
    pub draining: bool,
    /// Sessions currently connected.
    pub active: u64,
}

/// Typed error reply. `code` is machine-matchable:
/// `busy` | `timeout` | `shutting_down` | `query_failed` | `bad_request`
/// | `ingest_failed`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeErrorMsg {
    /// Machine-matchable error class.
    pub code: String,
    /// Human-readable detail.
    pub message: String,
    /// For `busy`: sessions active when the connection was refused.
    pub active: Option<u64>,
    /// For `busy`: the configured connection limit.
    pub limit: Option<u64>,
}

impl ServeErrorMsg {
    /// A plain coded error with no occupancy info.
    pub fn new(code: &str, message: impl Into<String>) -> Self {
        ServeErrorMsg { code: code.into(), message: message.into(), active: None, limit: None }
    }
}

/// Protocol revision spoken by this build.
pub const PROTO_VERSION: u32 = 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_and_reply_tag_spaces_are_disjoint() {
        let requests = [
            TAG_INGEST_BEGIN,
            TAG_INGEST_BATCH,
            TAG_INGEST_FINISH,
            TAG_QUERY,
            TAG_PING,
            TAG_SHUTDOWN,
        ];
        let replies =
            [TAG_WELCOME, TAG_INGEST_BEGUN, TAG_INGEST_ACK, TAG_QUERY_OK, TAG_PONG, TAG_ERR];
        for r in requests {
            assert!((0x21..=0x2F).contains(&r));
            assert!(!replies.contains(&r));
        }
        for r in replies {
            assert!((0x30..=0x3F).contains(&r));
        }
    }

    #[test]
    fn ingest_batch_round_trips_trace_events() {
        use prov_engine::{PortBinding, XformEvent};
        use prov_model::{Index, ProcessorName, Value};

        let batch = IngestBatch {
            run: 7,
            seq: 3,
            events: vec![TraceEvent::Xform(XformEvent {
                processor: ProcessorName::from("P"),
                invocation: 2,
                inputs: vec![PortBinding::new("x", Index::from_slice(&[1, 2]), Value::str("in"))],
                outputs: vec![PortBinding::new("y", Index::from_slice(&[1, 2]), Value::str("out"))],
            })],
        };
        let mut wire = Vec::new();
        write_json(&mut wire, TAG_INGEST_BATCH, &batch).unwrap();
        let (tag, payload) = read_msg(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(tag, TAG_INGEST_BATCH);
        let back: IngestBatch = decode(&payload).unwrap();
        assert_eq!(back.run, 7);
        assert_eq!(back.seq, 3);
        assert_eq!(back.events, batch.events);
    }
}
