//! The provenance daemon: one shared store, many concurrent sessions.
//!
//! # Threading model
//!
//! One non-blocking accept thread hands each admitted connection to a
//! dedicated *session* thread. A session that opens an ingest stream gains
//! an *applier* thread fed through a bounded queue; queries run inline on
//! the session thread (the store's reads are lock-free snapshot pins, so
//! query concurrency needs no extra machinery).
//!
//! # Backpressure ladder
//!
//! ```text
//! socket ──read──▶ session thread ──bounded queue──▶ applier ──▶ WAL group commit
//! ```
//!
//! The session thread moves each ingest batch into a
//! `sync_channel(queue_depth)`. When the applier falls behind (slow
//! fsync), the queue fills, `try_send` fails, `serve.backpressure_waits`
//! ticks, and the session *blocks* on `send` — it stops reading the
//! socket, the kernel's receive window fills, and the slow fsync is felt
//! by the writing client as a stalled connection. No unbounded buffering
//! anywhere on the path.
//!
//! The applier drains whatever is queued, applies every batch, performs
//! **one** `sync_wal` for the group, and only then acks each batch — an
//! acked batch is durable by construction.
//!
//! # Drain state machine
//!
//! `begin_drain` (SIGTERM, ctrl-c, or a `SHUTDOWN` frame) journals
//! `DrainStarted`, flips the draining flag, and from then on: the accept
//! loop exits; sessions finish the request in flight, drain and ack their
//! ingest queues, and close; `shutdown` waits for the session count to hit
//! zero (bounded by the drain deadline), fsyncs, snapshots, and returns.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use prov_engine::{Clock, ClockSource, SystemClock, TraceSink};
use prov_model::{ProcessorName, RunId};
use prov_obs::{Counter, Gauge, JournalEvent, Obs, QueryCtx, TimeSource};
use prov_store::SharedStore;

use crate::execute::{execute_query, ExecError};
use crate::protocol::{self as p, ServeErrorMsg};
use crate::ServeError;

/// Tuning knobs for one daemon instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission bound: connections beyond this are refused with a typed
    /// `busy` error instead of queueing.
    pub max_connections: usize,
    /// Depth of each session's bounded ingest queue (batches).
    pub queue_depth: usize,
    /// Default per-query deadline (ms); `None` means unbounded unless the
    /// request carries its own.
    pub default_deadline_ms: Option<u64>,
    /// Sessions idle longer than this are reaped; `0` disables reaping.
    pub idle_timeout_ms: u64,
    /// How long `shutdown` waits for sessions to finish before forcing.
    pub drain_deadline_ms: u64,
    /// The clock driving deadlines and idle reaping — inject a
    /// `VirtualClock` to test both deterministically.
    pub clock: Arc<dyn Clock>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_connections: 64,
            queue_depth: 64,
            default_deadline_ms: None,
            idle_timeout_ms: 30_000,
            drain_deadline_ms: 5_000,
            clock: Arc::new(SystemClock),
        }
    }
}

/// What `shutdown` observed while draining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// `true` if the drain deadline passed with sessions still active.
    pub forced: bool,
    /// Sessions still active when the wait ended (0 on a clean drain).
    pub active_at_exit: u64,
}

/// Counter/gauge handles for the `serve.*` metric family, registered on
/// the daemon's [`Obs`] registry at startup.
#[derive(Debug, Clone)]
struct ServeMetrics {
    conns_accepted: Counter,
    conns_refused: Counter,
    queries: Counter,
    request_timeouts: Counter,
    backpressure_waits: Counter,
    ingest_batches: Counter,
    active_conns: Gauge,
    draining: Gauge,
}

impl ServeMetrics {
    fn register(obs: &Obs) -> Self {
        ServeMetrics {
            conns_accepted: obs.metrics.counter("serve.conns_accepted"),
            conns_refused: obs.metrics.counter("serve.conns_refused"),
            queries: obs.metrics.counter("serve.queries"),
            request_timeouts: obs.metrics.counter("serve.request_timeouts"),
            backpressure_waits: obs.metrics.counter("serve.backpressure_waits"),
            ingest_batches: obs.metrics.counter("serve.ingest_batches"),
            active_conns: obs.metrics.gauge("serve.active_conns"),
            draining: obs.metrics.gauge("serve.draining"),
        }
    }
}

struct Shared {
    store: SharedStore,
    obs: Obs,
    cfg: ServeConfig,
    active: AtomicU64,
    draining: AtomicBool,
    metrics: ServeMetrics,
}

impl Shared {
    fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            let active = self.active.load(Ordering::SeqCst);
            self.obs.journal.record(JournalEvent::DrainStarted { active });
            self.metrics.draining.set(1);
        }
    }
}

/// Decrements the live-session count even if the session panics.
struct SessionGuard(Arc<Shared>);

impl Drop for SessionGuard {
    fn drop(&mut self) {
        let left = self.0.active.fetch_sub(1, Ordering::SeqCst).saturating_sub(1);
        self.0.metrics.active_conns.set(left);
    }
}

/// A running daemon. Dropping it begins a drain but does not wait; call
/// [`ProvServer::shutdown`] for the orderly fsync-snapshot-exit path.
pub struct ProvServer {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl std::fmt::Debug for ProvServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProvServer")
            .field("addr", &self.addr)
            .field("active", &self.active())
            .field("draining", &self.draining())
            .finish()
    }
}

impl ProvServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting.
    pub fn start(store: SharedStore, obs: Obs, cfg: ServeConfig, addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let metrics = ServeMetrics::register(&obs);
        let shared = Arc::new(Shared {
            store,
            obs,
            cfg,
            active: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            metrics,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(ProvServer { shared, accept: Some(accept), addr: local })
    }

    /// The bound address (resolved port when started with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live session count.
    pub fn active(&self) -> u64 {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Whether a drain has begun.
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Flips the daemon into draining mode: stop accepting, let sessions
    /// finish and ack queued ingest, refuse new requests with
    /// `shutting_down`. Idempotent; journals `DrainStarted` once. This is
    /// exactly what the SIGTERM/ctrl-c path calls.
    pub fn begin_drain(&self) {
        self.shared.begin_drain();
    }

    /// Drains and shuts down: waits (up to the drain deadline) for
    /// sessions to finish, then fsyncs the WAL and writes a snapshot so
    /// the next open replays nothing. Returns what the drain observed.
    pub fn shutdown(mut self) -> DrainReport {
        self.begin_drain();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let deadline = Duration::from_millis(self.shared.cfg.drain_deadline_ms);
        let started = std::time::Instant::now();
        while self.active() > 0 && started.elapsed() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let active = self.active();
        let _ = self.shared.store.sync_wal();
        let _ = self.shared.store.snapshot();
        DrainReport { forced: active > 0, active_at_exit: active }
    }
}

impl Drop for ProvServer {
    fn drop(&mut self) {
        self.shared.begin_drain();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => admit(stream, &shared),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Admission control: a compare-and-swap loop against the connection
/// limit, so two racing accepts can never both take the last slot.
fn admit(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let limit = shared.cfg.max_connections as u64;
    loop {
        let active = shared.active.load(Ordering::SeqCst);
        if active >= limit {
            shared.metrics.conns_refused.inc();
            shared.obs.journal.record(JournalEvent::ConnRefused { active, limit });
            let msg = ServeErrorMsg {
                code: "busy".into(),
                message: format!("connection limit reached ({active}/{limit})"),
                active: Some(active),
                limit: Some(limit),
            };
            let _ = p::write_json(&mut stream, p::TAG_ERR, &msg);
            return;
        }
        if shared
            .active
            .compare_exchange(active, active + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            break;
        }
    }
    let now_active = shared.active.load(Ordering::SeqCst);
    shared.metrics.conns_accepted.inc();
    shared.metrics.active_conns.set(now_active);
    shared.obs.journal.record(JournalEvent::ConnAccepted { active: now_active });
    let session_shared = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name("serve-session".into())
        .spawn(move || session(stream, session_shared));
    if spawned.is_err() {
        // Could not spawn: give the slot back (the guard never existed).
        let left = shared.active.fetch_sub(1, Ordering::SeqCst).saturating_sub(1);
        shared.metrics.active_conns.set(left);
    }
}

/// One open ingest stream: the bounded queue into the applier thread.
struct IngestPipe {
    tx: Option<SyncSender<p::IngestBatch>>,
    applier: Option<JoinHandle<()>>,
}

impl IngestPipe {
    /// Closes the queue and waits for the applier to drain and ack
    /// everything still in it.
    fn close(mut self) {
        drop(self.tx.take());
        if let Some(h) = self.applier.take() {
            let _ = h.join();
        }
    }
}

fn session(mut stream: TcpStream, shared: Arc<Shared>) {
    let _guard = SessionGuard(Arc::clone(&shared));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    {
        let welcome = p::Welcome { proto: p::PROTO_VERSION, max_frame: p::MAX_FRAME_LEN };
        if p::write_json(&mut *writer.lock(), p::TAG_WELCOME, &welcome).is_err() {
            return;
        }
    }
    let clock = Arc::clone(&shared.cfg.clock);
    let mut pipes: HashMap<u64, IngestPipe> = HashMap::new();
    let mut last_active = clock.now_micros();
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let (tag, payload) = match p::read_msg(&mut stream) {
            Ok(Some(msg)) => msg,
            Ok(None) => break,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                let idle_ms = shared.cfg.idle_timeout_ms;
                if idle_ms > 0
                    && clock.now_micros().saturating_sub(last_active) > idle_ms.saturating_mul(1000)
                {
                    break; // reaped
                }
                continue;
            }
            Err(e) => {
                if p::frame_too_large(&e).is_some() {
                    let msg = ServeErrorMsg::new("bad_request", e.to_string());
                    let _ = p::write_json(&mut *writer.lock(), p::TAG_ERR, &msg);
                }
                break;
            }
        };
        last_active = clock.now_micros();
        if !handle_frame(tag, &payload, &writer, &mut pipes, &shared, &clock) {
            break;
        }
    }
    // Drain: close every open pipe so queued batches are applied, group-
    // committed, and acked before the socket goes away.
    for (_, pipe) in pipes.drain() {
        pipe.close();
    }
}

/// Dispatches one request frame; returns `false` to end the session.
fn handle_frame(
    tag: u8,
    payload: &[u8],
    writer: &Arc<Mutex<TcpStream>>,
    pipes: &mut HashMap<u64, IngestPipe>,
    shared: &Arc<Shared>,
    clock: &Arc<dyn Clock>,
) -> bool {
    // A request that raced the drain flag still gets a typed refusal
    // (pings and finishes are allowed through so clients can wind down).
    if shared.draining.load(Ordering::SeqCst) && (tag == p::TAG_INGEST_BEGIN || tag == p::TAG_QUERY)
    {
        let msg = ServeErrorMsg::new("shutting_down", "daemon is draining");
        let _ = p::write_json(&mut *writer.lock(), p::TAG_ERR, &msg);
        return true;
    }
    match tag {
        p::TAG_PING => {
            let pong = p::Pong {
                draining: shared.draining.load(Ordering::SeqCst),
                active: shared.active.load(Ordering::SeqCst),
            };
            p::write_json(&mut *writer.lock(), p::TAG_PONG, &pong).is_ok()
        }
        p::TAG_SHUTDOWN => {
            shared.begin_drain();
            let pong = p::Pong { draining: true, active: shared.active.load(Ordering::SeqCst) };
            let _ = p::write_json(&mut *writer.lock(), p::TAG_PONG, &pong);
            false
        }
        p::TAG_INGEST_BEGIN => {
            let begin: p::IngestBegin = match p::decode(payload) {
                Ok(b) => b,
                Err(e) => return bad_request(writer, e),
            };
            let name = ProcessorName::from(begin.workflow.as_str());
            if let Some(json) = begin.workflow_json {
                shared.store.register_workflow(&name, json);
            }
            let run = shared.store.begin_run(&name);
            let (tx, rx) = std::sync::mpsc::sync_channel(shared.cfg.queue_depth.max(1));
            let applier_shared = Arc::clone(shared);
            let applier_writer = Arc::clone(writer);
            let applier = std::thread::Builder::new()
                .name("serve-applier".into())
                .spawn(move || applier(run, rx, applier_writer, applier_shared));
            match applier {
                Ok(handle) => {
                    pipes.insert(run.0, IngestPipe { tx: Some(tx), applier: Some(handle) });
                    let begun = p::IngestBegun { run: run.0 };
                    p::write_json(&mut *writer.lock(), p::TAG_INGEST_BEGUN, &begun).is_ok()
                }
                Err(e) => {
                    let msg = ServeErrorMsg::new("ingest_failed", e.to_string());
                    let _ = p::write_json(&mut *writer.lock(), p::TAG_ERR, &msg);
                    false
                }
            }
        }
        p::TAG_INGEST_BATCH => {
            let batch: p::IngestBatch = match p::decode(payload) {
                Ok(b) => b,
                Err(e) => return bad_request(writer, e),
            };
            let Some(pipe) = pipes.get(&batch.run) else {
                let msg = ServeErrorMsg::new(
                    "bad_request",
                    format!("run {} has no open ingest", batch.run),
                );
                let _ = p::write_json(&mut *writer.lock(), p::TAG_ERR, &msg);
                return true;
            };
            let Some(tx) = pipe.tx.as_ref() else { return true };
            shared.metrics.ingest_batches.inc();
            // Backpressure: a full queue means the WAL group commit is
            // behind. Count the stall, then block — which stops this
            // session reading its socket, pushing the stall to the client.
            match tx.try_send(batch) {
                Ok(()) => true,
                Err(TrySendError::Full(batch)) => {
                    shared.metrics.backpressure_waits.inc();
                    tx.send(batch).is_ok()
                }
                Err(TrySendError::Disconnected(_)) => {
                    let msg = ServeErrorMsg::new("ingest_failed", "applier stopped");
                    let _ = p::write_json(&mut *writer.lock(), p::TAG_ERR, &msg);
                    false
                }
            }
        }
        p::TAG_INGEST_FINISH => {
            let finish: p::IngestFinish = match p::decode(payload) {
                Ok(f) => f,
                Err(e) => return bad_request(writer, e),
            };
            let Some(pipe) = pipes.remove(&finish.run) else {
                let msg = ServeErrorMsg::new(
                    "bad_request",
                    format!("run {} has no open ingest", finish.run),
                );
                let _ = p::write_json(&mut *writer.lock(), p::TAG_ERR, &msg);
                return true;
            };
            pipe.close(); // drains + acks every queued batch
            let run = RunId(finish.run);
            shared.store.finish_run(run);
            let _ = shared.store.sync_wal();
            let ack = p::IngestAck {
                run: finish.run,
                seq: finish.seq,
                durable_frames: shared.store.repl_position().durable_frames,
            };
            p::write_json(&mut *writer.lock(), p::TAG_INGEST_ACK, &ack).is_ok()
        }
        p::TAG_QUERY => {
            let req: p::ServeQuery = match p::decode(payload) {
                Ok(q) => q,
                Err(e) => return bad_request(writer, e),
            };
            shared.metrics.queries.inc();
            let budget_ms = req.deadline_ms.or(shared.cfg.default_deadline_ms);
            let mut ctx = QueryCtx::new(req.query.clone());
            let mut deadline_micros = 0u64;
            if let Some(ms) = budget_ms {
                let source: Arc<dyn TimeSource> = Arc::new(ClockSource(Arc::clone(clock)));
                deadline_micros = clock.now_micros().saturating_add(ms.saturating_mul(1000));
                ctx = ctx.with_clock_deadline(source, deadline_micros);
            }
            match execute_query(&shared.store, &req, &shared.obs, &ctx) {
                Ok(answers) => {
                    let ok = p::ServeQueryOk { answers };
                    p::write_json(&mut *writer.lock(), p::TAG_QUERY_OK, &ok).is_ok()
                }
                Err(ExecError::Timeout { query }) => {
                    shared.metrics.request_timeouts.inc();
                    shared.obs.journal.record(JournalEvent::RequestTimeout {
                        trace: ctx.trace,
                        query: query.clone(),
                        deadline_micros,
                    });
                    let msg = ServeErrorMsg::new(
                        "timeout",
                        format!("deadline exceeded executing {query:?}"),
                    );
                    let _ = p::write_json(&mut *writer.lock(), p::TAG_ERR, &msg);
                    true
                }
                Err(ExecError::Failed(message)) => {
                    let msg = ServeErrorMsg::new("query_failed", message);
                    let _ = p::write_json(&mut *writer.lock(), p::TAG_ERR, &msg);
                    true
                }
            }
        }
        other => {
            let msg = ServeErrorMsg::new("bad_request", format!("unknown request tag {other:#x}"));
            let _ = p::write_json(&mut *writer.lock(), p::TAG_ERR, &msg);
            true
        }
    }
}

fn bad_request(writer: &Arc<Mutex<TcpStream>>, e: impl std::fmt::Display) -> bool {
    let msg = ServeErrorMsg::new("bad_request", e.to_string());
    let _ = p::write_json(&mut *writer.lock(), p::TAG_ERR, &msg);
    true
}

/// The applier: drains the session's bounded queue, applies every queued
/// batch, performs one WAL group commit, then acks each batch. Exits when
/// the session drops the sender (finish, disconnect, or drain) — after
/// draining what remains, so nothing queued is ever silently dropped.
fn applier(
    run: RunId,
    rx: Receiver<p::IngestBatch>,
    writer: Arc<Mutex<TcpStream>>,
    shared: Arc<Shared>,
) {
    while let Ok(first) = rx.recv() {
        let mut group = vec![first];
        while let Ok(next) = rx.try_recv() {
            group.push(next);
        }
        let mut seqs = Vec::with_capacity(group.len());
        for batch in group {
            seqs.push(batch.seq);
            shared.store.record_batch(run, batch.events);
        }
        // One fsync for the whole group: the ack below is a durability
        // promise, so it must not precede this.
        let durable = shared.store.sync_wal().is_ok();
        let durable_frames = shared.store.repl_position().durable_frames;
        let mut w = writer.lock();
        for seq in seqs {
            if durable {
                let ack = p::IngestAck { run: run.0, seq, durable_frames };
                let _ = p::write_json(&mut *w, p::TAG_INGEST_ACK, &ack);
            } else {
                let msg = ServeErrorMsg::new("ingest_failed", "WAL sync failed; batch not durable");
                let _ = p::write_json(&mut *w, p::TAG_ERR, &msg);
            }
        }
    }
}

/// Maps a typed reply-stream error message to [`ServeError`].
pub(crate) fn error_from_msg(msg: ServeErrorMsg) -> ServeError {
    match msg.code.as_str() {
        "busy" => {
            ServeError::Busy { active: msg.active.unwrap_or(0), limit: msg.limit.unwrap_or(0) }
        }
        "timeout" => ServeError::Timeout { message: msg.message },
        "shutting_down" => ServeError::ShuttingDown,
        _ => ServeError::Remote { code: msg.code, message: msg.message },
    }
}
