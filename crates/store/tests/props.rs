//! Property tests for the trace store: index/scan consistency and WAL
//! round-trips under random event streams.

use proptest::prelude::*;

use prov_engine::{PortBinding, TraceEvent, TraceSink, XferEvent, XformEvent};
use prov_model::{Index, PortRef, ProcessorName, RunId, Value};
use prov_store::TraceStore;

/// A random stream of events over a small universe of processors/ports.
#[derive(Debug, Clone)]
enum Ev {
    Xform { proc: u8, q: Vec<u32>, pi: Vec<u32>, val: i64 },
    Xfer { src: u8, dst: u8, idx: Vec<u32>, val: i64 },
}

fn arb_index() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..3, 0..3)
}

fn arb_event() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0u8..3, arb_index(), arb_index(), 0i64..5).prop_map(|(proc, q, pi, val)| Ev::Xform {
            proc,
            q,
            pi,
            val
        }),
        (0u8..3, 0u8..3, arb_index(), 0i64..5).prop_map(|(src, dst, idx, val)| Ev::Xfer {
            src,
            dst,
            idx,
            val
        }),
    ]
}

fn proc_name(i: u8) -> ProcessorName {
    ProcessorName::from(format!("P{i}").as_str())
}

fn apply(store: &TraceStore, run: RunId, events: &[Ev]) {
    for (n, ev) in events.iter().enumerate() {
        match ev {
            Ev::Xform { proc, q, pi, val } => store.record_xform(
                run,
                XformEvent {
                    processor: proc_name(*proc),
                    invocation: n as u32,
                    inputs: vec![PortBinding::new("x", Index::from_slice(pi), Value::int(*val))],
                    outputs: vec![PortBinding::new("y", Index::from_slice(q), Value::int(*val))],
                },
            ),
            Ev::Xfer { src, dst, idx, val } => store.record_xfer(
                run,
                XferEvent {
                    src: PortRef { processor: proc_name(*src), port: "y".into() },
                    src_index: Index::from_slice(idx),
                    dst: PortRef { processor: proc_name(*dst), port: "x".into() },
                    dst_index: Index::from_slice(idx),
                    value: Value::int(*val),
                },
            ),
        }
    }
}

/// The same event construction as [`apply`], as an owned [`TraceEvent`]
/// (the shape `record_batch` ingests).
fn to_trace_event(n: usize, ev: &Ev) -> TraceEvent {
    match ev {
        Ev::Xform { proc, q, pi, val } => TraceEvent::Xform(XformEvent {
            processor: proc_name(*proc),
            invocation: n as u32,
            inputs: vec![PortBinding::new("x", Index::from_slice(pi), Value::int(*val))],
            outputs: vec![PortBinding::new("y", Index::from_slice(q), Value::int(*val))],
        }),
        Ev::Xfer { src, dst, idx, val } => TraceEvent::Xfer(XferEvent {
            src: PortRef { processor: proc_name(*src), port: "y".into() },
            src_index: Index::from_slice(idx),
            dst: PortRef { processor: proc_name(*dst), port: "x".into() },
            dst_index: Index::from_slice(idx),
            value: Value::int(*val),
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Indexed overlap lookups agree with a brute-force definition over
    /// the raw events.
    #[test]
    fn indexed_lookup_equals_brute_force(events in proptest::collection::vec(arb_event(), 1..40),
                                         probe_proc in 0u8..3,
                                         probe_idx in arb_index()) {
        let store = TraceStore::in_memory();
        let run = store.begin_run(&"wf".into());
        apply(&store, run, &events);

        let probe = Index::from_slice(&probe_idx);
        let got: Vec<u32> = store
            .xforms_producing(run, &proc_name(probe_proc), "y", &probe)
            .into_iter()
            .map(|r| r.invocation)
            .collect();

        let mut expected: Vec<u32> = events
            .iter()
            .enumerate()
            .filter_map(|(n, e)| match e {
                Ev::Xform { proc, q, .. } if *proc == probe_proc => {
                    let qi = Index::from_slice(q);
                    (qi.is_prefix_of(&probe) || probe.is_prefix_of(&qi)).then_some(n as u32)
                }
                _ => None,
            })
            .collect();
        let mut got_sorted = got.clone();
        got_sorted.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got_sorted, expected);
    }

    /// The same, for xfer destinations.
    #[test]
    fn xfer_lookup_equals_brute_force(events in proptest::collection::vec(arb_event(), 1..40),
                                      probe_proc in 0u8..3,
                                      probe_idx in arb_index()) {
        let store = TraceStore::in_memory();
        let run = store.begin_run(&"wf".into());
        apply(&store, run, &events);

        let probe = Index::from_slice(&probe_idx);
        let got = store.xfers_into(run, &proc_name(probe_proc), "x", &probe).len();
        let expected = events
            .iter()
            .filter(|e| match e {
                Ev::Xfer { dst, idx, .. } if *dst == probe_proc => {
                    let di = Index::from_slice(idx);
                    di.is_prefix_of(&probe) || probe.is_prefix_of(&di)
                }
                _ => false,
            })
            .count();
        prop_assert_eq!(got, expected);
    }

    /// Durable stores replay to exactly the same queryable state.
    #[test]
    fn wal_replay_reproduces_state(events in proptest::collection::vec(arb_event(), 1..30)) {
        let dir = std::env::temp_dir().join("prov-store-props");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!(
            "replay-{}-{:x}.wal",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        let _ = std::fs::remove_file(&path);

        let run;
        {
            let store = TraceStore::open(&path).unwrap();
            run = store.begin_run(&"wf".into());
            apply(&store, run, &events);
            store.finish_run(run);
        }
        let replayed = TraceStore::open(&path).unwrap();
        let fresh = TraceStore::in_memory();
        let run2 = fresh.begin_run(&"wf".into());
        apply(&fresh, run2, &events);

        prop_assert_eq!(replayed.trace_record_count(run), fresh.trace_record_count(run2));
        prop_assert_eq!(replayed.value_count(), fresh.value_count());
        // Spot-check a few lookups agree.
        for p in 0..3u8 {
            let a = replayed.xforms_producing(run, &proc_name(p), "y", &Index::empty()).len();
            let b = fresh.xforms_producing(run2, &proc_name(p), "y", &Index::empty()).len();
            prop_assert_eq!(a, b);
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Multi-run isolation: events of one run are never visible in another.
    #[test]
    fn runs_are_isolated(ev1 in proptest::collection::vec(arb_event(), 1..20),
                         ev2 in proptest::collection::vec(arb_event(), 1..20)) {
        let store = TraceStore::in_memory();
        let r1 = store.begin_run(&"wf".into());
        apply(&store, r1, &ev1);
        let r2 = store.begin_run(&"wf".into());
        apply(&store, r2, &ev2);

        for p in 0..3u8 {
            let n1 = store.xforms_producing(r1, &proc_name(p), "y", &Index::empty()).len();
            let expected1 = ev1.iter().filter(|e| matches!(e, Ev::Xform { proc, .. } if *proc == p)).count();
            prop_assert_eq!(n1, expected1);
        }
        prop_assert_eq!(
            store.trace_record_count(r1) + store.trace_record_count(r2),
            store.total_record_count()
        );
    }

    /// Batched ingest is observationally identical to event-at-a-time
    /// ingest: same rows (ids included), same value table, same query
    /// answers and the same access-statistics deltas for those queries —
    /// however the stream is cut into batches.
    #[test]
    fn batched_ingest_equals_event_at_a_time(events in proptest::collection::vec(arb_event(), 1..40),
                                             chunk in 1usize..9,
                                             probe_proc in 0u8..3,
                                             probe_idx in arb_index()) {
        let one_by_one = TraceStore::in_memory();
        let r1 = one_by_one.begin_run(&"wf".into());
        apply(&one_by_one, r1, &events);

        let batched = TraceStore::in_memory();
        let r2 = batched.begin_run(&"wf".into());
        let stream: Vec<_> = events.iter().enumerate().map(|(n, e)| to_trace_event(n, e)).collect();
        for batch in stream.chunks(chunk) {
            batched.record_batch(r2, batch.to_vec());
        }

        prop_assert_eq!(one_by_one.xforms_of_run(r1), batched.xforms_of_run(r2));
        prop_assert_eq!(one_by_one.xfers_of_run(r1), batched.xfers_of_run(r2));
        prop_assert_eq!(one_by_one.value_count(), batched.value_count());
        prop_assert_eq!(one_by_one.index_key_counts(), batched.index_key_counts());

        let probe = Index::from_slice(&probe_idx);
        let before1 = one_by_one.stats().snapshot();
        let a1 = one_by_one.xforms_producing(r1, &proc_name(probe_proc), "y", &probe);
        let w1 = one_by_one.stats().snapshot().since(before1);
        let before2 = batched.stats().snapshot();
        let a2 = batched.xforms_producing(r2, &proc_name(probe_proc), "y", &probe);
        let w2 = batched.stats().snapshot().since(before2);
        prop_assert_eq!(a1, a2);
        prop_assert_eq!(w1.index_lookups, w2.index_lookups);
        prop_assert_eq!(w1.records_read, w2.records_read);
    }

    /// A WAL written with group-committed batch frames replays to exactly
    /// the contents produced by event-at-a-time ingest of the same stream.
    #[test]
    fn wal_batch_replay_reproduces_exact_contents(events in proptest::collection::vec(arb_event(), 1..30),
                                                  chunk in 1usize..9) {
        let dir = std::env::temp_dir().join("prov-store-props");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!(
            "batch-replay-{}-{:x}.wal",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        let _ = std::fs::remove_file(&path);

        let run;
        {
            let durable = TraceStore::open(&path).unwrap();
            run = durable.begin_run(&"wf".into());
            let stream: Vec<_> =
                events.iter().enumerate().map(|(n, e)| to_trace_event(n, e)).collect();
            for batch in stream.chunks(chunk) {
                durable.record_batch(run, batch.to_vec());
            }
            durable.finish_run(run);
        }

        let replayed = TraceStore::open(&path).unwrap();
        let fresh = TraceStore::in_memory();
        let r2 = fresh.begin_run(&"wf".into());
        apply(&fresh, r2, &events);

        prop_assert_eq!(replayed.xforms_of_run(run), fresh.xforms_of_run(r2));
        prop_assert_eq!(replayed.xfers_of_run(run), fresh.xfers_of_run(r2));
        prop_assert_eq!(replayed.value_count(), fresh.value_count());
        prop_assert_eq!(replayed.index_key_counts(), fresh.index_key_counts());
        let _ = std::fs::remove_file(&path);
    }
}
