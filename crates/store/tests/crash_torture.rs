//! Crash torture: ingest through a fault-injecting WAL backend that tears
//! the file at an arbitrary byte offset, then reopen and assert the store
//! recovers **exactly** the durable prefix — every frame fully on disk
//! before the crash, nothing after it, no panic, and the damage reported
//! through `recovered_tail` / the `wal.torn_tails` counter.
//!
//! Two drivers share one oracle:
//!
//! * a proptest sweep (deterministic — the vendored proptest seeds from
//!   the test name), covering offsets from 0 to past end-of-log;
//! * a randomized pass seeded from `CRASH_TORTURE_SEED` (decimal u64; a
//!   fixed default when unset), which CI runs once with a random seed.

use proptest::prelude::*;

use prov_engine::{PortBinding, TraceEvent, TraceSink, XformEvent};
use prov_model::{Index, ProcessorName, RunId, Value};
use prov_store::{FaultPlan, StoreError, TailState, TraceStore};

/// One synthetic xform event, distinguishable by `n`.
fn ev(n: u32) -> TraceEvent {
    TraceEvent::Xform(XformEvent {
        processor: ProcessorName::from(format!("P{}", n % 3).as_str()),
        invocation: n,
        inputs: vec![PortBinding::new("x", Index::single(n), Value::int(i64::from(n)))],
        outputs: vec![PortBinding::new("y", Index::single(n), Value::str(&format!("out-{n}")))],
    })
}

fn tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("prov-store-crash-torture");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Parses the byte offsets at which each well-formed frame ends.
fn frame_ends(bytes: &[u8]) -> Vec<u64> {
    let mut ends = Vec::new();
    let mut off = 0usize;
    while off + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 8 + len;
        assert!(off <= bytes.len(), "reference log is not well-formed");
        ends.push(off as u64);
    }
    ends
}

/// Ingests `events` in `chunk`-sized batches into `store` as run 0.
fn ingest(store: &TraceStore, events: &[TraceEvent], chunk: usize) {
    let run = store.begin_run(&"wf".into());
    assert_eq!(run, RunId(0));
    for batch in events.chunks(chunk) {
        store.record_batch(run, batch.to_vec());
    }
    store.finish_run(run);
}

/// The oracle: crash ingest at byte `offset`, reopen, compare against the
/// frame-aligned durable prefix of an identical fault-free run.
fn torture_case(tag: &str, events: &[TraceEvent], chunk: usize, offset: u64) {
    // Fault-free reference: same records, same bytes (encoding and run-id
    // assignment are deterministic).
    let ref_path = tmp(&format!("{tag}-ref"));
    {
        let store = TraceStore::open(&ref_path).unwrap();
        ingest(&store, events, chunk);
        store.durability().unwrap();
    }
    let ref_bytes = std::fs::read(&ref_path).unwrap();
    let total = ref_bytes.len() as u64;
    let ends = frame_ends(&ref_bytes);

    // Torture run: identical ingest over a file torn at `offset`.
    let t_path = tmp(&format!("{tag}-torture"));
    {
        let store = TraceStore::open_with_fault(&t_path, FaultPlan::crash_at(offset)).unwrap();
        ingest(&store, events, chunk);
        if offset < total {
            // The crash fired: the writer must be poisoned, not silent.
            assert!(
                matches!(store.durability(), Err(StoreError::WalPoisoned { .. })),
                "crash at {offset}/{total} did not poison the writer"
            );
        } else {
            store.durability().unwrap();
        }
    }
    let cut = offset.min(total);
    assert_eq!(std::fs::metadata(&t_path).unwrap().len(), cut, "torn file length");

    // Reopen: recovery must never panic and must yield exactly the frames
    // wholly inside the cut.
    let reopened = TraceStore::open(&t_path).unwrap();
    let durable_frames = ends.iter().filter(|&&e| e <= cut).count();
    let on_boundary = cut == 0 || ends.contains(&cut);
    let tail = reopened.recovered_tail().unwrap();
    if on_boundary {
        assert_eq!(tail, TailState::Clean, "cut at {cut} is frame-aligned");
        assert_eq!(reopened.wal_metrics().torn_tails.get(), 0);
    } else {
        let torn_at = ends.iter().copied().filter(|&e| e <= cut).max().unwrap_or(0);
        assert_eq!(tail, TailState::TornTail { offset: torn_at });
        assert_eq!(reopened.wal_metrics().torn_tails.get(), 1);
    }

    // Frame layout of the log: BeginRun, then one Batch per chunk, then
    // FinishRun. Reconstruct the expected durable state from the count.
    let batches: Vec<&[TraceEvent]> = events.chunks(chunk).collect();
    if durable_frames == 0 {
        assert!(reopened.runs().is_empty(), "no durable frames but runs recovered");
        return;
    }
    let runs = reopened.runs();
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].finished, durable_frames == ends.len(), "FinishRun durability");

    let durable_batches = (durable_frames - 1).min(batches.len());
    let expected = TraceStore::in_memory();
    let run = expected.begin_run(&"wf".into());
    for batch in &batches[..durable_batches] {
        expected.record_batch(run, batch.to_vec());
    }
    assert_eq!(reopened.xforms_of_run(RunId(0)), expected.xforms_of_run(run));
    assert_eq!(reopened.xfers_of_run(RunId(0)), expected.xfers_of_run(run));
    assert_eq!(reopened.trace_record_count(RunId(0)), expected.trace_record_count(run));

    // The store keeps working after recovery: appends land cleanly.
    let r2 = reopened.begin_run(&"wf".into());
    reopened.finish_run(r2);
    reopened.durability().unwrap();
    let again = TraceStore::open(&t_path).unwrap();
    assert_eq!(again.recovered_tail(), Some(TailState::Clean));
    assert_eq!(again.runs().len(), 2);

    let _ = std::fs::remove_file(&ref_path);
    let _ = std::fs::remove_file(&t_path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sweep crash offsets across (and past) the whole log.
    #[test]
    fn crash_at_arbitrary_offset_recovers_durable_prefix(
        n_events in 1u32..25,
        chunk in 1usize..6,
        cut_permille in 0u32..1100,
    ) {
        let events: Vec<TraceEvent> = (0..n_events).map(ev).collect();
        // Size the reference once per case to translate the permille cut
        // into a byte offset that can also land past end-of-log.
        let probe = tmp("probe");
        let total = {
            let store = TraceStore::open(&probe).unwrap();
            ingest(&store, &events, chunk);
            std::fs::metadata(&probe).unwrap().len()
        };
        let _ = std::fs::remove_file(&probe);
        let offset = total * u64::from(cut_permille) / 1000;
        torture_case("prop", &events, chunk, offset);
    }
}

/// Splitmix64 — a tiny deterministic generator for the seeded pass.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The seeded pass CI runs twice: once as-is (fixed default seed) and once
/// with `CRASH_TORTURE_SEED=$RANDOM` for fresh coverage. The seed is
/// printed so any failure is replayable.
#[test]
fn seeded_crash_offsets_recover_durable_prefix() {
    let seed = std::env::var("CRASH_TORTURE_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xC0FFEE);
    eprintln!("crash-torture seed: {seed} (replay with CRASH_TORTURE_SEED={seed})");
    let mut rng = Rng(seed);
    for case in 0..8 {
        let n_events = 1 + (rng.next() % 30) as u32;
        let chunk = 1 + (rng.next() % 7) as usize;
        let events: Vec<TraceEvent> = (0..n_events).map(ev).collect();
        let probe = tmp(&format!("seed-probe-{case}"));
        let total = {
            let store = TraceStore::open(&probe).unwrap();
            ingest(&store, &events, chunk);
            std::fs::metadata(&probe).unwrap().len()
        };
        let _ = std::fs::remove_file(&probe);
        // Raw offset anywhere in [0, total + 32]: includes mid-header,
        // mid-payload, frame-aligned and past-the-end cuts.
        let offset = rng.next() % (total + 33);
        torture_case(&format!("seed-{case}"), &events, chunk, offset);
    }
}

/// A zero-length WAL file (created but never written, e.g. a crash before
/// the first append) is a *clean* empty log — not a torn or corrupt one.
#[test]
fn empty_wal_file_recovers_clean() {
    let path = tmp("empty");
    std::fs::write(&path, b"").unwrap();
    let store = TraceStore::open(&path).unwrap();
    assert_eq!(store.recovered_tail(), Some(TailState::Clean));
    assert_eq!(store.wal_metrics().torn_tails.get(), 0);
    assert_eq!(store.wal_metrics().corrupt_frames.get(), 0);
    assert!(store.runs().is_empty());
    // And the store works: the first run lands as usual.
    let run = store.begin_run(&"wf".into());
    store.finish_run(run);
    store.durability().unwrap();
    let _ = std::fs::remove_file(&path);
}

/// A WAL holding only the snapshot-marker header frame (the state right
/// after a compaction, before any new record) is clean, replays zero
/// frames, and recovers the snapshotted state.
#[test]
fn marker_only_wal_recovers_clean() {
    let path = tmp("marker-only");
    {
        let store = TraceStore::open(&path).unwrap();
        let run = store.begin_run(&"wf".into());
        store.record_batch(run, vec![ev(0), ev(1)]);
        store.finish_run(run);
        store.snapshot().unwrap(); // WAL is now exactly one marker frame
        store.durability().unwrap();
    }
    let reopened = TraceStore::open(&path).unwrap();
    assert_eq!(reopened.recovered_tail(), Some(TailState::Clean));
    assert_eq!(reopened.wal_metrics().torn_tails.get(), 0);
    assert_eq!(reopened.wal_metrics().corrupt_frames.get(), 0);
    assert_eq!(reopened.wal_metrics().recovery_replayed_frames.get(), 0);
    assert_eq!(reopened.trace_record_count(RunId(0)), 2);
    assert!(reopened.runs()[0].finished);
    let _ = std::fs::remove_file(format!("{}.snap.1", path.display()));
    let _ = std::fs::remove_file(&path);
}

/// A WAL holding exactly one complete frame is a clean log of one record.
#[test]
fn exactly_one_frame_wal_recovers_clean() {
    let path = tmp("one-frame");
    {
        let store = TraceStore::open(&path).unwrap();
        store.begin_run(&"wf".into()); // one BeginRun frame, flushed on drop
    }
    let reopened = TraceStore::open(&path).unwrap();
    assert_eq!(reopened.recovered_tail(), Some(TailState::Clean));
    assert_eq!(reopened.wal_metrics().recovery_replayed_frames.get(), 1);
    assert_eq!(reopened.runs().len(), 1);
    assert!(!reopened.runs()[0].finished, "FinishRun was never recorded");
    let _ = std::fs::remove_file(&path);
}

/// An injected fsync failure must surface as a typed durability error —
/// never a panic — while the flushed bytes remain recoverable.
#[test]
fn fsync_failure_poisons_writer_with_typed_error() {
    let path = tmp("fsync");
    {
        let store = TraceStore::open_with_fault(&path, FaultPlan::fail_sync(1)).unwrap();
        let run = store.begin_run(&"wf".into());
        store.record_batch(run, vec![ev(0), ev(1)]);
        store.finish_run(run); // first sync: injected failure
        let err = store.durability().unwrap_err();
        assert!(matches!(err, StoreError::WalPoisoned { .. }));
        assert!(err.to_string().contains("injected fault"), "err: {err}");
    }
    // The flush inside `sync` preceded the injected fsync failure, so on
    // this (healthy) filesystem the frames are all in the file and replay;
    // the poisoning is about *reporting* — durability was never confirmed.
    let reopened = TraceStore::open(&path).unwrap();
    assert_eq!(reopened.trace_record_count(RunId(0)), 2);
    assert!(reopened.runs()[0].finished);
    let _ = std::fs::remove_file(&path);
}
