//! The index catalog: which access paths the store can serve, and how big
//! the indexed tables are.
//!
//! The paper's claim that "all of the queries on the traces involve the
//! use of indexes, with none requiring full table scans" is a property of
//! a *pair* — a compiled `LineagePlan` and the physical indexes present.
//! The catalog is the store's side of that contract: a small, copyable
//! description of the four composite indexes (§3.3's access paths) that a
//! static plan verifier can check a plan against without touching any
//! trace data. [`IndexCatalog::without`] drops an index from the catalog,
//! which is how tests (and `tprov explain --without-index`) model a store
//! that cannot serve a lookup — the verifier must then report the step as
//! a full scan rather than silently assuming coverage.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The four composite `(run, processor, port, index)` indexes of the
/// store, named after the binding side they cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexId {
    /// `(run, processor, output port, q)` → xform rows.
    XformOut,
    /// `(run, processor, input port, p_i)` → xform rows.
    XformIn,
    /// `(run, dst processor, dst port, p')` → xfer rows.
    XferDst,
    /// `(run, src processor, src port, p)` → xfer rows.
    XferSrc,
}

impl IndexId {
    /// All four indexes, in the store's canonical order.
    pub const ALL: [IndexId; 4] =
        [IndexId::XformOut, IndexId::XformIn, IndexId::XferDst, IndexId::XferSrc];

    /// Stable name used in CLI flags and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            IndexId::XformOut => "xform_out",
            IndexId::XformIn => "xform_in",
            IndexId::XferDst => "xfer_dst",
            IndexId::XferSrc => "xfer_src",
        }
    }

    /// Parses a stable name back into an id.
    pub fn parse(name: &str) -> Option<IndexId> {
        IndexId::ALL.into_iter().find(|id| id.name() == name)
    }

    fn pos(self) -> usize {
        match self {
            IndexId::XformOut => 0,
            IndexId::XformIn => 1,
            IndexId::XferDst => 2,
            IndexId::XferSrc => 3,
        }
    }
}

impl fmt::Display for IndexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// Manual serde: the ids serialize as their stable snake_case names (the
// vendored serde derive has no `rename_all = "snake_case"`).
impl Serialize for IndexId {
    fn to_json_value(&self) -> serde::json::Json {
        serde::json::Json::Str(self.name().to_string())
    }
}

impl Deserialize for IndexId {
    fn from_json_value(v: &serde::json::Json) -> Result<Self, serde::json::Error> {
        match v {
            serde::json::Json::Str(s) => IndexId::parse(s)
                .ok_or_else(|| serde::json::Error::custom(format!("unknown index id {s:?}"))),
            other => Err(serde::json::Error::expected("index id string", other)),
        }
    }
}

/// Cardinality of one `(run, processor, port)` slice of a composite
/// index — the statistics the static cost model feeds on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortCardinality {
    /// Distinct element indexes stored for the port.
    pub keys: u64,
    /// Row ids stored under those keys (≥ `keys`; several rows may share
    /// one key).
    pub rows: u64,
    /// Length of the longest stored element index.
    pub max_depth: usize,
}

/// What the store can serve: availability plus whole-index key counts for
/// each of the four composite indexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexCatalog {
    available: [bool; 4],
    key_counts: [u64; 4],
}

impl IndexCatalog {
    /// A catalog advertising all four indexes with the given key counts
    /// (ordered as [`IndexId::ALL`]).
    pub fn new(key_counts: [u64; 4]) -> Self {
        IndexCatalog { available: [true; 4], key_counts }
    }

    /// A catalog with every index available and no statistics — what a
    /// spec-only analysis (no store at hand) assumes.
    pub fn assume_full() -> Self {
        IndexCatalog::new([0; 4])
    }

    /// Drops one index from the catalog (modelling a store that cannot
    /// serve it); the verifier must then classify the affected plan steps
    /// as full scans.
    pub fn without(mut self, id: IndexId) -> Self {
        self.available[id.pos()] = false;
        self
    }

    /// Whether the store can serve lookups on this index.
    pub fn serves(self, id: IndexId) -> bool {
        self.available[id.pos()]
    }

    /// Number of keys in the index (0 when unknown or empty).
    pub fn key_count(self, id: IndexId) -> u64 {
        self.key_counts[id.pos()]
    }

    /// The ids currently served, in canonical order.
    pub fn available(self) -> Vec<IndexId> {
        IndexId::ALL.into_iter().filter(|id| self.serves(*id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for id in IndexId::ALL {
            assert_eq!(IndexId::parse(id.name()), Some(id));
            assert_eq!(format!("{id}"), id.name());
        }
        assert_eq!(IndexId::parse("nope"), None);
    }

    #[test]
    fn without_removes_exactly_one_index() {
        let cat = IndexCatalog::new([10, 20, 30, 40]).without(IndexId::XformIn);
        assert!(cat.serves(IndexId::XformOut));
        assert!(!cat.serves(IndexId::XformIn));
        assert_eq!(cat.key_count(IndexId::XferSrc), 40);
        assert_eq!(cat.available(), vec![IndexId::XformOut, IndexId::XferDst, IndexId::XferSrc]);
    }

    #[test]
    fn serde_uses_stable_snake_case_names() {
        let j = serde_json::to_string(&IndexId::XferSrc).unwrap();
        assert_eq!(j, "\"xfer_src\"");
        let cat = IndexCatalog::assume_full();
        assert!(cat.serves(IndexId::XformIn));
        let j = serde_json::to_string(&cat).unwrap();
        let back: IndexCatalog = serde_json::from_str(&j).unwrap();
        assert_eq!(back, cat);
    }
}
