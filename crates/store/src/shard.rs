//! Per-run shards and lock-free read snapshots.
//!
//! Every run's rows and composite indexes live in an independent
//! [`RunShard`]. The store holds each shard behind an `Arc` and mutates it
//! with `Arc::make_mut`: while nobody else holds the `Arc`, writes happen
//! in place (the common, contention-free case); when a query has pinned the
//! shard, the first subsequent write clones it — copy-on-write — so the
//! pinned [`ReadView`] keeps observing the exact state it was pinned
//! against (snapshot isolation, for free).
//!
//! A [`ReadView`] is the query-side handle: it clones the shard's `Arc`
//! (plus the shared symbol/value tables) **once**, under one brief read
//! lock, and every probe afterwards runs on plain owned data — zero lock
//! acquisitions for the remainder of plan execution. This is what lets
//! multi-run lineage fan out across cores without serialising on the
//! store's `RwLock` (the contention wall the pre-shard layout hit).
//!
//! Stats discipline: each `ReadView` method counts its index/record work
//! into a stack-local [`ProbeStats`] and flushes the totals into the shared
//! [`QueryStats`] atomics exactly once per call, instead of one atomic RMW
//! per probe. Flushing rides a [`ProbeGuard`] so early returns and panics
//! still account the work already done. The `*_stats` probe variants
//! instead count into a **caller-owned** accumulator (and flush nothing):
//! the query layer uses them to attribute exact per-step costs to
//! individual queries even when plan steps fan out across worker threads.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use prov_model::{Binding, Index, PortRef, ProcessorName, RunId, Value, ValueId};

use crate::catalog::PortCardinality;
use crate::indexes::{CompositeIndex, SymKey};
use crate::rows::{
    PortDirection, StoredBinding, XferRecord, XferRow, XformPortRecord, XformPortRow, XformRecord,
    XformRow,
};
use crate::stats::{ProbeGuard, ProbeStats, QueryStats};
use crate::store::StoreError;
use crate::symbols::{IndexKey, Sym, SymbolTable};
use crate::values::ValueTable;

use prov_engine::{XferEvent, XformEvent};

/// A reference into one of a shard's two row heaps (shard-local position).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RowRef {
    Xform(u64),
    Xfer(u64),
}

/// All trace state of one run: row heaps plus the four composite indexes
/// and the reverse value index, all keyed by shard-local row *positions*
/// (rows additionally carry their global ids for the public records).
#[derive(Debug, Default, Clone)]
pub(crate) struct RunShard {
    pub(crate) xforms: Vec<XformRow>,
    pub(crate) xfers: Vec<XferRow>,
    /// (run, processor, output port, q) → xform positions.
    pub(crate) idx_xform_out: CompositeIndex,
    /// (run, processor, input port, p_i) → xform positions.
    pub(crate) idx_xform_in: CompositeIndex,
    /// (run, dst processor, dst port, p') → xfer positions.
    pub(crate) idx_xfer_dst: CompositeIndex,
    /// (run, src processor, src port, p) → xfer positions.
    pub(crate) idx_xfer_src: CompositeIndex,
    /// Reverse value index: every row position whose binding carries the
    /// value — the access path for *value-predicated* queries (§1.1).
    pub(crate) idx_by_value: HashMap<ValueId, Vec<RowRef>>,
}

impl RunShard {
    fn index_value(&mut self, value: ValueId, row: RowRef) {
        let rows = self.idx_by_value.entry(value).or_default();
        if rows.last() != Some(&row) {
            rows.push(row);
        }
    }

    /// Appends an xform row (global id `id`), interning names and values
    /// through the shared tables.
    pub(crate) fn insert_xform(
        &mut self,
        id: u64,
        run: RunId,
        event: &XformEvent,
        symbols: &mut SymbolTable,
        values: &mut ValueTable,
    ) {
        let pos = self.xforms.len() as u64;
        let processor = symbols.intern(&event.processor.0);
        let mut ports = Vec::with_capacity(event.inputs.len() + event.outputs.len());
        for b in &event.inputs {
            let value = values.intern(&b.value);
            self.index_value(value, RowRef::Xform(pos));
            let port = symbols.intern(&b.port);
            let index = IndexKey::from(&b.index);
            ports.push(XformPortRow {
                direction: PortDirection::In,
                port,
                index: b.index.clone(),
                value,
            });
            self.idx_xform_in.insert(SymKey { run, processor, port, index }, pos);
        }
        for b in &event.outputs {
            let value = values.intern(&b.value);
            self.index_value(value, RowRef::Xform(pos));
            let port = symbols.intern(&b.port);
            let index = IndexKey::from(&b.index);
            ports.push(XformPortRow {
                direction: PortDirection::Out,
                port,
                index: b.index.clone(),
                value,
            });
            self.idx_xform_out.insert(SymKey { run, processor, port, index }, pos);
        }
        self.xforms.push(XformRow { id, run, processor, invocation: event.invocation, ports });
    }

    /// Appends an xfer row (global id `id`).
    pub(crate) fn insert_xfer(
        &mut self,
        id: u64,
        run: RunId,
        event: &XferEvent,
        symbols: &mut SymbolTable,
        values: &mut ValueTable,
    ) {
        let pos = self.xfers.len() as u64;
        let value = values.intern(&event.value);
        self.index_value(value, RowRef::Xfer(pos));
        let src_processor = symbols.intern(&event.src.processor.0);
        let src_port = symbols.intern(&event.src.port);
        let dst_processor = symbols.intern(&event.dst.processor.0);
        let dst_port = symbols.intern(&event.dst.port);
        self.idx_xfer_dst.insert(
            SymKey {
                run,
                processor: dst_processor,
                port: dst_port,
                index: IndexKey::from(&event.dst_index),
            },
            pos,
        );
        self.idx_xfer_src.insert(
            SymKey {
                run,
                processor: src_processor,
                port: src_port,
                index: IndexKey::from(&event.src_index),
            },
            pos,
        );
        self.xfers.push(XferRow {
            id,
            run,
            src_processor,
            src_port,
            src_index: event.src_index.clone(),
            dst_processor,
            dst_port,
            dst_index: event.dst_index.clone(),
            value,
        });
    }

    /// Cardinality statistics of one `(processor, port)` slice of the
    /// chosen index (see `TraceStore::port_cardinality`).
    pub(crate) fn port_stats(
        &self,
        id: crate::catalog::IndexId,
        run: RunId,
        p: Sym,
        x: Sym,
    ) -> PortCardinality {
        let index = match id {
            crate::catalog::IndexId::XformOut => &self.idx_xform_out,
            crate::catalog::IndexId::XformIn => &self.idx_xform_in,
            crate::catalog::IndexId::XferDst => &self.idx_xfer_dst,
            crate::catalog::IndexId::XferSrc => &self.idx_xfer_src,
        };
        index.port_stats(run, p, x)
    }
}

/// The shared empty shard: views of unknown (or dropped, or not yet
/// recorded) runs probe it so that their stats accounting is identical to a
/// probe of a populated shard that happens to find nothing.
fn empty_shard() -> &'static Arc<RunShard> {
    static EMPTY: OnceLock<Arc<RunShard>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(RunShard::default()))
}

/// An immutable snapshot of one run's trace, pinned with one brief read
/// lock ([`crate::TraceStore::pin`]) and queried with **zero** further lock
/// acquisitions: the view owns `Arc`s of the run's shard and the shared
/// symbol/value tables, and recording after the pin copy-on-writes new
/// shard state rather than mutating what the view holds.
///
/// Answers and access-statistics accounting are identical to the
/// corresponding `TraceStore` methods (which are thin wrappers over a
/// freshly pinned view).
#[derive(Debug, Clone)]
pub struct ReadView {
    run: RunId,
    shard: Arc<RunShard>,
    symbols: Arc<SymbolTable>,
    values: Arc<ValueTable>,
    /// Shares atomics with the store's counters (see [`QueryStats`]).
    stats: QueryStats,
}

impl ReadView {
    pub(crate) fn new(
        run: RunId,
        shard: Option<Arc<RunShard>>,
        symbols: Arc<SymbolTable>,
        values: Arc<ValueTable>,
        stats: QueryStats,
    ) -> Self {
        ReadView {
            run,
            shard: shard.unwrap_or_else(|| Arc::clone(empty_shard())),
            symbols,
            values,
            stats,
        }
    }

    /// The run this view is pinned to.
    pub fn run(&self) -> RunId {
        self.run
    }

    /// Translates an API-boundary `(processor, port, index)` triple into
    /// interned probe keys. Unknown names map to `Sym::MISSING`, which
    /// probes the indexes and finds nothing — same answers, same stats, no
    /// allocation.
    fn probe(&self, processor: &ProcessorName, port: &str, index: &Index) -> (Sym, Sym, IndexKey) {
        (self.symbols.lookup(processor.as_str()), self.symbols.lookup(port), IndexKey::from(index))
    }

    /// Materialises a public record from an interned xform row.
    fn xform_record(&self, row: &XformRow) -> XformRecord {
        XformRecord {
            id: row.id,
            run: row.run,
            processor: ProcessorName(self.symbols.resolve(row.processor)),
            invocation: row.invocation,
            ports: row
                .ports
                .iter()
                .map(|p| XformPortRecord {
                    direction: p.direction,
                    port: self.symbols.resolve(p.port),
                    index: p.index.clone(),
                    value: p.value,
                })
                .collect(),
        }
    }

    /// Materialises a public record from an interned xfer row.
    fn xfer_record(&self, row: &XferRow) -> XferRecord {
        XferRecord {
            id: row.id,
            run: row.run,
            src_processor: ProcessorName(self.symbols.resolve(row.src_processor)),
            src_port: self.symbols.resolve(row.src_port),
            src_index: row.src_index.clone(),
            dst_processor: ProcessorName(self.symbols.resolve(row.dst_processor)),
            dst_port: self.symbols.resolve(row.dst_port),
            dst_index: row.dst_index.clone(),
            value: row.value,
        }
    }

    /// A drop-flushed accumulator bound to this view's shared counters,
    /// for callers composing several `*_stats` probes into one flush.
    pub fn probe_guard(&self) -> ProbeGuard<'_> {
        self.stats.probe_guard()
    }

    /// The xform events whose **output** binding on `processor:port`
    /// overlaps `index` (see `TraceStore::xforms_producing`).
    pub fn xforms_producing(
        &self,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Vec<XformRecord> {
        let mut guard = self.probe_guard();
        self.xforms_producing_stats(processor, port, index, &mut guard)
    }

    /// [`ReadView::xforms_producing`], counting into a caller-owned
    /// accumulator instead of flushing to the shared counters.
    pub fn xforms_producing_stats(
        &self,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
        probe: &mut ProbeStats,
    ) -> Vec<XformRecord> {
        let (p, x, key) = self.probe(processor, port, index);
        let ids = self.shard.idx_xform_out.get_overlapping(self.run, p, x, &key, probe);
        dedup_ids(ids)
            .into_iter()
            .map(|pos| self.xform_record(&self.shard.xforms[pos as usize]))
            .collect()
    }

    /// The xform events whose **input** binding on `processor:port`
    /// overlaps `index` — the forward (impact) counterpart of
    /// [`ReadView::xforms_producing`].
    pub fn xforms_consuming(
        &self,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Vec<XformRecord> {
        let mut guard = self.probe_guard();
        self.xforms_consuming_stats(processor, port, index, &mut guard)
    }

    /// [`ReadView::xforms_consuming`] counting into a caller-owned
    /// accumulator.
    pub fn xforms_consuming_stats(
        &self,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
        probe: &mut ProbeStats,
    ) -> Vec<XformRecord> {
        let (p, x, key) = self.probe(processor, port, index);
        let ids = self.shard.idx_xform_in.get_overlapping(self.run, p, x, &key, probe);
        dedup_ids(ids)
            .into_iter()
            .map(|pos| self.xform_record(&self.shard.xforms[pos as usize]))
            .collect()
    }

    /// The xfer events whose **destination** binding on `processor:port`
    /// overlaps `index` — the arc-traversal step of the naïve algorithm.
    pub fn xfers_into(
        &self,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Vec<XferRecord> {
        let mut guard = self.probe_guard();
        self.xfers_into_stats(processor, port, index, &mut guard)
    }

    /// [`ReadView::xfers_into`] counting into a caller-owned accumulator.
    pub fn xfers_into_stats(
        &self,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
        probe: &mut ProbeStats,
    ) -> Vec<XferRecord> {
        let (p, x, key) = self.probe(processor, port, index);
        let ids = self.shard.idx_xfer_dst.get_overlapping(self.run, p, x, &key, probe);
        dedup_ids(ids)
            .into_iter()
            .map(|pos| self.xfer_record(&self.shard.xfers[pos as usize]))
            .collect()
    }

    /// The xfer events leaving `processor:port` at an index overlapping
    /// `index` (forward navigation; used by impact/downstream queries).
    pub fn xfers_from(
        &self,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Vec<XferRecord> {
        let mut guard = self.probe_guard();
        self.xfers_from_stats(processor, port, index, &mut guard)
    }

    /// [`ReadView::xfers_from`] counting into a caller-owned accumulator.
    pub fn xfers_from_stats(
        &self,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
        probe: &mut ProbeStats,
    ) -> Vec<XferRecord> {
        let (p, x, key) = self.probe(processor, port, index);
        let ids = self.shard.idx_xfer_src.get_overlapping(self.run, p, x, &key, probe);
        dedup_ids(ids)
            .into_iter()
            .map(|pos| self.xfer_record(&self.shard.xfers[pos as usize]))
            .collect()
    }

    /// `Q(P, X_i, p_i)` of Algorithm 2: the stored **input** bindings of
    /// `processor:port` whose index overlaps `p_i` (see
    /// `TraceStore::input_bindings`).
    pub fn input_bindings(
        &self,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Vec<StoredBinding> {
        let mut guard = self.probe_guard();
        self.input_bindings_stats(processor, port, index, &mut guard)
    }

    /// [`ReadView::input_bindings`] counting into a caller-owned
    /// accumulator.
    pub fn input_bindings_stats(
        &self,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
        probe: &mut ProbeStats,
    ) -> Vec<StoredBinding> {
        let (p, x, key) = self.probe(processor, port, index);
        let ids = self.shard.idx_xform_in.get_overlapping(self.run, p, x, &key, probe);
        let mut out = Vec::new();
        let mut seen: Vec<(u64, Index)> = Vec::new();
        for pos in dedup_ids(ids) {
            let row = &self.shard.xforms[pos as usize];
            for pr in row.inputs().filter(|pr| pr.port == x) {
                if !(pr.index.is_prefix_of(index) || index.is_prefix_of(&pr.index)) {
                    continue;
                }
                let k = (pr.value.0, pr.index.clone());
                if seen.contains(&k) {
                    continue; // many invocations share whole-value inputs
                }
                seen.push(k);
                out.push(StoredBinding {
                    run: self.run,
                    processor: processor.clone(),
                    port: self.symbols.resolve(pr.port),
                    index: pr.index.clone(),
                    value: pr.value,
                });
            }
        }
        out
    }

    /// The stored **source-side** bindings of xfer rows leaving
    /// `processor:port` at indices overlapping `index` (see
    /// `TraceStore::xfer_src_bindings`).
    pub fn xfer_src_bindings(
        &self,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Vec<StoredBinding> {
        let mut guard = self.probe_guard();
        self.xfer_src_bindings_stats(processor, port, index, &mut guard)
    }

    /// [`ReadView::xfer_src_bindings`] counting into a caller-owned
    /// accumulator.
    pub fn xfer_src_bindings_stats(
        &self,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
        probe: &mut ProbeStats,
    ) -> Vec<StoredBinding> {
        let (p, x, key) = self.probe(processor, port, index);
        let ids = self.shard.idx_xfer_src.get_overlapping(self.run, p, x, &key, probe);
        let mut out: Vec<StoredBinding> = Vec::new();
        for pos in dedup_ids(ids) {
            let row = &self.shard.xfers[pos as usize];
            if out.iter().any(|b| b.index == row.src_index && b.value == row.value) {
                continue; // the same element fans out along several arcs
            }
            out.push(StoredBinding {
                run: self.run,
                processor: processor.clone(),
                port: self.symbols.resolve(row.src_port),
                index: row.src_index.clone(),
                value: row.value,
            });
        }
        out
    }

    /// All xform rows of the run, in insertion order. The shard stores
    /// exactly this run's rows contiguously, so only those rows are
    /// touched; they are charged as both records read and rows scanned.
    pub fn xforms_of_run(&self) -> Vec<XformRecord> {
        let mut probe = self.probe_guard();
        let rows: Vec<XformRecord> =
            self.shard.xforms.iter().map(|row| self.xform_record(row)).collect();
        probe.count_rows_scanned(rows.len());
        probe.count_records(rows.len());
        rows
    }

    /// All xfer rows of the run, in insertion order (see
    /// [`ReadView::xforms_of_run`]).
    pub fn xfers_of_run(&self) -> Vec<XferRecord> {
        let mut probe = self.probe_guard();
        let rows: Vec<XferRecord> =
            self.shard.xfers.iter().map(|row| self.xfer_record(row)).collect();
        probe.count_rows_scanned(rows.len());
        probe.count_records(rows.len());
        rows
    }

    /// All bindings (across every port role) of the run that carry exactly
    /// the given value (see `TraceStore::bindings_with_value`).
    pub fn bindings_with_value(&self, value: &Value) -> Vec<StoredBinding> {
        let Some(&vid) = self.values.lookup(value) else { return Vec::new() };
        let Some(rows) = self.shard.idx_by_value.get(&vid) else { return Vec::new() };
        let mut probe = self.probe_guard();
        probe.count_index_lookup();
        let mut out: Vec<StoredBinding> = Vec::new();
        let mut push = |b: StoredBinding| {
            if !out.contains(&b) {
                out.push(b);
            }
        };
        for row in rows {
            match row {
                RowRef::Xform(pos) => {
                    let rec = &self.shard.xforms[*pos as usize];
                    probe.count_records(1);
                    for p in &rec.ports {
                        if p.value == vid {
                            push(StoredBinding {
                                run: self.run,
                                processor: ProcessorName(self.symbols.resolve(rec.processor)),
                                port: self.symbols.resolve(p.port),
                                index: p.index.clone(),
                                value: vid,
                            });
                        }
                    }
                }
                RowRef::Xfer(pos) => {
                    let rec = &self.shard.xfers[*pos as usize];
                    probe.count_records(1);
                    push(StoredBinding {
                        run: self.run,
                        processor: ProcessorName(self.symbols.resolve(rec.src_processor)),
                        port: self.symbols.resolve(rec.src_port),
                        index: rec.src_index.clone(),
                        value: vid,
                    });
                    push(StoredBinding {
                        run: self.run,
                        processor: ProcessorName(self.symbols.resolve(rec.dst_processor)),
                        port: self.symbols.resolve(rec.dst_port),
                        index: rec.dst_index.clone(),
                        value: vid,
                    });
                }
            }
        }
        out
    }

    /// Resolves a value id against the pinned value table.
    pub fn value(&self, id: ValueId) -> Option<Value> {
        self.values.get(id).cloned()
    }

    /// Resolves a stored binding into a user-facing [`Binding`].
    pub fn resolve(&self, b: &StoredBinding) -> crate::Result<Binding> {
        let value = self.value(b.value).ok_or(StoreError::DanglingValue(b.value))?;
        Ok(Binding {
            port: PortRef { processor: b.processor.clone(), port: b.port.clone() },
            index: b.index.clone(),
            value,
        })
    }

    /// Total number of trace records visible in this view (xform rows +
    /// xfer rows of the pinned run).
    pub fn trace_record_count(&self) -> u64 {
        (self.shard.xforms.len() + self.shard.xfers.len()) as u64
    }

    /// The access counters this view reports into. Clones of
    /// [`QueryStats`] share their atomic cells, so these are the *store's*
    /// counters: probes through any view and through the store itself all
    /// land in one set of totals.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }
}

/// Sorts and deduplicates row positions from multi-path index lookups.
fn dedup_ids(mut ids: Vec<u64>) -> Vec<u64> {
    ids.sort_unstable();
    ids.dedup();
    ids
}
