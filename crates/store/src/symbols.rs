//! Symbol interning and packed index keys — the compact key layout of the
//! composite indexes.
//!
//! The hot path of every lineage query is a B-tree descent over composite
//! keys. With string-typed keys each comparison chases two `Arc<str>`
//! pointers and each probe *allocates* (`Arc::from(port)`); with
//! heap-spilling element indices a deep index adds a third indirection.
//! This module replaces all of that with value types:
//!
//! * [`Sym`] — a `u32` ticket for an interned processor or port name. The
//!   store owns one [`SymbolTable`]; names are interned on the write path
//!   and looked up (never created) on the read path, so probing for a name
//!   the store has never seen degenerates to a comparison against
//!   [`Sym::MISSING`] and finds nothing — exactly like the string key it
//!   replaces, with the same stats accounting.
//! * [`IndexKey`] — an element index packed into a single `u128` (eight
//!   16-bit groups, big-endian) whenever it fits, spilling to a boxed slice
//!   only for pathological indices. The packing is order-preserving:
//!   comparing two packed keys is one integer compare, and all extensions
//!   of a prefix stay contiguous — the property the prefix scans rely on.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

use prov_model::Index;

/// An interned name (processor or port). Plain `u32` newtype: `Copy`,
/// 4 bytes, one-instruction comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl Sym {
    /// Sentinel returned by read-path lookups for names the store has never
    /// interned. No real symbol ever takes this value (interning is dense
    /// from 0), so probing an index with it finds nothing — mirroring the
    /// behaviour of probing with an unknown string.
    pub const MISSING: Sym = Sym(u32::MAX);
}

/// Bidirectional name ⇄ symbol table. Owned by the store's `Inner`, so it
/// shares the store's write lock; reads only need `&self`.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    by_name: HashMap<Arc<str>, Sym>,
    names: Vec<Arc<str>>,
}

impl SymbolTable {
    /// Interns `name`, returning its (possibly pre-existing) symbol. The
    /// `Arc` is cloned only on first sight.
    pub fn intern(&mut self, name: &Arc<str>) -> Sym {
        if let Some(&sym) = self.by_name.get(&**name) {
            return sym;
        }
        let sym = Sym(self.names.len() as u32);
        self.names.push(Arc::clone(name));
        self.by_name.insert(Arc::clone(name), sym);
        sym
    }

    /// Read-path lookup: the symbol for `name`, or [`Sym::MISSING`] if it
    /// was never interned. Never allocates.
    pub fn lookup(&self, name: &str) -> Sym {
        self.by_name.get(name).copied().unwrap_or(Sym::MISSING)
    }

    /// Resolves a symbol back to its name. Symbols stored in rows are valid
    /// by construction; an out-of-range symbol resolves to the empty name
    /// rather than panicking.
    pub fn resolve(&self, sym: Sym) -> Arc<str> {
        self.names.get(sym.0 as usize).cloned().unwrap_or_else(|| Arc::from(""))
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no names are interned.
    #[allow(dead_code)] // completes the len/is_empty pair; exercised in tests
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Number of 16-bit component groups in a packed key.
const GROUPS: usize = 8;
/// Largest component value that still packs (stored biased by +1).
const MAX_PACKED_COMPONENT: u32 = 0xFFFE;

/// An element index in key form.
///
/// The packed representation stores component `c` as the 16-bit group
/// `c + 1` (0 is reserved for "no component"), groups ordered from the most
/// significant bits down. Two consequences, both load-bearing:
///
/// * numeric `u128` comparison equals lexicographic comparison of the
///   component sequences (`[] < [0] < [0,0] < [1]`), and
/// * the first `k` groups of a key are a bit-mask away, so prefix tests
///   need no decoding.
///
/// Indices deeper than [`GROUPS`] components or with components above
/// [`MAX_PACKED_COMPONENT`] spill to a boxed slice. The representation is
/// canonical — a sequence is `Packed` iff it fits — so derived equality is
/// correct.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IndexKey {
    /// Up to eight small components, bit-packed.
    Packed {
        /// Number of valid component groups.
        len: u8,
        /// The biased, big-endian component groups.
        bits: u128,
    },
    /// The rare index that does not fit the packed form.
    Spilled(Box<[u32]>),
}

/// The bit-mask covering the first `k` component groups.
fn group_mask(k: usize) -> u128 {
    if k == 0 {
        0
    } else {
        !0u128 << (128 - 16 * k.min(GROUPS))
    }
}

impl IndexKey {
    /// The empty index `[]` — also the minimum key, used as a range start.
    pub const fn empty() -> Self {
        IndexKey::Packed { len: 0, bits: 0 }
    }

    /// Builds the canonical key for a component sequence.
    pub fn from_components(components: &[u32]) -> Self {
        if components.len() <= GROUPS && components.iter().all(|&c| c <= MAX_PACKED_COMPONENT) {
            let mut bits = 0u128;
            for (g, &c) in components.iter().enumerate() {
                bits |= u128::from(c + 1) << (128 - 16 * (g + 1));
            }
            IndexKey::Packed { len: components.len() as u8, bits }
        } else {
            IndexKey::Spilled(components.into())
        }
    }

    /// Builds the key for an [`Index`].
    pub fn from_index(index: &Index) -> Self {
        Self::from_components(index.as_slice())
    }

    /// Converts back to an [`Index`].
    #[allow(dead_code)] // inverse of `from_index`; exercised in tests
    pub fn to_index(&self) -> Index {
        match self {
            IndexKey::Packed { .. } => {
                let mut buf = [0u32; GROUPS];
                let n = self.decode_into(&mut buf);
                Index::from_slice(&buf[..n])
            }
            IndexKey::Spilled(v) => Index::from_slice(v),
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        match self {
            IndexKey::Packed { len, .. } => *len as usize,
            IndexKey::Spilled(v) => v.len(),
        }
    }

    /// Whether this is the empty index.
    #[allow(dead_code)] // completes the len/is_empty pair; exercised in tests
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes a packed key's components into `buf`, returning the count.
    /// (Only meaningful for the packed variant.)
    fn decode_into(&self, buf: &mut [u32; GROUPS]) -> usize {
        match self {
            IndexKey::Packed { len, bits } => {
                for (g, slot) in buf.iter_mut().enumerate().take(*len as usize) {
                    let group = (bits >> (128 - 16 * (g + 1))) as u32 & 0xFFFF;
                    *slot = group - 1;
                }
                *len as usize
            }
            IndexKey::Spilled(_) => 0,
        }
    }

    /// The first `n` components (the whole key if shorter) — a mask for
    /// packed keys, a repack for spilled ones.
    pub fn prefix(&self, n: usize) -> Self {
        match self {
            IndexKey::Packed { len, bits } => {
                if n >= *len as usize {
                    self.clone()
                } else {
                    IndexKey::Packed { len: n as u8, bits: bits & group_mask(n) }
                }
            }
            IndexKey::Spilled(v) => Self::from_components(&v[..n.min(v.len())]),
        }
    }

    /// Whether `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &IndexKey) -> bool {
        match (self, other) {
            (IndexKey::Packed { len: a, bits: pa }, IndexKey::Packed { len: b, bits: pb }) => {
                a <= b && (pb & group_mask(*a as usize)) == *pa
            }
            (IndexKey::Packed { .. }, IndexKey::Spilled(o)) => {
                let mut buf = [0u32; GROUPS];
                let n = self.decode_into(&mut buf);
                o.starts_with(&buf[..n])
            }
            // A spilled key never prefixes a packed one unless it equals it
            // component-wise, which canonicality rules out for len ≤ 8 —
            // but a spilled key CAN be short (one huge component), so check
            // properly.
            (IndexKey::Spilled(s), IndexKey::Packed { .. }) => {
                let mut buf = [0u32; GROUPS];
                let n = other.decode_into(&mut buf);
                buf[..n].starts_with(s)
            }
            (IndexKey::Spilled(s), IndexKey::Spilled(o)) => o.starts_with(s),
        }
    }
}

impl Ord for IndexKey {
    /// Lexicographic on components; one integer compare when both sides are
    /// packed (the overwhelmingly common case).
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (IndexKey::Packed { bits: a, .. }, IndexKey::Packed { bits: b, .. }) => a.cmp(b),
            _ => {
                let mut ab = [0u32; GROUPS];
                let mut bb = [0u32; GROUPS];
                let a: &[u32] = match self {
                    IndexKey::Packed { .. } => {
                        let n = self.decode_into(&mut ab);
                        &ab[..n]
                    }
                    IndexKey::Spilled(v) => v,
                };
                let b: &[u32] = match other {
                    IndexKey::Packed { .. } => {
                        let n = other.decode_into(&mut bb);
                        &bb[..n]
                    }
                    IndexKey::Spilled(v) => v,
                };
                a.cmp(b)
            }
        }
    }
}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<&Index> for IndexKey {
    fn from(index: &Index) -> Self {
        Self::from_index(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_dense_and_stable() {
        let mut t = SymbolTable::default();
        let a = t.intern(&Arc::from("P"));
        let b = t.intern(&Arc::from("Q"));
        let a2 = t.intern(&Arc::from("P"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!((a.0, b.0), (0, 1));
        assert_eq!(&*t.resolve(a), "P");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lookup_of_unknown_name_is_missing() {
        let mut t = SymbolTable::default();
        t.intern(&Arc::from("P"));
        assert_eq!(t.lookup("P"), Sym(0));
        assert_eq!(t.lookup("nope"), Sym::MISSING);
        assert_eq!(&*t.resolve(Sym::MISSING), "");
    }

    #[test]
    fn packing_round_trips() {
        for comps in [
            &[][..],
            &[0],
            &[1, 2, 3],
            &[0xFFFE; 8],
            &[0xFFFF],                    // component too large → spill
            &[0, 1, 2, 3, 4, 5, 6, 7, 8], // too long → spill
        ] {
            let key = IndexKey::from_components(comps);
            assert_eq!(key.to_index().as_slice(), comps, "{comps:?}");
            assert_eq!(key.len(), comps.len());
        }
        assert!(matches!(IndexKey::from_components(&[0xFFFE; 8]), IndexKey::Packed { .. }));
        assert!(matches!(IndexKey::from_components(&[0xFFFF]), IndexKey::Spilled(_)));
    }

    #[test]
    fn packed_order_is_lexicographic() {
        let seqs: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![0, 0],
            vec![0, 1],
            vec![1],
            vec![1, 0],
            vec![2],
            vec![0xFFFE],
            vec![0xFFFF],                    // spilled
            vec![0, 1, 2, 3, 4, 5, 6, 7, 8], // spilled
        ];
        let mut keys: Vec<IndexKey> = seqs.iter().map(|s| IndexKey::from_components(s)).collect();
        keys.sort();
        let mut expect = seqs.clone();
        expect.sort();
        let decoded: Vec<Vec<u32>> =
            keys.iter().map(|k| k.to_index().as_slice().to_vec()).collect();
        assert_eq!(decoded, expect);
    }

    #[test]
    fn prefix_and_is_prefix_agree_with_index_semantics() {
        let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![], vec![1, 2]),
            (vec![1], vec![1, 2]),
            (vec![1, 2], vec![1, 2]),
            (vec![2], vec![1, 2]),
            (vec![1, 2, 3], vec![1, 2]),
            (vec![0xFFFF], vec![0xFFFF, 5]),
            (vec![1], vec![0, 1, 2, 3, 4, 5, 6, 7, 8]),
            (vec![0], vec![0, 1, 2, 3, 4, 5, 6, 7, 8]),
        ];
        for (a, b) in cases {
            let ka = IndexKey::from_components(&a);
            let kb = IndexKey::from_components(&b);
            let ia = Index::from_slice(&a);
            let ib = Index::from_slice(&b);
            assert_eq!(ka.is_prefix_of(&kb), ia.is_prefix_of(&ib), "{a:?} vs {b:?}");
        }
        let k = IndexKey::from_components(&[3, 4, 5]);
        assert_eq!(k.prefix(2), IndexKey::from_components(&[3, 4]));
        assert_eq!(k.prefix(0), IndexKey::empty());
        assert_eq!(k.prefix(9), k);
        let spilled = IndexKey::from_components(&[0, 1, 2, 3, 4, 5, 6, 7, 8]);
        // A prefix of a spilled key repacks canonically.
        assert!(matches!(spilled.prefix(3), IndexKey::Packed { .. }));
        assert_eq!(spilled.prefix(3), IndexKey::from_components(&[0, 1, 2]));
    }

    #[test]
    fn empty_key_is_minimum() {
        let e = IndexKey::empty();
        for comps in [&[0u32][..], &[5], &[0xFFFF], &[0, 0, 0, 0, 0, 0, 0, 0, 0]] {
            assert!(e < IndexKey::from_components(comps));
            assert!(e.is_prefix_of(&IndexKey::from_components(comps)));
        }
        assert!(e.is_empty());
    }
}
