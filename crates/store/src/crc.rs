//! CRC-32 (IEEE 802.3 polynomial), implemented in-crate to keep the WAL
//! dependency-free. Slice-by-8: eight lookup tables let the loop fold
//! eight input bytes per iteration instead of one, which matters once
//! group commit turns many small frames into one multi-kilobyte payload
//! per batch.

/// The reflected polynomial for CRC-32/ISO-HDLC (the zlib/PNG CRC).
const POLY: u32 = 0xEDB8_8320;

/// Eight 256-entry lookup tables, built at compile time. `TABLES[0]` is
/// the classic byte-at-a-time table; `TABLES[k][b]` is the CRC of byte
/// `b` followed by `k` zero bytes, which is what lets eight bytes be
/// folded independently and XORed together.
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// Advances a raw (pre-inverted) CRC state over `data`.
fn advance(mut crc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        // First word absorbs the running CRC; second word is independent.
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][chunk[4] as usize]
            ^ TABLES[2][chunk[5] as usize]
            ^ TABLES[1][chunk[6] as usize]
            ^ TABLES[0][chunk[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Computes the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    !advance(!0u32, data)
}

/// Incremental CRC-32: feeding chunks through [`Crc32::update`] yields the
/// same value as one [`crc32`] call over their concatenation. Used where
/// the input is streamed and never held whole — e.g. the replication
/// handshake's divergence check over a multi-MB WAL prefix.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh accumulator (equal to the CRC of the empty string until fed).
    pub fn new() -> Self {
        Crc32 { state: !0u32 }
    }

    /// Folds `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        self.state = advance(self.state, data);
    }

    /// The checksum of everything fed so far (non-destructive).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The original one-byte-at-a-time loop, kept as the reference.
    fn crc32_bytewise(data: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in data {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        !crc
    }

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn matches_bytewise_at_every_length() {
        // Cover all remainder lengths and several whole-word multiples.
        let data: Vec<u8> = (0..=255u8).cycle().take(1031).collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), crc32_bytewise(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the provenance of a workflow is a trace";
        let base = crc32(data);
        let mut corrupted = data.to_vec();
        for byte in 0..corrupted.len() {
            for bit in 0..8 {
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at {byte}:{bit} undetected");
                corrupted[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn is_order_sensitive() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }

    #[test]
    fn incremental_matches_one_shot_at_every_split() {
        let data: Vec<u8> = (0..=255u8).cycle().take(300).collect();
        let whole = crc32(&data);
        for split in 0..data.len() {
            let mut inc = Crc32::new();
            inc.update(&data[..split]);
            inc.update(&data[split..]);
            assert_eq!(inc.finish(), whole, "split {split}");
        }
        assert_eq!(Crc32::new().finish(), crc32(b""));
    }
}
