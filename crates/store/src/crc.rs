//! CRC-32 (IEEE 802.3 polynomial), implemented in-crate to keep the WAL
//! dependency-free. Table-driven, one byte at a time — plenty for log
//! framing.

/// The reflected polynomial for CRC-32/ISO-HDLC (the zlib/PNG CRC).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Computes the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the provenance of a workflow is a trace";
        let base = crc32(data);
        let mut corrupted = data.to_vec();
        for byte in 0..corrupted.len() {
            for bit in 0..8 {
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at {byte}:{bit} undetected");
                corrupted[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn is_order_sensitive() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }
}
