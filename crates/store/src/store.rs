//! The trace store: tables + indexes + optional WAL, behind one handle.
//!
//! Internally everything is interned: processor and port names become
//! [`Sym`]s, element indices become packed [`IndexKey`]s, and the row heaps
//! hold compact symbol-typed rows. Strings exist only at the API boundary —
//! interned on the write path, resolved back when records are materialised
//! for callers. Query answers are bit-identical to the string-keyed layout
//! (probing with an unknown name degenerates to a [`Sym::MISSING`] probe
//! that finds nothing, with the same stats accounting).

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use prov_engine::{TraceEvent, TraceSink, XferEvent, XformEvent};
use prov_model::{Binding, Index, PortRef, ProcessorName, RunId, Value, ValueId};

use crate::indexes::{CompositeIndex, SymKey};
use crate::rows::{
    PortDirection, StoredBinding, XferRecord, XferRow, XformPortRecord, XformPortRow, XformRecord,
    XformRow,
};
use crate::stats::QueryStats;
use crate::symbols::{IndexKey, Sym, SymbolTable};
use crate::values::ValueTable;
use crate::wal::{LogRecord, TailState, WalError, WalMetrics, WalReader, WalWriter};

/// Store-level errors.
#[derive(Debug)]
pub enum StoreError {
    /// WAL failure.
    Wal(WalError),
    /// A referenced run does not exist.
    UnknownRun(RunId),
    /// A referenced value id does not exist (dangling reference — indicates
    /// corruption).
    DanglingValue(ValueId),
    /// A WAL append or sync failed earlier; the writer was shut down to
    /// avoid writing an inconsistent tail, and everything recorded since is
    /// memory-only. Carries the original failure message.
    WalPoisoned {
        /// The first durability failure observed.
        message: String,
    },
    /// A record could not be serialised for export.
    Serialize(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Wal(e) => write!(f, "{e}"),
            StoreError::UnknownRun(r) => write!(f, "unknown run {r}"),
            StoreError::DanglingValue(v) => write!(f, "dangling value reference {v}"),
            StoreError::WalPoisoned { message } => {
                write!(f, "wal writer shut down after durability failure: {message}")
            }
            StoreError::Serialize(e) => write!(f, "serialisation failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<WalError> for StoreError {
    fn from(e: WalError) -> Self {
        StoreError::Wal(e)
    }
}

/// Metadata of one stored run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunInfo {
    /// The run id.
    pub id: RunId,
    /// The workflow that produced the trace.
    pub workflow: ProcessorName,
    /// Whether `finish_run` was observed.
    pub finished: bool,
    /// Number of xform rows in the run.
    pub xform_count: u64,
    /// Number of xfer rows in the run.
    pub xfer_count: u64,
}

/// The contiguous row-id spans of one run in each heap (half-open). Runs
/// recorded concurrently interleave, so a run owns a *list* of spans; a run
/// recorded alone owns exactly one. `xforms_of_run` / `xfers_of_run` walk
/// these instead of scanning the whole heap.
#[derive(Debug, Default, Clone)]
struct RowSpans {
    xforms: Vec<(u64, u64)>,
    xfers: Vec<(u64, u64)>,
}

impl RowSpans {
    fn push(spans: &mut Vec<(u64, u64)>, id: u64) {
        match spans.last_mut() {
            Some(last) if last.1 == id => last.1 = id + 1,
            _ => spans.push((id, id + 1)),
        }
    }
}

#[derive(Default)]
struct Inner {
    runs: BTreeMap<RunId, RunInfo>,
    /// Runs removed by `drop_run`: their heap rows are tombstoned until
    /// the next checkpoint, their index entries are purged immediately.
    dropped: std::collections::HashSet<RunId>,
    /// Registered workflow specifications, by name (serialised JSON; the
    /// store stays ignorant of the dataflow crate).
    workflows: BTreeMap<ProcessorName, String>,
    /// Reverse value index: every (xform id | xfer id) whose binding
    /// carries the value — the access path for *value-predicated* queries
    /// (the paper's non-structural case, §1.1).
    idx_by_value: HashMap<ValueId, Vec<RowRef>>,
    next_run: u64,
    values: ValueTable,
    /// Processor/port name interner; rows and index keys hold symbols.
    symbols: SymbolTable,
    /// Per-run row-id spans into the heaps.
    spans: HashMap<RunId, RowSpans>,
    xforms: Vec<XformRow>,
    xfers: Vec<XferRow>,
    /// (run, processor, output port, q) → xform ids.
    idx_xform_out: CompositeIndex,
    /// (run, processor, input port, p_i) → xform ids.
    idx_xform_in: CompositeIndex,
    /// (run, dst processor, dst port, p') → xfer ids.
    idx_xfer_dst: CompositeIndex,
    /// (run, src processor, src port, p) → xfer ids.
    idx_xfer_src: CompositeIndex,
}

/// A reference into one of the two row heaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowRef {
    Xform(u64),
    Xfer(u64),
}

/// The embedded relational trace store. Cheap to share (`Arc` inside); all
/// methods take `&self`.
pub struct TraceStore {
    inner: RwLock<Inner>,
    wal: Mutex<Option<WalWriter>>,
    path: Option<PathBuf>,
    stats: QueryStats,
    wal_metrics: WalMetrics,
    /// First durability failure, if any; set when the WAL writer is shut
    /// down mid-session (see [`StoreError::WalPoisoned`]).
    wal_failure: Mutex<Option<String>>,
    /// What recovery found past the clean prefix at open time (`None` for
    /// in-memory stores, which never recover).
    recovered_tail: Option<TailState>,
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("TraceStore")
            .field("runs", &inner.runs.len())
            .field("xforms", &inner.xforms.len())
            .field("xfers", &inner.xfers.len())
            .field("values", &inner.values.len())
            .field("symbols", &inner.symbols.len())
            .field("durable", &self.path.is_some())
            .finish()
    }
}

impl TraceStore {
    /// A purely in-memory store (the benchmark configuration).
    pub fn in_memory() -> Self {
        TraceStore {
            inner: RwLock::new(Inner::default()),
            wal: Mutex::new(None),
            path: None,
            stats: QueryStats::new(),
            wal_metrics: WalMetrics::new(),
            wal_failure: Mutex::new(None),
            recovered_tail: None,
        }
    }

    /// Opens (or creates) a durable store backed by a WAL at `path`,
    /// replaying any existing log. A torn or corrupt tail is truncated
    /// away, exactly once, before appending resumes; the recovery is
    /// surfaced through [`TraceStore::recovered_tail`] and the
    /// `wal.torn_tails` / `wal.corrupt_frames` counters.
    pub fn open(path: impl AsRef<Path>) -> crate::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let recovery = WalReader::read_all(&path)?;
        let store = TraceStore {
            inner: RwLock::new(Inner::default()),
            wal: Mutex::new(None),
            path: Some(path.clone()),
            stats: QueryStats::new(),
            wal_metrics: WalMetrics::new(),
            wal_failure: Mutex::new(None),
            recovered_tail: Some(recovery.tail),
        };
        match recovery.tail {
            TailState::Clean => {}
            TailState::TornTail { .. } => store.wal_metrics.torn_tails.inc(),
            TailState::CorruptFrame { .. } => store.wal_metrics.corrupt_frames.inc(),
        }
        {
            let mut inner = store.inner.write();
            for record in recovery.records {
                inner.apply(record);
            }
        }
        *store.wal.lock() = Some(
            WalWriter::open_truncated(&path, recovery.clean_len)?
                .with_metrics(store.wal_metrics.clone()),
        );
        Ok(store)
    }

    /// Like [`TraceStore::open`], but every subsequent WAL write goes
    /// through a fault-injecting [`crate::fault::FaultFile`] driven by
    /// `plan`. Recovery of the existing log is performed normally — the
    /// plan governs only new appends. Crash-torture harness: ingest until
    /// the plan fires (the writer poisons itself; see
    /// [`TraceStore::durability`]), drop the store, reopen with
    /// [`TraceStore::open`] and assert the durable prefix came back.
    pub fn open_with_fault(
        path: impl AsRef<Path>,
        plan: crate::fault::FaultPlan,
    ) -> crate::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let recovery = WalReader::read_all(&path)?;
        let store = TraceStore {
            inner: RwLock::new(Inner::default()),
            wal: Mutex::new(None),
            path: Some(path.clone()),
            stats: QueryStats::new(),
            wal_metrics: WalMetrics::new(),
            wal_failure: Mutex::new(None),
            recovered_tail: Some(recovery.tail),
        };
        match recovery.tail {
            TailState::Clean => {}
            TailState::TornTail { .. } => store.wal_metrics.torn_tails.inc(),
            TailState::CorruptFrame { .. } => store.wal_metrics.corrupt_frames.inc(),
        }
        {
            let mut inner = store.inner.write();
            for record in recovery.records {
                inner.apply(record);
            }
        }
        // Truncate any damaged tail exactly as `open` does, then append
        // through the fault layer.
        let file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)
            .map_err(WalError::from)?;
        file.set_len(recovery.clean_len).map_err(WalError::from)?;
        drop(file);
        let backend = crate::fault::FaultFile::append_to(&path, plan).map_err(WalError::from)?;
        *store.wal.lock() =
            Some(WalWriter::over(Box::new(backend)).with_metrics(store.wal_metrics.clone()));
        Ok(store)
    }

    /// What WAL recovery found past the clean prefix when this store was
    /// opened: `None` for in-memory stores, `Some(TailState::Clean)` for an
    /// undamaged log, and a torn/corrupt tail state (with the damage
    /// offset) when a crash was repaired.
    pub fn recovered_tail(&self) -> Option<TailState> {
        self.recovered_tail
    }

    /// Errors if a WAL append or sync has failed since the store was
    /// opened (in which case the writer was shut down and recording is
    /// memory-only). Call after a run to confirm its trace is durable.
    pub fn durability(&self) -> crate::Result<()> {
        match self.wal_failure.lock().clone() {
            None => Ok(()),
            Some(message) => Err(StoreError::WalPoisoned { message }),
        }
    }

    /// Rewrites the WAL from current state (checkpoint compaction): the log
    /// shrinks to exactly the live records, dropping any overwritten tail
    /// garbage. A no-op for in-memory stores.
    pub fn checkpoint(&self) -> crate::Result<()> {
        let Some(path) = &self.path else { return Ok(()) };
        let tmp = path.with_extension("wal.tmp");
        {
            let inner = self.inner.read();
            let _ = std::fs::remove_file(&tmp);
            let mut w = WalWriter::open(&tmp)?.with_metrics(self.wal_metrics.clone());
            for (name, json) in &inner.workflows {
                w.append(&LogRecord::Workflow { name: name.clone(), json: json.clone() })?;
            }
            for info in inner.runs.values() {
                w.append(&LogRecord::BeginRun { run: info.id, workflow: info.workflow.clone() })?;
            }
            for row in inner.xforms.iter().filter(|r| !inner.dropped.contains(&r.run)) {
                w.append(&LogRecord::Xform { run: row.run, event: inner.xform_to_event(row)? })?;
            }
            for row in inner.xfers.iter().filter(|r| !inner.dropped.contains(&r.run)) {
                w.append(&LogRecord::Xfer { run: row.run, event: inner.xfer_to_event(row)? })?;
            }
            for info in inner.runs.values().filter(|i| i.finished) {
                w.append(&LogRecord::FinishRun { run: info.id })?;
            }
            w.sync()?;
        }
        std::fs::rename(&tmp, path).map_err(WalError::from)?;
        *self.wal.lock() = Some(WalWriter::open(path)?.with_metrics(self.wal_metrics.clone()));
        Ok(())
    }

    // Durability failures must not pass silently, but the `TraceSink`
    // recording methods cannot return errors and panicking would take down
    // the engine mid-run. Instead the writer is *poisoned*: the first
    // failure shuts it down (no further appends can land past an
    // inconsistent tail), the message is retained, and
    // [`TraceStore::durability`] reports it as a typed `StoreError`.
    fn log(&self, record: &LogRecord) {
        let mut guard = self.wal.lock();
        if let Some(w) = guard.as_mut() {
            if let Err(e) = w.append(record) {
                Self::poison(&mut guard, &self.wal_failure, e);
            }
        }
    }

    /// Group commit: one WAL frame for a whole event batch.
    fn log_batch(&self, run: RunId, events: &[TraceEvent]) {
        let mut guard = self.wal.lock();
        if let Some(w) = guard.as_mut() {
            if let Err(e) = w.append_batch(run, events) {
                Self::poison(&mut guard, &self.wal_failure, e);
            }
        }
    }

    /// Shuts the writer down after a durability failure, retaining the
    /// first failure message for [`TraceStore::durability`].
    fn poison(
        guard: &mut parking_lot::MutexGuard<'_, Option<WalWriter>>,
        failure: &Mutex<Option<String>>,
        err: WalError,
    ) {
        **guard = None;
        let mut f = failure.lock();
        if f.is_none() {
            *f = Some(err.to_string());
        }
    }

    // ------------------------------------------------------------------
    // Query surface
    // ------------------------------------------------------------------

    /// Access statistics (shared counters, never reset by the store).
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// WAL throughput and fsync-latency metrics (zero for in-memory
    /// stores; shared across writer re-creations).
    pub fn wal_metrics(&self) -> &WalMetrics {
        &self.wal_metrics
    }

    /// Adopts this store's counters into `registry` under stable dotted
    /// names (`store.*`, `wal.*`). The registry shares the same atomics,
    /// so registration costs nothing on the hot path. Also records the
    /// current table sizes as `store.*` gauges (refresh with
    /// [`TraceStore::record_gauges`]).
    pub fn register_metrics(&self, registry: &prov_obs::Registry) {
        self.stats.register(registry);
        self.wal_metrics.register(registry);
        self.record_gauges(registry);
    }

    /// Sets point-in-time size gauges (`store.runs`, `store.xform_rows`,
    /// `store.xfer_rows`, `store.values`, `store.symbols`,
    /// `store.index_keys`) from current table state.
    pub fn record_gauges(&self, registry: &prov_obs::Registry) {
        if !registry.is_enabled() {
            return;
        }
        let (runs, xforms, xfers) = {
            let inner = self.inner.read();
            (inner.runs.len(), inner.xforms.len(), inner.xfers.len())
        };
        registry.set_gauge("store.runs", runs as u64);
        registry.set_gauge("store.xform_rows", xforms as u64);
        registry.set_gauge("store.xfer_rows", xfers as u64);
        registry.set_gauge("store.values", self.value_count() as u64);
        registry.set_gauge("store.symbols", self.symbol_count() as u64);
        let (a, b, c, d) = self.index_key_counts();
        registry.set_gauge("store.index_keys", (a + b + c + d) as u64);
    }

    /// All stored runs, in id order.
    pub fn runs(&self) -> Vec<RunInfo> {
        self.inner.read().runs.values().cloned().collect()
    }

    /// Ids of the runs of one workflow, in id order (the scope set `𝒯` of
    /// multi-run queries, §3.4).
    pub fn runs_of(&self, workflow: &ProcessorName) -> Vec<RunId> {
        self.inner.read().runs.values().filter(|i| &i.workflow == workflow).map(|i| i.id).collect()
    }

    /// Resolves a value id.
    pub fn value(&self, id: ValueId) -> Option<Value> {
        self.inner.read().values.get(id).cloned()
    }

    /// Total number of trace records of one run (xform rows + xfer rows) —
    /// the measure reported in the paper's Table 1.
    pub fn trace_record_count(&self, run: RunId) -> u64 {
        self.inner.read().runs.get(&run).map(|i| i.xform_count + i.xfer_count).unwrap_or(0)
    }

    /// Total records across all runs (the x-axis of Fig. 6).
    pub fn total_record_count(&self) -> u64 {
        self.inner.read().runs.values().map(|i| i.xform_count + i.xfer_count).sum()
    }

    /// The xform events whose **output** binding on `processor:port`
    /// overlaps `index` (stored `q` is a prefix of `index`, or extends it).
    /// This is the inversion lookup of the naïve algorithm: "finding a
    /// matching xform event in the provenance trace".
    pub fn xforms_producing(
        &self,
        run: RunId,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Vec<XformRecord> {
        let inner = self.inner.read();
        let (p, x, key) = inner.probe(processor, port, index);
        let ids = inner.idx_xform_out.get_overlapping(run, p, x, &key, &self.stats);
        dedup_ids(ids)
            .into_iter()
            .map(|id| inner.xform_record(&inner.xforms[id as usize]))
            .collect()
    }

    /// The xform events whose **input** binding on `processor:port`
    /// overlaps `index` — the forward (impact) counterpart of
    /// [`TraceStore::xforms_producing`].
    pub fn xforms_consuming(
        &self,
        run: RunId,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Vec<XformRecord> {
        let inner = self.inner.read();
        let (p, x, key) = inner.probe(processor, port, index);
        let ids = inner.idx_xform_in.get_overlapping(run, p, x, &key, &self.stats);
        dedup_ids(ids)
            .into_iter()
            .map(|id| inner.xform_record(&inner.xforms[id as usize]))
            .collect()
    }

    /// The xfer events whose **destination** binding on `processor:port`
    /// overlaps `index` — the arc-traversal step of the naïve algorithm.
    pub fn xfers_into(
        &self,
        run: RunId,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Vec<XferRecord> {
        let inner = self.inner.read();
        let (p, x, key) = inner.probe(processor, port, index);
        let ids = inner.idx_xfer_dst.get_overlapping(run, p, x, &key, &self.stats);
        dedup_ids(ids).into_iter().map(|id| inner.xfer_record(&inner.xfers[id as usize])).collect()
    }

    /// The xfer events leaving `processor:port` at an index overlapping
    /// `index` (forward navigation; used by impact/downstream queries).
    pub fn xfers_from(
        &self,
        run: RunId,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Vec<XferRecord> {
        let inner = self.inner.read();
        let (p, x, key) = inner.probe(processor, port, index);
        let ids = inner.idx_xfer_src.get_overlapping(run, p, x, &key, &self.stats);
        dedup_ids(ids).into_iter().map(|id| inner.xfer_record(&inner.xfers[id as usize])).collect()
    }

    /// `Q(P, X_i, p_i)` of Algorithm 2: the stored **input** bindings of
    /// `processor:port` whose index overlaps `p_i`, resolved to values.
    ///
    /// The overlap handles both directions of granularity mismatch: a
    /// projected fragment shorter than the stored indices (coarse query →
    /// prefix scan over the finer rows) and coarse stored rows (`[]` on
    /// non-iterated ports) under a fine query.
    pub fn input_bindings(
        &self,
        run: RunId,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Vec<StoredBinding> {
        let inner = self.inner.read();
        let (p, x, key) = inner.probe(processor, port, index);
        let ids = inner.idx_xform_in.get_overlapping(run, p, x, &key, &self.stats);
        let mut out = Vec::new();
        let mut seen: Vec<(u64, Index)> = Vec::new();
        for id in dedup_ids(ids) {
            let row = &inner.xforms[id as usize];
            for pr in row.inputs().filter(|pr| pr.port == x) {
                if !(pr.index.is_prefix_of(index) || index.is_prefix_of(&pr.index)) {
                    continue;
                }
                let k = (pr.value.0, pr.index.clone());
                if seen.contains(&k) {
                    continue; // many invocations share whole-value inputs
                }
                seen.push(k);
                out.push(StoredBinding {
                    run,
                    processor: processor.clone(),
                    port: inner.symbols.resolve(pr.port),
                    index: pr.index.clone(),
                    value: pr.value,
                });
            }
        }
        out
    }

    /// The stored **source-side** bindings of xfer rows leaving
    /// `processor:port` at indices overlapping `index` — how lineage
    /// queries materialise bindings for ports that never appear in xform
    /// rows (top-level workflow inputs exist in the trace only as xfer
    /// sources).
    pub fn xfer_src_bindings(
        &self,
        run: RunId,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Vec<StoredBinding> {
        let inner = self.inner.read();
        let (p, x, key) = inner.probe(processor, port, index);
        let ids = inner.idx_xfer_src.get_overlapping(run, p, x, &key, &self.stats);
        let mut out: Vec<StoredBinding> = Vec::new();
        for id in dedup_ids(ids) {
            let row = &inner.xfers[id as usize];
            if out.iter().any(|b| b.index == row.src_index && b.value == row.value) {
                continue; // the same element fans out along several arcs
            }
            out.push(StoredBinding {
                run,
                processor: processor.clone(),
                port: inner.symbols.resolve(row.src_port),
                index: row.src_index.clone(),
                value: row.value,
            });
        }
        out
    }

    /// All xform rows of one run, in insertion order — served from the
    /// run's recorded row-id spans, so only that run's rows are touched (a
    /// run interleaved with a much larger one no longer pays for its
    /// neighbour). The rows physically examined are charged to the stats as
    /// both records read and rows scanned.
    pub fn xforms_of_run(&self, run: RunId) -> Vec<XformRecord> {
        let inner = self.inner.read();
        if inner.dropped.contains(&run) {
            return Vec::new();
        }
        let mut rows = Vec::new();
        if let Some(spans) = inner.spans.get(&run) {
            for &(start, end) in &spans.xforms {
                for row in &inner.xforms[start as usize..end as usize] {
                    rows.push(inner.xform_record(row));
                }
            }
        }
        self.stats.count_rows_scanned(rows.len());
        self.stats.count_records(rows.len());
        rows
    }

    /// All xfer rows of one run, in insertion order (span walk; see
    /// [`TraceStore::xforms_of_run`]).
    pub fn xfers_of_run(&self, run: RunId) -> Vec<XferRecord> {
        let inner = self.inner.read();
        if inner.dropped.contains(&run) {
            return Vec::new();
        }
        let mut rows = Vec::new();
        if let Some(spans) = inner.spans.get(&run) {
            for &(start, end) in &spans.xfers {
                for row in &inner.xfers[start as usize..end as usize] {
                    rows.push(inner.xfer_record(row));
                }
            }
        }
        self.stats.count_rows_scanned(rows.len());
        self.stats.count_records(rows.len());
        rows
    }

    /// Drops a run: its metadata and index entries go immediately; its
    /// heap rows are tombstoned and reclaimed by the next
    /// [`TraceStore::checkpoint`]. Dropping an unknown run errors.
    pub fn drop_run(&self, run: RunId) -> crate::Result<()> {
        {
            let inner = self.inner.read();
            if !inner.runs.contains_key(&run) {
                return Err(StoreError::UnknownRun(run));
            }
        }
        self.log(&LogRecord::DropRun { run });
        self.inner.write().apply(LogRecord::DropRun { run });
        if let Some(w) = self.wal.lock().as_mut() {
            w.sync().map_err(StoreError::Wal)?;
        }
        Ok(())
    }

    /// Resolves a stored binding into a user-facing [`Binding`].
    pub fn resolve(&self, b: &StoredBinding) -> crate::Result<Binding> {
        let value = self.value(b.value).ok_or(StoreError::DanglingValue(b.value))?;
        Ok(Binding {
            port: PortRef { processor: b.processor.clone(), port: b.port.clone() },
            index: b.index.clone(),
            value,
        })
    }

    /// All bindings (across every port role) of one run that carry exactly
    /// the given value — the access path for *value-predicated* queries,
    /// which the paper notes fall outside INDEXPROJ ("a query that
    /// explicitly predicates on the presence of a specific value … can
    /// still be answered using a standard graph traversal"). Combine with
    /// `NaiveLineage`/`NaiveImpact` from the returned bindings.
    pub fn bindings_with_value(&self, run: RunId, value: &Value) -> Vec<StoredBinding> {
        let inner = self.inner.read();
        let Some(&vid) = inner.values.lookup(value) else { return Vec::new() };
        let Some(rows) = inner.idx_by_value.get(&vid) else { return Vec::new() };
        self.stats.count_index_lookup();
        let mut out: Vec<StoredBinding> = Vec::new();
        let mut push = |b: StoredBinding| {
            if !out.contains(&b) {
                out.push(b);
            }
        };
        for row in rows {
            match row {
                RowRef::Xform(id) => {
                    let rec = &inner.xforms[*id as usize];
                    if rec.run != run {
                        continue;
                    }
                    self.stats.count_records(1);
                    for p in &rec.ports {
                        if p.value == vid {
                            push(StoredBinding {
                                run,
                                processor: ProcessorName(inner.symbols.resolve(rec.processor)),
                                port: inner.symbols.resolve(p.port),
                                index: p.index.clone(),
                                value: vid,
                            });
                        }
                    }
                }
                RowRef::Xfer(id) => {
                    let rec = &inner.xfers[*id as usize];
                    if rec.run != run {
                        continue;
                    }
                    self.stats.count_records(1);
                    push(StoredBinding {
                        run,
                        processor: ProcessorName(inner.symbols.resolve(rec.src_processor)),
                        port: inner.symbols.resolve(rec.src_port),
                        index: rec.src_index.clone(),
                        value: vid,
                    });
                    push(StoredBinding {
                        run,
                        processor: ProcessorName(inner.symbols.resolve(rec.dst_processor)),
                        port: inner.symbols.resolve(rec.dst_port),
                        index: rec.dst_index.clone(),
                        value: vid,
                    });
                }
            }
        }
        out
    }

    /// Registers (or overwrites) a workflow specification, making the
    /// database self-contained: INDEXPROJ consumers can fetch the spec of
    /// any recorded workflow by name. The payload is opaque JSON (the
    /// store does not depend on the dataflow crate).
    pub fn register_workflow(&self, name: &ProcessorName, json: String) {
        let record = LogRecord::Workflow { name: name.clone(), json };
        self.log(&record);
        self.inner.write().apply(record);
        self.sync_or_poison();
    }

    /// Syncs the WAL, poisoning the writer on failure (see
    /// [`TraceStore::durability`]). A silent `let _ = sync()` would report
    /// a trace as recorded that never reached the disk.
    fn sync_or_poison(&self) {
        let mut guard = self.wal.lock();
        if let Some(w) = guard.as_mut() {
            if let Err(e) = w.sync() {
                Self::poison(&mut guard, &self.wal_failure, e);
            }
        }
    }

    /// The registered specification JSON of a workflow, if any.
    pub fn workflow_json(&self, name: &ProcessorName) -> Option<String> {
        self.inner.read().workflows.get(name).cloned()
    }

    /// Names of all registered workflows.
    pub fn workflow_names(&self) -> Vec<ProcessorName> {
        self.inner.read().workflows.keys().cloned().collect()
    }

    /// Number of distinct interned values (diagnostics).
    pub fn value_count(&self) -> usize {
        let inner = self.inner.read();
        if inner.values.is_empty() {
            return 0;
        }
        inner.values.len()
    }

    /// Number of distinct interned processor/port names (diagnostics: the
    /// symbol table is tiny even for huge traces, which is why interning
    /// pays for itself).
    pub fn symbol_count(&self) -> usize {
        self.inner.read().symbols.len()
    }

    /// Distinct composite keys in each secondary index, in the order
    /// `(xform_out, xform_in, xfer_dst, xfer_src)` (diagnostics: shows how
    /// index size tracks trace size).
    pub fn index_key_counts(&self) -> (usize, usize, usize, usize) {
        let inner = self.inner.read();
        (
            inner.idx_xform_out.key_count(),
            inner.idx_xform_in.key_count(),
            inner.idx_xfer_dst.key_count(),
            inner.idx_xfer_src.key_count(),
        )
    }
}

/// Sorts and deduplicates row ids from multi-path index lookups.
fn dedup_ids(mut ids: Vec<u64>) -> Vec<u64> {
    ids.sort_unstable();
    ids.dedup();
    ids
}

impl Inner {
    /// Translates an API-boundary `(processor, port, index)` triple into
    /// interned probe keys. Unknown names map to [`Sym::MISSING`], which
    /// probes the indexes and finds nothing — same answers, same stats, no
    /// allocation.
    fn probe(&self, processor: &ProcessorName, port: &str, index: &Index) -> (Sym, Sym, IndexKey) {
        (self.symbols.lookup(processor.as_str()), self.symbols.lookup(port), IndexKey::from(index))
    }

    /// Materialises a public record from an interned xform row.
    fn xform_record(&self, row: &XformRow) -> XformRecord {
        XformRecord {
            id: row.id,
            run: row.run,
            processor: ProcessorName(self.symbols.resolve(row.processor)),
            invocation: row.invocation,
            ports: row
                .ports
                .iter()
                .map(|p| XformPortRecord {
                    direction: p.direction,
                    port: self.symbols.resolve(p.port),
                    index: p.index.clone(),
                    value: p.value,
                })
                .collect(),
        }
    }

    /// Materialises a public record from an interned xfer row.
    fn xfer_record(&self, row: &XferRow) -> XferRecord {
        XferRecord {
            id: row.id,
            run: row.run,
            src_processor: ProcessorName(self.symbols.resolve(row.src_processor)),
            src_port: self.symbols.resolve(row.src_port),
            src_index: row.src_index.clone(),
            dst_processor: ProcessorName(self.symbols.resolve(row.dst_processor)),
            dst_port: self.symbols.resolve(row.dst_port),
            dst_index: row.dst_index.clone(),
            value: row.value,
        }
    }

    fn apply(&mut self, record: LogRecord) {
        match record {
            LogRecord::BeginRun { run, workflow } => {
                self.runs.insert(
                    run,
                    RunInfo { id: run, workflow, finished: false, xform_count: 0, xfer_count: 0 },
                );
                self.next_run = self.next_run.max(run.0 + 1);
            }
            LogRecord::Xform { run, event } => self.insert_xform(run, &event),
            LogRecord::Xfer { run, event } => self.insert_xfer(run, &event),
            LogRecord::Batch { run, events } => {
                for event in &events {
                    match event {
                        TraceEvent::Xform(e) => self.insert_xform(run, e),
                        TraceEvent::Xfer(e) => self.insert_xfer(run, e),
                    }
                }
            }
            LogRecord::FinishRun { run } => {
                if let Some(info) = self.runs.get_mut(&run) {
                    info.finished = true;
                }
            }
            LogRecord::DropRun { run } => {
                self.runs.remove(&run);
                self.dropped.insert(run);
                self.spans.remove(&run);
                self.idx_xform_out.remove_run(run);
                self.idx_xform_in.remove_run(run);
                self.idx_xfer_dst.remove_run(run);
                self.idx_xfer_src.remove_run(run);
            }
            LogRecord::Workflow { name, json } => {
                self.workflows.insert(name, json);
            }
        }
    }

    fn index_value(&mut self, value: ValueId, row: RowRef) {
        let rows = self.idx_by_value.entry(value).or_default();
        if rows.last() != Some(&row) {
            rows.push(row);
        }
    }

    fn insert_xform(&mut self, run: RunId, event: &XformEvent) {
        let id = self.xforms.len() as u64;
        let processor = self.symbols.intern(&event.processor.0);
        let mut ports = Vec::with_capacity(event.inputs.len() + event.outputs.len());
        for b in &event.inputs {
            let value = self.values.intern(&b.value);
            self.index_value(value, RowRef::Xform(id));
            let port = self.symbols.intern(&b.port);
            let index = IndexKey::from(&b.index);
            ports.push(XformPortRow {
                direction: PortDirection::In,
                port,
                index: b.index.clone(),
                value,
            });
            self.idx_xform_in.insert(SymKey { run, processor, port, index }, id);
        }
        for b in &event.outputs {
            let value = self.values.intern(&b.value);
            self.index_value(value, RowRef::Xform(id));
            let port = self.symbols.intern(&b.port);
            let index = IndexKey::from(&b.index);
            ports.push(XformPortRow {
                direction: PortDirection::Out,
                port,
                index: b.index.clone(),
                value,
            });
            self.idx_xform_out.insert(SymKey { run, processor, port, index }, id);
        }
        self.xforms.push(XformRow { id, run, processor, invocation: event.invocation, ports });
        RowSpans::push(&mut self.spans.entry(run).or_default().xforms, id);
        if let Some(info) = self.runs.get_mut(&run) {
            info.xform_count += 1;
        }
    }

    fn insert_xfer(&mut self, run: RunId, event: &XferEvent) {
        let id = self.xfers.len() as u64;
        let value = self.values.intern(&event.value);
        self.index_value(value, RowRef::Xfer(id));
        let src_processor = self.symbols.intern(&event.src.processor.0);
        let src_port = self.symbols.intern(&event.src.port);
        let dst_processor = self.symbols.intern(&event.dst.processor.0);
        let dst_port = self.symbols.intern(&event.dst.port);
        self.idx_xfer_dst.insert(
            SymKey {
                run,
                processor: dst_processor,
                port: dst_port,
                index: IndexKey::from(&event.dst_index),
            },
            id,
        );
        self.idx_xfer_src.insert(
            SymKey {
                run,
                processor: src_processor,
                port: src_port,
                index: IndexKey::from(&event.src_index),
            },
            id,
        );
        self.xfers.push(XferRow {
            id,
            run,
            src_processor,
            src_port,
            src_index: event.src_index.clone(),
            dst_processor,
            dst_port,
            dst_index: event.dst_index.clone(),
            value,
        });
        RowSpans::push(&mut self.spans.entry(run).or_default().xfers, id);
        if let Some(info) = self.runs.get_mut(&run) {
            info.xfer_count += 1;
        }
    }

    fn xform_to_event(&self, row: &XformRow) -> Result<XformEvent, StoreError> {
        let binding = |p: &XformPortRow| -> Result<prov_engine::PortBinding, StoreError> {
            Ok(prov_engine::PortBinding {
                port: self.symbols.resolve(p.port),
                index: p.index.clone(),
                value: self
                    .values
                    .get(p.value)
                    .cloned()
                    .ok_or(StoreError::DanglingValue(p.value))?,
            })
        };
        Ok(XformEvent {
            processor: ProcessorName(self.symbols.resolve(row.processor)),
            invocation: row.invocation,
            inputs: row.inputs().map(binding).collect::<Result<_, _>>()?,
            outputs: row.outputs().map(binding).collect::<Result<_, _>>()?,
        })
    }

    fn xfer_to_event(&self, row: &XferRow) -> Result<XferEvent, StoreError> {
        Ok(XferEvent {
            src: PortRef {
                processor: ProcessorName(self.symbols.resolve(row.src_processor)),
                port: self.symbols.resolve(row.src_port),
            },
            src_index: row.src_index.clone(),
            dst: PortRef {
                processor: ProcessorName(self.symbols.resolve(row.dst_processor)),
                port: self.symbols.resolve(row.dst_port),
            },
            dst_index: row.dst_index.clone(),
            value: self
                .values
                .get(row.value)
                .cloned()
                .ok_or(StoreError::DanglingValue(row.value))?,
        })
    }
}

impl TraceSink for TraceStore {
    fn begin_run(&self, workflow: &ProcessorName) -> RunId {
        let mut inner = self.inner.write();
        let run = RunId(inner.next_run);
        inner.apply(LogRecord::BeginRun { run, workflow: clone_name(workflow) });
        drop(inner);
        self.log(&LogRecord::BeginRun { run, workflow: clone_name(workflow) });
        run
    }

    fn record_xform(&self, run: RunId, event: XformEvent) {
        self.log(&LogRecord::Xform { run, event: event.clone() });
        self.inner.write().insert_xform(run, &event);
    }

    fn record_xfer(&self, run: RunId, event: XferEvent) {
        self.log(&LogRecord::Xfer { run, event: event.clone() });
        self.inner.write().insert_xfer(run, &event);
    }

    fn record_batch(&self, run: RunId, events: Vec<TraceEvent>) {
        if events.is_empty() {
            return;
        }
        // One WAL frame, then one write-lock acquisition for the whole
        // batch — the group commit the per-event path can't amortise.
        self.log_batch(run, &events);
        let mut inner = self.inner.write();
        for event in &events {
            match event {
                TraceEvent::Xform(e) => inner.insert_xform(run, e),
                TraceEvent::Xfer(e) => inner.insert_xfer(run, e),
            }
        }
    }

    fn finish_run(&self, run: RunId) {
        self.inner.write().apply(LogRecord::FinishRun { run });
        self.log(&LogRecord::FinishRun { run });
        // Durability failure poisons the writer instead of panicking;
        // `durability()` surfaces it as a typed error.
        self.sync_or_poison();
    }
}

fn clone_name(n: &ProcessorName) -> ProcessorName {
    n.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_engine::PortBinding;

    fn xform(proc: &str, inv: u32, q: &[u32], in_idx: &[u32]) -> XformEvent {
        XformEvent {
            processor: ProcessorName::from(proc),
            invocation: inv,
            inputs: vec![PortBinding::new("x", Index::from_slice(in_idx), Value::str("in"))],
            outputs: vec![PortBinding::new("y", Index::from_slice(q), Value::str("out"))],
        }
    }

    fn xfer(src: (&str, &str), dst: (&str, &str), idx: &[u32], v: &str) -> XferEvent {
        XferEvent {
            src: PortRef::new(src.0, src.1),
            src_index: Index::from_slice(idx),
            dst: PortRef::new(dst.0, dst.1),
            dst_index: Index::from_slice(idx),
            value: Value::str(v),
        }
    }

    #[test]
    fn begin_run_assigns_monotone_ids() {
        let s = TraceStore::in_memory();
        let a = s.begin_run(&"wf".into());
        let b = s.begin_run(&"wf".into());
        assert_eq!(a, RunId(0));
        assert_eq!(b, RunId(1));
        assert_eq!(s.runs().len(), 2);
        assert!(!s.runs()[0].finished);
        s.finish_run(a);
        assert!(s.runs()[0].finished);
    }

    #[test]
    fn runs_of_filters_by_workflow() {
        let s = TraceStore::in_memory();
        let a = s.begin_run(&"gk".into());
        let _b = s.begin_run(&"pd".into());
        let c = s.begin_run(&"gk".into());
        assert_eq!(s.runs_of(&"gk".into()), vec![a, c]);
    }

    #[test]
    fn xform_lookup_by_output_overlap() {
        let s = TraceStore::in_memory();
        let r = s.begin_run(&"wf".into());
        s.record_xform(r, xform("P", 0, &[0], &[0]));
        s.record_xform(r, xform("P", 1, &[1], &[1]));
        // Exact index.
        let hits = s.xforms_producing(r, &"P".into(), "y", &Index::single(1));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].invocation, 1);
        // Finer query index [1,2]: the producing invocation has prefix [1].
        let hits = s.xforms_producing(r, &"P".into(), "y", &Index::from_slice(&[1, 2]));
        assert_eq!(hits.len(), 1);
        // Coarse query []: both invocations overlap.
        let hits = s.xforms_producing(r, &"P".into(), "y", &Index::empty());
        assert_eq!(hits.len(), 2);
        // Wrong port or run: nothing.
        assert!(s.xforms_producing(r, &"P".into(), "z", &Index::empty()).is_empty());
        assert!(s.xforms_producing(RunId(99), &"P".into(), "y", &Index::empty()).is_empty());
    }

    #[test]
    fn xfer_lookup_by_destination() {
        let s = TraceStore::in_memory();
        let r = s.begin_run(&"wf".into());
        s.record_xfer(r, xfer(("A", "y"), ("B", "x"), &[0], "v0"));
        s.record_xfer(r, xfer(("A", "y"), ("B", "x"), &[1], "v1"));
        let hits = s.xfers_into(r, &"B".into(), "x", &Index::single(0));
        assert_eq!(hits.len(), 1);
        assert_eq!(s.value(hits[0].value), Some(Value::str("v0")));
        assert_eq!(hits[0].src_processor, ProcessorName::from("A"));
        // Forward direction.
        let hits = s.xfers_from(r, &"A".into(), "y", &Index::empty());
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn input_bindings_is_the_q_lookup() {
        let s = TraceStore::in_memory();
        let r = s.begin_run(&"wf".into());
        s.record_xform(r, xform("P", 0, &[0], &[0]));
        s.record_xform(r, xform("P", 1, &[1], &[1]));
        let bs = s.input_bindings(r, &"P".into(), "x", &Index::single(1));
        assert_eq!(bs.len(), 1);
        assert_eq!(bs[0].index, Index::single(1));
        let resolved = s.resolve(&bs[0]).unwrap();
        assert_eq!(resolved.value, Value::str("in"));
        assert_eq!(resolved.port, PortRef::new("P", "x"));
        // Coarse query returns both, deduplicated by (value, index).
        let bs = s.input_bindings(r, &"P".into(), "x", &Index::empty());
        assert_eq!(bs.len(), 2);
    }

    #[test]
    fn input_bindings_dedups_shared_whole_values() {
        // Two invocations consuming the same whole-value port produce ONE
        // binding (the paper's X2[]-style port).
        let s = TraceStore::in_memory();
        let r = s.begin_run(&"wf".into());
        for inv in 0..2 {
            s.record_xform(r, xform("P", inv, &[inv], &[]));
        }
        let bs = s.input_bindings(r, &"P".into(), "x", &Index::empty());
        assert_eq!(bs.len(), 1);
        assert!(bs[0].index.is_empty());
    }

    #[test]
    fn record_counts_track_table1_measure() {
        let s = TraceStore::in_memory();
        let r1 = s.begin_run(&"wf".into());
        s.record_xform(r1, xform("P", 0, &[0], &[0]));
        s.record_xfer(r1, xfer(("A", "y"), ("B", "x"), &[0], "v"));
        s.record_xfer(r1, xfer(("A", "y"), ("B", "x"), &[1], "v"));
        let r2 = s.begin_run(&"wf".into());
        s.record_xform(r2, xform("P", 0, &[0], &[0]));
        assert_eq!(s.trace_record_count(r1), 3);
        assert_eq!(s.trace_record_count(r2), 1);
        assert_eq!(s.total_record_count(), 4);
    }

    #[test]
    fn values_are_interned_across_events() {
        let s = TraceStore::in_memory();
        let r = s.begin_run(&"wf".into());
        for i in 0..10 {
            s.record_xfer(r, xfer(("A", "y"), ("B", "x"), &[i], "same"));
        }
        assert_eq!(s.value_count(), 1);
    }

    #[test]
    fn names_are_interned_across_events() {
        let s = TraceStore::in_memory();
        let r = s.begin_run(&"wf".into());
        for i in 0..10 {
            s.record_xform(r, xform("P", i, &[i], &[i]));
            s.record_xfer(r, xfer(("P", "y"), ("Q", "x"), &[i], "v"));
        }
        // P, Q, x, y — regardless of row count.
        assert_eq!(s.symbol_count(), 4);
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("prov-store-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn durable_store_survives_reopen() {
        let path = tmp("reopen");
        {
            let s = TraceStore::open(&path).unwrap();
            let r = s.begin_run(&"wf".into());
            s.record_xform(r, xform("P", 0, &[0], &[0]));
            s.record_xfer(r, xfer(("A", "y"), ("P", "x"), &[0], "v"));
            s.finish_run(r);
        }
        let s = TraceStore::open(&path).unwrap();
        assert_eq!(s.runs().len(), 1);
        assert!(s.runs()[0].finished);
        assert_eq!(s.trace_record_count(RunId(0)), 2);
        let hits = s.xforms_producing(RunId(0), &"P".into(), "y", &Index::single(0));
        assert_eq!(hits.len(), 1);
        // New runs continue after the replayed id space.
        let r2 = s.begin_run(&"wf".into());
        assert_eq!(r2, RunId(1));
    }

    #[test]
    fn batched_recording_is_equivalent_and_durable() {
        let path = tmp("batch-equiv");
        {
            let s = TraceStore::open(&path).unwrap();
            let r = s.begin_run(&"wf".into());
            s.record_batch(
                r,
                vec![
                    TraceEvent::Xform(xform("P", 0, &[0], &[0])),
                    TraceEvent::Xfer(xfer(("P", "y"), ("Q", "x"), &[0], "out")),
                    TraceEvent::Xform(xform("P", 1, &[1], &[1])),
                ],
            );
            s.record_batch(r, Vec::new()); // empty batches are no-ops
            s.finish_run(r);
        }
        // Batched WAL frames replay to the same queryable state.
        let s = TraceStore::open(&path).unwrap();
        assert_eq!(s.trace_record_count(RunId(0)), 3);
        assert_eq!(s.xforms_producing(RunId(0), &"P".into(), "y", &Index::empty()).len(), 2);
        assert_eq!(s.xfers_into(RunId(0), &"Q".into(), "x", &Index::single(0)).len(), 1);
        // Rows kept recording order within the run.
        let rows = s.xforms_of_run(RunId(0));
        assert_eq!(rows.iter().map(|r| r.invocation).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn reopen_after_torn_tail_truncates_and_continues() {
        let path = tmp("torn");
        {
            let s = TraceStore::open(&path).unwrap();
            let r = s.begin_run(&"wf".into());
            s.record_xform(r, xform("P", 0, &[0], &[0]));
            s.finish_run(r);
        }
        // Tear the tail.
        let len = std::fs::metadata(&path).unwrap().len();
        std::fs::OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 2).unwrap();
        let s = TraceStore::open(&path).unwrap();
        // FinishRun frame was torn: run exists, unfinished, xform intact.
        assert_eq!(s.runs().len(), 1);
        assert!(!s.runs()[0].finished);
        assert_eq!(s.trace_record_count(RunId(0)), 1);
        // Appending after truncation keeps the log clean.
        let r2 = s.begin_run(&"wf".into());
        s.finish_run(r2);
        let s2 = TraceStore::open(&path).unwrap();
        assert_eq!(s2.runs().len(), 2);
    }

    #[test]
    fn checkpoint_compacts_and_preserves_state() {
        let path = tmp("checkpoint");
        let s = TraceStore::open(&path).unwrap();
        let r = s.begin_run(&"wf".into());
        for i in 0..20 {
            s.record_xfer(r, xfer(("A", "y"), ("B", "x"), &[i], "v"));
        }
        s.finish_run(r);
        s.checkpoint().unwrap();
        let s2 = TraceStore::open(&path).unwrap();
        assert_eq!(s2.trace_record_count(RunId(0)), 20);
        assert!(s2.runs()[0].finished);
    }

    #[test]
    fn drop_run_removes_queryability_and_survives_checkpoint() {
        let path = tmp("drop");
        let s = TraceStore::open(&path).unwrap();
        let keep = s.begin_run(&"wf".into());
        s.record_xform(keep, xform("P", 0, &[0], &[0]));
        let gone = s.begin_run(&"wf".into());
        s.record_xform(gone, xform("P", 0, &[1], &[1]));
        s.record_xfer(gone, xfer(("A", "y"), ("B", "x"), &[0], "v"));
        s.finish_run(keep);
        s.finish_run(gone);

        s.drop_run(gone).unwrap();
        assert_eq!(s.runs().len(), 1);
        assert!(s.xforms_producing(gone, &"P".into(), "y", &Index::empty()).is_empty());
        assert!(s.xforms_of_run(gone).is_empty());
        assert_eq!(s.trace_record_count(gone), 0);
        // The kept run is untouched.
        assert_eq!(s.xforms_producing(keep, &"P".into(), "y", &Index::empty()).len(), 1);

        // Durability: the drop replays…
        let s2 = TraceStore::open(&path).unwrap();
        assert_eq!(s2.runs().len(), 1);
        assert!(s2.xforms_of_run(gone).is_empty());

        // …and checkpointing reclaims the space.
        s2.checkpoint().unwrap();
        let before = std::fs::metadata(&path).unwrap().len();
        let s3 = TraceStore::open(&path).unwrap();
        assert_eq!(s3.runs().len(), 1);
        assert_eq!(s3.xforms_producing(keep, &"P".into(), "y", &Index::empty()).len(), 1);
        assert!(before > 0);
    }

    #[test]
    fn bindings_with_value_finds_all_roles() {
        let s = TraceStore::in_memory();
        let r = s.begin_run(&"wf".into());
        s.record_xform(r, xform("P", 0, &[0], &[0])); // in "in", out "out"
        s.record_xfer(r, xfer(("P", "y"), ("Q", "x"), &[0], "out"));
        // "out" appears as P's output AND as the transferred element.
        let hits = s.bindings_with_value(r, &Value::str("out"));
        assert!(hits.iter().any(|b| b.processor == ProcessorName::from("P") && &*b.port == "y"));
        assert!(hits.iter().any(|b| b.processor == ProcessorName::from("Q") && &*b.port == "x"));
        // Misses return empty; other runs are isolated.
        assert!(s.bindings_with_value(r, &Value::str("nope")).is_empty());
        let r2 = s.begin_run(&"wf".into());
        assert!(s.bindings_with_value(r2, &Value::str("out")).is_empty());
    }

    #[test]
    fn workflow_registry_survives_reopen_and_checkpoint() {
        let path = tmp("wfreg");
        {
            let s = TraceStore::open(&path).unwrap();
            s.register_workflow(&"wf".into(), "{\"fake\":1}".to_string());
            assert_eq!(s.workflow_json(&"wf".into()).unwrap(), "{\"fake\":1}");
        }
        let s = TraceStore::open(&path).unwrap();
        assert_eq!(s.workflow_names(), vec![ProcessorName::from("wf")]);
        s.checkpoint().unwrap();
        let s = TraceStore::open(&path).unwrap();
        assert_eq!(s.workflow_json(&"wf".into()).unwrap(), "{\"fake\":1}");
        // Re-registration overwrites.
        s.register_workflow(&"wf".into(), "{\"fake\":2}".to_string());
        assert_eq!(s.workflow_json(&"wf".into()).unwrap(), "{\"fake\":2}");
    }

    #[test]
    fn drop_unknown_run_errors() {
        let s = TraceStore::in_memory();
        assert!(matches!(s.drop_run(RunId(9)), Err(StoreError::UnknownRun(_))));
    }

    #[test]
    fn index_key_counts_track_inserts() {
        let s = TraceStore::in_memory();
        let r = s.begin_run(&"wf".into());
        s.record_xform(r, xform("P", 0, &[0], &[0]));
        s.record_xfer(r, xfer(("A", "y"), ("B", "x"), &[0], "v"));
        let (xo, xi, xd, xs) = s.index_key_counts();
        assert_eq!((xo, xi, xd, xs), (1, 1, 1, 1));
    }

    #[test]
    fn of_run_scans_charge_only_that_runs_rows() {
        // Regression: with per-run row spans, reading a small run that is
        // co-resident with a much larger one must touch only the small
        // run's rows — the old implementation scanned the whole heap.
        let s = TraceStore::in_memory();
        let big = s.begin_run(&"wf".into());
        for i in 0..100 {
            s.record_xform(big, xform("P", i, &[i], &[i]));
            s.record_xfer(big, xfer(("P", "y"), ("Q", "x"), &[i], "v"));
        }
        let small = s.begin_run(&"wf".into());
        s.record_xform(small, xform("P", 0, &[0], &[0]));
        s.record_xfer(small, xfer(("P", "y"), ("Q", "x"), &[0], "v"));

        let before = s.stats().snapshot();
        assert_eq!(s.xforms_of_run(small).len(), 1);
        assert_eq!(s.xfers_of_run(small).len(), 1);
        let after = s.stats().snapshot();
        assert_eq!(after.rows_scanned - before.rows_scanned, 2);
        assert_eq!(after.records_read - before.records_read, 2);
    }

    #[test]
    fn interleaved_runs_keep_their_own_spans() {
        let s = TraceStore::in_memory();
        let a = s.begin_run(&"wf".into());
        let b = s.begin_run(&"wf".into());
        for i in 0..5 {
            s.record_xform(a, xform("P", 2 * i, &[2 * i], &[2 * i]));
            s.record_xform(b, xform("P", 2 * i + 1, &[2 * i + 1], &[2 * i + 1]));
        }
        let rows_a: Vec<u32> = s.xforms_of_run(a).iter().map(|r| r.invocation).collect();
        let rows_b: Vec<u32> = s.xforms_of_run(b).iter().map(|r| r.invocation).collect();
        assert_eq!(rows_a, vec![0, 2, 4, 6, 8]);
        assert_eq!(rows_b, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn concurrent_recording_from_multiple_threads() {
        let s = std::sync::Arc::new(TraceStore::in_memory());
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    let r = s.begin_run(&"wf".into());
                    for i in 0..50 {
                        s.record_xform(r, xform("P", i, &[i], &[i]));
                    }
                    s.finish_run(r);
                });
                let _ = t;
            }
        });
        assert_eq!(s.runs().len(), 4);
        assert_eq!(s.total_record_count(), 200);
        // Every run sees exactly its own 50 rows via its spans.
        for info in s.runs() {
            assert_eq!(s.xforms_of_run(info.id).len(), 50);
        }
    }
}
