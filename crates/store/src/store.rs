//! The trace store: tables + indexes + optional WAL, behind one handle.
//!
//! Internally everything is interned: processor and port names become
//! [`Sym`]s, element indices become packed [`IndexKey`]s, and the row heaps
//! hold compact symbol-typed rows. Strings exist only at the API boundary —
//! interned on the write path, resolved back when records are materialised
//! for callers. Query answers are bit-identical to the string-keyed layout
//! (probing with an unknown name degenerates to a [`Sym::MISSING`] probe
//! that finds nothing, with the same stats accounting).

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use prov_engine::{TraceEvent, TraceSink, XferEvent, XformEvent};
use prov_model::{Binding, Index, PortRef, ProcessorName, RunId, Value, ValueId};

use crate::catalog::{IndexCatalog, IndexId, PortCardinality};
use crate::fault::FaultPlan;
use crate::rows::{
    PortDirection, StoredBinding, XferRecord, XferRow, XformPortRow, XformRecord, XformRow,
};
use crate::shard::{ReadView, RunShard};
use crate::snapshot::{self, CompactionPolicy, SnapshotMetrics};
use crate::stats::QueryStats;
use crate::symbols::SymbolTable;
use crate::values::ValueTable;
use crate::wal::{LogRecord, TailState, WalError, WalMetrics, WalReader, WalWriter};

/// Store-level errors.
#[derive(Debug)]
pub enum StoreError {
    /// WAL failure.
    Wal(WalError),
    /// A referenced run does not exist.
    UnknownRun(RunId),
    /// A referenced value id does not exist (dangling reference — indicates
    /// corruption).
    DanglingValue(ValueId),
    /// A WAL append or sync failed earlier; the writer was shut down to
    /// avoid writing an inconsistent tail, and everything recorded since is
    /// memory-only. Carries the original failure message.
    WalPoisoned {
        /// The first durability failure observed.
        message: String,
    },
    /// A record could not be serialised for export.
    Serialize(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Wal(e) => write!(f, "{e}"),
            StoreError::UnknownRun(r) => write!(f, "unknown run {r}"),
            StoreError::DanglingValue(v) => write!(f, "dangling value reference {v}"),
            StoreError::WalPoisoned { message } => {
                write!(f, "wal writer shut down after durability failure: {message}")
            }
            StoreError::Serialize(e) => write!(f, "serialisation failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<WalError> for StoreError {
    fn from(e: WalError) -> Self {
        StoreError::Wal(e)
    }
}

/// Metadata of one stored run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunInfo {
    /// The run id.
    pub id: RunId,
    /// The workflow that produced the trace.
    pub workflow: ProcessorName,
    /// Whether `finish_run` was observed.
    pub finished: bool,
    /// Number of xform rows in the run.
    pub xform_count: u64,
    /// Number of xfer rows in the run.
    pub xfer_count: u64,
}

#[derive(Default)]
struct Inner {
    runs: BTreeMap<RunId, RunInfo>,
    /// Registered workflow specifications, by name (serialised JSON; the
    /// store stays ignorant of the dataflow crate).
    workflows: BTreeMap<ProcessorName, String>,
    next_run: u64,
    /// Next global xform row id. Ids stay globally monotone across shards
    /// (the public `XformRecord::id` contract); row *positions* inside a
    /// shard are local to it.
    next_xform_id: u64,
    /// Next global xfer row id.
    next_xfer_id: u64,
    /// Content-addressed value table, shared by all shards. Behind an
    /// `Arc` so a [`ReadView`] can pin it without copying; mutated via
    /// `Arc::make_mut` (in place while unpinned, copy-on-write otherwise).
    values: Arc<ValueTable>,
    /// Processor/port name interner; rows and index keys hold symbols.
    /// Shared and copy-on-write exactly like `values`.
    symbols: Arc<SymbolTable>,
    /// One shard per run: that run's row heaps, composite indexes, and
    /// reverse value index, as one independently pinnable unit.
    shards: HashMap<RunId, Arc<RunShard>>,
}

/// The pending (post-snapshot) WAL tail: what a crash right now would
/// force recovery to replay. Drives the [`CompactionPolicy`] check.
#[derive(Debug, Default, Clone, Copy)]
struct TailUsage {
    frames: u64,
    bytes: u64,
}

/// The durable replication position of a store: which WAL lineage it is on
/// and how much of it has been fsynced. This is what a primary advertises
/// to followers and what a follower offers back in its handshake.
///
/// `generation` names the WAL lineage: the leading snapshot-marker
/// generation when the log was compacted, `0` for a marker-less log, and a
/// fresh epoch after [`TraceStore::checkpoint`] rewrites the log in place.
/// Two stores on the same generation with the same `durable_len` hold
/// byte-identical logs; a generation change means the log was rewritten
/// and byte offsets are no longer comparable (followers re-bootstrap).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplPosition {
    /// The WAL lineage (see type docs).
    pub generation: u64,
    /// Bytes of the current WAL known durable (fsynced).
    pub durable_len: u64,
    /// Frames of the current WAL known durable, including any leading
    /// snapshot marker.
    pub durable_frames: u64,
}

/// The embedded relational trace store. Cheap to share (`Arc` inside); all
/// methods take `&self`.
///
/// Lock order (where multiple locks are held): `wal` → `inner` →
/// (`wal_tail` | `snapshot_gen` | `compaction`). Recording methods hold the
/// `wal` lock across both the WAL append *and* the in-memory insert, so
/// [`TraceStore::snapshot`] (which takes the same lock) can never truncate
/// a frame whose effect the snapshot has not captured.
pub struct TraceStore {
    inner: RwLock<Inner>,
    wal: Mutex<Option<WalWriter>>,
    path: Option<PathBuf>,
    stats: QueryStats,
    wal_metrics: WalMetrics,
    /// First durability failure, if any; set when the WAL writer is shut
    /// down mid-session (see [`StoreError::WalPoisoned`]).
    wal_failure: Mutex<Option<String>>,
    /// What recovery found past the clean prefix at open time (`None` for
    /// in-memory stores, which never recover).
    recovered_tail: Option<TailState>,
    /// Snapshot lifecycle counters.
    snap_metrics: SnapshotMetrics,
    /// Frames/bytes appended since the last snapshot (or open).
    wal_tail: Mutex<TailUsage>,
    /// Automatic compaction policy, checked after every recording call.
    compaction: Mutex<Option<CompactionPolicy>>,
    /// Newest snapshot generation on disk; the next snapshot numbers above.
    snapshot_gen: Mutex<u64>,
    /// Frames appended to the current WAL since its first byte (including
    /// any leading snapshot marker) — the frame-count twin of the WAL's
    /// byte length, advertised to replicas.
    wal_frames: Mutex<u64>,
    /// The durable replication position (updated at open, sync, snapshot
    /// and checkpoint; see [`ReplPosition`]).
    repl_pos: Mutex<ReplPosition>,
    /// Fault-injection plan new WAL/snapshot writers are created under
    /// (crash-torture only; budgets are per-handle).
    fault_plan: Option<FaultPlan>,
    /// Optional event journal; WAL syncs and snapshot writes are recorded
    /// into it once attached (see [`TraceStore::attach_journal`]).
    journal: std::sync::OnceLock<prov_obs::Journal>,
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("TraceStore")
            .field("runs", &inner.runs.len())
            .field("xforms", &inner.xform_rows())
            .field("xfers", &inner.xfer_rows())
            .field("values", &inner.values.len())
            .field("symbols", &inner.symbols.len())
            .field("durable", &self.path.is_some())
            .finish()
    }
}

impl TraceStore {
    /// A purely in-memory store (the benchmark configuration).
    pub fn in_memory() -> Self {
        TraceStore {
            inner: RwLock::new(Inner::default()),
            wal: Mutex::new(None),
            path: None,
            stats: QueryStats::new(),
            wal_metrics: WalMetrics::new(),
            wal_failure: Mutex::new(None),
            recovered_tail: None,
            snap_metrics: SnapshotMetrics::new(),
            wal_tail: Mutex::new(TailUsage::default()),
            compaction: Mutex::new(None),
            snapshot_gen: Mutex::new(0),
            wal_frames: Mutex::new(0),
            repl_pos: Mutex::new(ReplPosition::default()),
            fault_plan: None,
            journal: std::sync::OnceLock::new(),
        }
    }

    /// Opens (or creates) a durable store backed by a WAL at `path`,
    /// replaying any existing log. A torn or corrupt tail is truncated
    /// away, exactly once, before appending resumes; the recovery is
    /// surfaced through [`TraceStore::recovered_tail`] and the
    /// `wal.torn_tails` / `wal.corrupt_frames` counters. If the WAL opens
    /// with a [`LogRecord::Snapshot`] marker, base state is loaded from the
    /// corresponding snapshot file and only the WAL tail past the marker is
    /// replayed — falling back a generation if the newest snapshot is torn.
    pub fn open(path: impl AsRef<Path>) -> crate::Result<Self> {
        Self::open_inner(path.as_ref().to_path_buf(), None)
    }

    /// Like [`TraceStore::open`], but every subsequent WAL *and snapshot*
    /// write goes through a fault-injecting [`crate::fault::FaultFile`]
    /// driven by `plan` (budgets are per file handle). Recovery of the
    /// existing log is performed normally — the plan governs only new
    /// writes. Crash-torture harness: ingest until the plan fires (the
    /// writer poisons itself; see [`TraceStore::durability`]), drop the
    /// store, reopen with [`TraceStore::open`] and assert the durable
    /// prefix came back.
    pub fn open_with_fault(path: impl AsRef<Path>, plan: FaultPlan) -> crate::Result<Self> {
        Self::open_inner(path.as_ref().to_path_buf(), Some(plan))
    }

    fn open_inner(path: PathBuf, plan: Option<FaultPlan>) -> crate::Result<Self> {
        let recovery = WalReader::read_all(&path)?;
        let store = TraceStore {
            inner: RwLock::new(Inner::default()),
            wal: Mutex::new(None),
            path: Some(path.clone()),
            stats: QueryStats::new(),
            wal_metrics: WalMetrics::new(),
            wal_failure: Mutex::new(None),
            recovered_tail: Some(recovery.tail),
            snap_metrics: SnapshotMetrics::new(),
            wal_tail: Mutex::new(TailUsage::default()),
            compaction: Mutex::new(None),
            snapshot_gen: Mutex::new(0),
            wal_frames: Mutex::new(0),
            repl_pos: Mutex::new(ReplPosition::default()),
            fault_plan: plan,
            journal: std::sync::OnceLock::new(),
        };
        match recovery.tail {
            TailState::Clean => {}
            TailState::TornTail { .. } => store.wal_metrics.torn_tails.inc(),
            TailState::CorruptFrame { .. } => store.wal_metrics.corrupt_frames.inc(),
        }

        let existing = snapshot::generations(&path);
        let total_frames = recovery.records.len() as u64;
        let marked_gen = match recovery.records.first() {
            Some(LogRecord::Snapshot { generation }) => Some(*generation),
            _ => None,
        };
        let mut replayed = 0u64;
        let mut rewrite_marker: Option<u64> = None;
        match recovery.records.first() {
            // The WAL opens with a snapshot marker: base state lives in a
            // snapshot file; replay only the tail past the marker. If the
            // marked generation is torn, fall back one generation at a time
            // (each skip loses the records between the two snapshots —
            // possible only under external corruption, since a generation's
            // marker is appended only after its file is durable — so a
            // degraded answer beats none).
            Some(LogRecord::Snapshot { generation }) => {
                let marked = *generation;
                let mut inner = store.inner.write();
                let mut candidate = Some(marked);
                while let Some(generation) = candidate {
                    if let Some(records) =
                        snapshot::load(&snapshot::snapshot_path(&path, generation), generation)
                    {
                        for record in records {
                            inner.apply(record);
                        }
                        break;
                    }
                    store.snap_metrics.fallbacks.inc();
                    candidate = existing.iter().rev().find(|&&g| g < generation).copied();
                }
                for record in recovery.records.into_iter().skip(1) {
                    inner.apply(record);
                    replayed += 1;
                }
            }
            // Records with no leading marker: a store that has never
            // compacted, or whose WAL was rewritten whole by `checkpoint`,
            // or a crash between a snapshot's rename and the WAL
            // truncation. Any snapshot files are stale; a full replay is
            // lossless.
            Some(_) => {
                let mut inner = store.inner.write();
                for record in recovery.records {
                    inner.apply(record);
                    replayed += 1;
                }
            }
            // Empty WAL. If snapshots exist, a compaction crashed between
            // the WAL truncation and the marker append — load the newest
            // valid generation and rewrite the marker below so the next
            // recovery has its base again.
            None => {
                let mut inner = store.inner.write();
                for &generation in existing.iter().rev() {
                    if let Some(records) =
                        snapshot::load(&snapshot::snapshot_path(&path, generation), generation)
                    {
                        for record in records {
                            inner.apply(record);
                        }
                        rewrite_marker = Some(generation);
                        break;
                    }
                    store.snap_metrics.fallbacks.inc();
                }
            }
        }
        store.wal_metrics.recovery_replayed_frames.add(replayed);
        *store.snapshot_gen.lock() = existing.last().copied().unwrap_or(0);

        let mut writer = if rewrite_marker.is_some() {
            Self::make_writer(&path, 0, plan, store.wal_metrics.clone())?
        } else {
            Self::make_writer(&path, recovery.clean_len, plan, store.wal_metrics.clone())?
        };
        if let Some(generation) = rewrite_marker {
            writer.append(&LogRecord::Snapshot { generation })?;
            writer.sync()?;
        } else {
            *store.wal_tail.lock() = TailUsage { frames: replayed, bytes: recovery.clean_len };
        }
        *store.wal.lock() = Some(writer);
        // The replication position the reopened store advertises: the WAL
        // lineage (leading marker generation, or 0 for a marker-less log)
        // and its durable extent. A rewritten marker is the whole log.
        let frames = if rewrite_marker.is_some() { 1 } else { total_frames };
        let generation = rewrite_marker.or(marked_gen).unwrap_or(0);
        let durable_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        *store.wal_frames.lock() = frames;
        *store.repl_pos.lock() = ReplPosition { generation, durable_len, durable_frames: frames };
        Ok(store)
    }

    /// A WAL writer positioned after the `clean_len`-byte durable prefix —
    /// through the fault layer when the store runs under a [`FaultPlan`].
    fn make_writer(
        path: &Path,
        clean_len: u64,
        plan: Option<FaultPlan>,
        metrics: WalMetrics,
    ) -> crate::Result<WalWriter> {
        match plan {
            None => Ok(WalWriter::open_truncated(path, clean_len)?.with_metrics(metrics)),
            Some(plan) => {
                let file = std::fs::OpenOptions::new()
                    .create(true)
                    .truncate(false)
                    .write(true)
                    .open(path)
                    .map_err(WalError::from)?;
                file.set_len(clean_len).map_err(WalError::from)?;
                drop(file);
                let backend =
                    crate::fault::FaultFile::append_to(path, plan).map_err(WalError::from)?;
                Ok(WalWriter::over(Box::new(backend)).with_metrics(metrics))
            }
        }
    }

    /// What WAL recovery found past the clean prefix when this store was
    /// opened: `None` for in-memory stores, `Some(TailState::Clean)` for an
    /// undamaged log, and a torn/corrupt tail state (with the damage
    /// offset) when a crash was repaired.
    pub fn recovered_tail(&self) -> Option<TailState> {
        self.recovered_tail
    }

    /// Errors if a WAL append or sync has failed since the store was
    /// opened (in which case the writer was shut down and recording is
    /// memory-only). Call after a run to confirm its trace is durable.
    pub fn durability(&self) -> crate::Result<()> {
        match self.wal_failure.lock().clone() {
            None => Ok(()),
            Some(message) => Err(StoreError::WalPoisoned { message }),
        }
    }

    /// The WAL file backing this store, if durable.
    pub fn wal_path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// The durable replication position: WAL lineage plus fsynced extent.
    /// A primary advertises this to followers; a follower offers it back
    /// in its handshake. All zeros for in-memory stores.
    pub fn repl_position(&self) -> ReplPosition {
        *self.repl_pos.lock()
    }

    /// The on-disk snapshot file of `generation` beside the WAL at `path`
    /// (`<wal>.snap.<generation>`) — where replication bootstrap finds the
    /// base-state bytes to ship.
    pub fn snapshot_file_for(path: &Path, generation: u64) -> PathBuf {
        snapshot::snapshot_path(path, generation)
    }

    /// Paths of every snapshot generation currently beside the WAL at
    /// `path`, oldest first.
    pub fn snapshot_files(path: &Path) -> Vec<PathBuf> {
        snapshot::generations(path).into_iter().map(|g| snapshot::snapshot_path(path, g)).collect()
    }

    /// Applies one replicated WAL payload (the bytes inside a frame the
    /// primary shipped): decodes it, re-appends the *same* payload bytes to
    /// the local WAL — the resulting frame is byte-identical to the
    /// primary's, keeping the follower's log a byte-for-byte prefix of the
    /// primary's — and applies it in memory. Frames are buffered; call
    /// [`TraceStore::sync_wal`] to advance the durable position. A payload
    /// that does not decode, or a local durability failure, is an error
    /// (the follower treats either as grounds for re-sync).
    pub fn apply_replicated(&self, payload: &[u8]) -> crate::Result<()> {
        let record: LogRecord = serde_json::from_slice(payload)
            .map_err(|e| StoreError::Serialize(format!("replicated frame: {e}")))?;
        let mut guard = self.wal.lock();
        if self.path.is_some() {
            let Some(w) = guard.as_mut() else {
                drop(guard);
                self.durability()?;
                return Err(StoreError::WalPoisoned { message: "writer closed".into() });
            };
            let before = self.wal_metrics.bytes_written.get();
            if let Err(e) = w.append_payload(payload) {
                Self::poison(&mut guard, &self.wal_failure, e.to_string());
                drop(guard);
                return self.durability();
            }
            let mut tail = self.wal_tail.lock();
            tail.frames += 1;
            tail.bytes += self.wal_metrics.bytes_written.get() - before;
            drop(tail);
            *self.wal_frames.lock() += 1;
        }
        self.inner.write().apply(record);
        Ok(())
    }

    /// Fsyncs the WAL (advancing the durable replication position) and
    /// surfaces any durability failure as a typed error — the follower's
    /// per-chunk commit point.
    pub fn sync_wal(&self) -> crate::Result<()> {
        let mut guard = self.wal.lock();
        self.sync_locked(&mut guard);
        drop(guard);
        self.durability()
    }

    /// Rewrites the WAL from current state (checkpoint compaction): the log
    /// shrinks to exactly the live records, dropping any overwritten tail
    /// garbage. Unlike [`TraceStore::snapshot`], the result is a plain
    /// marker-less WAL (recovery replays it in full). A no-op for in-memory
    /// stores.
    pub fn checkpoint(&self) -> crate::Result<()> {
        let Some(path) = &self.path else { return Ok(()) };
        let mut guard = self.wal.lock();
        let tmp = path.with_extension("wal.tmp");
        let mut frames = 0u64;
        {
            let inner = self.inner.read();
            let _ = std::fs::remove_file(&tmp);
            let mut w = WalWriter::open(&tmp)?.with_metrics(self.wal_metrics.clone());
            for (name, json) in &inner.workflows {
                w.append(&LogRecord::Workflow { name: name.clone(), json: json.clone() })?;
                frames += 1;
            }
            for info in inner.runs.values() {
                w.append(&LogRecord::BeginRun { run: info.id, workflow: info.workflow.clone() })?;
                frames += 1;
            }
            // Rows are written shard by shard in run-id order (dropped runs
            // have no shard); replay rebuilds each shard with its
            // insertion order intact.
            for info in inner.runs.values() {
                let Some(shard) = inner.shards.get(&info.id) else { continue };
                for row in &shard.xforms {
                    w.append(&LogRecord::Xform {
                        run: row.run,
                        event: inner.xform_to_event(row)?,
                    })?;
                    frames += 1;
                }
                for row in &shard.xfers {
                    w.append(&LogRecord::Xfer { run: row.run, event: inner.xfer_to_event(row)? })?;
                    frames += 1;
                }
            }
            for info in inner.runs.values().filter(|i| i.finished) {
                w.append(&LogRecord::FinishRun { run: info.id })?;
                frames += 1;
            }
            w.sync()?;
        }
        std::fs::rename(&tmp, path).map_err(WalError::from)?;
        let bytes = std::fs::metadata(path).map_err(WalError::from)?.len();
        *guard = Some(WalWriter::open(path)?.with_metrics(self.wal_metrics.clone()));
        *self.wal_tail.lock() = TailUsage { frames, bytes };
        // The log was rewritten in place: old byte offsets are meaningless.
        // Move to a fresh generation (numbered past any snapshot) so
        // followers notice the lineage change and re-bootstrap.
        let generation = {
            let mut gen = self.snapshot_gen.lock();
            *gen += 1;
            *gen
        };
        *self.wal_frames.lock() = frames;
        *self.repl_pos.lock() =
            ReplPosition { generation, durable_len: bytes, durable_frames: frames };
        Ok(())
    }

    /// Serialises the full store state to a numbered snapshot file
    /// (temp-then-rename) and truncates the WAL down to a single
    /// [`LogRecord::Snapshot`] marker frame, so the next recovery is *load
    /// snapshot + replay bounded tail*. Keeps the previous generation as a
    /// fallback and deletes anything older. A no-op for in-memory stores;
    /// a failure poisons the writer (recording continues memory-only) as
    /// well as being returned.
    pub fn snapshot(&self) -> crate::Result<()> {
        let Some(path) = self.path.clone() else { return Ok(()) };
        let mut guard = self.wal.lock();
        if guard.is_none() {
            // Already poisoned: there is no consistent durable tail to
            // compact into a snapshot.
            drop(guard);
            return self.durability();
        }
        let generation = *self.snapshot_gen.lock() + 1;
        let tmp = snapshot::tmp_path(&path);
        let size = match self.write_snapshot(&tmp, generation) {
            Ok(size) => size,
            Err(e) => {
                Self::poison(&mut guard, &self.wal_failure, e.to_string());
                return Err(e);
            }
        };
        if let Err(e) = std::fs::rename(&tmp, snapshot::snapshot_path(&path, generation)) {
            let e = StoreError::Wal(WalError::from(e));
            Self::poison(&mut guard, &self.wal_failure, e.to_string());
            return Err(e);
        }
        // Retire the old writer *before* truncating: its append-mode
        // handle may still hold buffered frames, and dropping it later
        // would flush them after the marker. Flushing into the
        // about-to-be-truncated file is harmless — that state is in the
        // snapshot.
        drop(guard.take());
        // Truncate the WAL and plant the marker. A crash between the
        // rename above and the truncation leaves a marker-less WAL (full
        // replay ignoring snapshots); between the truncation and the
        // marker append, an empty WAL beside valid snapshots (recovery
        // loads the newest and rewrites the marker). Both are lossless.
        match Self::fresh_wal(&path, generation, self.fault_plan, self.wal_metrics.clone()) {
            Ok(w) => *guard = Some(w),
            Err(e) => {
                Self::poison(&mut guard, &self.wal_failure, e.to_string());
                return Err(e);
            }
        }
        *self.wal_tail.lock() = TailUsage::default();
        *self.snapshot_gen.lock() = generation;
        // The WAL is now exactly one synced marker frame on a new lineage.
        *self.wal_frames.lock() = 1;
        let durable_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        *self.repl_pos.lock() = ReplPosition { generation, durable_len, durable_frames: 1 };
        self.wal_metrics.compactions.inc();
        self.snap_metrics.snapshots.inc();
        self.snap_metrics.snapshot_bytes.record(size);
        if let Some(j) = self.journal() {
            j.record(prov_obs::JournalEvent::SnapshotWrite { generation, bytes: size });
        }
        drop(guard);
        for old in snapshot::generations(&path) {
            if old + 1 < generation {
                let _ = std::fs::remove_file(snapshot::snapshot_path(&path, old));
            }
        }
        Ok(())
    }

    /// Streams current state into `tmp` in the WAL frame format, bracketed
    /// by `Snapshot { generation }` markers. Snapshot bytes are not WAL
    /// throughput, so the writer gets standalone metrics; under a
    /// [`FaultPlan`] the write goes through a fresh fault handle (its
    /// budget relative to the snapshot's first byte), which is what lets
    /// torture sweeps crash mid-snapshot.
    fn write_snapshot(&self, tmp: &Path, generation: u64) -> crate::Result<u64> {
        let _ = std::fs::remove_file(tmp);
        let mut w = match self.fault_plan {
            None => WalWriter::open(tmp)?,
            Some(plan) => {
                let backend =
                    crate::fault::FaultFile::append_to(tmp, plan).map_err(WalError::from)?;
                WalWriter::over(Box::new(backend))
            }
        };
        let marker = LogRecord::Snapshot { generation };
        w.append(&marker)?;
        {
            let inner = self.inner.read();
            for (name, json) in &inner.workflows {
                w.append(&LogRecord::Workflow { name: name.clone(), json: json.clone() })?;
            }
            for info in inner.runs.values() {
                w.append(&LogRecord::BeginRun { run: info.id, workflow: info.workflow.clone() })?;
            }
            for info in inner.runs.values() {
                let Some(shard) = inner.shards.get(&info.id) else { continue };
                for row in &shard.xforms {
                    w.append(&LogRecord::Xform {
                        run: row.run,
                        event: inner.xform_to_event(row)?,
                    })?;
                }
                for row in &shard.xfers {
                    w.append(&LogRecord::Xfer { run: row.run, event: inner.xfer_to_event(row)? })?;
                }
            }
            for info in inner.runs.values().filter(|i| i.finished) {
                w.append(&LogRecord::FinishRun { run: info.id })?;
            }
        }
        w.append(&marker)?;
        w.sync()?;
        drop(w);
        Ok(std::fs::metadata(tmp).map_err(WalError::from)?.len())
    }

    /// A truncated WAL holding exactly one synced `Snapshot` marker frame.
    fn fresh_wal(
        path: &Path,
        generation: u64,
        plan: Option<FaultPlan>,
        metrics: WalMetrics,
    ) -> crate::Result<WalWriter> {
        let mut w = Self::make_writer(path, 0, plan, metrics)?;
        w.append(&LogRecord::Snapshot { generation })?;
        w.sync()?;
        Ok(w)
    }

    /// Sets (or clears) the automatic compaction policy. With a policy in
    /// place every recording call checks the pending WAL tail and
    /// snapshots once a bound is crossed, so crash recovery replays at
    /// most `max_frames` frames. Setting a policy runs an immediate check.
    pub fn set_compaction_policy(&self, policy: Option<CompactionPolicy>) {
        *self.compaction.lock() = policy;
        if policy.is_some() {
            self.maybe_compact();
        }
    }

    /// The active automatic compaction policy, if any.
    pub fn compaction_policy(&self) -> Option<CompactionPolicy> {
        *self.compaction.lock()
    }

    /// Snapshot lifecycle metrics (counts, sizes, recovery fallbacks).
    pub fn snapshot_metrics(&self) -> &SnapshotMetrics {
        &self.snap_metrics
    }

    /// Snapshots if the pending WAL tail has crossed the configured
    /// policy. Failures are not surfaced here — they have already poisoned
    /// the writer, and [`TraceStore::durability`] reports them.
    fn maybe_compact(&self) {
        let Some(policy) = *self.compaction.lock() else { return };
        let due = {
            let tail = self.wal_tail.lock();
            policy.due(tail.frames, tail.bytes)
        };
        if due {
            let _ = self.snapshot();
        }
    }

    // Durability failures must not pass silently, but the `TraceSink`
    // recording methods cannot return errors and panicking would take down
    // the engine mid-run. Instead the writer is *poisoned*: the first
    // failure shuts it down (no further appends can land past an
    // inconsistent tail), the message is retained, and
    // [`TraceStore::durability`] reports it as a typed `StoreError`.
    fn append_locked(
        &self,
        guard: &mut parking_lot::MutexGuard<'_, Option<WalWriter>>,
        record: &LogRecord,
    ) {
        if let Some(w) = guard.as_mut() {
            let before = self.wal_metrics.bytes_written.get();
            match w.append(record) {
                Ok(()) => {
                    let mut tail = self.wal_tail.lock();
                    tail.frames += 1;
                    tail.bytes += self.wal_metrics.bytes_written.get() - before;
                    drop(tail);
                    *self.wal_frames.lock() += 1;
                }
                Err(e) => Self::poison(guard, &self.wal_failure, e.to_string()),
            }
        }
    }

    /// Group commit: one WAL frame for a whole event batch.
    fn append_batch_locked(
        &self,
        guard: &mut parking_lot::MutexGuard<'_, Option<WalWriter>>,
        run: RunId,
        events: &[TraceEvent],
    ) {
        if let Some(w) = guard.as_mut() {
            let before = self.wal_metrics.bytes_written.get();
            match w.append_batch(run, events) {
                Ok(()) => {
                    let mut tail = self.wal_tail.lock();
                    tail.frames += 1;
                    tail.bytes += self.wal_metrics.bytes_written.get() - before;
                    drop(tail);
                    *self.wal_frames.lock() += 1;
                }
                Err(e) => Self::poison(guard, &self.wal_failure, e.to_string()),
            }
        }
    }

    /// Shuts the writer down after a durability failure, retaining the
    /// first failure message for [`TraceStore::durability`].
    fn poison(
        guard: &mut parking_lot::MutexGuard<'_, Option<WalWriter>>,
        failure: &Mutex<Option<String>>,
        message: String,
    ) {
        **guard = None;
        let mut f = failure.lock();
        if f.is_none() {
            *f = Some(message);
        }
    }

    // ------------------------------------------------------------------
    // Query surface
    // ------------------------------------------------------------------

    /// Access statistics (shared counters, never reset by the store).
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// WAL throughput and fsync-latency metrics (zero for in-memory
    /// stores; shared across writer re-creations).
    pub fn wal_metrics(&self) -> &WalMetrics {
        &self.wal_metrics
    }

    /// Adopts this store's counters into `registry` under stable dotted
    /// names (`store.*`, `wal.*`). The registry shares the same atomics,
    /// so registration costs nothing on the hot path. Also records the
    /// current table sizes as `store.*` gauges (refresh with
    /// [`TraceStore::record_gauges`]).
    pub fn register_metrics(&self, registry: &prov_obs::Registry) {
        self.stats.register(registry);
        self.wal_metrics.register(registry);
        self.snap_metrics.register(registry);
        self.record_gauges(registry);
        // What recovery found at open time, as gauges: state 0 = clean,
        // 1 = torn tail, 2 = corrupt frame; offset = first damaged byte
        // (0 when clean). Only durable stores recover.
        if let Some(tail) = self.recovered_tail {
            let (state, offset) = match tail {
                TailState::Clean => (0, 0),
                TailState::TornTail { offset } => (1, offset),
                TailState::CorruptFrame { offset } => (2, offset),
            };
            registry.set_gauge("wal.recovered_tail_state", state);
            registry.set_gauge("wal.recovered_tail_offset", offset);
        }
    }

    /// Attaches an event journal: subsequent WAL syncs and snapshot writes
    /// emit [`prov_obs::JournalEvent`]s into it. Set-once (`OnceLock`);
    /// later calls are ignored so the first attached handle stays
    /// authoritative. A disabled journal handle costs one branch per
    /// durability event.
    pub fn attach_journal(&self, journal: &prov_obs::Journal) {
        let _ = self.journal.set(journal.clone());
    }

    fn journal(&self) -> Option<&prov_obs::Journal> {
        self.journal.get()
    }

    /// Sets point-in-time size gauges (`store.runs`, `store.xform_rows`,
    /// `store.xfer_rows`, `store.values`, `store.symbols`,
    /// `store.index_keys`) from current table state.
    pub fn record_gauges(&self, registry: &prov_obs::Registry) {
        if !registry.is_enabled() {
            return;
        }
        let (runs, xforms, xfers) = {
            let inner = self.inner.read();
            (inner.runs.len(), inner.xform_rows(), inner.xfer_rows())
        };
        registry.set_gauge("store.runs", runs as u64);
        registry.set_gauge("store.xform_rows", xforms as u64);
        registry.set_gauge("store.xfer_rows", xfers as u64);
        registry.set_gauge("store.values", self.value_count() as u64);
        registry.set_gauge("store.symbols", self.symbol_count() as u64);
        let (a, b, c, d) = self.index_key_counts();
        registry.set_gauge("store.index_keys", (a + b + c + d) as u64);
    }

    /// The catalog of composite indexes this store serves, with current
    /// key counts — the physical-design side of the static plan contract.
    /// All four indexes are always maintained; callers model degraded
    /// stores with [`IndexCatalog::without`].
    pub fn index_catalog(&self) -> IndexCatalog {
        let (a, b, c, d) = self.index_key_counts();
        IndexCatalog::new([a as u64, b as u64, c as u64, d as u64])
    }

    /// Pins an immutable, lock-free snapshot of one run's trace: one brief
    /// read-lock acquisition to clone the run's shard `Arc` (and the shared
    /// symbol/value tables), after which every probe on the returned
    /// [`ReadView`] runs without touching any store lock. Recording that
    /// happens after the pin copy-on-writes fresh shard state, so the view
    /// keeps answering from the exact state it was pinned against.
    ///
    /// Unknown (or dropped) runs pin the shared empty shard: probes run —
    /// and are accounted in the stats — exactly as against a populated
    /// shard that happens to contain no matching rows.
    pub fn pin(&self, run: RunId) -> ReadView {
        let inner = self.inner.read();
        ReadView::new(
            run,
            inner.shards.get(&run).cloned(),
            Arc::clone(&inner.symbols),
            Arc::clone(&inner.values),
            self.stats.clone(),
        )
    }

    /// Cardinality statistics of one `(run, processor, port)` slice of the
    /// chosen index — what the static cost model uses to size its
    /// predictions. Returns zeros for names the store has never seen.
    pub fn port_cardinality(
        &self,
        id: IndexId,
        run: RunId,
        processor: &ProcessorName,
        port: &str,
    ) -> PortCardinality {
        let inner = self.inner.read();
        let p = inner.symbols.lookup(processor.as_str());
        let x = inner.symbols.lookup(port);
        match inner.shards.get(&run) {
            Some(shard) => shard.port_stats(id, run, p, x),
            None => PortCardinality::default(),
        }
    }

    /// All stored runs, in id order.
    pub fn runs(&self) -> Vec<RunInfo> {
        self.inner.read().runs.values().cloned().collect()
    }

    /// Ids of the runs of one workflow, in id order (the scope set `𝒯` of
    /// multi-run queries, §3.4).
    pub fn runs_of(&self, workflow: &ProcessorName) -> Vec<RunId> {
        self.inner.read().runs.values().filter(|i| &i.workflow == workflow).map(|i| i.id).collect()
    }

    /// Resolves a value id.
    pub fn value(&self, id: ValueId) -> Option<Value> {
        self.inner.read().values.get(id).cloned()
    }

    /// Total number of trace records of one run (xform rows + xfer rows) —
    /// the measure reported in the paper's Table 1.
    pub fn trace_record_count(&self, run: RunId) -> u64 {
        self.inner.read().runs.get(&run).map(|i| i.xform_count + i.xfer_count).unwrap_or(0)
    }

    /// Total records across all runs (the x-axis of Fig. 6).
    pub fn total_record_count(&self) -> u64 {
        self.inner.read().runs.values().map(|i| i.xform_count + i.xfer_count).sum()
    }

    /// The xform events whose **output** binding on `processor:port`
    /// overlaps `index` (stored `q` is a prefix of `index`, or extends it).
    /// This is the inversion lookup of the naïve algorithm: "finding a
    /// matching xform event in the provenance trace".
    pub fn xforms_producing(
        &self,
        run: RunId,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Vec<XformRecord> {
        self.pin(run).xforms_producing(processor, port, index)
    }

    /// The xform events whose **input** binding on `processor:port`
    /// overlaps `index` — the forward (impact) counterpart of
    /// [`TraceStore::xforms_producing`].
    pub fn xforms_consuming(
        &self,
        run: RunId,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Vec<XformRecord> {
        self.pin(run).xforms_consuming(processor, port, index)
    }

    /// The xfer events whose **destination** binding on `processor:port`
    /// overlaps `index` — the arc-traversal step of the naïve algorithm.
    pub fn xfers_into(
        &self,
        run: RunId,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Vec<XferRecord> {
        self.pin(run).xfers_into(processor, port, index)
    }

    /// The xfer events leaving `processor:port` at an index overlapping
    /// `index` (forward navigation; used by impact/downstream queries).
    pub fn xfers_from(
        &self,
        run: RunId,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Vec<XferRecord> {
        self.pin(run).xfers_from(processor, port, index)
    }

    /// `Q(P, X_i, p_i)` of Algorithm 2: the stored **input** bindings of
    /// `processor:port` whose index overlaps `p_i`, resolved to values.
    ///
    /// The overlap handles both directions of granularity mismatch: a
    /// projected fragment shorter than the stored indices (coarse query →
    /// prefix scan over the finer rows) and coarse stored rows (`[]` on
    /// non-iterated ports) under a fine query.
    pub fn input_bindings(
        &self,
        run: RunId,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Vec<StoredBinding> {
        self.pin(run).input_bindings(processor, port, index)
    }

    /// The stored **source-side** bindings of xfer rows leaving
    /// `processor:port` at indices overlapping `index` — how lineage
    /// queries materialise bindings for ports that never appear in xform
    /// rows (top-level workflow inputs exist in the trace only as xfer
    /// sources).
    pub fn xfer_src_bindings(
        &self,
        run: RunId,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Vec<StoredBinding> {
        self.pin(run).xfer_src_bindings(processor, port, index)
    }

    /// All xform rows of one run, in insertion order — served from the
    /// run's own shard, so only that run's rows are touched (a run
    /// co-resident with a much larger one never pays for its neighbour).
    /// The rows physically examined are charged to the stats as both
    /// records read and rows scanned.
    pub fn xforms_of_run(&self, run: RunId) -> Vec<XformRecord> {
        self.pin(run).xforms_of_run()
    }

    /// All xfer rows of one run, in insertion order (shard walk; see
    /// [`TraceStore::xforms_of_run`]).
    pub fn xfers_of_run(&self, run: RunId) -> Vec<XferRecord> {
        self.pin(run).xfers_of_run()
    }

    /// Drops a run: its metadata and index entries go immediately; its
    /// heap rows are tombstoned and reclaimed by the next
    /// [`TraceStore::checkpoint`]. Dropping an unknown run errors.
    pub fn drop_run(&self, run: RunId) -> crate::Result<()> {
        let mut guard = self.wal.lock();
        {
            let inner = self.inner.read();
            if !inner.runs.contains_key(&run) {
                return Err(StoreError::UnknownRun(run));
            }
        }
        let had_writer = guard.is_some();
        self.append_locked(&mut guard, &LogRecord::DropRun { run });
        self.inner.write().apply(LogRecord::DropRun { run });
        self.sync_locked(&mut guard);
        if had_writer && guard.is_none() {
            drop(guard);
            return self.durability();
        }
        drop(guard);
        self.maybe_compact();
        Ok(())
    }

    /// Resolves a stored binding into a user-facing [`Binding`].
    pub fn resolve(&self, b: &StoredBinding) -> crate::Result<Binding> {
        let value = self.value(b.value).ok_or(StoreError::DanglingValue(b.value))?;
        Ok(Binding {
            port: PortRef { processor: b.processor.clone(), port: b.port.clone() },
            index: b.index.clone(),
            value,
        })
    }

    /// All bindings (across every port role) of one run that carry exactly
    /// the given value — the access path for *value-predicated* queries,
    /// which the paper notes fall outside INDEXPROJ ("a query that
    /// explicitly predicates on the presence of a specific value … can
    /// still be answered using a standard graph traversal"). Combine with
    /// `NaiveLineage`/`NaiveImpact` from the returned bindings.
    pub fn bindings_with_value(&self, run: RunId, value: &Value) -> Vec<StoredBinding> {
        self.pin(run).bindings_with_value(value)
    }

    /// Registers (or overwrites) a workflow specification, making the
    /// database self-contained: INDEXPROJ consumers can fetch the spec of
    /// any recorded workflow by name. The payload is opaque JSON (the
    /// store does not depend on the dataflow crate).
    pub fn register_workflow(&self, name: &ProcessorName, json: String) {
        let record = LogRecord::Workflow { name: name.clone(), json };
        let mut guard = self.wal.lock();
        self.append_locked(&mut guard, &record);
        self.inner.write().apply(record);
        self.sync_locked(&mut guard);
        drop(guard);
        self.maybe_compact();
    }

    /// Syncs the WAL through an already-held guard, poisoning the writer
    /// on failure (see [`TraceStore::durability`]). A silent
    /// `let _ = sync()` would report a trace as recorded that never
    /// reached the disk.
    fn sync_locked(&self, guard: &mut parking_lot::MutexGuard<'_, Option<WalWriter>>) {
        if let Some(w) = guard.as_mut() {
            if let Err(e) = w.sync() {
                Self::poison(guard, &self.wal_failure, e.to_string());
            } else {
                // Everything appended so far is now durable: advance the
                // position replicas are allowed to read up to.
                if let Some(path) = &self.path {
                    if let Ok(meta) = std::fs::metadata(path) {
                        let mut pos = self.repl_pos.lock();
                        pos.durable_len = meta.len();
                        pos.durable_frames = *self.wal_frames.lock();
                    }
                }
                if let Some(j) = self.journal() {
                    // Frames/bytes appended since the last snapshot (the
                    // tail this sync made durable).
                    let tail = self.wal_tail.lock();
                    j.record(prov_obs::JournalEvent::WalSync {
                        frames: tail.frames,
                        bytes: tail.bytes,
                    });
                }
            }
        }
    }

    /// The registered specification JSON of a workflow, if any.
    pub fn workflow_json(&self, name: &ProcessorName) -> Option<String> {
        self.inner.read().workflows.get(name).cloned()
    }

    /// Names of all registered workflows.
    pub fn workflow_names(&self) -> Vec<ProcessorName> {
        self.inner.read().workflows.keys().cloned().collect()
    }

    /// Number of distinct interned values (diagnostics).
    pub fn value_count(&self) -> usize {
        let inner = self.inner.read();
        if inner.values.is_empty() {
            return 0;
        }
        inner.values.len()
    }

    /// Number of distinct interned processor/port names (diagnostics: the
    /// symbol table is tiny even for huge traces, which is why interning
    /// pays for itself).
    pub fn symbol_count(&self) -> usize {
        self.inner.read().symbols.len()
    }

    /// Distinct composite keys in each secondary index, in the order
    /// `(xform_out, xform_in, xfer_dst, xfer_src)` (diagnostics: shows how
    /// index size tracks trace size).
    pub fn index_key_counts(&self) -> (usize, usize, usize, usize) {
        let inner = self.inner.read();
        inner.shards.values().fold((0, 0, 0, 0), |acc, s| {
            (
                acc.0 + s.idx_xform_out.key_count(),
                acc.1 + s.idx_xform_in.key_count(),
                acc.2 + s.idx_xfer_dst.key_count(),
                acc.3 + s.idx_xfer_src.key_count(),
            )
        })
    }
}

impl Inner {
    /// Total xform rows across all shards.
    fn xform_rows(&self) -> usize {
        self.shards.values().map(|s| s.xforms.len()).sum()
    }

    /// Total xfer rows across all shards.
    fn xfer_rows(&self) -> usize {
        self.shards.values().map(|s| s.xfers.len()).sum()
    }

    fn apply(&mut self, record: LogRecord) {
        match record {
            LogRecord::BeginRun { run, workflow } => {
                self.runs.insert(
                    run,
                    RunInfo { id: run, workflow, finished: false, xform_count: 0, xfer_count: 0 },
                );
                self.next_run = self.next_run.max(run.0 + 1);
            }
            LogRecord::Xform { run, event } => self.insert_xform(run, &event),
            LogRecord::Xfer { run, event } => self.insert_xfer(run, &event),
            LogRecord::Batch { run, events } => {
                for event in &events {
                    match event {
                        TraceEvent::Xform(e) => self.insert_xform(run, e),
                        TraceEvent::Xfer(e) => self.insert_xfer(run, e),
                    }
                }
            }
            LogRecord::FinishRun { run } => {
                if let Some(info) = self.runs.get_mut(&run) {
                    info.finished = true;
                }
            }
            LogRecord::DropRun { run } => {
                // The run's rows, indexes, and value entries all live in
                // its shard: removing it reclaims everything at once (a
                // pinned view keeps its `Arc` alive until it drops).
                self.runs.remove(&run);
                self.shards.remove(&run);
            }
            LogRecord::Workflow { name, json } => {
                self.workflows.insert(name, json);
            }
            // Markers delimit recovery phases; replay itself ignores them.
            LogRecord::Snapshot { .. } => {}
        }
    }

    // The insert paths mutate the shared tables and the run's shard via
    // `Arc::make_mut`: while no `ReadView` is pinned the refcount is one
    // and every write is in place (no clone, no allocation beyond the row
    // itself); a live pin makes exactly the first subsequent write clone
    // the pinned structure, which is what gives views snapshot isolation.
    // The three `make_mut` calls borrow disjoint fields, so they coexist.

    fn insert_xform(&mut self, run: RunId, event: &XformEvent) {
        let id = self.next_xform_id;
        self.next_xform_id += 1;
        let symbols = Arc::make_mut(&mut self.symbols);
        let values = Arc::make_mut(&mut self.values);
        let shard = Arc::make_mut(self.shards.entry(run).or_default());
        shard.insert_xform(id, run, event, symbols, values);
        if let Some(info) = self.runs.get_mut(&run) {
            info.xform_count += 1;
        }
    }

    fn insert_xfer(&mut self, run: RunId, event: &XferEvent) {
        let id = self.next_xfer_id;
        self.next_xfer_id += 1;
        let symbols = Arc::make_mut(&mut self.symbols);
        let values = Arc::make_mut(&mut self.values);
        let shard = Arc::make_mut(self.shards.entry(run).or_default());
        shard.insert_xfer(id, run, event, symbols, values);
        if let Some(info) = self.runs.get_mut(&run) {
            info.xfer_count += 1;
        }
    }

    fn xform_to_event(&self, row: &XformRow) -> Result<XformEvent, StoreError> {
        let binding = |p: &XformPortRow| -> Result<prov_engine::PortBinding, StoreError> {
            Ok(prov_engine::PortBinding {
                port: self.symbols.resolve(p.port),
                index: p.index.clone(),
                value: self
                    .values
                    .get(p.value)
                    .cloned()
                    .ok_or(StoreError::DanglingValue(p.value))?,
            })
        };
        Ok(XformEvent {
            processor: ProcessorName(self.symbols.resolve(row.processor)),
            invocation: row.invocation,
            inputs: row.inputs().map(binding).collect::<Result<_, _>>()?,
            outputs: row.outputs().map(binding).collect::<Result<_, _>>()?,
        })
    }

    fn xfer_to_event(&self, row: &XferRow) -> Result<XferEvent, StoreError> {
        Ok(XferEvent {
            src: PortRef {
                processor: ProcessorName(self.symbols.resolve(row.src_processor)),
                port: self.symbols.resolve(row.src_port),
            },
            src_index: row.src_index.clone(),
            dst: PortRef {
                processor: ProcessorName(self.symbols.resolve(row.dst_processor)),
                port: self.symbols.resolve(row.dst_port),
            },
            dst_index: row.dst_index.clone(),
            value: self
                .values
                .get(row.value)
                .cloned()
                .ok_or(StoreError::DanglingValue(row.value))?,
        })
    }
}

// Every method holds the `wal` lock across the append *and* the in-memory
// insert (see the lock-order note on [`TraceStore`]), then checks the
// compaction policy once the locks are released.
impl TraceSink for TraceStore {
    fn begin_run(&self, workflow: &ProcessorName) -> RunId {
        let mut guard = self.wal.lock();
        let mut inner = self.inner.write();
        let run = RunId(inner.next_run);
        inner.apply(LogRecord::BeginRun { run, workflow: clone_name(workflow) });
        drop(inner);
        self.append_locked(
            &mut guard,
            &LogRecord::BeginRun { run, workflow: clone_name(workflow) },
        );
        drop(guard);
        self.maybe_compact();
        run
    }

    fn record_xform(&self, run: RunId, event: XformEvent) {
        let mut guard = self.wal.lock();
        self.append_locked(&mut guard, &LogRecord::Xform { run, event: event.clone() });
        self.inner.write().insert_xform(run, &event);
        drop(guard);
        self.maybe_compact();
    }

    fn record_xfer(&self, run: RunId, event: XferEvent) {
        let mut guard = self.wal.lock();
        self.append_locked(&mut guard, &LogRecord::Xfer { run, event: event.clone() });
        self.inner.write().insert_xfer(run, &event);
        drop(guard);
        self.maybe_compact();
    }

    fn record_batch(&self, run: RunId, events: Vec<TraceEvent>) {
        if events.is_empty() {
            return;
        }
        // One WAL frame, then one write-lock acquisition for the whole
        // batch — the group commit the per-event path can't amortise.
        let mut guard = self.wal.lock();
        self.append_batch_locked(&mut guard, run, &events);
        {
            let mut inner = self.inner.write();
            for event in &events {
                match event {
                    TraceEvent::Xform(e) => inner.insert_xform(run, e),
                    TraceEvent::Xfer(e) => inner.insert_xfer(run, e),
                }
            }
        }
        drop(guard);
        self.maybe_compact();
    }

    fn finish_run(&self, run: RunId) {
        let mut guard = self.wal.lock();
        self.inner.write().apply(LogRecord::FinishRun { run });
        self.append_locked(&mut guard, &LogRecord::FinishRun { run });
        // Durability failure poisons the writer instead of panicking;
        // `durability()` surfaces it as a typed error.
        self.sync_locked(&mut guard);
        drop(guard);
        self.maybe_compact();
    }
}

// The durable trace doubles as a run checkpoint: everything the resume
// path needs is a point query against the existing composite indexes.
impl prov_engine::ResumeSource for TraceStore {
    fn run_workflow(&self, run: RunId) -> Option<ProcessorName> {
        self.inner.read().runs.get(&run).map(|i| i.workflow.clone())
    }

    fn run_finished(&self, run: RunId) -> bool {
        self.inner.read().runs.get(&run).map(|i| i.finished).unwrap_or(false)
    }

    fn settled_outputs(
        &self,
        run: RunId,
        processor: &ProcessorName,
        index: &Index,
        ports: &[std::sync::Arc<str>],
    ) -> Option<Vec<Value>> {
        // Zero-output processors have nothing to prove settlement with and
        // always re-execute.
        let first = ports.first()?;
        let candidates = self.xforms_producing(run, processor, first, index);
        'cand: for rec in &candidates {
            let mut out = Vec::with_capacity(ports.len());
            for port in ports {
                // An exact-index output binding must exist for every port;
                // `xforms_producing` overlap-matches, so re-check equality.
                let Some(p) = rec.ports.iter().find(|p| {
                    p.direction == PortDirection::Out && *p.port == **port && p.index == *index
                }) else {
                    continue 'cand;
                };
                out.push(self.value(p.value)?);
            }
            return Some(out);
        }
        None
    }

    fn has_xfer(&self, run: RunId, event: &XferEvent) -> bool {
        self.xfers_into(run, &event.dst.processor, &event.dst.port, &event.dst_index).iter().any(
            |r| {
                r.dst_index == event.dst_index
                    && r.src_processor == event.src.processor
                    && *r.src_port == *event.src.port
                    && r.src_index == event.src_index
                    && self.value(r.value).as_ref() == Some(&event.value)
            },
        )
    }
}

fn clone_name(n: &ProcessorName) -> ProcessorName {
    n.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_engine::PortBinding;

    fn xform(proc: &str, inv: u32, q: &[u32], in_idx: &[u32]) -> XformEvent {
        XformEvent {
            processor: ProcessorName::from(proc),
            invocation: inv,
            inputs: vec![PortBinding::new("x", Index::from_slice(in_idx), Value::str("in"))],
            outputs: vec![PortBinding::new("y", Index::from_slice(q), Value::str("out"))],
        }
    }

    fn xfer(src: (&str, &str), dst: (&str, &str), idx: &[u32], v: &str) -> XferEvent {
        XferEvent {
            src: PortRef::new(src.0, src.1),
            src_index: Index::from_slice(idx),
            dst: PortRef::new(dst.0, dst.1),
            dst_index: Index::from_slice(idx),
            value: Value::str(v),
        }
    }

    #[test]
    fn begin_run_assigns_monotone_ids() {
        let s = TraceStore::in_memory();
        let a = s.begin_run(&"wf".into());
        let b = s.begin_run(&"wf".into());
        assert_eq!(a, RunId(0));
        assert_eq!(b, RunId(1));
        assert_eq!(s.runs().len(), 2);
        assert!(!s.runs()[0].finished);
        s.finish_run(a);
        assert!(s.runs()[0].finished);
    }

    #[test]
    fn runs_of_filters_by_workflow() {
        let s = TraceStore::in_memory();
        let a = s.begin_run(&"gk".into());
        let _b = s.begin_run(&"pd".into());
        let c = s.begin_run(&"gk".into());
        assert_eq!(s.runs_of(&"gk".into()), vec![a, c]);
    }

    #[test]
    fn xform_lookup_by_output_overlap() {
        let s = TraceStore::in_memory();
        let r = s.begin_run(&"wf".into());
        s.record_xform(r, xform("P", 0, &[0], &[0]));
        s.record_xform(r, xform("P", 1, &[1], &[1]));
        // Exact index.
        let hits = s.xforms_producing(r, &"P".into(), "y", &Index::single(1));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].invocation, 1);
        // Finer query index [1,2]: the producing invocation has prefix [1].
        let hits = s.xforms_producing(r, &"P".into(), "y", &Index::from_slice(&[1, 2]));
        assert_eq!(hits.len(), 1);
        // Coarse query []: both invocations overlap.
        let hits = s.xforms_producing(r, &"P".into(), "y", &Index::empty());
        assert_eq!(hits.len(), 2);
        // Wrong port or run: nothing.
        assert!(s.xforms_producing(r, &"P".into(), "z", &Index::empty()).is_empty());
        assert!(s.xforms_producing(RunId(99), &"P".into(), "y", &Index::empty()).is_empty());
    }

    #[test]
    fn xfer_lookup_by_destination() {
        let s = TraceStore::in_memory();
        let r = s.begin_run(&"wf".into());
        s.record_xfer(r, xfer(("A", "y"), ("B", "x"), &[0], "v0"));
        s.record_xfer(r, xfer(("A", "y"), ("B", "x"), &[1], "v1"));
        let hits = s.xfers_into(r, &"B".into(), "x", &Index::single(0));
        assert_eq!(hits.len(), 1);
        assert_eq!(s.value(hits[0].value), Some(Value::str("v0")));
        assert_eq!(hits[0].src_processor, ProcessorName::from("A"));
        // Forward direction.
        let hits = s.xfers_from(r, &"A".into(), "y", &Index::empty());
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn input_bindings_is_the_q_lookup() {
        let s = TraceStore::in_memory();
        let r = s.begin_run(&"wf".into());
        s.record_xform(r, xform("P", 0, &[0], &[0]));
        s.record_xform(r, xform("P", 1, &[1], &[1]));
        let bs = s.input_bindings(r, &"P".into(), "x", &Index::single(1));
        assert_eq!(bs.len(), 1);
        assert_eq!(bs[0].index, Index::single(1));
        let resolved = s.resolve(&bs[0]).unwrap();
        assert_eq!(resolved.value, Value::str("in"));
        assert_eq!(resolved.port, PortRef::new("P", "x"));
        // Coarse query returns both, deduplicated by (value, index).
        let bs = s.input_bindings(r, &"P".into(), "x", &Index::empty());
        assert_eq!(bs.len(), 2);
    }

    #[test]
    fn input_bindings_dedups_shared_whole_values() {
        // Two invocations consuming the same whole-value port produce ONE
        // binding (the paper's X2[]-style port).
        let s = TraceStore::in_memory();
        let r = s.begin_run(&"wf".into());
        for inv in 0..2 {
            s.record_xform(r, xform("P", inv, &[inv], &[]));
        }
        let bs = s.input_bindings(r, &"P".into(), "x", &Index::empty());
        assert_eq!(bs.len(), 1);
        assert!(bs[0].index.is_empty());
    }

    #[test]
    fn index_catalog_reports_key_counts_and_port_cardinality() {
        let s = TraceStore::in_memory();
        let r = s.begin_run(&"wf".into());
        s.record_xform(r, xform("P", 0, &[0], &[0]));
        s.record_xform(r, xform("P", 1, &[1, 0], &[1, 0]));
        s.record_xfer(r, xfer(("A", "y"), ("P", "x"), &[0], "v"));
        let cat = s.index_catalog();
        for id in IndexId::ALL {
            assert!(cat.serves(id));
        }
        assert_eq!(cat.key_count(IndexId::XformIn), 2);
        assert_eq!(cat.key_count(IndexId::XferSrc), 1);
        assert!(!cat.without(IndexId::XformIn).serves(IndexId::XformIn));

        let c = s.port_cardinality(IndexId::XformIn, r, &"P".into(), "x");
        assert_eq!(c.keys, 2);
        assert_eq!(c.rows, 2);
        assert_eq!(c.max_depth, 2);
        // Unknown names and other runs are zero, not errors.
        let z = s.port_cardinality(IndexId::XformIn, r, &"nope".into(), "x");
        assert_eq!(z, PortCardinality::default());
        let z = s.port_cardinality(IndexId::XformIn, RunId(9), &"P".into(), "x");
        assert_eq!(z.keys, 0);
    }

    #[test]
    fn record_counts_track_table1_measure() {
        let s = TraceStore::in_memory();
        let r1 = s.begin_run(&"wf".into());
        s.record_xform(r1, xform("P", 0, &[0], &[0]));
        s.record_xfer(r1, xfer(("A", "y"), ("B", "x"), &[0], "v"));
        s.record_xfer(r1, xfer(("A", "y"), ("B", "x"), &[1], "v"));
        let r2 = s.begin_run(&"wf".into());
        s.record_xform(r2, xform("P", 0, &[0], &[0]));
        assert_eq!(s.trace_record_count(r1), 3);
        assert_eq!(s.trace_record_count(r2), 1);
        assert_eq!(s.total_record_count(), 4);
    }

    #[test]
    fn values_are_interned_across_events() {
        let s = TraceStore::in_memory();
        let r = s.begin_run(&"wf".into());
        for i in 0..10 {
            s.record_xfer(r, xfer(("A", "y"), ("B", "x"), &[i], "same"));
        }
        assert_eq!(s.value_count(), 1);
    }

    #[test]
    fn names_are_interned_across_events() {
        let s = TraceStore::in_memory();
        let r = s.begin_run(&"wf".into());
        for i in 0..10 {
            s.record_xform(r, xform("P", i, &[i], &[i]));
            s.record_xfer(r, xfer(("P", "y"), ("Q", "x"), &[i], "v"));
        }
        // P, Q, x, y — regardless of row count.
        assert_eq!(s.symbol_count(), 4);
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("prov-store-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn durable_store_survives_reopen() {
        let path = tmp("reopen");
        {
            let s = TraceStore::open(&path).unwrap();
            let r = s.begin_run(&"wf".into());
            s.record_xform(r, xform("P", 0, &[0], &[0]));
            s.record_xfer(r, xfer(("A", "y"), ("P", "x"), &[0], "v"));
            s.finish_run(r);
        }
        let s = TraceStore::open(&path).unwrap();
        assert_eq!(s.runs().len(), 1);
        assert!(s.runs()[0].finished);
        assert_eq!(s.trace_record_count(RunId(0)), 2);
        let hits = s.xforms_producing(RunId(0), &"P".into(), "y", &Index::single(0));
        assert_eq!(hits.len(), 1);
        // New runs continue after the replayed id space.
        let r2 = s.begin_run(&"wf".into());
        assert_eq!(r2, RunId(1));
    }

    #[test]
    fn batched_recording_is_equivalent_and_durable() {
        let path = tmp("batch-equiv");
        {
            let s = TraceStore::open(&path).unwrap();
            let r = s.begin_run(&"wf".into());
            s.record_batch(
                r,
                vec![
                    TraceEvent::Xform(xform("P", 0, &[0], &[0])),
                    TraceEvent::Xfer(xfer(("P", "y"), ("Q", "x"), &[0], "out")),
                    TraceEvent::Xform(xform("P", 1, &[1], &[1])),
                ],
            );
            s.record_batch(r, Vec::new()); // empty batches are no-ops
            s.finish_run(r);
        }
        // Batched WAL frames replay to the same queryable state.
        let s = TraceStore::open(&path).unwrap();
        assert_eq!(s.trace_record_count(RunId(0)), 3);
        assert_eq!(s.xforms_producing(RunId(0), &"P".into(), "y", &Index::empty()).len(), 2);
        assert_eq!(s.xfers_into(RunId(0), &"Q".into(), "x", &Index::single(0)).len(), 1);
        // Rows kept recording order within the run.
        let rows = s.xforms_of_run(RunId(0));
        assert_eq!(rows.iter().map(|r| r.invocation).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn reopen_after_torn_tail_truncates_and_continues() {
        let path = tmp("torn");
        {
            let s = TraceStore::open(&path).unwrap();
            let r = s.begin_run(&"wf".into());
            s.record_xform(r, xform("P", 0, &[0], &[0]));
            s.finish_run(r);
        }
        // Tear the tail.
        let len = std::fs::metadata(&path).unwrap().len();
        std::fs::OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 2).unwrap();
        let s = TraceStore::open(&path).unwrap();
        // FinishRun frame was torn: run exists, unfinished, xform intact.
        assert_eq!(s.runs().len(), 1);
        assert!(!s.runs()[0].finished);
        assert_eq!(s.trace_record_count(RunId(0)), 1);
        // Appending after truncation keeps the log clean.
        let r2 = s.begin_run(&"wf".into());
        s.finish_run(r2);
        let s2 = TraceStore::open(&path).unwrap();
        assert_eq!(s2.runs().len(), 2);
    }

    #[test]
    fn checkpoint_compacts_and_preserves_state() {
        let path = tmp("checkpoint");
        let s = TraceStore::open(&path).unwrap();
        let r = s.begin_run(&"wf".into());
        for i in 0..20 {
            s.record_xfer(r, xfer(("A", "y"), ("B", "x"), &[i], "v"));
        }
        s.finish_run(r);
        s.checkpoint().unwrap();
        let s2 = TraceStore::open(&path).unwrap();
        assert_eq!(s2.trace_record_count(RunId(0)), 20);
        assert!(s2.runs()[0].finished);
    }

    #[test]
    fn drop_run_removes_queryability_and_survives_checkpoint() {
        let path = tmp("drop");
        let s = TraceStore::open(&path).unwrap();
        let keep = s.begin_run(&"wf".into());
        s.record_xform(keep, xform("P", 0, &[0], &[0]));
        let gone = s.begin_run(&"wf".into());
        s.record_xform(gone, xform("P", 0, &[1], &[1]));
        s.record_xfer(gone, xfer(("A", "y"), ("B", "x"), &[0], "v"));
        s.finish_run(keep);
        s.finish_run(gone);

        s.drop_run(gone).unwrap();
        assert_eq!(s.runs().len(), 1);
        assert!(s.xforms_producing(gone, &"P".into(), "y", &Index::empty()).is_empty());
        assert!(s.xforms_of_run(gone).is_empty());
        assert_eq!(s.trace_record_count(gone), 0);
        // The kept run is untouched.
        assert_eq!(s.xforms_producing(keep, &"P".into(), "y", &Index::empty()).len(), 1);

        // Durability: the drop replays…
        let s2 = TraceStore::open(&path).unwrap();
        assert_eq!(s2.runs().len(), 1);
        assert!(s2.xforms_of_run(gone).is_empty());

        // …and checkpointing reclaims the space.
        s2.checkpoint().unwrap();
        let before = std::fs::metadata(&path).unwrap().len();
        let s3 = TraceStore::open(&path).unwrap();
        assert_eq!(s3.runs().len(), 1);
        assert_eq!(s3.xforms_producing(keep, &"P".into(), "y", &Index::empty()).len(), 1);
        assert!(before > 0);
    }

    #[test]
    fn bindings_with_value_finds_all_roles() {
        let s = TraceStore::in_memory();
        let r = s.begin_run(&"wf".into());
        s.record_xform(r, xform("P", 0, &[0], &[0])); // in "in", out "out"
        s.record_xfer(r, xfer(("P", "y"), ("Q", "x"), &[0], "out"));
        // "out" appears as P's output AND as the transferred element.
        let hits = s.bindings_with_value(r, &Value::str("out"));
        assert!(hits.iter().any(|b| b.processor == ProcessorName::from("P") && &*b.port == "y"));
        assert!(hits.iter().any(|b| b.processor == ProcessorName::from("Q") && &*b.port == "x"));
        // Misses return empty; other runs are isolated.
        assert!(s.bindings_with_value(r, &Value::str("nope")).is_empty());
        let r2 = s.begin_run(&"wf".into());
        assert!(s.bindings_with_value(r2, &Value::str("out")).is_empty());
    }

    #[test]
    fn workflow_registry_survives_reopen_and_checkpoint() {
        let path = tmp("wfreg");
        {
            let s = TraceStore::open(&path).unwrap();
            s.register_workflow(&"wf".into(), "{\"fake\":1}".to_string());
            assert_eq!(s.workflow_json(&"wf".into()).unwrap(), "{\"fake\":1}");
        }
        let s = TraceStore::open(&path).unwrap();
        assert_eq!(s.workflow_names(), vec![ProcessorName::from("wf")]);
        s.checkpoint().unwrap();
        let s = TraceStore::open(&path).unwrap();
        assert_eq!(s.workflow_json(&"wf".into()).unwrap(), "{\"fake\":1}");
        // Re-registration overwrites.
        s.register_workflow(&"wf".into(), "{\"fake\":2}".to_string());
        assert_eq!(s.workflow_json(&"wf".into()).unwrap(), "{\"fake\":2}");
    }

    #[test]
    fn drop_unknown_run_errors() {
        let s = TraceStore::in_memory();
        assert!(matches!(s.drop_run(RunId(9)), Err(StoreError::UnknownRun(_))));
    }

    #[test]
    fn index_key_counts_track_inserts() {
        let s = TraceStore::in_memory();
        let r = s.begin_run(&"wf".into());
        s.record_xform(r, xform("P", 0, &[0], &[0]));
        s.record_xfer(r, xfer(("A", "y"), ("B", "x"), &[0], "v"));
        let (xo, xi, xd, xs) = s.index_key_counts();
        assert_eq!((xo, xi, xd, xs), (1, 1, 1, 1));
    }

    #[test]
    fn of_run_scans_charge_only_that_runs_rows() {
        // Regression: with per-run row spans, reading a small run that is
        // co-resident with a much larger one must touch only the small
        // run's rows — the old implementation scanned the whole heap.
        let s = TraceStore::in_memory();
        let big = s.begin_run(&"wf".into());
        for i in 0..100 {
            s.record_xform(big, xform("P", i, &[i], &[i]));
            s.record_xfer(big, xfer(("P", "y"), ("Q", "x"), &[i], "v"));
        }
        let small = s.begin_run(&"wf".into());
        s.record_xform(small, xform("P", 0, &[0], &[0]));
        s.record_xfer(small, xfer(("P", "y"), ("Q", "x"), &[0], "v"));

        let before = s.stats().snapshot();
        assert_eq!(s.xforms_of_run(small).len(), 1);
        assert_eq!(s.xfers_of_run(small).len(), 1);
        let after = s.stats().snapshot();
        assert_eq!(after.rows_scanned - before.rows_scanned, 2);
        assert_eq!(after.records_read - before.records_read, 2);
    }

    #[test]
    fn interleaved_runs_keep_their_own_spans() {
        let s = TraceStore::in_memory();
        let a = s.begin_run(&"wf".into());
        let b = s.begin_run(&"wf".into());
        for i in 0..5 {
            s.record_xform(a, xform("P", 2 * i, &[2 * i], &[2 * i]));
            s.record_xform(b, xform("P", 2 * i + 1, &[2 * i + 1], &[2 * i + 1]));
        }
        let rows_a: Vec<u32> = s.xforms_of_run(a).iter().map(|r| r.invocation).collect();
        let rows_b: Vec<u32> = s.xforms_of_run(b).iter().map(|r| r.invocation).collect();
        assert_eq!(rows_a, vec![0, 2, 4, 6, 8]);
        assert_eq!(rows_b, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn pinned_view_is_isolated_from_later_recording() {
        let s = TraceStore::in_memory();
        let r = s.begin_run(&"wf".into());
        s.record_xform(r, xform("P", 0, &[0], &[0]));
        let view = s.pin(r);
        // Recording after the pin copy-on-writes new shard state…
        s.record_xform(r, xform("P", 1, &[1], &[1]));
        s.record_xfer(r, xfer(("P", "y"), ("Q", "x"), &[0], "v"));
        // …so the view still answers from the pinned state…
        assert_eq!(view.xforms_of_run().len(), 1);
        assert_eq!(view.trace_record_count(), 1);
        assert!(view.xforms_producing(&"P".into(), "y", &Index::single(1)).is_empty());
        // …while the store (and a fresh pin) see everything.
        assert_eq!(s.xforms_of_run(r).len(), 2);
        assert_eq!(s.pin(r).trace_record_count(), 3);
        assert_eq!(s.pin(r).xforms_producing(&"P".into(), "y", &Index::single(1)).len(), 1);
    }

    #[test]
    fn pinned_view_matches_store_answers_and_counter_deltas() {
        let s = TraceStore::in_memory();
        let r = s.begin_run(&"wf".into());
        for i in 0..8 {
            s.record_xform(r, xform("P", i, &[i], &[i]));
            s.record_xfer(r, xfer(("P", "y"), ("Q", "x"), &[i], "v"));
        }
        let view = s.pin(r);
        let q = Index::single(3);
        let before = s.stats().snapshot();
        let via_store = s.xforms_producing(r, &"P".into(), "y", &q);
        let store_delta = s.stats().snapshot().since(before);
        let before = s.stats().snapshot();
        let via_view = view.xforms_producing(&"P".into(), "y", &q);
        let view_delta = s.stats().snapshot().since(before);
        assert_eq!(via_store, via_view);
        // The view's ProbeStats batching lands on identical totals, and
        // both feed the same shared counters.
        assert_eq!(store_delta, view_delta);
        assert!(view_delta.index_lookups > 0);
    }

    #[test]
    fn unknown_run_view_probes_the_empty_shard_with_identical_accounting() {
        let s = TraceStore::in_memory();
        let r = s.begin_run(&"wf".into());
        s.record_xform(r, xform("P", 0, &[0], &[0]));
        let q = Index::from_slice(&[0, 1]);
        // A probe of a run that exists but has no matching rows…
        let other = s.begin_run(&"wf".into());
        s.record_xform(other, xform("Q", 0, &[0], &[0]));
        let before = s.stats().snapshot();
        assert!(s.xforms_producing(other, &"P".into(), "y", &q).is_empty());
        let known_delta = s.stats().snapshot().since(before);
        // …and of a run that does not exist at all must cost the same
        // index descents (|q| + 2 for the overlap lookup).
        let before = s.stats().snapshot();
        assert!(s.xforms_producing(RunId(99), &"P".into(), "y", &q).is_empty());
        let unknown_delta = s.stats().snapshot().since(before);
        assert_eq!(known_delta, unknown_delta);
        assert_eq!(unknown_delta.index_lookups, q.len() as u64 + 2);
    }

    #[test]
    fn dropped_run_stays_readable_through_a_pinned_view() {
        let s = TraceStore::in_memory();
        let r = s.begin_run(&"wf".into());
        s.record_xform(r, xform("P", 0, &[0], &[0]));
        let view = s.pin(r);
        s.drop_run(r).unwrap();
        // The store no longer answers; the pinned view holds the shard
        // alive until it drops.
        assert!(s.xforms_of_run(r).is_empty());
        assert_eq!(view.xforms_of_run().len(), 1);
    }

    #[test]
    fn concurrent_recording_from_multiple_threads() {
        let s = std::sync::Arc::new(TraceStore::in_memory());
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    let r = s.begin_run(&"wf".into());
                    for i in 0..50 {
                        s.record_xform(r, xform("P", i, &[i], &[i]));
                    }
                    s.finish_run(r);
                });
                let _ = t;
            }
        });
        assert_eq!(s.runs().len(), 4);
        assert_eq!(s.total_record_count(), 200);
        // Every run sees exactly its own 50 rows via its spans.
        for info in s.runs() {
            assert_eq!(s.xforms_of_run(info.id).len(), 50);
        }
    }

    /// Like `tmp`, but also clears snapshot generations left by an earlier
    /// process with the same pid.
    fn tmp_snap(name: &str) -> std::path::PathBuf {
        let path = tmp(name);
        for g in crate::snapshot::generations(&path) {
            let _ = std::fs::remove_file(crate::snapshot::snapshot_path(&path, g));
        }
        let _ = std::fs::remove_file(crate::snapshot::tmp_path(&path));
        path
    }

    #[test]
    fn snapshot_then_reopen_replays_only_the_tail() {
        let path = tmp_snap("snap-zero");
        {
            let s = TraceStore::open(&path).unwrap();
            s.register_workflow(&"wf".into(), "{\"fake\":1}".to_string());
            let r = s.begin_run(&"wf".into());
            s.record_xform(r, xform("P", 0, &[0], &[0]));
            s.record_xfer(r, xfer(("A", "y"), ("P", "x"), &[0], "v"));
            s.finish_run(r);
            s.snapshot().unwrap();
            assert_eq!(s.snapshot_metrics().snapshots.get(), 1);
            // More work lands in the post-snapshot tail.
            s.record_xform(r, xform("P", 1, &[1], &[1]));
        }
        let s = TraceStore::open(&path).unwrap();
        // Base from the snapshot, one tail frame replayed.
        assert_eq!(s.wal_metrics().recovery_replayed_frames.get(), 1);
        assert_eq!(s.trace_record_count(RunId(0)), 3);
        assert!(s.runs()[0].finished);
        assert_eq!(s.workflow_json(&"wf".into()).unwrap(), "{\"fake\":1}");
        assert_eq!(s.xforms_producing(RunId(0), &"P".into(), "y", &Index::empty()).len(), 2);
        // Run ids continue past the replayed space.
        assert_eq!(s.begin_run(&"wf".into()), RunId(1));
    }

    #[test]
    fn auto_compaction_bounds_recovery_replay() {
        let path = tmp_snap("auto-compact");
        {
            let s = TraceStore::open(&path).unwrap();
            s.set_compaction_policy(Some(CompactionPolicy::frames(4)));
            let r = s.begin_run(&"wf".into());
            for i in 0..40 {
                s.record_xfer(r, xfer(("A", "y"), ("B", "x"), &[i], "v"));
            }
            s.finish_run(r);
            s.durability().unwrap();
            assert!(s.wal_metrics().compactions.get() > 1);
            assert_eq!(s.snapshot_metrics().snapshots.get(), s.wal_metrics().compactions.get());
        }
        let s = TraceStore::open(&path).unwrap();
        // The pending tail at any crash point is bounded by the policy.
        assert!(
            s.wal_metrics().recovery_replayed_frames.get() <= 4,
            "replayed {} frames",
            s.wal_metrics().recovery_replayed_frames.get()
        );
        assert_eq!(s.trace_record_count(RunId(0)), 40);
        assert!(s.runs()[0].finished);
        // At most two generations are retained.
        assert!(crate::snapshot::generations(&path).len() <= 2);
    }

    #[test]
    fn torn_newest_snapshot_falls_back_a_generation() {
        let path = tmp_snap("snap-fallback");
        {
            let s = TraceStore::open(&path).unwrap();
            let r = s.begin_run(&"wf".into());
            s.record_xform(r, xform("P", 0, &[0], &[0]));
            s.snapshot().unwrap(); // generation 1
            s.record_xform(r, xform("P", 1, &[1], &[1]));
            s.snapshot().unwrap(); // generation 2
            s.finish_run(r);
        }
        // Corrupt generation 2 (external damage): flip a payload byte.
        let snap2 = crate::snapshot::snapshot_path(&path, 2);
        let mut bytes = std::fs::read(&snap2).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&snap2, bytes).unwrap();

        let s = TraceStore::open(&path).unwrap();
        assert_eq!(s.snapshot_metrics().fallbacks.get(), 1);
        // Generation 1 state plus the replayed tail past the marker. The
        // records between the two snapshots are lost to the corruption —
        // the degraded-but-available contract.
        assert_eq!(s.xforms_producing(RunId(0), &"P".into(), "y", &Index::single(0)).len(), 1);
        assert!(s.runs()[0].finished);
    }

    #[test]
    fn crash_between_truncation_and_marker_rewrites_the_marker() {
        let path = tmp_snap("snap-marker-rewrite");
        {
            let s = TraceStore::open(&path).unwrap();
            let r = s.begin_run(&"wf".into());
            s.record_xform(r, xform("P", 0, &[0], &[0]));
            s.snapshot().unwrap();
            s.finish_run(r);
        }
        // Simulate the crash: WAL truncated to nothing, snapshot intact.
        std::fs::OpenOptions::new().write(true).open(&path).unwrap().set_len(0).unwrap();
        {
            let s = TraceStore::open(&path).unwrap();
            assert_eq!(s.wal_metrics().recovery_replayed_frames.get(), 0);
            assert_eq!(s.trace_record_count(RunId(0)), 1);
            // The finish was in the truncated tail, so the run is unfinished.
            assert!(!s.runs()[0].finished);
        }
        // The marker was rewritten: a second recovery still finds its base.
        let s = TraceStore::open(&path).unwrap();
        assert_eq!(s.trace_record_count(RunId(0)), 1);
    }

    #[test]
    fn stale_snapshot_beside_marker_less_wal_is_ignored() {
        let path = tmp_snap("snap-stale");
        {
            let s = TraceStore::open(&path).unwrap();
            let r = s.begin_run(&"wf".into());
            s.record_xform(r, xform("P", 0, &[0], &[0]));
            s.snapshot().unwrap();
            s.record_xform(r, xform("P", 1, &[1], &[1]));
            // `checkpoint` rewrites the WAL whole, marker-less; the
            // snapshot file on disk is now stale.
            s.checkpoint().unwrap();
            s.finish_run(r);
        }
        let s = TraceStore::open(&path).unwrap();
        assert_eq!(s.trace_record_count(RunId(0)), 2);
        assert!(s.runs()[0].finished);
    }
}
