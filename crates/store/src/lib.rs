//! # prov-store
//!
//! An embedded relational store for provenance traces — the role played by
//! a local MySQL 5.1 instance in the paper's evaluation (§4). The paper's
//! implementation is "based on a standard RDBMS, with no need for auxiliary
//! data structures"; this crate reproduces the parts of that substrate the
//! evaluation actually depends on:
//!
//! * relational tables for *xform* events (one row per elementary
//!   invocation, with per-port input/output rows) and *xfer* events (one
//!   row per transferred element), keyed by **trace (run) id** — the
//!   attribute that makes multi-run queries cheap (§3.4);
//! * composite ordered (B-tree) secondary indexes on
//!   `(run, processor, port, index)` giving the point lookups and prefix
//!   scans both query algorithms issue ("all of the queries on the traces
//!   involve the use of indexes, with none requiring full table scans");
//! * a content-addressed value table (identical collections recur along
//!   every arc of a trace);
//! * per-query access statistics ([`QueryStats`]) so benchmarks can report
//!   machine-independent record-access counts next to wall-clock times;
//! * durability via an append-only, CRC-framed write-ahead log with crash
//!   recovery and checkpoint compaction.
//!
//! [`TraceStore`] implements `prov_engine::TraceSink`, so an engine can
//! stream events straight into it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod catalog;
mod crc;
mod encode;
mod export;
pub mod fault;
mod indexes;
mod rows;
mod shard;
mod shared;
mod snapshot;
mod stats;
mod store;
mod symbols;
mod values;
mod wal;

pub use catalog::{IndexCatalog, IndexId, PortCardinality};
pub use crc::{crc32, Crc32};
pub use export::{GraphEdge, GraphNode, ProvenanceGraph};
pub use fault::{FaultFile, FaultPlan, FaultReader};
pub use rows::{PortDirection, StoredBinding, XferRecord, XformPortRecord, XformRecord};
pub use shard::ReadView;
pub use shared::SharedStore;
pub use snapshot::{CompactionPolicy, SnapshotMetrics};
pub use stats::{ProbeGuard, ProbeStats, QueryStats, StatsSnapshot};
pub use store::{ReplPosition, RunInfo, StoreError, TraceStore};
pub use wal::{
    LogRecord, TailState, WalCursor, WalError, WalFile, WalMetrics, WalReader, WalRecovery,
    WalWriter,
};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, StoreError>;
