//! The write-ahead log: an append-only file of CRC-framed records.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! ┌──────────┬──────────┬────────────────┐
//! │ len: u32 │ crc: u32 │ payload [len]  │
//! └──────────┴──────────┴────────────────┘
//! ```
//!
//! The payload is the JSON serialisation of one [`LogRecord`] — the framing
//! and checksumming are binary and hand-rolled; JSON payloads keep the log
//! debuggable with standard tools (and `serde_json` is the one permitted
//! extra dependency, see DESIGN.md §6).
//!
//! Recovery ([`WalReader::read_all`]) replays frames until EOF or the first
//! corrupt/truncated frame, and reports how many clean bytes precede the
//! damage so the writer can truncate the tail and continue appending — the
//! standard "torn tail" discipline.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};

use prov_engine::{TraceEvent, XferEvent, XformEvent};
use prov_model::{ProcessorName, RunId};
use prov_obs::{Counter, Histogram, Registry};

/// Shared WAL throughput and durability-latency metrics.
///
/// One instance lives in the owning store and is cloned (`Arc`-shared)
/// into every [`WalWriter`] the store creates — writers are recreated at
/// open and checkpoint time, but the metrics survive. Counters are
/// always-on standalone atomics (negligible next to a buffered write,
/// let alone an fsync); [`WalMetrics::register`] adopts them into a
/// metrics registry under stable `wal.*` names.
#[derive(Debug, Clone)]
pub struct WalMetrics {
    /// Frames appended (one per record or group-committed batch).
    pub frames: Counter,
    /// Bytes appended, including the 8-byte frame header.
    pub bytes_written: Counter,
    /// Batch frames appended (group commits).
    pub group_commits: Counter,
    /// Number of [`WalWriter::sync`] calls.
    pub syncs: Counter,
    /// fsync latency in microseconds.
    pub sync_micros: Histogram,
    /// Torn tails truncated during recovery (expected crash shape).
    pub torn_tails: Counter,
    /// Complete frames that failed their checksum or decode during
    /// recovery (unexpected damage; replay stops before them).
    pub corrupt_frames: Counter,
    /// WAL tail frames replayed at the most recent recovery — the cost a
    /// crash actually paid. Bounded by `CompactionPolicy::max_frames` when
    /// automatic compaction is enabled.
    pub recovery_replayed_frames: Counter,
    /// Snapshot-and-truncate compaction cycles completed.
    pub compactions: Counter,
}

impl Default for WalMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl WalMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        WalMetrics {
            frames: Counter::standalone(),
            bytes_written: Counter::standalone(),
            group_commits: Counter::standalone(),
            syncs: Counter::standalone(),
            sync_micros: Histogram::standalone(),
            torn_tails: Counter::standalone(),
            corrupt_frames: Counter::standalone(),
            recovery_replayed_frames: Counter::standalone(),
            compactions: Counter::standalone(),
        }
    }

    /// Adopts the metrics into `registry` under `wal.*` names (shared
    /// storage; see [`prov_obs::Registry::adopt_counter`]).
    pub fn register(&self, registry: &Registry) {
        registry.adopt_counter("wal.frames", &self.frames);
        registry.adopt_counter("wal.bytes_written", &self.bytes_written);
        registry.adopt_counter("wal.group_commits", &self.group_commits);
        registry.adopt_counter("wal.syncs", &self.syncs);
        registry.adopt_histogram("wal.sync_micros", &self.sync_micros);
        registry.adopt_counter("wal.torn_tails", &self.torn_tails);
        registry.adopt_counter("wal.corrupt_frames", &self.corrupt_frames);
        registry.adopt_counter("wal.recovery_replayed_frames", &self.recovery_replayed_frames);
        registry.adopt_counter("wal.compactions", &self.compactions);
    }
}

/// One durable event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogRecord {
    /// A run was registered.
    BeginRun {
        /// The assigned run id.
        run: RunId,
        /// Workflow name.
        workflow: ProcessorName,
    },
    /// An xform event (values inline; the store re-interns on replay).
    Xform {
        /// Owning run.
        run: RunId,
        /// The event.
        event: XformEvent,
    },
    /// An xfer event.
    Xfer {
        /// Owning run.
        run: RunId,
        /// The event.
        event: XferEvent,
    },
    /// A group-committed batch of events of one run (one frame, one CRC).
    /// Replay flattens the batch, so logs mixing batched and per-event
    /// frames — including logs written before batching existed — replay
    /// identically.
    Batch {
        /// Owning run.
        run: RunId,
        /// The events, in recording order.
        events: Vec<TraceEvent>,
    },
    /// A run completed.
    FinishRun {
        /// The completed run.
        run: RunId,
    },
    /// A run was dropped (its records become unreachable; space is
    /// reclaimed at the next checkpoint).
    DropRun {
        /// The dropped run.
        run: RunId,
    },
    /// A workflow specification was registered, so the database is
    /// self-contained for INDEXPROJ queries (the spec travels with the
    /// traces). The payload is the `prov-dataflow` JSON serialisation.
    Workflow {
        /// Workflow name (also the key; re-registration overwrites).
        name: ProcessorName,
        /// Serialised `Dataflow`.
        json: String,
    },
    /// A snapshot marker. As the *first* record of a WAL it means "state up
    /// to here lives in snapshot file `generation`; replay only what
    /// follows". Inside a snapshot file it brackets the content (header and
    /// footer), so a frame-aligned truncation of the snapshot is detectable.
    /// Replay treats it as a no-op.
    Snapshot {
        /// The snapshot generation this marker refers to.
        generation: u64,
    },
}

/// WAL-specific errors.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A frame failed its checksum or could not be decoded; carries the
    /// clean length of the file before the damage.
    Corrupt {
        /// Offset of the first bad byte.
        clean_len: u64,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt { clean_len } => {
                write!(f, "wal corrupt after {clean_len} clean bytes")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// The file abstraction the WAL writer appends through: a real [`File`]
/// in production, a fault-injecting wrapper ([`crate::fault::FaultFile`])
/// in crash-torture tests. `sync_data` takes `&mut self` so wrappers can
/// count and fail syncs.
pub trait WalFile: Write + Send + std::fmt::Debug {
    /// Flushes written data to stable storage (fsync).
    fn sync_data(&mut self) -> std::io::Result<()>;
}

impl WalFile for File {
    fn sync_data(&mut self) -> std::io::Result<()> {
        File::sync_data(self)
    }
}

/// Appends framed records to a log file.
#[derive(Debug)]
pub struct WalWriter {
    out: BufWriter<Box<dyn WalFile>>,
    metrics: WalMetrics,
}

impl WalWriter {
    /// Opens (creating if needed) the log for appending.
    pub fn open(path: &Path) -> Result<Self, WalError> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(WalWriter::over(Box::new(file)))
    }

    /// Opens the log for appending after truncating it to `len` bytes —
    /// used to drop a torn tail detected during recovery.
    pub fn open_truncated(path: &Path, len: u64) -> Result<Self, WalError> {
        // Deliberately NOT `truncate(true)`: the file is cut to `len` via
        // `set_len`, preserving the clean prefix.
        #[allow(clippy::suspicious_open_options)]
        let file = OpenOptions::new().create(true).write(true).open(path)?;
        file.set_len(len)?;
        let mut file = OpenOptions::new().append(true).open(path)?;
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter::over(Box::new(file)))
    }

    /// Wraps an arbitrary backend — the entry point of the fault-injection
    /// harness ([`crate::fault`]).
    pub fn over(backend: Box<dyn WalFile>) -> Self {
        WalWriter { out: BufWriter::new(backend), metrics: WalMetrics::new() }
    }

    /// Replaces this writer's metrics with a shared instance, so totals
    /// survive writer re-creation (recovery truncation, checkpointing).
    pub fn with_metrics(mut self, metrics: WalMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Appends one record (buffered; call [`WalWriter::sync`] to flush).
    /// Payloads are produced by the streaming encoder ([`crate::encode`]),
    /// which writes the same bytes as `serde_json::to_vec` without building
    /// the intermediate JSON tree.
    pub fn append(&mut self, record: &LogRecord) -> Result<(), WalError> {
        let payload = crate::encode::encode_record(record);
        self.append_payload(&payload)
    }

    /// Appends a whole event batch as one [`LogRecord::Batch`] frame —
    /// group commit: one serialisation, one CRC, one buffered write. The
    /// events are borrowed; nothing is cloned to build the frame.
    pub fn append_batch(&mut self, run: RunId, events: &[TraceEvent]) -> Result<(), WalError> {
        let payload = crate::encode::encode_batch(run, events);
        self.metrics.group_commits.inc();
        self.append_payload(&payload)
    }

    /// Appends an already-encoded payload — the replication apply path,
    /// where the follower re-frames the exact payload bytes the primary
    /// shipped (len and CRC are functions of the payload, so the resulting
    /// frame is byte-identical to the primary's).
    pub(crate) fn append_payload(&mut self, payload: &[u8]) -> Result<(), WalError> {
        let mut frame = BytesMut::with_capacity(8 + payload.len());
        frame.put_u32_le(payload.len() as u32);
        frame.put_u32_le(crate::crc32(payload));
        frame.put_slice(payload);
        self.out.write_all(&frame)?;
        self.metrics.frames.inc();
        self.metrics.bytes_written.add(frame.len() as u64);
        Ok(())
    }

    /// Flushes buffered frames to the OS and fsyncs the file.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.out.flush()?;
        let start = std::time::Instant::now();
        self.out.get_mut().sync_data()?;
        self.metrics.syncs.inc();
        self.metrics.sync_micros.record(start.elapsed().as_micros() as u64);
        Ok(())
    }
}

/// How the log's tail looked at recovery time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailState {
    /// The file ended exactly on a frame boundary — nothing to repair.
    Clean,
    /// The final frame was incomplete: the expected shape of a crash
    /// mid-append. `offset` is the first byte of the torn frame (equal to
    /// the clean length); truncating there loses nothing durable.
    TornTail {
        /// Offset of the first byte of the torn frame.
        offset: u64,
    },
    /// A complete frame failed its checksum or did not decode. Unlike a
    /// torn tail this is *not* a clean truncation — bytes after the clean
    /// prefix were damaged in place. Replay still stops at `offset`, but
    /// the store surfaces the distinction (`wal.corrupt_frames`).
    CorruptFrame {
        /// Offset of the first byte of the damaged frame.
        offset: u64,
    },
}

impl TailState {
    /// Whether recovery found any damage (torn or corrupt).
    pub fn is_clean(&self) -> bool {
        matches!(self, TailState::Clean)
    }
}

/// The result of replaying a log: the clean records, the length of the
/// clean prefix they occupy, and what the tail beyond it looked like.
#[derive(Debug)]
pub struct WalRecovery {
    /// Every record of the clean prefix, in append order.
    pub records: Vec<LogRecord>,
    /// Bytes of clean frames; the safe truncation point for
    /// [`WalWriter::open_truncated`].
    pub clean_len: u64,
    /// State of the bytes past the clean prefix.
    pub tail: TailState,
}

/// Frames longer than this are treated as corrupt rather than allocated:
/// a length field this large can only come from damaged bytes.
const MAX_FRAME_LEN: usize = 256 * 1024 * 1024;

/// A streaming, CRC-checking frame reader over a WAL (or snapshot) byte
/// stream. Holds exactly **one** frame in memory at a time in a reusable
/// buffer — recovery scans and replication shipping never buffer the whole
/// log, no matter how large it grew.
///
/// The cursor is generic over any [`Read`] source: a `BufReader<File>` for
/// on-disk scans ([`WalCursor::open_at`]), a byte slice or socket for
/// replication, a fault-injected reader in torture tests. `offset()` tracks
/// the clean frame boundary consumed so far (seeded by the start offset),
/// and [`WalCursor::tail`] reports how iteration ended — the same
/// [`TailState`] taxonomy recovery uses.
#[derive(Debug)]
pub struct WalCursor<R> {
    reader: R,
    /// Reusable frame buffer: 8-byte header followed by the payload of the
    /// most recent clean frame.
    buf: Vec<u8>,
    offset: u64,
    tail: TailState,
    done: bool,
    /// High-water mark of the frame buffer's capacity — what the scan
    /// actually held in memory (regression-tested to stay one-frame-sized).
    peak_buf: usize,
}

impl WalCursor<BufReader<File>> {
    /// Opens a cursor over the file at `path`, starting at byte 0.
    pub fn open(path: &Path) -> Result<Self, WalError> {
        Self::open_at(path, 0)
    }

    /// Opens a cursor over the file at `path`, starting at `offset` —
    /// which must be a frame boundary (a clean length previously reported
    /// by recovery or by another cursor).
    pub fn open_at(path: &Path, offset: u64) -> Result<Self, WalError> {
        let mut file = File::open(path)?;
        if offset > 0 {
            file.seek(SeekFrom::Start(offset))?;
        }
        Ok(Self::over_at(BufReader::new(file), offset))
    }
}

impl<R: Read> WalCursor<R> {
    /// Wraps an arbitrary byte source, counting offsets from 0.
    pub fn over(reader: R) -> Self {
        Self::over_at(reader, 0)
    }

    /// Wraps an arbitrary byte source whose first byte sits at `offset` of
    /// the logical log (for shipped tails that start mid-file).
    pub fn over_at(reader: R, offset: u64) -> Self {
        WalCursor {
            reader,
            buf: Vec::new(),
            offset,
            tail: TailState::Clean,
            done: false,
            peak_buf: 0,
        }
    }

    /// Offset just past the last clean frame consumed — the safe
    /// truncation/resume point so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// How the scan ended (meaningful once iteration returns `None`):
    /// [`TailState::Clean`] at a frame-aligned EOF, otherwise the damage
    /// kind and offset.
    pub fn tail(&self) -> TailState {
        self.tail
    }

    /// Largest buffer the cursor has held, in bytes — one frame plus
    /// amortised growth, never the whole file.
    pub fn peak_buf_bytes(&self) -> usize {
        self.peak_buf
    }

    /// Payload bytes of the most recent clean frame (empty before the
    /// first [`WalCursor::next_frame`]).
    pub fn payload(&self) -> &[u8] {
        self.buf.get(8..).unwrap_or(&[])
    }

    /// Reads the next frame, verifying its checksum, and returns the whole
    /// frame (header + payload) — the exact bytes to ship to a replica.
    /// Returns `Ok(None)` when the stream ends, cleanly or not; consult
    /// [`WalCursor::tail`] to distinguish. A genuine mid-read I/O failure
    /// is returned as [`WalError::Io`].
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, WalError> {
        if self.done {
            return Ok(None);
        }
        let mut header = [0u8; 8];
        match read_exact_or_eof(&mut self.reader, &mut header) {
            ReadOutcome::Eof => {
                self.done = true;
                return Ok(None);
            }
            ReadOutcome::Partial => {
                self.done = true;
                self.tail = TailState::TornTail { offset: self.offset };
                return Ok(None);
            }
            ReadOutcome::Err(e) => return Err(e.into()),
            ReadOutcome::Full => {}
        }
        let mut hb = &header[..];
        let len = hb.get_u32_le() as usize;
        let crc = hb.get_u32_le();
        if len > MAX_FRAME_LEN {
            self.done = true;
            self.tail = TailState::CorruptFrame { offset: self.offset };
            return Ok(None);
        }
        self.buf.clear();
        self.buf.extend_from_slice(&header);
        self.buf.resize(8 + len, 0);
        match read_exact_or_eof(&mut self.reader, &mut self.buf[8..]) {
            ReadOutcome::Full => {}
            ReadOutcome::Err(e) => return Err(e.into()),
            // The header was complete but the payload ends early: a frame
            // torn by a crash mid-append (or a stream cut mid-ship).
            ReadOutcome::Eof | ReadOutcome::Partial => {
                self.done = true;
                self.tail = TailState::TornTail { offset: self.offset };
                return Ok(None);
            }
        }
        if crate::crc32(&self.buf[8..]) != crc {
            self.done = true;
            self.tail = TailState::CorruptFrame { offset: self.offset };
            return Ok(None);
        }
        self.peak_buf = self.peak_buf.max(self.buf.capacity());
        self.offset += self.buf.len() as u64;
        Ok(Some(&self.buf))
    }

    /// Reads and decodes the next clean record. A frame whose checksum
    /// holds but whose payload doesn't decode counts as corrupt: the scan
    /// stops *before* it (its bytes are excluded from `offset()`), exactly
    /// like recovery.
    pub fn next_record(&mut self) -> Result<Option<LogRecord>, WalError> {
        if self.next_frame()?.is_none() {
            return Ok(None);
        }
        match serde_json::from_slice::<LogRecord>(&self.buf[8..]) {
            Ok(r) => Ok(Some(r)),
            Err(_) => {
                // Roll the clean boundary back to before the bad frame.
                self.offset -= self.buf.len() as u64;
                self.tail = TailState::CorruptFrame { offset: self.offset };
                self.done = true;
                Ok(None)
            }
        }
    }
}

/// Reads framed records back.
#[derive(Debug)]
pub struct WalReader;

impl WalReader {
    /// Replays every clean record in the log, streaming one frame at a
    /// time through a [`WalCursor`]. A torn or corrupt tail stops the
    /// replay without erroring (crashes are the expected shape of a WAL's
    /// end) and is reported in [`WalRecovery::tail`] with the damage
    /// offset; a genuine mid-read I/O failure — the disk erroring, not the
    /// file merely ending — is returned as [`WalError::Io`].
    pub fn read_all(path: &Path) -> Result<WalRecovery, WalError> {
        let mut cursor = match WalCursor::open(path) {
            Ok(c) => c,
            Err(WalError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(WalRecovery {
                    records: Vec::new(),
                    clean_len: 0,
                    tail: TailState::Clean,
                })
            }
            Err(e) => return Err(e),
        };
        let mut records = Vec::new();
        while let Some(r) = cursor.next_record()? {
            records.push(r);
        }
        Ok(WalRecovery { records, clean_len: cursor.offset(), tail: cursor.tail() })
    }
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
    Err(std::io::Error),
}

fn read_exact_or_eof(reader: &mut impl Read, buf: &mut [u8]) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return if filled == 0 { ReadOutcome::Eof } else { ReadOutcome::Partial },
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return ReadOutcome::Err(e),
        }
    }
    ReadOutcome::Full
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::{Index, PortRef, Value};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("prov-store-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::BeginRun { run: RunId(0), workflow: ProcessorName::from("wf") },
            LogRecord::Xfer {
                run: RunId(0),
                event: XferEvent {
                    src: PortRef::new("A", "y"),
                    src_index: Index::single(0),
                    dst: PortRef::new("B", "x"),
                    dst_index: Index::single(0),
                    value: Value::str("v"),
                },
            },
            LogRecord::FinishRun { run: RunId(0) },
        ]
    }

    #[test]
    fn write_then_read_round_trips() {
        let path = tmp("roundtrip");
        let mut w = WalWriter::open(&path).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        w.sync().unwrap();
        let rec = WalReader::read_all(&path).unwrap();
        assert_eq!(rec.records, sample_records());
        assert_eq!(rec.clean_len, std::fs::metadata(&path).unwrap().len());
        assert_eq!(rec.tail, TailState::Clean);
    }

    #[test]
    fn batch_append_round_trips_as_owned_batch_record() {
        let path = tmp("batch");
        let events = vec![
            TraceEvent::Xform(XformEvent {
                processor: ProcessorName::from("P"),
                invocation: 0,
                inputs: vec![],
                outputs: vec![],
            }),
            TraceEvent::Xfer(XferEvent {
                src: PortRef::new("A", "y"),
                src_index: Index::single(0),
                dst: PortRef::new("B", "x"),
                dst_index: Index::single(0),
                value: Value::str("v"),
            }),
        ];
        let mut w = WalWriter::open(&path).unwrap();
        w.append_batch(RunId(3), &events).unwrap();
        // The borrowed shadow must write the exact bytes of the owned
        // variant: append the owned record and compare the two frames.
        w.append(&LogRecord::Batch { run: RunId(3), events: events.clone() }).unwrap();
        w.sync().unwrap();
        let records = WalReader::read_all(&path).unwrap().records;
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], records[1]);
        assert_eq!(records[0], LogRecord::Batch { run: RunId(3), events });
    }

    #[test]
    fn metrics_count_frames_bytes_and_syncs() {
        let path = tmp("metrics");
        let metrics = WalMetrics::new();
        let mut w = WalWriter::open(&path).unwrap().with_metrics(metrics.clone());
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        w.append_batch(RunId(1), &[]).unwrap();
        w.sync().unwrap();
        assert_eq!(metrics.frames.get(), 4);
        assert_eq!(metrics.group_commits.get(), 1);
        assert_eq!(metrics.syncs.get(), 1);
        assert_eq!(metrics.sync_micros.count(), 1);
        assert_eq!(metrics.bytes_written.get(), std::fs::metadata(&path).unwrap().len());
        // A registry adopting the metrics sees the same totals.
        let registry = Registry::new();
        metrics.register(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("wal.frames"), 4);
        assert_eq!(snap.histograms["wal.sync_micros"].count, 1);
    }

    #[test]
    fn missing_file_reads_empty() {
        let path = tmp("missing");
        let rec = WalReader::read_all(&path).unwrap();
        assert!(rec.records.is_empty());
        assert_eq!(rec.clean_len, 0);
        assert_eq!(rec.tail, TailState::Clean);
    }

    #[test]
    fn torn_tail_is_dropped_and_reported_with_offset() {
        let path = tmp("torn");
        let mut w = WalWriter::open(&path).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        w.sync().unwrap();
        let full = std::fs::metadata(&path).unwrap().len();
        // Chop the last 3 bytes: the final frame is torn.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        let rec = WalReader::read_all(&path).unwrap();
        assert_eq!(rec.records.len(), sample_records().len() - 1);
        assert_eq!(rec.tail, TailState::TornTail { offset: rec.clean_len });
    }

    #[test]
    fn corrupt_payload_stops_replay_at_damage() {
        let path = tmp("corrupt");
        let mut w = WalWriter::open(&path).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        w.sync().unwrap();
        // Flip a byte inside the SECOND frame's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let second_payload_at = 8 + first_len + 8;
        bytes[second_payload_at + 2] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let rec = WalReader::read_all(&path).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.clean_len, (8 + first_len) as u64);
        // Checksum damage is distinguished from clean truncation.
        assert_eq!(rec.tail, TailState::CorruptFrame { offset: (8 + first_len) as u64 });
    }

    #[test]
    fn absurd_length_field_is_corrupt_not_an_allocation() {
        let path = tmp("hugelen");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&LogRecord::FinishRun { run: RunId(1) }).unwrap();
        w.sync().unwrap();
        let clean = std::fs::metadata(&path).unwrap().len();
        // Append a frame header claiming a ~4 GiB payload.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&u32::MAX.to_le_bytes()).unwrap();
        f.write_all(&0u32.to_le_bytes()).unwrap();
        f.write_all(b"garbage").unwrap();
        let rec = WalReader::read_all(&path).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.tail, TailState::CorruptFrame { offset: clean });
    }

    #[test]
    fn open_truncated_resumes_after_damage() {
        let path = tmp("resume");
        let mut w = WalWriter::open(&path).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        w.sync().unwrap();
        // Corrupt the tail, recover, truncate, append a fresh record.
        let full = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new().write(true).open(&path).unwrap().set_len(full - 1).unwrap();
        let rec = WalReader::read_all(&path).unwrap();
        assert_eq!(rec.records.len(), 2);
        assert!(!rec.tail.is_clean());
        let mut w = WalWriter::open_truncated(&path, rec.clean_len).unwrap();
        w.append(&LogRecord::FinishRun { run: RunId(9) }).unwrap();
        w.sync().unwrap();
        let rec = WalReader::read_all(&path).unwrap();
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.records[2], LogRecord::FinishRun { run: RunId(9) });
        assert_eq!(rec.tail, TailState::Clean);
    }

    #[test]
    fn cursor_streams_frames_with_exact_offsets() {
        let path = tmp("cursor");
        let mut w = WalWriter::open(&path).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        w.sync().unwrap();
        let total = std::fs::metadata(&path).unwrap().len();

        // Full sweep: frames are the exact on-disk bytes, offsets add up.
        let disk = std::fs::read(&path).unwrap();
        let mut cursor = WalCursor::open(&path).unwrap();
        let mut at = 0u64;
        let mut frames = 0;
        loop {
            let before = at;
            let frame = match cursor.next_frame().unwrap() {
                None => break,
                Some(frame) => frame.to_vec(),
            };
            assert_eq!(frame, &disk[before as usize..cursor.offset() as usize]);
            at = cursor.offset();
            frames += 1;
        }
        assert_eq!(frames, sample_records().len());
        assert_eq!(cursor.offset(), total);
        assert_eq!(cursor.tail(), TailState::Clean);

        // Resume mid-log: a cursor opened at a frame boundary sees exactly
        // the remaining records.
        let first_len = 8 + u32::from_le_bytes(disk[0..4].try_into().unwrap()) as u64;
        let mut cursor = WalCursor::open_at(&path, first_len).unwrap();
        let mut rest = Vec::new();
        while let Some(r) = cursor.next_record().unwrap() {
            rest.push(r);
        }
        assert_eq!(rest, sample_records()[1..]);
        assert_eq!(cursor.offset(), total);
    }

    #[test]
    fn cursor_reports_torn_and_corrupt_tails_like_recovery() {
        let path = tmp("cursor-tails");
        let mut w = WalWriter::open(&path).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        w.sync().unwrap();
        let full = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new().write(true).open(&path).unwrap().set_len(full - 3).unwrap();

        let mut cursor = WalCursor::open(&path).unwrap();
        let mut n = 0;
        while cursor.next_record().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, sample_records().len() - 1);
        assert_eq!(cursor.tail(), TailState::TornTail { offset: cursor.offset() });
        // Once stopped, the cursor stays stopped.
        assert!(cursor.next_frame().unwrap().is_none());

        // A cursor over a shipped chunk (plain byte slice) detects a
        // flipped payload byte exactly like the on-disk scan.
        let mut bytes = std::fs::read(&path).unwrap();
        let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        bytes[8 + first_len + 8 + 2] ^= 0xFF;
        let mut cursor = WalCursor::over(&bytes[..]);
        assert!(cursor.next_frame().unwrap().is_some());
        assert!(cursor.next_frame().unwrap().is_none());
        assert_eq!(cursor.tail(), TailState::CorruptFrame { offset: (8 + first_len) as u64 });
    }

    #[test]
    fn recovery_of_a_multi_mb_wal_holds_only_one_frame_in_memory() {
        let path = tmp("one-frame");
        let mut w = WalWriter::open(&path).unwrap();
        // ~3 MiB of small frames: a few hundred bytes each.
        let value = "x".repeat(256);
        let mut written = 0u64;
        let mut i = 0u64;
        while written < 3 * 1024 * 1024 {
            w.append(&LogRecord::Workflow {
                name: ProcessorName::from(format!("wf{i}")),
                json: value.clone(),
            })
            .unwrap();
            i += 1;
            written = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            if i.is_multiple_of(512) {
                w.sync().unwrap();
            }
        }
        w.sync().unwrap();
        let total = std::fs::metadata(&path).unwrap().len();
        assert!(total >= 3 * 1024 * 1024);

        let mut cursor = WalCursor::open(&path).unwrap();
        let mut frames = 0u64;
        while cursor.next_record().unwrap().is_some() {
            frames += 1;
        }
        assert_eq!(frames, i);
        assert_eq!(cursor.offset(), total);
        // The scan's buffer high-water mark is one (small) frame, not the
        // multi-MB file: recovery streams instead of buffering.
        assert!(
            cursor.peak_buf_bytes() < 16 * 1024,
            "peak buffer {} bytes should be one frame, file is {} bytes",
            cursor.peak_buf_bytes(),
            total
        );
    }
}
