//! Relational row types for the trace tables.
//!
//! The normalisation mirrors what the paper's MySQL schema must have looked
//! like: an `xform` table (one row per elementary invocation), an
//! `xform_port` table (one row per port binding of an invocation), and an
//! `xfer` table (one row per transferred element). Values are referenced by
//! [`ValueId`] into a content-addressed value table.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use prov_model::{Index, ProcessorName, RunId, ValueId};

/// Whether an `xform_port` row is on the consuming or producing side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PortDirection {
    /// The row records a consumed input element.
    In,
    /// The row records a produced output element.
    Out,
}

/// One row of the `xform` table: an elementary processor invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XformRecord {
    /// Primary key (global, monotone).
    pub id: u64,
    /// The trace this invocation belongs to.
    pub run: RunId,
    /// The (scope-qualified) processor.
    pub processor: ProcessorName,
    /// Invocation ordinal within (run, processor).
    pub invocation: u32,
    /// Port rows (inputs then outputs, in port order). Embedded rather than
    /// joined at query time: the store hands back the whole invocation,
    /// which is what both NI and INDEXPROJ consume.
    pub ports: Vec<XformPortRecord>,
}

impl XformRecord {
    /// Iterator over the input-side port rows.
    pub fn inputs(&self) -> impl Iterator<Item = &XformPortRecord> {
        self.ports.iter().filter(|p| p.direction == PortDirection::In)
    }

    /// Iterator over the output-side port rows.
    pub fn outputs(&self) -> impl Iterator<Item = &XformPortRecord> {
        self.ports.iter().filter(|p| p.direction == PortDirection::Out)
    }

    /// The port row for the named input port, if present.
    pub fn input(&self, port: &str) -> Option<&XformPortRecord> {
        self.inputs().find(|p| &*p.port == port)
    }

    /// The port row for the named output port, if present.
    pub fn output(&self, port: &str) -> Option<&XformPortRecord> {
        self.outputs().find(|p| &*p.port == port)
    }
}

/// One row of the `xform_port` table: a single `⟨P:X[p], v⟩` binding of an
/// invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XformPortRecord {
    /// Input or output side.
    pub direction: PortDirection,
    /// Port name.
    pub port: Arc<str>,
    /// Element index within the port's full value (empty = whole).
    pub index: Index,
    /// The element, by reference into the value table.
    pub value: ValueId,
}

/// One row of the `xfer` table: one element moved along one arc.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XferRecord {
    /// Primary key (global, monotone).
    pub id: u64,
    /// The trace this transfer belongs to.
    pub run: RunId,
    /// Source processor (scope-qualified).
    pub src_processor: ProcessorName,
    /// Source port.
    pub src_port: Arc<str>,
    /// Element index at the source.
    pub src_index: Index,
    /// Destination processor (scope-qualified).
    pub dst_processor: ProcessorName,
    /// Destination port.
    pub dst_port: Arc<str>,
    /// Element index at the destination.
    pub dst_index: Index,
    /// The transferred element, by reference.
    pub value: ValueId,
}

/// A resolved binding as returned by store queries: like
/// `prov_model::Binding` but also carrying the run it came from, which
/// multi-run queries need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredBinding {
    /// The run the binding was observed in.
    pub run: RunId,
    /// Processor (scope-qualified).
    pub processor: ProcessorName,
    /// Port name.
    pub port: Arc<str>,
    /// Element index.
    pub index: Index,
    /// The element, by reference into the value table.
    pub value: ValueId,
}

// ---------------------------------------------------------------------
// Internal interned rows
// ---------------------------------------------------------------------
//
// The heap stores names as symbols (and values by id) so rows are compact
// and insertion never clones strings. The public record types above are
// materialised from these at the API boundary by resolving symbols through
// the store's symbol table.

use crate::symbols::Sym;

/// Internal form of [`XformRecord`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct XformRow {
    pub id: u64,
    pub run: RunId,
    pub processor: Sym,
    pub invocation: u32,
    pub ports: Vec<XformPortRow>,
}

impl XformRow {
    /// Iterator over the input-side port rows.
    pub fn inputs(&self) -> impl Iterator<Item = &XformPortRow> {
        self.ports.iter().filter(|p| p.direction == PortDirection::In)
    }

    /// Iterator over the output-side port rows.
    pub fn outputs(&self) -> impl Iterator<Item = &XformPortRow> {
        self.ports.iter().filter(|p| p.direction == PortDirection::Out)
    }
}

/// Internal form of [`XformPortRecord`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct XformPortRow {
    pub direction: PortDirection,
    pub port: Sym,
    pub index: Index,
    pub value: ValueId,
}

/// Internal form of [`XferRecord`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct XferRow {
    pub id: u64,
    pub run: RunId,
    pub src_processor: Sym,
    pub src_port: Sym,
    pub src_index: Index,
    pub dst_processor: Sym,
    pub dst_port: Sym,
    pub dst_index: Index,
    pub value: ValueId,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> XformRecord {
        XformRecord {
            id: 1,
            run: RunId(0),
            processor: ProcessorName::from("P"),
            invocation: 0,
            ports: vec![
                XformPortRecord {
                    direction: PortDirection::In,
                    port: Arc::from("x1"),
                    index: Index::single(0),
                    value: ValueId(10),
                },
                XformPortRecord {
                    direction: PortDirection::In,
                    port: Arc::from("x2"),
                    index: Index::empty(),
                    value: ValueId(11),
                },
                XformPortRecord {
                    direction: PortDirection::Out,
                    port: Arc::from("y"),
                    index: Index::single(0),
                    value: ValueId(12),
                },
            ],
        }
    }

    #[test]
    fn sides_are_separated() {
        let r = record();
        assert_eq!(r.inputs().count(), 2);
        assert_eq!(r.outputs().count(), 1);
        assert_eq!(r.input("x2").unwrap().value, ValueId(11));
        assert_eq!(r.output("y").unwrap().index, Index::single(0));
        assert!(r.input("y").is_none());
        assert!(r.output("x1").is_none());
    }

    #[test]
    fn rows_serde_round_trip() {
        let r = record();
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<XformRecord>(&json).unwrap(), r);
    }
}
