//! Store snapshots and the WAL compaction policy.
//!
//! A WAL alone makes recovery time grow without bound: every reopen
//! replays the whole log. A *snapshot* bounds it — the full store state is
//! serialised to a sibling file (`<wal>.snap.<generation>`, written
//! temp-then-rename), the WAL is truncated down to a single
//! [`LogRecord::Snapshot`] marker, and recovery becomes *load snapshot +
//! replay the bounded tail*. Snapshot files reuse the WAL's CRC frame
//! format and are bracketed by a marker frame at both ends, so torn or
//! frame-aligned-truncated snapshots are detectable and recovery can fall
//! back to the previous generation.
//!
//! [`CompactionPolicy`] drives automatic snapshots: once the pending WAL
//! tail crosses either bound, the store compacts, so a crash at any moment
//! replays at most `max_frames` tail frames on reopen.

use std::path::{Path, PathBuf};

use prov_obs::{Counter, Histogram, Registry};

use crate::wal::{LogRecord, WalReader};

/// Bounds on the pending (post-snapshot) WAL tail; crossing either one
/// triggers an automatic snapshot-and-truncate cycle at the next append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Compact once the pending tail reaches this many bytes.
    pub max_wal_bytes: u64,
    /// Compact once the pending tail reaches this many frames — the bound
    /// on how many WAL frames any recovery has to replay.
    pub max_frames: u64,
}

impl CompactionPolicy {
    /// A policy bounded by frame count only.
    pub fn frames(max_frames: u64) -> Self {
        CompactionPolicy { max_wal_bytes: u64::MAX, max_frames: max_frames.max(1) }
    }

    /// A policy bounded by tail bytes only.
    pub fn bytes(max_wal_bytes: u64) -> Self {
        CompactionPolicy { max_wal_bytes: max_wal_bytes.max(1), max_frames: u64::MAX }
    }

    /// Whether a tail of `frames` frames / `bytes` bytes is due for
    /// compaction.
    pub fn due(&self, frames: u64, bytes: u64) -> bool {
        frames >= self.max_frames || bytes >= self.max_wal_bytes
    }
}

/// Snapshot lifecycle counters, shared by the owning store and adopted
/// into a metrics registry under stable `store.*` names.
#[derive(Debug, Clone)]
pub struct SnapshotMetrics {
    /// Snapshot generations successfully written and installed.
    pub snapshots: Counter,
    /// Size in bytes of each written snapshot file.
    pub snapshot_bytes: Histogram,
    /// Snapshot generations skipped at recovery because they were missing,
    /// torn, or failed their checksums (each skip falls back one
    /// generation).
    pub fallbacks: Counter,
}

impl Default for SnapshotMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        SnapshotMetrics {
            snapshots: Counter::standalone(),
            snapshot_bytes: Histogram::standalone(),
            fallbacks: Counter::standalone(),
        }
    }

    /// Adopts the metrics into `registry` (shared storage).
    pub fn register(&self, registry: &Registry) {
        registry.adopt_counter("store.snapshots", &self.snapshots);
        registry.adopt_histogram("store.snapshot_bytes", &self.snapshot_bytes);
        registry.adopt_counter("store.snapshot_fallbacks", &self.fallbacks);
    }
}

/// Appends `suffix` to the WAL's file name (sibling file, same directory).
fn sibling(wal: &Path, suffix: &str) -> PathBuf {
    let mut name = wal.file_name().map(|s| s.to_os_string()).unwrap_or_default();
    name.push(suffix);
    wal.with_file_name(name)
}

/// The file holding snapshot `generation` of the store at `wal`.
pub(crate) fn snapshot_path(wal: &Path, generation: u64) -> PathBuf {
    sibling(wal, &format!(".snap.{generation}"))
}

/// The scratch file snapshots are written to before their atomic rename.
pub(crate) fn tmp_path(wal: &Path) -> PathBuf {
    sibling(wal, ".snap.tmp")
}

/// Every snapshot generation present on disk for the store at `wal`, in
/// ascending order. The `.snap.tmp` scratch file never parses as a
/// generation, so an abandoned temp write is invisible here.
pub(crate) fn generations(wal: &Path) -> Vec<u64> {
    let parent = match wal.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let Some(stem) = wal.file_name().and_then(|s| s.to_str()) else {
        return Vec::new();
    };
    let prefix = format!("{stem}.snap.");
    let mut gens = Vec::new();
    if let Ok(entries) = std::fs::read_dir(parent) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(rest) = name.strip_prefix(&prefix) {
                if let Ok(g) = rest.parse::<u64>() {
                    gens.push(g);
                }
            }
        }
    }
    gens.sort_unstable();
    gens
}

/// Reads a snapshot file back, validating it end to end: the tail must be
/// clean and the first and last record must both be the `Snapshot` marker
/// of the expected generation (the footer marker catches a snapshot
/// truncated on a frame boundary, which a CRC scan alone cannot). Returns
/// `None` for anything invalid — recovery then falls back a generation.
pub(crate) fn load(path: &Path, generation: u64) -> Option<Vec<LogRecord>> {
    let recovery = WalReader::read_all(path).ok()?;
    if !recovery.tail.is_clean() || recovery.records.len() < 2 {
        return None;
    }
    let marker = LogRecord::Snapshot { generation };
    if recovery.records.first() != Some(&marker) || recovery.records.last() != Some(&marker) {
        return None;
    }
    Some(recovery.records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::WalWriter;
    use prov_model::RunId;

    #[test]
    fn policy_triggers_on_either_bound() {
        let p = CompactionPolicy { max_wal_bytes: 100, max_frames: 4 };
        assert!(!p.due(3, 99));
        assert!(p.due(4, 0));
        assert!(p.due(0, 100));
        assert!(CompactionPolicy::frames(2).due(2, 0));
        assert!(!CompactionPolicy::frames(2).due(1, u64::MAX - 1));
        assert!(CompactionPolicy::bytes(10).due(0, 10));
    }

    #[test]
    fn policy_floors_are_one() {
        // A zero bound would compact on every append forever.
        assert_eq!(CompactionPolicy::frames(0).max_frames, 1);
        assert_eq!(CompactionPolicy::bytes(0).max_wal_bytes, 1);
    }

    #[test]
    fn paths_are_siblings_and_tmp_never_parses() {
        let wal = Path::new("/data/store.wal");
        assert_eq!(snapshot_path(wal, 7), Path::new("/data/store.wal.snap.7"));
        assert_eq!(tmp_path(wal), Path::new("/data/store.wal.snap.tmp"));
    }

    fn tmp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("prov-store-snapshot-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{}.wal", std::process::id()));
        for p in generations(&path) {
            let _ = std::fs::remove_file(snapshot_path(&path, p));
        }
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn generations_scan_finds_only_numbered_snapshots() {
        let wal = tmp_wal("gens");
        for g in [3u64, 1, 10] {
            std::fs::write(snapshot_path(&wal, g), b"x").unwrap();
        }
        std::fs::write(tmp_path(&wal), b"x").unwrap();
        std::fs::write(sibling(&wal, ".snap.notanumber"), b"x").unwrap();
        assert_eq!(generations(&wal), vec![1, 3, 10]);
        let _ = std::fs::remove_file(tmp_path(&wal));
        let _ = std::fs::remove_file(sibling(&wal, ".snap.notanumber"));
    }

    #[test]
    fn load_rejects_missing_torn_unbracketed_and_wrong_generation() {
        let wal = tmp_wal("load");
        let snap = snapshot_path(&wal, 2);
        assert!(load(&snap, 2).is_none()); // missing

        let mut w = WalWriter::open(&snap).unwrap();
        w.append(&LogRecord::Snapshot { generation: 2 }).unwrap();
        w.append(&LogRecord::FinishRun { run: RunId(0) }).unwrap();
        w.sync().unwrap();
        assert!(load(&snap, 2).is_none()); // no footer marker

        w.append(&LogRecord::Snapshot { generation: 2 }).unwrap();
        w.sync().unwrap();
        drop(w);
        assert_eq!(load(&snap, 2).unwrap().len(), 3); // valid
        assert!(load(&snap, 3).is_none()); // wrong generation

        // Frame-aligned truncation (drop the footer frame): the CRC scan is
        // clean, but the footer check rejects it.
        let full = std::fs::metadata(&snap).unwrap().len();
        let footer = crate::encode::encode_record(&LogRecord::Snapshot { generation: 2 }).len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&snap)
            .unwrap()
            .set_len(full - (8 + footer as u64))
            .unwrap();
        assert!(load(&snap, 2).is_none());

        // A torn (non-aligned) truncation is also rejected.
        std::fs::OpenOptions::new().write(true).open(&snap).unwrap().set_len(full / 2).unwrap();
        assert!(load(&snap, 2).is_none());
    }
}
