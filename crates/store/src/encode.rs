//! Streaming JSON encoding of WAL records.
//!
//! `serde_json::to_vec` goes through an intermediate `Json` tree: every
//! field name becomes an owned `String`, every string payload is cloned
//! into a `Json::Str`, and the tree is then walked a second time to
//! produce text. On the ingest hot path that tree is pure overhead — the
//! WAL appends thousands of records per run and throws each tree away
//! immediately. This module writes the same bytes directly into one
//! growing buffer: no intermediate nodes, no field-name allocations, one
//! pass.
//!
//! **The output is byte-identical to the tree encoder's** (asserted by the
//! equivalence tests below), so logs written by either encoder replay
//! interchangeably and frame checksums agree. Decoding stays tree-based —
//! recovery runs once per process, not per event.

use prov_engine::{PortBinding, TraceEvent, XferEvent, XformEvent};
use prov_model::{Atom, Index, PortRef, RunId, Value};

use crate::wal::LogRecord;

/// Encodes one record to the exact bytes `serde_json::to_vec` produces.
pub(crate) fn encode_record(record: &LogRecord) -> Vec<u8> {
    let mut out = String::with_capacity(128);
    match record {
        LogRecord::BeginRun { run, workflow } => {
            out.push_str("{\"BeginRun\":{\"run\":");
            enc_u64(&mut out, run.0);
            out.push_str(",\"workflow\":");
            enc_str(&mut out, workflow.as_str());
            out.push_str("}}");
        }
        LogRecord::Xform { run, event } => {
            out.push_str("{\"Xform\":{\"run\":");
            enc_u64(&mut out, run.0);
            out.push_str(",\"event\":");
            enc_xform(&mut out, event);
            out.push_str("}}");
        }
        LogRecord::Xfer { run, event } => {
            out.push_str("{\"Xfer\":{\"run\":");
            enc_u64(&mut out, run.0);
            out.push_str(",\"event\":");
            enc_xfer(&mut out, event);
            out.push_str("}}");
        }
        LogRecord::Batch { run, events } => return encode_batch(*run, events),
        LogRecord::FinishRun { run } => {
            out.push_str("{\"FinishRun\":{\"run\":");
            enc_u64(&mut out, run.0);
            out.push_str("}}");
        }
        LogRecord::DropRun { run } => {
            out.push_str("{\"DropRun\":{\"run\":");
            enc_u64(&mut out, run.0);
            out.push_str("}}");
        }
        LogRecord::Workflow { name, json } => {
            out.push_str("{\"Workflow\":{\"name\":");
            enc_str(&mut out, name.as_str());
            out.push_str(",\"json\":");
            enc_str(&mut out, json);
            out.push_str("}}");
        }
        LogRecord::Snapshot { generation } => {
            out.push_str("{\"Snapshot\":{\"generation\":");
            enc_u64(&mut out, *generation);
            out.push_str("}}");
        }
    }
    out.into_bytes()
}

/// Encodes a `LogRecord::Batch` frame straight from borrowed events —
/// nothing is cloned to build the payload.
pub(crate) fn encode_batch(run: RunId, events: &[TraceEvent]) -> Vec<u8> {
    let mut out = String::with_capacity(64 + events.len() * 160);
    out.push_str("{\"Batch\":{\"run\":");
    enc_u64(&mut out, run.0);
    out.push_str(",\"events\":");
    if events.is_empty() {
        out.push_str("[]");
    } else {
        out.push('[');
        for (i, event) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match event {
                TraceEvent::Xform(e) => {
                    out.push_str("{\"Xform\":");
                    enc_xform(&mut out, e);
                    out.push('}');
                }
                TraceEvent::Xfer(e) => {
                    out.push_str("{\"Xfer\":");
                    enc_xfer(&mut out, e);
                    out.push('}');
                }
            }
        }
        out.push(']');
    }
    out.push_str("}}");
    out.into_bytes()
}

fn enc_u64(out: &mut String, n: u64) {
    // u64::to_string allocates; format into a stack buffer instead.
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut n = n;
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    // Digits are ASCII by construction.
    out.push_str(std::str::from_utf8(&buf[i..]).unwrap_or("0"));
}

/// Mirrors the tree writer's `write_escaped` exactly.
fn enc_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn enc_index(out: &mut String, index: &Index) {
    let components = index.as_slice();
    if components.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, &c) in components.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        enc_u64(out, u64::from(c));
    }
    out.push(']');
}

fn enc_value(out: &mut String, value: &Value) {
    match value {
        Value::Atom(a) => {
            out.push_str("{\"Atom\":");
            enc_atom(out, a);
            out.push('}');
        }
        Value::List(items) => {
            out.push_str("{\"List\":");
            if items.is_empty() {
                out.push_str("[]");
            } else {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    enc_value(out, item);
                }
                out.push(']');
            }
            out.push('}');
        }
    }
}

fn enc_atom(out: &mut String, atom: &Atom) {
    match atom {
        Atom::Str(s) => {
            out.push_str("{\"Str\":");
            enc_str(out, s);
            out.push('}');
        }
        Atom::Int(n) => {
            out.push_str("{\"Int\":");
            if *n < 0 {
                out.push('-');
                enc_u64(out, n.unsigned_abs());
            } else {
                enc_u64(out, *n as u64);
            }
            out.push('}');
        }
        Atom::Float(f) => {
            out.push_str("{\"Float\":");
            if f.0.is_finite() {
                // Matches the tree writer: shortest round-trip text, with
                // a forced fractional part so it re-parses as a float.
                let s = f.0.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
            out.push('}');
        }
        Atom::Bool(b) => {
            out.push_str(if *b { "{\"Bool\":true}" } else { "{\"Bool\":false}" });
        }
        Atom::Bytes(bytes) => {
            out.push_str("{\"Bytes\":");
            if bytes.is_empty() {
                out.push_str("[]");
            } else {
                out.push('[');
                for (i, &b) in bytes.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    enc_u64(out, u64::from(b));
                }
                out.push(']');
            }
            out.push('}');
        }
        Atom::Error(tok) => {
            out.push_str("{\"Error\":{\"message\":");
            enc_str(out, &tok.message);
            out.push_str(",\"origin\":");
            enc_str(out, &tok.origin);
            out.push_str(",\"attempts\":");
            enc_u64(out, u64::from(tok.attempts));
            out.push_str("}}");
        }
    }
}

fn enc_binding(out: &mut String, b: &PortBinding) {
    out.push_str("{\"port\":");
    enc_str(out, &b.port);
    out.push_str(",\"index\":");
    enc_index(out, &b.index);
    out.push_str(",\"value\":");
    enc_value(out, &b.value);
    out.push('}');
}

fn enc_bindings(out: &mut String, bindings: &[PortBinding]) {
    if bindings.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, b) in bindings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        enc_binding(out, b);
    }
    out.push(']');
}

fn enc_port_ref(out: &mut String, p: &PortRef) {
    out.push_str("{\"processor\":");
    enc_str(out, p.processor.as_str());
    out.push_str(",\"port\":");
    enc_str(out, &p.port);
    out.push('}');
}

fn enc_xform(out: &mut String, e: &XformEvent) {
    out.push_str("{\"processor\":");
    enc_str(out, e.processor.as_str());
    out.push_str(",\"invocation\":");
    enc_u64(out, u64::from(e.invocation));
    out.push_str(",\"inputs\":");
    enc_bindings(out, &e.inputs);
    out.push_str(",\"outputs\":");
    enc_bindings(out, &e.outputs);
    out.push('}');
}

fn enc_xfer(out: &mut String, e: &XferEvent) {
    out.push_str("{\"src\":");
    enc_port_ref(out, &e.src);
    out.push_str(",\"src_index\":");
    enc_index(out, &e.src_index);
    out.push_str(",\"dst\":");
    enc_port_ref(out, &e.dst);
    out.push_str(",\"dst_index\":");
    enc_index(out, &e.dst_index);
    out.push_str(",\"value\":");
    enc_value(out, &e.value);
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::ProcessorName;

    fn assert_matches_tree(record: &LogRecord) {
        let streamed = encode_record(record);
        let tree = serde_json::to_vec(record).expect("tree encode");
        assert_eq!(
            String::from_utf8_lossy(&streamed),
            String::from_utf8_lossy(&tree),
            "streaming encoder diverged from the tree encoder"
        );
    }

    fn xform(processor: &str) -> XformEvent {
        XformEvent {
            processor: ProcessorName::from(processor),
            invocation: 7,
            inputs: vec![PortBinding::new("x", Index::from_slice(&[1, 2]), Value::str("a\"b"))],
            outputs: vec![
                PortBinding::new("y", Index::empty(), Value::List(Vec::new())),
                PortBinding::new(
                    "z",
                    Index::from_slice(&[0]),
                    Value::List(vec![Value::int(-5), Value::str("tab\there")]),
                ),
            ],
        }
    }

    fn xfer() -> XferEvent {
        XferEvent {
            src: PortRef::new("wf", "in"),
            src_index: Index::from_slice(&[3]),
            dst: PortRef::new("P", "x"),
            dst_index: Index::empty(),
            value: Value::Atom(Atom::Bool(true)),
        }
    }

    #[test]
    fn every_record_shape_matches_the_tree_encoder() {
        let records = vec![
            LogRecord::BeginRun { run: RunId(0), workflow: ProcessorName::from("wf") },
            LogRecord::Xform { run: RunId(3), event: xform("P/Q") },
            LogRecord::Xfer { run: RunId(u64::MAX), event: xfer() },
            LogRecord::Batch {
                run: RunId(9),
                events: vec![TraceEvent::Xform(xform("A")), TraceEvent::Xfer(xfer())],
            },
            LogRecord::Batch { run: RunId(1), events: Vec::new() },
            LogRecord::FinishRun { run: RunId(2) },
            LogRecord::DropRun { run: RunId(5) },
            LogRecord::Workflow {
                name: ProcessorName::from("wf"),
                json: "{\"nested\":\"json\\n\"}".to_string(),
            },
            LogRecord::Snapshot { generation: 0 },
            LogRecord::Snapshot { generation: u64::MAX },
        ];
        for record in &records {
            assert_matches_tree(record);
        }
    }

    #[test]
    fn atom_variants_match_the_tree_encoder() {
        let atoms = vec![
            Atom::Str("control\u{1}chars\u{1f}".into()),
            Atom::Int(i64::MIN),
            Atom::Int(0),
            Atom::Float(prov_model::F64(1.5)),
            Atom::Float(prov_model::F64(2.0)),
            Atom::Float(prov_model::F64(f64::NAN)),
            Atom::Float(prov_model::F64(1e300)),
            Atom::Bool(false),
            Atom::Bytes(bytes::Bytes::from_static(&[0, 127, 255])),
            Atom::Bytes(bytes::Bytes::new()),
            Atom::Error(Box::new(prov_model::ErrorToken::new("quote\"and\nnewline", "P/Q", 3))),
            Atom::Error(Box::new(prov_model::ErrorToken::new("", "", 0))),
        ];
        for atom in atoms {
            let event = XferEvent { value: Value::Atom(atom), ..xfer() };
            assert_matches_tree(&LogRecord::Xfer { run: RunId(0), event });
        }
    }

    #[test]
    fn deeply_nested_values_match() {
        let mut v = Value::str("leaf");
        for _ in 0..6 {
            v = Value::List(vec![v.clone(), v]);
        }
        let event = XferEvent { value: v, ..xfer() };
        assert_matches_tree(&LogRecord::Xfer { run: RunId(0), event });
    }

    #[test]
    fn encoded_batches_replay_through_the_tree_decoder() {
        let record = LogRecord::Batch {
            run: RunId(4),
            events: vec![TraceEvent::Xform(xform("P")), TraceEvent::Xfer(xfer())],
        };
        let bytes = encode_record(&record);
        let back: LogRecord = serde_json::from_slice(&bytes).expect("decode");
        assert_eq!(back, record);
    }
}
