//! Exporting stored traces: the provenance *graph* view (§2.4) of a run.
//!
//! "It is convenient to view a trace as a directed acyclic graph … in
//! which the nodes are all the bindings that appear in the trace, and
//! there is an arc from `b_i` to `b_j` iff an xform event consumes `b_i`
//! and produces `b_j`, or an xfer event transfers `b_i` to `b_j`."
//!
//! Two renderings are provided: Graphviz DOT (for inspection of small
//! traces — exactly the pictures provenance papers draw) and a flat JSON
//! structure (nodes + edges) for downstream tooling.

use std::collections::HashMap;
use std::fmt::Write as _;

use serde::Serialize;

use prov_model::{Index, ProcessorName, RunId};

use crate::store::TraceStore;

/// One binding node of the provenance graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub struct GraphNode {
    /// Processor (scope-qualified).
    pub processor: ProcessorName,
    /// Port name.
    pub port: String,
    /// Element index.
    pub index: Index,
}

/// One dependency edge.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GraphEdge {
    /// Source node position in the node list.
    pub from: usize,
    /// Target node position in the node list.
    pub to: usize,
    /// `"xform"` or `"xfer"`.
    pub kind: &'static str,
}

/// The provenance graph of one run, as flat node/edge lists.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ProvenanceGraph {
    /// Binding nodes.
    pub nodes: Vec<GraphNode>,
    /// Dependency edges (from → to follows the data direction).
    pub edges: Vec<GraphEdge>,
}

impl ProvenanceGraph {
    /// Materialises the provenance graph of `run` (full scan; intended
    /// for inspection and export, not querying).
    pub fn of_run(store: &TraceStore, run: RunId) -> ProvenanceGraph {
        let mut graph = ProvenanceGraph::default();
        let mut ids: HashMap<GraphNode, usize> = HashMap::new();
        let mut intern = |graph: &mut ProvenanceGraph, node: GraphNode| -> usize {
            if let Some(&i) = ids.get(&node) {
                return i;
            }
            let i = graph.nodes.len();
            graph.nodes.push(node.clone());
            ids.insert(node, i);
            i
        };

        for rec in store.xforms_of_run(run) {
            let inputs: Vec<usize> = rec
                .inputs()
                .map(|p| {
                    intern(
                        &mut graph,
                        GraphNode {
                            processor: rec.processor.clone(),
                            port: p.port.to_string(),
                            index: p.index.clone(),
                        },
                    )
                })
                .collect();
            for out in rec.outputs() {
                let to = intern(
                    &mut graph,
                    GraphNode {
                        processor: rec.processor.clone(),
                        port: out.port.to_string(),
                        index: out.index.clone(),
                    },
                );
                for &from in &inputs {
                    graph.edges.push(GraphEdge { from, to, kind: "xform" });
                }
            }
        }
        for rec in store.xfers_of_run(run) {
            let from = intern(
                &mut graph,
                GraphNode {
                    processor: rec.src_processor.clone(),
                    port: rec.src_port.to_string(),
                    index: rec.src_index.clone(),
                },
            );
            let to = intern(
                &mut graph,
                GraphNode {
                    processor: rec.dst_processor.clone(),
                    port: rec.dst_port.to_string(),
                    index: rec.dst_index.clone(),
                },
            );
            graph.edges.push(GraphEdge { from, to, kind: "xfer" });
        }
        graph
    }

    /// Renders the graph as Graphviz DOT, clustering nodes by processor.
    pub fn to_dot(&self, run: RunId) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{run}\" {{");
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node [shape=box, fontname=\"Helvetica\", fontsize=10];");

        // Cluster by processor for readability.
        let mut by_proc: HashMap<&ProcessorName, Vec<usize>> = HashMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            by_proc.entry(&n.processor).or_default().push(i);
        }
        let mut procs: Vec<&&ProcessorName> = by_proc.keys().collect();
        procs.sort();
        for (ci, proc) in procs.iter().enumerate() {
            let _ = writeln!(out, "  subgraph cluster_{ci} {{");
            let _ = writeln!(out, "    label=\"{proc}\";");
            for &i in &by_proc[**proc] {
                let n = &self.nodes[i];
                let _ = writeln!(out, "    n{i} [label=\"{}{}\"];", n.port, n.index);
            }
            let _ = writeln!(out, "  }}");
        }
        for e in &self.edges {
            let style = if e.kind == "xfer" { " [style=dashed]" } else { "" };
            let _ = writeln!(out, "  n{} -> n{}{};", e.from, e.to, style);
        }
        out.push_str("}\n");
        out
    }

    /// Serialises the graph to JSON.
    pub fn to_json(&self) -> crate::Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| crate::StoreError::Serialize(e.to_string()))
    }

    /// `(nodes, edges)` counts.
    pub fn size(&self) -> (usize, usize) {
        (self.nodes.len(), self.edges.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_engine::{PortBinding, TraceSink, XferEvent, XformEvent};
    use prov_model::{PortRef, Value};

    fn sample_store() -> (TraceStore, RunId) {
        let store = TraceStore::in_memory();
        let run = store.begin_run(&"wf".into());
        store.record_xfer(
            run,
            XferEvent {
                src: PortRef::new("wf", "in"),
                src_index: Index::single(0),
                dst: PortRef::new("P", "x"),
                dst_index: Index::single(0),
                value: Value::str("a"),
            },
        );
        store.record_xform(
            run,
            XformEvent {
                processor: ProcessorName::from("P"),
                invocation: 0,
                inputs: vec![PortBinding::new("x", Index::single(0), Value::str("a"))],
                outputs: vec![PortBinding::new("y", Index::single(0), Value::str("A"))],
            },
        );
        (store, run)
    }

    #[test]
    fn graph_has_one_node_per_distinct_binding() {
        let (store, run) = sample_store();
        let g = ProvenanceGraph::of_run(&store, run);
        // wf:in[0], P:x[0], P:y[0] — the xfer dst and xform input COINCIDE.
        assert_eq!(g.size(), (3, 2));
        let kinds: Vec<&str> = g.edges.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&"xfer"));
        assert!(kinds.contains(&"xform"));
    }

    #[test]
    fn edges_follow_data_direction() {
        let (store, run) = sample_store();
        let g = ProvenanceGraph::of_run(&store, run);
        for e in &g.edges {
            let from = &g.nodes[e.from];
            let to = &g.nodes[e.to];
            match e.kind {
                "xfer" => {
                    assert_eq!(from.processor, ProcessorName::from("wf"));
                    assert_eq!(to.processor, ProcessorName::from("P"));
                }
                "xform" => {
                    assert_eq!(from.port, "x");
                    assert_eq!(to.port, "y");
                }
                other => panic!("unexpected kind {other}"),
            }
        }
    }

    #[test]
    fn dot_and_json_render() {
        let (store, run) = sample_store();
        let g = ProvenanceGraph::of_run(&store, run);
        let dot = g.to_dot(run);
        assert!(dot.contains("digraph \"run:0\""));
        assert!(dot.contains("cluster_"));
        assert!(dot.contains("style=dashed")); // the xfer edge
        let json = g.to_json().unwrap();
        assert!(json.contains("\"kind\": \"xform\""));
        // JSON parses back as generic value.
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["nodes"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn empty_run_yields_empty_graph() {
        let store = TraceStore::in_memory();
        let run = store.begin_run(&"wf".into());
        let g = ProvenanceGraph::of_run(&store, run);
        assert_eq!(g.size(), (0, 0));
    }
}
