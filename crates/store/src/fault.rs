//! Deterministic fault injection for crash-torture tests.
//!
//! [`FaultFile`] wraps a real file behind the [`WalFile`] abstraction and
//! injects failures from a [`FaultPlan`]:
//!
//! * **crash at a byte offset** — the write that would carry the file past
//!   `fail_after_bytes` persists only the prefix that fits and then fails,
//!   leaving exactly the torn tail a power cut mid-`write` leaves;
//! * **fsync failure** — the `fail_on_sync`-th [`WalFile::sync_data`] call
//!   fails without touching the file.
//!
//! Either fault *trips* the file: every subsequent write, flush and sync
//! fails too, modelling a process that never comes back after the crash.
//! The store's poisoning discipline (see [`crate::TraceStore::durability`])
//! turns the first trip into a shut-down writer, so "crash then reopen"
//! is: build a store with [`crate::TraceStore::open_with_fault`], ingest
//! until the plan fires, drop the store, reopen with
//! [`crate::TraceStore::open`] and observe recovery of the durable prefix.
//!
//! Everything here is deterministic — the plan is data, not randomness —
//! so a proptest can sweep crash offsets and a CI job can replay a fixed
//! seed byte-for-byte.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

use crate::wal::WalFile;

/// What faults to inject, and when. The default plan injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Total bytes allowed through this handle. The write crossing the
    /// limit persists only the prefix that fits, then fails and trips the
    /// file (a torn write at an exact, chosen offset).
    pub fail_after_bytes: Option<u64>,
    /// Which [`WalFile::sync_data`] call fails (1-based). The failing sync
    /// trips the file.
    pub fail_on_sync: Option<u64>,
}

impl FaultPlan {
    /// A plan that tears the file at byte `offset` (counted from the first
    /// byte written through the handle).
    pub fn crash_at(offset: u64) -> Self {
        FaultPlan { fail_after_bytes: Some(offset), fail_on_sync: None }
    }

    /// A plan whose `n`-th fsync (1-based) fails.
    pub fn fail_sync(n: u64) -> Self {
        FaultPlan { fail_after_bytes: None, fail_on_sync: Some(n) }
    }
}

/// A [`WalFile`] that executes a [`FaultPlan`] over a real file.
#[derive(Debug)]
pub struct FaultFile {
    file: File,
    plan: FaultPlan,
    /// Bytes written through this handle (the plan's offsets are relative
    /// to handle creation, not to the start of the file).
    written: u64,
    /// Syncs attempted through this handle.
    syncs: u64,
    /// Set once a fault fires; everything fails afterwards.
    tripped: bool,
}

impl FaultFile {
    /// Opens `path` for appending (creating it if needed) under `plan`.
    pub fn append_to(path: &Path, plan: FaultPlan) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FaultFile { file, plan, written: 0, syncs: 0, tripped: false })
    }

    /// Whether a fault has fired on this handle.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// The error every injected fault surfaces as.
    fn injected() -> std::io::Error {
        std::io::Error::other("injected fault")
    }
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.tripped {
            return Err(Self::injected());
        }
        if let Some(limit) = self.plan.fail_after_bytes {
            let room = limit.saturating_sub(self.written);
            if (buf.len() as u64) > room {
                // Torn write: persist the prefix that fits — flushed so the
                // bytes are really on disk, as after a crash — then fail.
                self.file.write_all(&buf[..room as usize])?;
                self.file.flush()?;
                self.written += room;
                self.tripped = true;
                return Err(Self::injected());
            }
        }
        let n = self.file.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.tripped {
            return Err(Self::injected());
        }
        self.file.flush()
    }
}

impl WalFile for FaultFile {
    fn sync_data(&mut self) -> std::io::Result<()> {
        if self.tripped {
            return Err(Self::injected());
        }
        self.syncs += 1;
        if self.plan.fail_on_sync == Some(self.syncs) {
            self.tripped = true;
            return Err(Self::injected());
        }
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("prov-store-fault-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn no_plan_passes_writes_through() {
        let path = tmp("passthrough");
        let mut f = FaultFile::append_to(&path, FaultPlan::default()).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        assert!(!f.tripped());
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
    }

    #[test]
    fn crash_at_persists_exactly_the_prefix() {
        let path = tmp("torn");
        let mut f = FaultFile::append_to(&path, FaultPlan::crash_at(7)).unwrap();
        f.write_all(b"abcd").unwrap(); // 4 bytes: fits
        let err = f.write_all(b"efgh").unwrap_err(); // would reach 8 > 7
        assert_eq!(err.to_string(), "injected fault");
        assert!(f.tripped());
        // Exactly 7 bytes landed: the full first write plus a torn prefix.
        assert_eq!(std::fs::read(&path).unwrap(), b"abcdefg");
        // Everything afterwards fails.
        assert!(f.write(b"x").is_err());
        assert!(f.flush().is_err());
        assert!(f.sync_data().is_err());
    }

    #[test]
    fn crash_at_zero_blocks_every_byte() {
        let path = tmp("atzero");
        let mut f = FaultFile::append_to(&path, FaultPlan::crash_at(0)).unwrap();
        assert!(f.write_all(b"a").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"");
    }

    #[test]
    fn crash_on_exact_boundary_keeps_whole_write() {
        let path = tmp("boundary");
        let mut f = FaultFile::append_to(&path, FaultPlan::crash_at(4)).unwrap();
        f.write_all(b"abcd").unwrap(); // exactly the limit: allowed
        assert!(!f.tripped());
        assert!(f.write_all(b"e").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"abcd");
    }

    #[test]
    fn nth_sync_fails_and_trips() {
        let path = tmp("sync");
        let mut f = FaultFile::append_to(&path, FaultPlan::fail_sync(2)).unwrap();
        f.write_all(b"a").unwrap();
        f.sync_data().unwrap(); // sync 1: fine
        f.write_all(b"b").unwrap();
        assert!(f.sync_data().is_err()); // sync 2: injected
        assert!(f.tripped());
        assert!(f.write(b"c").is_err());
    }
}
