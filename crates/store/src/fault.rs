//! Deterministic fault injection for crash-torture tests.
//!
//! [`FaultFile`] wraps a real file behind the [`WalFile`] abstraction and
//! injects failures from a [`FaultPlan`]:
//!
//! * **crash at a byte offset** — the write that would carry the file past
//!   `fail_after_bytes` persists only the prefix that fits and then fails,
//!   leaving exactly the torn tail a power cut mid-`write` leaves;
//! * **fsync failure** — the `fail_on_sync`-th [`WalFile::sync_data`] call
//!   fails without touching the file;
//! * **read failure** — the `fail_on_read`-th [`std::io::Read::read`] call
//!   fails and trips the handle, modelling a follower or recovery scan dying
//!   mid-ingest;
//! * **short read** — reads return bytes only up to `short_read_at` (counted
//!   from handle creation) and then a clean EOF, modelling a truncated
//!   snapshot transfer or a peer that vanished mid-stream. A short read does
//!   *not* trip the handle: the stream just ends early.
//!
//! Either fault *trips* the file: every subsequent write, flush and sync
//! fails too, modelling a process that never comes back after the crash.
//! The store's poisoning discipline (see [`crate::TraceStore::durability`])
//! turns the first trip into a shut-down writer, so "crash then reopen"
//! is: build a store with [`crate::TraceStore::open_with_fault`], ingest
//! until the plan fires, drop the store, reopen with
//! [`crate::TraceStore::open`] and observe recovery of the durable prefix.
//!
//! Everything here is deterministic — the plan is data, not randomness —
//! so a proptest can sweep crash offsets and a CI job can replay a fixed
//! seed byte-for-byte.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use crate::wal::WalFile;

/// What faults to inject, and when. The default plan injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Total bytes allowed through this handle. The write crossing the
    /// limit persists only the prefix that fits, then fails and trips the
    /// file (a torn write at an exact, chosen offset).
    pub fail_after_bytes: Option<u64>,
    /// Which [`WalFile::sync_data`] call fails (1-based). The failing sync
    /// trips the file.
    pub fail_on_sync: Option<u64>,
    /// Which [`Read::read`] call fails (1-based). The failing read trips
    /// the handle.
    pub fail_on_read: Option<u64>,
    /// Total bytes readable through this handle. Reads return data only up
    /// to this offset (counted from handle creation) and then report EOF —
    /// a truncated stream, not an error, so the handle does not trip.
    pub short_read_at: Option<u64>,
}

impl FaultPlan {
    /// A plan that tears the file at byte `offset` (counted from the first
    /// byte written through the handle).
    pub fn crash_at(offset: u64) -> Self {
        FaultPlan { fail_after_bytes: Some(offset), ..FaultPlan::default() }
    }

    /// A plan whose `n`-th fsync (1-based) fails.
    pub fn fail_sync(n: u64) -> Self {
        FaultPlan { fail_on_sync: Some(n), ..FaultPlan::default() }
    }

    /// A plan whose `n`-th read (1-based) fails.
    pub fn fail_read(n: u64) -> Self {
        FaultPlan { fail_on_read: Some(n), ..FaultPlan::default() }
    }

    /// A plan that cuts the readable stream off at byte `offset` (counted
    /// from handle creation): everything before it reads normally, then EOF.
    pub fn short_read(offset: u64) -> Self {
        FaultPlan { short_read_at: Some(offset), ..FaultPlan::default() }
    }
}

/// Shared read-side fault logic for [`FaultFile`] and [`FaultReader`].
fn faulted_read<R: Read>(
    inner: &mut R,
    plan: &FaultPlan,
    reads: &mut u64,
    read_bytes: &mut u64,
    tripped: &mut bool,
    buf: &mut [u8],
) -> std::io::Result<usize> {
    if *tripped {
        return Err(FaultFile::injected());
    }
    *reads += 1;
    if plan.fail_on_read == Some(*reads) {
        *tripped = true;
        return Err(FaultFile::injected());
    }
    let mut limit = buf.len();
    if let Some(cap) = plan.short_read_at {
        let room = cap.saturating_sub(*read_bytes);
        if room == 0 {
            return Ok(0); // clean EOF at the chosen offset
        }
        limit = limit.min(room as usize);
    }
    let n = inner.read(&mut buf[..limit])?;
    *read_bytes += n as u64;
    Ok(n)
}

/// A [`WalFile`] that executes a [`FaultPlan`] over a real file.
#[derive(Debug)]
pub struct FaultFile {
    file: File,
    plan: FaultPlan,
    /// Bytes written through this handle (the plan's offsets are relative
    /// to handle creation, not to the start of the file).
    written: u64,
    /// Syncs attempted through this handle.
    syncs: u64,
    /// Reads attempted through this handle (the plan's `fail_on_read` is
    /// 1-based against this count).
    reads: u64,
    /// Bytes read through this handle (the plan's `short_read_at` offset is
    /// relative to handle creation).
    read_bytes: u64,
    /// Set once a fault fires; everything fails afterwards.
    tripped: bool,
}

impl FaultFile {
    /// Opens `path` for appending (creating it if needed) under `plan`.
    pub fn append_to(path: &Path, plan: FaultPlan) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FaultFile { file, plan, written: 0, syncs: 0, reads: 0, read_bytes: 0, tripped: false })
    }

    /// Opens `path` read-only under `plan`, for fault-injecting recovery
    /// scans and replication bootstrap reads.
    pub fn read_from(path: &Path, plan: FaultPlan) -> std::io::Result<Self> {
        let file = File::open(path)?;
        Ok(FaultFile { file, plan, written: 0, syncs: 0, reads: 0, read_bytes: 0, tripped: false })
    }

    /// Whether a fault has fired on this handle.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// The error every injected fault surfaces as.
    fn injected() -> std::io::Error {
        std::io::Error::other("injected fault")
    }
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.tripped {
            return Err(Self::injected());
        }
        if let Some(limit) = self.plan.fail_after_bytes {
            let room = limit.saturating_sub(self.written);
            if (buf.len() as u64) > room {
                // Torn write: persist the prefix that fits — flushed so the
                // bytes are really on disk, as after a crash — then fail.
                self.file.write_all(&buf[..room as usize])?;
                self.file.flush()?;
                self.written += room;
                self.tripped = true;
                return Err(Self::injected());
            }
        }
        let n = self.file.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.tripped {
            return Err(Self::injected());
        }
        self.file.flush()
    }
}

impl Read for FaultFile {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let FaultFile { file, plan, reads, read_bytes, tripped, .. } = self;
        faulted_read(file, plan, reads, read_bytes, tripped, buf)
    }
}

/// A [`Read`] adapter that executes the read side of a [`FaultPlan`] over
/// any inner reader — sockets in replication tests, not just files.
#[derive(Debug)]
pub struct FaultReader<R> {
    inner: R,
    plan: FaultPlan,
    reads: u64,
    read_bytes: u64,
    tripped: bool,
}

impl<R: Read> FaultReader<R> {
    /// Wraps `inner` under `plan` (only the read-side fields apply).
    pub fn new(inner: R, plan: FaultPlan) -> Self {
        FaultReader { inner, plan, reads: 0, read_bytes: 0, tripped: false }
    }

    /// Whether a read fault has fired on this handle.
    pub fn tripped(&self) -> bool {
        self.tripped
    }
}

impl<R: Read> Read for FaultReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let FaultReader { inner, plan, reads, read_bytes, tripped } = self;
        faulted_read(inner, plan, reads, read_bytes, tripped, buf)
    }
}

impl WalFile for FaultFile {
    fn sync_data(&mut self) -> std::io::Result<()> {
        if self.tripped {
            return Err(Self::injected());
        }
        self.syncs += 1;
        if self.plan.fail_on_sync == Some(self.syncs) {
            self.tripped = true;
            return Err(Self::injected());
        }
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("prov-store-fault-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn no_plan_passes_writes_through() {
        let path = tmp("passthrough");
        let mut f = FaultFile::append_to(&path, FaultPlan::default()).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        assert!(!f.tripped());
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
    }

    #[test]
    fn crash_at_persists_exactly_the_prefix() {
        let path = tmp("torn");
        let mut f = FaultFile::append_to(&path, FaultPlan::crash_at(7)).unwrap();
        f.write_all(b"abcd").unwrap(); // 4 bytes: fits
        let err = f.write_all(b"efgh").unwrap_err(); // would reach 8 > 7
        assert_eq!(err.to_string(), "injected fault");
        assert!(f.tripped());
        // Exactly 7 bytes landed: the full first write plus a torn prefix.
        assert_eq!(std::fs::read(&path).unwrap(), b"abcdefg");
        // Everything afterwards fails.
        assert!(f.write(b"x").is_err());
        assert!(f.flush().is_err());
        assert!(f.sync_data().is_err());
    }

    #[test]
    fn crash_at_zero_blocks_every_byte() {
        let path = tmp("atzero");
        let mut f = FaultFile::append_to(&path, FaultPlan::crash_at(0)).unwrap();
        assert!(f.write_all(b"a").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"");
    }

    #[test]
    fn crash_on_exact_boundary_keeps_whole_write() {
        let path = tmp("boundary");
        let mut f = FaultFile::append_to(&path, FaultPlan::crash_at(4)).unwrap();
        f.write_all(b"abcd").unwrap(); // exactly the limit: allowed
        assert!(!f.tripped());
        assert!(f.write_all(b"e").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"abcd");
    }

    #[test]
    fn nth_read_fails_and_trips() {
        let path = tmp("readfail");
        std::fs::write(&path, b"abcdefgh").unwrap();
        let mut f = FaultFile::read_from(&path, FaultPlan::fail_read(2)).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(f.read(&mut buf).unwrap(), 4); // read 1: fine
        assert_eq!(&buf, b"abcd");
        let err = f.read(&mut buf).unwrap_err(); // read 2: injected
        assert_eq!(err.to_string(), "injected fault");
        assert!(f.tripped());
        assert!(f.read(&mut buf).is_err()); // stays tripped
    }

    #[test]
    fn short_read_cuts_the_stream_at_an_exact_offset() {
        let path = tmp("shortread");
        std::fs::write(&path, b"abcdefgh").unwrap();
        let mut f = FaultFile::read_from(&path, FaultPlan::short_read(5)).unwrap();
        let mut out = Vec::new();
        f.read_to_end(&mut out).unwrap();
        // Exactly 5 bytes then EOF, and the handle is not tripped.
        assert_eq!(out, b"abcde");
        assert!(!f.tripped());
        let mut buf = [0u8; 4];
        assert_eq!(f.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn fault_reader_wraps_any_stream() {
        let data = b"0123456789".to_vec();
        let mut r = FaultReader::new(&data[..], FaultPlan::short_read(3));
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"012");

        let mut r = FaultReader::new(&data[..], FaultPlan::fail_read(1));
        let mut buf = [0u8; 4];
        assert!(r.read(&mut buf).is_err());
        assert!(r.tripped());
    }

    #[test]
    fn nth_sync_fails_and_trips() {
        let path = tmp("sync");
        let mut f = FaultFile::append_to(&path, FaultPlan::fail_sync(2)).unwrap();
        f.write_all(b"a").unwrap();
        f.sync_data().unwrap(); // sync 1: fine
        f.write_all(b"b").unwrap();
        assert!(f.sync_data().is_err()); // sync 2: injected
        assert!(f.tripped());
        assert!(f.write(b"c").is_err());
    }
}
