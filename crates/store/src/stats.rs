//! Query access statistics.
//!
//! Wall-clock comparisons depend on hardware; record-access counts do not.
//! Every index lookup and record read performed by the store is counted
//! here, so benches can report both (the paper's §4 analysis of `t1` vs
//! `t2` is exactly an accounting of graph-traversal work vs trace access
//! work).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters of store access work. Cheap to share (`&QueryStats`),
/// safe to bump from multiple threads.
#[derive(Debug, Default)]
pub struct QueryStats {
    index_lookups: AtomicU64,
    records_read: AtomicU64,
    rows_scanned: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Number of B-tree descents (point lookups and scans).
    pub index_lookups: u64,
    /// Number of rows materialised out of the tables.
    pub records_read: u64,
    /// Number of heap rows physically examined by table-order access paths
    /// (`xforms_of_run`/`xfers_of_run`). With per-run row spans this equals
    /// the rows returned; a table scan would charge the whole heap — the
    /// regression the counter exists to catch.
    pub rows_scanned: u64,
}

impl QueryStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one index descent.
    pub fn count_index_lookup(&self) {
        self.index_lookups.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` record reads.
    pub fn count_records(&self, n: usize) {
        self.records_read.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Counts `n` heap rows examined by a table-order access path.
    pub fn count_rows_scanned(&self, n: usize) {
        self.rows_scanned.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            index_lookups: self.index_lookups.load(Ordering::Relaxed),
            records_read: self.records_read.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.index_lookups.store(0, Ordering::Relaxed);
        self.records_read.store(0, Ordering::Relaxed);
        self.rows_scanned.store(0, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Work performed between `earlier` and `self`.
    pub fn since(self, earlier: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            index_lookups: self.index_lookups - earlier.index_lookups,
            records_read: self.records_read - earlier.records_read,
            rows_scanned: self.rows_scanned - earlier.rows_scanned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = QueryStats::new();
        s.count_index_lookup();
        s.count_index_lookup();
        s.count_records(5);
        let snap = s.snapshot();
        assert_eq!(snap.index_lookups, 2);
        assert_eq!(snap.records_read, 5);
        s.reset();
        assert_eq!(s.snapshot().index_lookups, 0);
        assert_eq!(s.snapshot().records_read, 0);
    }

    #[test]
    fn since_computes_deltas() {
        let s = QueryStats::new();
        s.count_records(3);
        let a = s.snapshot();
        s.count_records(4);
        s.count_index_lookup();
        let d = s.snapshot().since(a);
        assert_eq!(d.records_read, 4);
        assert_eq!(d.index_lookups, 1);
    }

    #[test]
    fn counters_are_thread_safe() {
        let s = QueryStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        s.count_index_lookup();
                        s.count_records(2);
                    }
                });
            }
        });
        let snap = s.snapshot();
        assert_eq!(snap.index_lookups, 4000);
        assert_eq!(snap.records_read, 8000);
    }
}
