//! Query access statistics.
//!
//! Wall-clock comparisons depend on hardware; record-access counts do not.
//! Every index lookup and record read performed by the store is counted
//! here, so benches can report both (the paper's §4 analysis of `t1` vs
//! `t2` is exactly an accounting of graph-traversal work vs trace access
//! work).
//!
//! The counters are `prov-obs` [`Counter`]s in standalone mode — the same
//! relaxed atomics as before, but adoptable by a metrics
//! [`Registry`](prov_obs::Registry) under the stable names
//! `store.index_lookups` / `store.records_read` / `store.rows_scanned`
//! (see [`QueryStats::register`]): one storage location, no double
//! counting, no extra hot-path cost.

use prov_obs::{Counter, Registry};

/// Monotone counters of store access work. Cheap to share (`&QueryStats`),
/// safe to bump from multiple threads. Clones share the same atomic cells
/// (see [`prov_obs::Counter`]), so a [`ReadView`](crate::ReadView) carrying
/// a cloned handle still feeds the store-wide totals.
#[derive(Debug, Clone)]
pub struct QueryStats {
    index_lookups: Counter,
    records_read: Counter,
    rows_scanned: Counter,
}

/// Thread-local accumulator for one query's store-access work.
///
/// The shared [`QueryStats`] counters are relaxed atomics; bumping them on
/// every index probe from several query workers means repeated RMWs on the
/// same cache lines. Probe paths instead count into a plain-`u64`
/// `ProbeStats` on the stack and [`flush_into`](ProbeStats::flush_into) the
/// totals exactly once per store call — same final counter values (addition
/// is associative), a fraction of the shared-line traffic.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProbeStats {
    /// Number of B-tree descents performed so far.
    pub index_lookups: u64,
    /// Number of rows materialised so far.
    pub records_read: u64,
    /// Number of heap rows examined by table-order access paths so far.
    pub rows_scanned: u64,
}

impl ProbeStats {
    /// Fresh zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one index descent.
    pub fn count_index_lookup(&mut self) {
        self.index_lookups += 1;
    }

    /// Counts `n` record reads.
    pub fn count_records(&mut self, n: usize) {
        self.records_read += n as u64;
    }

    /// Counts `n` heap rows examined by a table-order access path.
    pub fn count_rows_scanned(&mut self, n: usize) {
        self.rows_scanned += n as u64;
    }

    /// Adds the accumulated deltas to the shared counters in three atomic
    /// adds (instead of one per probe).
    pub fn flush_into(self, stats: &QueryStats) {
        if self.index_lookups > 0 {
            stats.index_lookups.add(self.index_lookups);
        }
        if self.records_read > 0 {
            stats.records_read.add(self.records_read);
        }
        if self.rows_scanned > 0 {
            stats.rows_scanned.add(self.rows_scanned);
        }
    }
}

impl Default for QueryStats {
    fn default() -> Self {
        Self::new()
    }
}

/// A [`ProbeStats`] accumulator that flushes into shared [`QueryStats`]
/// when dropped — including on early returns, `?` propagation, and
/// panics — so work already performed is never lost from the counters.
///
/// Derefs to [`ProbeStats`], so probe code counts through it unchanged.
#[derive(Debug)]
pub struct ProbeGuard<'a> {
    stats: &'a QueryStats,
    probe: ProbeStats,
}

impl<'a> ProbeGuard<'a> {
    /// A zeroed accumulator bound to `stats`.
    pub fn new(stats: &'a QueryStats) -> Self {
        ProbeGuard { stats, probe: ProbeStats::new() }
    }

    /// The deltas accumulated so far (they still flush on drop).
    pub fn so_far(&self) -> ProbeStats {
        self.probe
    }
}

impl std::ops::Deref for ProbeGuard<'_> {
    type Target = ProbeStats;
    fn deref(&self) -> &ProbeStats {
        &self.probe
    }
}

impl std::ops::DerefMut for ProbeGuard<'_> {
    fn deref_mut(&mut self) -> &mut ProbeStats {
        &mut self.probe
    }
}

impl Drop for ProbeGuard<'_> {
    fn drop(&mut self) {
        self.probe.flush_into(self.stats);
    }
}

impl QueryStats {
    /// A drop-flushed accumulator bound to these counters.
    pub fn probe_guard(&self) -> ProbeGuard<'_> {
        ProbeGuard::new(self)
    }
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Number of B-tree descents (point lookups and scans).
    pub index_lookups: u64,
    /// Number of rows materialised out of the tables.
    pub records_read: u64,
    /// Number of heap rows physically examined by table-order access paths
    /// (`xforms_of_run`/`xfers_of_run`). With per-run row spans this equals
    /// the rows returned; a table scan would charge the whole heap — the
    /// regression the counter exists to catch.
    pub rows_scanned: u64,
}

impl QueryStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        QueryStats {
            index_lookups: Counter::standalone(),
            records_read: Counter::standalone(),
            rows_scanned: Counter::standalone(),
        }
    }

    /// Counts one index descent.
    pub fn count_index_lookup(&self) {
        self.index_lookups.inc();
    }

    /// Counts `n` record reads.
    pub fn count_records(&self, n: usize) {
        self.records_read.add(n as u64);
    }

    /// Counts `n` heap rows examined by a table-order access path.
    pub fn count_rows_scanned(&self, n: usize) {
        self.rows_scanned.add(n as u64);
    }

    /// Current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            index_lookups: self.index_lookups.get(),
            records_read: self.records_read.get(),
            rows_scanned: self.rows_scanned.get(),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.index_lookups.set(0);
        self.records_read.set(0);
        self.rows_scanned.set(0);
    }

    /// Adopts the counters into `registry` under `store.*` names: the
    /// registry shares the same atomics, so later increments show up in
    /// snapshots without any extra bookkeeping on the query path.
    pub fn register(&self, registry: &Registry) {
        registry.adopt_counter("store.index_lookups", &self.index_lookups);
        registry.adopt_counter("store.records_read", &self.records_read);
        registry.adopt_counter("store.rows_scanned", &self.rows_scanned);
    }
}

impl StatsSnapshot {
    /// Work performed between `earlier` and `self`.
    pub fn since(self, earlier: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            index_lookups: self.index_lookups - earlier.index_lookups,
            records_read: self.records_read - earlier.records_read,
            rows_scanned: self.rows_scanned - earlier.rows_scanned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = QueryStats::new();
        s.count_index_lookup();
        s.count_index_lookup();
        s.count_records(5);
        let snap = s.snapshot();
        assert_eq!(snap.index_lookups, 2);
        assert_eq!(snap.records_read, 5);
        s.reset();
        assert_eq!(s.snapshot().index_lookups, 0);
        assert_eq!(s.snapshot().records_read, 0);
    }

    #[test]
    fn since_computes_deltas() {
        let s = QueryStats::new();
        s.count_records(3);
        let a = s.snapshot();
        s.count_records(4);
        s.count_index_lookup();
        let d = s.snapshot().since(a);
        assert_eq!(d.records_read, 4);
        assert_eq!(d.index_lookups, 1);
    }

    #[test]
    fn counters_are_thread_safe() {
        let s = QueryStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        s.count_index_lookup();
                        s.count_records(2);
                    }
                });
            }
        });
        let snap = s.snapshot();
        assert_eq!(snap.index_lookups, 4000);
        assert_eq!(snap.records_read, 8000);
    }

    #[test]
    fn probe_stats_flush_matches_direct_counting() {
        // The same sequence of probe events, counted directly vs batched
        // through a ProbeStats, must land on identical totals.
        let direct = QueryStats::new();
        let batched = QueryStats::new();
        let mut local = ProbeStats::new();
        for i in 0..17usize {
            direct.count_index_lookup();
            direct.count_records(i);
            direct.count_rows_scanned(i * 2);
            local.count_index_lookup();
            local.count_records(i);
            local.count_rows_scanned(i * 2);
        }
        local.flush_into(&batched);
        assert_eq!(direct.snapshot(), batched.snapshot());
    }

    #[test]
    fn probe_guard_flushes_on_early_return() {
        let stats = QueryStats::new();
        let probe_that_errs = || -> Result<(), String> {
            let mut probe = stats.probe_guard();
            probe.count_index_lookup();
            probe.count_rows_scanned(5);
            Err("index corrupt".to_string())?;
            probe.count_records(99); // never reached
            Ok(())
        };
        assert!(probe_that_errs().is_err());
        let snap = stats.snapshot();
        assert_eq!(snap.index_lookups, 1, "lookup before the Err is counted");
        assert_eq!(snap.rows_scanned, 5, "rows scanned before the Err are counted");
        assert_eq!(snap.records_read, 0);
    }

    #[test]
    fn probe_guard_flushes_on_panic() {
        let stats = QueryStats::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut probe = stats.probe_guard();
            probe.count_index_lookup();
            probe.count_records(3);
            panic!("probe blew up mid-flight");
        }));
        assert!(result.is_err());
        let snap = stats.snapshot();
        assert_eq!(snap.index_lookups, 1);
        assert_eq!(snap.records_read, 3);
    }

    #[test]
    fn cloned_stats_share_the_same_cells() {
        let s = QueryStats::new();
        let view_handle = s.clone();
        view_handle.count_index_lookup();
        view_handle.count_records(2);
        assert_eq!(s.snapshot().index_lookups, 1);
        assert_eq!(s.snapshot().records_read, 2);
    }

    #[test]
    fn registered_counters_share_storage_with_the_registry() {
        let s = QueryStats::new();
        let registry = Registry::new();
        s.register(&registry);
        s.count_index_lookup();
        s.count_records(3);
        s.count_rows_scanned(7);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("store.index_lookups"), 1);
        assert_eq!(snap.counter("store.records_read"), 3);
        assert_eq!(snap.counter("store.rows_scanned"), 7);
    }
}
