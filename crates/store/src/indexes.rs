//! Composite ordered secondary indexes over the trace tables.
//!
//! Keys are `(run, processor, port, index)`; payloads are row ids into the
//! heap vectors. A `BTreeMap` gives the two access paths lineage queries
//! need:
//!
//! * **point lookup** — the exact key (used by INDEXPROJ's `Q(P, Xi, pi)`
//!   when the projected fragment has the stored length);
//! * **prefix scan** — all rows whose element index *extends* a given
//!   index (used when a query addresses a sub-collection: its elements'
//!   rows are exactly the keys with that prefix, which are contiguous in
//!   lexicographic order).
//!
//! Ancestor lookups ("rows whose index is a prefix of the query index", for
//! coarse rows such as whole-value transfers) are answered by at most
//! `|p|+1` point lookups, one per prefix of `p`.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

use prov_model::{Index, ProcessorName, RunId};

use crate::stats::QueryStats;

/// Composite key: `(run, processor, port, element index)`.
pub type Key = (RunId, ProcessorName, Arc<str>, Index);

/// A secondary index mapping composite keys to row ids. Multiple rows may
/// share one key (e.g. several invocations consuming the same whole-value
/// input), hence the `Vec<u64>` payload.
#[derive(Debug, Default)]
pub struct CompositeIndex {
    map: BTreeMap<Key, Vec<u64>>,
}

impl CompositeIndex {
    /// Inserts a row id under the key.
    pub fn insert(&mut self, key: Key, row: u64) {
        self.map.entry(key).or_default().push(row);
    }

    /// Exact-match lookup. Counts one index lookup plus one record read per
    /// returned row in `stats`.
    pub fn get_exact(
        &self,
        run: RunId,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
        stats: &QueryStats,
    ) -> Vec<u64> {
        stats.count_index_lookup();
        let key: Key = (run, processor.clone(), Arc::from(port), index.clone());
        let rows = self.map.get(&key).cloned().unwrap_or_default();
        stats.count_records(rows.len());
        rows
    }

    /// Prefix scan: all rows whose index has `prefix` as a (non-strict)
    /// prefix. The matching keys are contiguous, so this is one B-tree
    /// descent plus a bounded walk.
    pub fn scan_prefix(
        &self,
        run: RunId,
        processor: &ProcessorName,
        port: &str,
        prefix: &Index,
        stats: &QueryStats,
    ) -> Vec<u64> {
        stats.count_index_lookup();
        let port: Arc<str> = Arc::from(port);
        let start: Key = (run, processor.clone(), port.clone(), prefix.clone());
        let mut out = Vec::new();
        for ((r, p, q, idx), rows) in self.map.range((Bound::Included(start), Bound::Unbounded)) {
            if *r != run || p != processor || *q != port || !prefix.is_prefix_of(idx) {
                break;
            }
            out.extend_from_slice(rows);
        }
        stats.count_records(out.len());
        out
    }

    /// Ancestor lookup: all rows whose index is a (non-strict) prefix of
    /// `index` — at most `|index| + 1` point lookups.
    pub fn get_ancestors(
        &self,
        run: RunId,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
        stats: &QueryStats,
    ) -> Vec<u64> {
        let mut out = Vec::new();
        for k in 0..=index.len() {
            out.extend(self.get_exact(run, processor, port, &index.prefix(k), stats));
        }
        out
    }

    /// Rows related to `index` in either direction: ancestors (coarser
    /// rows covering it) plus strict descendants (finer rows inside it).
    /// This is the general element-addressing lookup of the provenance
    /// graph: a binding `P:X[p]` is connected to stored rows at any
    /// granularity that overlaps `p`.
    pub fn get_overlapping(
        &self,
        run: RunId,
        processor: &ProcessorName,
        port: &str,
        index: &Index,
        stats: &QueryStats,
    ) -> Vec<u64> {
        let mut out = self.get_ancestors(run, processor, port, index, stats);
        // Descendants, excluding the exact match already counted.
        let descendants = self.scan_prefix(run, processor, port, index, stats);
        let exact = self.get_exact(run, processor, port, index, stats);
        out.extend(descendants.into_iter().filter(|r| !exact.contains(r)));
        out
    }

    /// Total number of keys (distinct composite keys) in the index.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Removes every key belonging to `run` (they are contiguous: the run
    /// id is the leading key component).
    pub fn remove_run(&mut self, run: RunId) {
        let keys: Vec<Key> = self
            .map
            .range((
                Bound::Included((run, ProcessorName::from(""), Arc::from(""), Index::empty())),
                Bound::Unbounded,
            ))
            .take_while(|((r, _, _, _), _)| *r == run)
            .map(|(k, _)| k.clone())
            .collect();
        for k in keys {
            self.map.remove(&k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(run: u64, proc: &str, port: &str, idx: &[u32]) -> Key {
        (RunId(run), ProcessorName::from(proc), Arc::from(port), Index::from_slice(idx))
    }

    fn sample() -> CompositeIndex {
        let mut ix = CompositeIndex::default();
        ix.insert(key(0, "P", "y", &[]), 1);
        ix.insert(key(0, "P", "y", &[0]), 2);
        ix.insert(key(0, "P", "y", &[0, 0]), 3);
        ix.insert(key(0, "P", "y", &[0, 1]), 4);
        ix.insert(key(0, "P", "y", &[1]), 5);
        ix.insert(key(0, "P", "z", &[0]), 6); // other port
        ix.insert(key(0, "Q", "y", &[0]), 7); // other processor
        ix.insert(key(1, "P", "y", &[0]), 8); // other run
        ix
    }

    #[test]
    fn exact_lookup_hits_only_its_key() {
        let ix = sample();
        let stats = QueryStats::new();
        let p = ProcessorName::from("P");
        assert_eq!(ix.get_exact(RunId(0), &p, "y", &Index::single(0), &stats), vec![2]);
        assert_eq!(ix.get_exact(RunId(0), &p, "y", &Index::single(9), &stats), Vec::<u64>::new());
    }

    #[test]
    fn prefix_scan_returns_contiguous_extensions() {
        let ix = sample();
        let stats = QueryStats::new();
        let p = ProcessorName::from("P");
        let mut rows = ix.scan_prefix(RunId(0), &p, "y", &Index::single(0), &stats);
        rows.sort_unstable();
        assert_eq!(rows, vec![2, 3, 4]);
        // Empty prefix matches everything on that (run, proc, port).
        let mut all = ix.scan_prefix(RunId(0), &p, "y", &Index::empty(), &stats);
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn prefix_scan_respects_run_processor_port_boundaries() {
        let ix = sample();
        let stats = QueryStats::new();
        let rows =
            ix.scan_prefix(RunId(0), &ProcessorName::from("Q"), "y", &Index::empty(), &stats);
        assert_eq!(rows, vec![7]);
        let rows =
            ix.scan_prefix(RunId(1), &ProcessorName::from("P"), "y", &Index::empty(), &stats);
        assert_eq!(rows, vec![8]);
    }

    #[test]
    fn ancestors_walk_the_prefix_chain() {
        let ix = sample();
        let stats = QueryStats::new();
        let p = ProcessorName::from("P");
        let mut rows = ix.get_ancestors(RunId(0), &p, "y", &Index::from_slice(&[0, 1]), &stats);
        rows.sort_unstable();
        assert_eq!(rows, vec![1, 2, 4]); // [], [0], [0,1]
    }

    #[test]
    fn overlapping_combines_both_directions_without_duplicates() {
        let ix = sample();
        let stats = QueryStats::new();
        let p = ProcessorName::from("P");
        let mut rows = ix.get_overlapping(RunId(0), &p, "y", &Index::single(0), &stats);
        rows.sort_unstable();
        assert_eq!(rows, vec![1, 2, 3, 4]); // [], [0] (ancestors+exact), [0,0], [0,1]
    }

    #[test]
    fn stats_count_lookups_and_records() {
        let ix = sample();
        let stats = QueryStats::new();
        let p = ProcessorName::from("P");
        ix.get_exact(RunId(0), &p, "y", &Index::single(0), &stats);
        ix.scan_prefix(RunId(0), &p, "y", &Index::empty(), &stats);
        let snap = stats.snapshot();
        assert_eq!(snap.index_lookups, 2);
        assert_eq!(snap.records_read, 1 + 5);
    }
}
