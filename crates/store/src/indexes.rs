//! Composite ordered secondary indexes over the trace tables.
//!
//! Keys are `(run, processor, port, index)` — all interned: processor and
//! port are [`Sym`]s, the element index a packed [`IndexKey`] — so a key is
//! a small value type and a B-tree comparison costs a handful of integer
//! compares with no pointer chasing and no allocation. A `BTreeMap` gives
//! the two access paths lineage queries need:
//!
//! * **point lookup** — the exact key (used by INDEXPROJ's `Q(P, Xi, pi)`
//!   when the projected fragment has the stored length);
//! * **prefix scan** — all rows whose element index *extends* a given
//!   index (used when a query addresses a sub-collection: its elements'
//!   rows are exactly the keys with that prefix, which are contiguous in
//!   lexicographic order — the packed encoding preserves that order).
//!
//! Ancestor lookups ("rows whose index is a prefix of the query index", for
//! coarse rows such as whole-value transfers) are answered by at most
//! `|p|+1` point lookups, one per prefix of `p` — each a bit-mask on the
//! packed key.

use std::collections::BTreeMap;
use std::ops::Bound;

use prov_model::RunId;

use crate::catalog::PortCardinality;
use crate::stats::ProbeStats;
use crate::symbols::{IndexKey, Sym};

/// Composite key: `(run, processor, port, element index)`, fully interned.
/// The derived order is lexicographic over the fields, so one run's keys —
/// and within them one port's — are contiguous.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SymKey {
    /// Owning run.
    pub run: RunId,
    /// Interned processor name.
    pub processor: Sym,
    /// Interned port name.
    pub port: Sym,
    /// Packed element index.
    pub index: IndexKey,
}

/// A secondary index mapping composite keys to row ids. Multiple rows may
/// share one key (e.g. several invocations consuming the same whole-value
/// input), hence the `Vec<u64>` payload.
#[derive(Debug, Default, Clone)]
pub struct CompositeIndex {
    map: BTreeMap<SymKey, Vec<u64>>,
}

impl CompositeIndex {
    /// Inserts a row id under the key.
    pub fn insert(&mut self, key: SymKey, row: u64) {
        self.map.entry(key).or_default().push(row);
    }

    /// Exact-match lookup. Counts one index lookup plus one record read per
    /// returned row in `stats`. (The store's query paths all go through
    /// [`CompositeIndex::get_overlapping`]; the narrower access paths stay
    /// as the index's unit-tested building blocks.)
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn get_exact(
        &self,
        run: RunId,
        processor: Sym,
        port: Sym,
        index: &IndexKey,
        stats: &mut ProbeStats,
    ) -> Vec<u64> {
        stats.count_index_lookup();
        let key = SymKey { run, processor, port, index: index.clone() };
        let rows = self.map.get(&key).cloned().unwrap_or_default();
        stats.count_records(rows.len());
        rows
    }

    /// Prefix scan: all rows whose index has `prefix` as a (non-strict)
    /// prefix. The matching keys are contiguous, so this is one B-tree
    /// descent plus a bounded walk.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn scan_prefix(
        &self,
        run: RunId,
        processor: Sym,
        port: Sym,
        prefix: &IndexKey,
        stats: &mut ProbeStats,
    ) -> Vec<u64> {
        stats.count_index_lookup();
        let start = SymKey { run, processor, port, index: prefix.clone() };
        let mut out = Vec::new();
        for (k, rows) in self.map.range((Bound::Included(start), Bound::Unbounded)) {
            if k.run != run
                || k.processor != processor
                || k.port != port
                || !prefix.is_prefix_of(&k.index)
            {
                break;
            }
            out.extend_from_slice(rows);
        }
        stats.count_records(out.len());
        out
    }

    /// Ancestor lookup: all rows whose index is a (non-strict) prefix of
    /// `index` — at most `|index| + 1` point lookups, accumulated straight
    /// into one output vector (no per-hit payload clone).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn get_ancestors(
        &self,
        run: RunId,
        processor: Sym,
        port: Sym,
        index: &IndexKey,
        stats: &mut ProbeStats,
    ) -> Vec<u64> {
        let mut out = Vec::new();
        self.ancestors_into(run, processor, port, index, stats, &mut out);
        out
    }

    /// Walks the prefix chain into `out`; returns how many of the trailing
    /// entries came from the exact key (callers that also scan descendants
    /// reuse them instead of probing the exact key again).
    fn ancestors_into(
        &self,
        run: RunId,
        processor: Sym,
        port: Sym,
        index: &IndexKey,
        stats: &mut ProbeStats,
        out: &mut Vec<u64>,
    ) -> usize {
        let mut exact_len = 0;
        for k in 0..=index.len() {
            stats.count_index_lookup();
            let key = SymKey { run, processor, port, index: index.prefix(k) };
            let rows = self.map.get(&key).map(Vec::as_slice).unwrap_or_default();
            stats.count_records(rows.len());
            out.extend_from_slice(rows);
            if k == index.len() {
                exact_len = rows.len();
            }
        }
        exact_len
    }

    /// Rows related to `index` in either direction: ancestors (coarser
    /// rows covering it) plus strict descendants (finer rows inside it).
    /// This is the general element-addressing lookup of the provenance
    /// graph: a binding `P:X[p]` is connected to stored rows at any
    /// granularity that overlaps `p`.
    ///
    /// Costs `|index| + 2` index lookups: the prefix chain (whose last
    /// probe is the exact key — its rows are remembered rather than
    /// re-fetched) plus one descendant scan.
    pub fn get_overlapping(
        &self,
        run: RunId,
        processor: Sym,
        port: Sym,
        index: &IndexKey,
        stats: &mut ProbeStats,
    ) -> Vec<u64> {
        let mut out = Vec::new();
        let exact_len = self.ancestors_into(run, processor, port, index, stats, &mut out);
        let exact: Vec<u64> = out[out.len() - exact_len..].to_vec();
        // Descendants, excluding the exact matches already collected.
        stats.count_index_lookup();
        let start = SymKey { run, processor, port, index: index.clone() };
        let mut scanned = 0;
        for (k, rows) in self.map.range((Bound::Included(start), Bound::Unbounded)) {
            if k.run != run
                || k.processor != processor
                || k.port != port
                || !index.is_prefix_of(&k.index)
            {
                break;
            }
            scanned += rows.len();
            out.extend(rows.iter().filter(|r| !exact.contains(r)));
        }
        stats.count_records(scanned);
        out
    }

    /// Total number of keys (distinct composite keys) in the index.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Cardinality of one `(run, processor, port)` slice: distinct keys,
    /// total rows, and the longest stored element index. The slice is
    /// contiguous in key order, so this is one descent plus a bounded walk
    /// — cheap enough for `explain`, and never on a query hot path.
    pub fn port_stats(&self, run: RunId, processor: Sym, port: Sym) -> PortCardinality {
        let start = SymKey { run, processor, port, index: IndexKey::empty() };
        let mut out = PortCardinality::default();
        for (k, rows) in self.map.range((Bound::Included(start), Bound::Unbounded)) {
            if k.run != run || k.processor != processor || k.port != port {
                break;
            }
            out.keys += 1;
            out.rows += rows.len() as u64;
            out.max_depth = out.max_depth.max(k.index.len());
        }
        out
    }

    /// Removes every key belonging to `run` (they are contiguous: the run
    /// id is the leading key component). With shard-per-run storage a
    /// dropped run's indexes vanish with its shard; this stays as the
    /// index's unit-tested removal primitive.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn remove_run(&mut self, run: RunId) {
        let keys: Vec<SymKey> = self
            .map
            .range((
                Bound::Included(SymKey {
                    run,
                    processor: Sym(0),
                    port: Sym(0),
                    index: IndexKey::empty(),
                }),
                Bound::Unbounded,
            ))
            .take_while(|(k, _)| k.run == run)
            .map(|(k, _)| k.clone())
            .collect();
        for k in keys {
            self.map.remove(&k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::Index;

    fn key(run: u64, proc: u32, port: u32, idx: &[u32]) -> SymKey {
        SymKey {
            run: RunId(run),
            processor: Sym(proc),
            port: Sym(port),
            index: IndexKey::from_index(&Index::from_slice(idx)),
        }
    }

    fn ik(idx: &[u32]) -> IndexKey {
        IndexKey::from_components(idx)
    }

    // Symbol layout used by the samples: P=0, Q=1; ports y=0, z=1.
    fn sample() -> CompositeIndex {
        let mut ix = CompositeIndex::default();
        ix.insert(key(0, 0, 0, &[]), 1);
        ix.insert(key(0, 0, 0, &[0]), 2);
        ix.insert(key(0, 0, 0, &[0, 0]), 3);
        ix.insert(key(0, 0, 0, &[0, 1]), 4);
        ix.insert(key(0, 0, 0, &[1]), 5);
        ix.insert(key(0, 0, 1, &[0]), 6); // other port
        ix.insert(key(0, 1, 0, &[0]), 7); // other processor
        ix.insert(key(1, 0, 0, &[0]), 8); // other run
        ix
    }

    #[test]
    fn exact_lookup_hits_only_its_key() {
        let ix = sample();
        let mut stats = ProbeStats::new();
        assert_eq!(ix.get_exact(RunId(0), Sym(0), Sym(0), &ik(&[0]), &mut stats), vec![2]);
        assert_eq!(
            ix.get_exact(RunId(0), Sym(0), Sym(0), &ik(&[9]), &mut stats),
            Vec::<u64>::new()
        );
        // A MISSING symbol probes and finds nothing.
        assert!(ix.get_exact(RunId(0), Sym::MISSING, Sym(0), &ik(&[0]), &mut stats).is_empty());
    }

    #[test]
    fn prefix_scan_returns_contiguous_extensions() {
        let ix = sample();
        let mut stats = ProbeStats::new();
        let mut rows = ix.scan_prefix(RunId(0), Sym(0), Sym(0), &ik(&[0]), &mut stats);
        rows.sort_unstable();
        assert_eq!(rows, vec![2, 3, 4]);
        // Empty prefix matches everything on that (run, proc, port).
        let mut all = ix.scan_prefix(RunId(0), Sym(0), Sym(0), &ik(&[]), &mut stats);
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn prefix_scan_respects_run_processor_port_boundaries() {
        let ix = sample();
        let mut stats = ProbeStats::new();
        let rows = ix.scan_prefix(RunId(0), Sym(1), Sym(0), &ik(&[]), &mut stats);
        assert_eq!(rows, vec![7]);
        let rows = ix.scan_prefix(RunId(1), Sym(0), Sym(0), &ik(&[]), &mut stats);
        assert_eq!(rows, vec![8]);
    }

    #[test]
    fn ancestors_walk_the_prefix_chain() {
        let ix = sample();
        let mut stats = ProbeStats::new();
        let mut rows = ix.get_ancestors(RunId(0), Sym(0), Sym(0), &ik(&[0, 1]), &mut stats);
        rows.sort_unstable();
        assert_eq!(rows, vec![1, 2, 4]); // [], [0], [0,1]
    }

    #[test]
    fn overlapping_combines_both_directions_without_duplicates() {
        let ix = sample();
        let mut stats = ProbeStats::new();
        let mut rows = ix.get_overlapping(RunId(0), Sym(0), Sym(0), &ik(&[0]), &mut stats);
        rows.sort_unstable();
        assert_eq!(rows, vec![1, 2, 3, 4]); // [], [0] (ancestors+exact), [0,0], [0,1]
    }

    #[test]
    fn stats_count_lookups_and_records() {
        let ix = sample();
        let mut stats = ProbeStats::new();
        ix.get_exact(RunId(0), Sym(0), Sym(0), &ik(&[0]), &mut stats);
        ix.scan_prefix(RunId(0), Sym(0), Sym(0), &ik(&[]), &mut stats);
        assert_eq!(stats.index_lookups, 2);
        assert_eq!(stats.records_read, 1 + 5);
    }

    #[test]
    fn remove_run_purges_only_that_run() {
        let mut ix = sample();
        ix.remove_run(RunId(0));
        let mut stats = ProbeStats::new();
        assert!(ix.get_exact(RunId(0), Sym(0), Sym(0), &ik(&[0]), &mut stats).is_empty());
        assert_eq!(ix.get_exact(RunId(1), Sym(0), Sym(0), &ik(&[0]), &mut stats), vec![8]);
        assert_eq!(ix.key_count(), 1);
    }

    #[test]
    fn spilled_indices_keep_prefix_contiguity() {
        // Deep (spilled) element indices must interleave correctly with
        // packed ones under one (run, proc, port).
        let mut ix = CompositeIndex::default();
        ix.insert(key(0, 0, 0, &[1]), 1);
        ix.insert(key(0, 0, 0, &[1, 0, 0, 0, 0, 0, 0, 0, 0]), 2); // spilled
        ix.insert(key(0, 0, 0, &[2]), 3);
        let mut stats = ProbeStats::new();
        let mut rows = ix.scan_prefix(RunId(0), Sym(0), Sym(0), &ik(&[1]), &mut stats);
        rows.sort_unstable();
        assert_eq!(rows, vec![1, 2]);
    }
}
