//! Shared-ownership handle over a [`TraceStore`] for multi-threaded
//! services.
//!
//! [`TraceStore`] is already internally synchronized — every method takes
//! `&self`, writers serialize through the per-run shards and the WAL
//! group-commit path, and readers pin lock-free [`ReadView`]s — so a
//! daemon that fans one store out to many sessions only needs shared
//! ownership, not another lock. [`SharedStore`] is that handle: a cheap
//! `Clone` wrapper around `Arc<TraceStore>` that derefs to the store and
//! names the concurrency contract in its type.

use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

use prov_model::RunId;

use crate::shard::ReadView;
use crate::store::TraceStore;
use crate::Result;

/// A cloneable, thread-safe handle to one [`TraceStore`].
///
/// All clones address the same underlying store; dropping the last clone
/// drops the store (flushing nothing implicitly — call
/// [`TraceStore::sync_wal`] for durability, as ever).
#[derive(Debug, Clone)]
pub struct SharedStore {
    inner: Arc<TraceStore>,
}

impl SharedStore {
    /// Wraps an already-opened store.
    pub fn new(store: TraceStore) -> Self {
        SharedStore { inner: Arc::new(store) }
    }

    /// Opens (or creates) a durable store at `path` and wraps it.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Ok(SharedStore::new(TraceStore::open(path)?))
    }

    /// Pins a lock-free read snapshot of one run's shard. Queries running
    /// against the view never observe writes applied after the pin — the
    /// isolation the serve path leans on for mid-ingest reads.
    pub fn read_view(&self, run: RunId) -> ReadView {
        self.inner.pin(run)
    }

    /// The underlying `Arc`, for callers that need to cross an API that
    /// wants `Arc<TraceStore>` (e.g. an engine `TraceSink`).
    pub fn arc(&self) -> Arc<TraceStore> {
        Arc::clone(&self.inner)
    }
}

impl Deref for SharedStore {
    type Target = TraceStore;

    fn deref(&self) -> &TraceStore {
        &self.inner
    }
}

impl From<TraceStore> for SharedStore {
    fn from(store: TraceStore) -> Self {
        SharedStore::new(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_engine::{PortBinding, TraceSink, XformEvent};
    use prov_model::{Index, ProcessorName, Value};

    fn xform(proc: &str, val: &str) -> XformEvent {
        XformEvent {
            processor: ProcessorName::from(proc),
            invocation: 0,
            inputs: vec![],
            outputs: vec![PortBinding::new("y", Index::empty(), Value::str(val))],
        }
    }

    #[test]
    fn clones_address_the_same_store() {
        let shared = SharedStore::new(TraceStore::in_memory());
        let other = shared.clone();
        let run = shared.begin_run(&ProcessorName::from("wf"));
        other.record_xform(run, xform("P", "v"));
        assert_eq!(shared.trace_record_count(run), 1);
        assert_eq!(other.trace_record_count(run), 1);
    }

    #[test]
    fn read_view_pins_a_snapshot_across_later_writes() {
        let shared = SharedStore::new(TraceStore::in_memory());
        let run = shared.begin_run(&ProcessorName::from("wf"));
        shared.record_xform(run, xform("P", "v"));
        let view = shared.read_view(run);
        assert_eq!(view.trace_record_count(), 1);
        shared.record_xform(run, xform("Q", "w"));
        // The pinned view still sees exactly the records present at pin time.
        assert_eq!(view.trace_record_count(), 1);
        assert_eq!(shared.trace_record_count(run), 2);
    }
}
