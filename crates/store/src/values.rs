//! Content-addressed value table.

use std::collections::HashMap;

use prov_model::{Value, ValueId};

/// Interns values: identical collections (which recur along every arc of a
/// trace) are stored once and referenced by [`ValueId`].
#[derive(Debug, Default, Clone)]
pub struct ValueTable {
    by_value: HashMap<Value, ValueId>,
    by_id: Vec<Value>,
}

impl ValueTable {
    /// Interns `value`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, value: &Value) -> ValueId {
        if let Some(&id) = self.by_value.get(value) {
            return id;
        }
        let id = ValueId(self.by_id.len() as u64);
        self.by_id.push(value.clone());
        self.by_value.insert(value.clone(), id);
        id
    }

    /// Resolves an id to its value.
    pub fn get(&self, id: ValueId) -> Option<&Value> {
        self.by_id.get(id.0 as usize)
    }

    /// Reverse lookup: the id of a value already interned, if any.
    pub fn lookup(&self, value: &Value) -> Option<&ValueId> {
        self.by_value.get(value)
    }

    /// Number of distinct values stored.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether no values are stored.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut t = ValueTable::default();
        let a = t.intern(&Value::from(vec!["x", "y"]));
        let b = t.intern(&Value::from(vec!["x", "y"]));
        let c = t.intern(&Value::str("x"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolution_round_trips() {
        let mut t = ValueTable::default();
        let v = Value::from(vec![vec![1i64], vec![2, 3]]);
        let id = t.intern(&v);
        assert_eq!(t.get(id), Some(&v));
        assert_eq!(t.get(ValueId(99)), None);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut t = ValueTable::default();
        assert!(t.is_empty());
        let ids: Vec<ValueId> = (0..5i64).map(|i| t.intern(&Value::int(i))).collect();
        for (k, id) in ids.iter().enumerate() {
            assert_eq!(id.0, k as u64);
        }
    }
}
