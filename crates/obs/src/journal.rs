//! Structured event journal: a bounded, sharded ring buffer of typed
//! runtime events, the flight recorder under `tprov tail`/`tprov slow`.
//!
//! Where the [`Profiler`](crate::Profiler) aggregates *durations* and the
//! [`Registry`](crate::Registry) aggregates *counts*, the journal keeps
//! the most recent N *individual* events — queries starting and
//! finishing, plan steps with their exact probe counters, WAL syncs,
//! snapshot writes, retries — each stamped with a monotonic timestamp
//! and, for query events, a propagated [`TraceId`]. That is what lets a
//! per-query question ("which of the million queries was slow, and in
//! which plan step?") be answered after the fact without keeping
//! unbounded history.
//!
//! Layout: writers pick a shard by a dense per-thread ordinal, claim a
//! slot with one relaxed `fetch_add` on the shard head, and store the
//! event under that slot's own mutex — never the whole ring's. Distinct
//! threads hit distinct shards, so writers do not contend with each
//! other; a reader ([`Journal::drain`]) walks every slot and restores
//! total order by the global sequence number. When the ring wraps before
//! a drain, the overwritten events are counted in the `journal.dropped`
//! counter rather than silently lost.
//!
//! A disabled journal follows the crate's `Option<Arc>` discipline:
//! construction is free and every [`Journal::record`] is a single `None`
//! branch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::metrics::{Counter, Registry};
use crate::profiler::ChromeEvent;

/// Default ring capacity (total slots across shards) when
/// `TPROV_JOURNAL_CAP` is unset.
pub const DEFAULT_JOURNAL_CAP: usize = 65_536;

/// Environment variable overriding the ring capacity.
pub const JOURNAL_CAP_ENV: &str = "TPROV_JOURNAL_CAP";

/// Environment variable holding the slow-query threshold in
/// milliseconds. Unset: no slow-query log. `0`: every query is logged.
pub const SLOW_QUERY_ENV: &str = "TPROV_SLOW_QUERY_MS";

/// Writer shards; threads map onto shards by dense ordinal, so up to
/// this many writer threads never share a head counter or slot mutex.
const SHARDS: usize = 16;

/// An identifier shared by every journal event of one logical query,
/// including events emitted from worker threads under
/// `TPROV_QUERY_THREADS` fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TraceId(pub u64);

impl TraceId {
    /// A process-unique trace id (monotonic, starts at 1).
    pub fn next() -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        TraceId(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{:06}", self.0)
    }
}

/// A monotonic time source for clock-driven deadline checks.
///
/// The query layer must not read the wall clock directly when a service
/// wants deterministic timeouts: the serve daemon adapts the engine's
/// injectable `Clock` (system or virtual) to this trait, so a
/// `VirtualClock` can force a deadline to pass mid-query without
/// sleeping. Kept deliberately minimal — one method — because `prov-obs`
/// sits below the engine in the dependency order.
pub trait TimeSource: Send + Sync + std::fmt::Debug {
    /// Microseconds since an arbitrary fixed origin.
    fn now_micros(&self) -> u64;
}

/// Per-query execution context threaded through the query layer: the
/// trace id that stamps journal events, an optional deadline, the
/// slow-query threshold, and the static cost prediction (if any) that
/// the observed counters are checked against on completion.
#[derive(Debug, Clone)]
pub struct QueryCtx {
    /// Trace id stamped on every event of this query.
    pub trace: TraceId,
    /// The query's source text (for `QueryStarted` and the slow log).
    pub query: String,
    /// Plan fingerprint (a stable hash of the query); 0 when unknown.
    pub fingerprint: u64,
    /// Abandon execution once this instant passes (checked between plan
    /// steps / traversal hops).
    pub deadline: Option<Instant>,
    /// Clock-driven deadline: abandon execution once the [`TimeSource`]
    /// reads past the stored microsecond instant. Set by services whose
    /// timeouts must follow an injectable clock rather than `Instant`.
    pub deadline_at: Option<(Arc<dyn TimeSource>, u64)>,
    /// Queries at least this slow are flagged in `QueryFinished`.
    pub slow_threshold: Option<Duration>,
    /// Predicted index lookups from the static cost model.
    pub predicted_lookups: Option<u64>,
    /// Predicted row accesses from the static cost model.
    pub predicted_rows: Option<u64>,
    /// Whether the row prediction was grounded in live cardinalities
    /// (ungrounded predictions are not drift-checked).
    pub rows_grounded: bool,
    /// Tolerance factor for the drift check (observed rows may exceed
    /// `predicted / tolerance`... see `CostEstimate::check`).
    pub tolerance: f64,
}

impl QueryCtx {
    /// A fresh context with a new trace id, no deadline, and the slow
    /// threshold taken from `TPROV_SLOW_QUERY_MS`.
    pub fn new(query: impl Into<String>) -> Self {
        QueryCtx {
            trace: TraceId::next(),
            query: query.into(),
            fingerprint: 0,
            deadline: None,
            deadline_at: None,
            slow_threshold: slow_threshold_from_env(),
            predicted_lookups: None,
            predicted_rows: None,
            rows_grounded: false,
            tolerance: 1.0,
        }
    }

    /// Sets the plan fingerprint.
    pub fn with_fingerprint(mut self, fingerprint: u64) -> Self {
        self.fingerprint = fingerprint;
        self
    }

    /// Sets a deadline `budget` from now.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(Instant::now() + budget);
        self
    }

    /// Sets a clock-driven deadline: execution is abandoned between plan
    /// steps once `clock` reads past `deadline_micros`. Unlike
    /// [`QueryCtx::with_deadline`], the check follows the injected time
    /// source, so a virtual clock can expire a request deterministically.
    pub fn with_clock_deadline(mut self, clock: Arc<dyn TimeSource>, deadline_micros: u64) -> Self {
        self.deadline_at = Some((clock, deadline_micros));
        self
    }

    /// Overrides the slow threshold (env-derived by default).
    pub fn with_slow_threshold(mut self, threshold: Option<Duration>) -> Self {
        self.slow_threshold = threshold;
        self
    }

    /// Attaches a static cost prediction for the completion-time drift
    /// check.
    pub fn with_prediction(
        mut self,
        lookups: u64,
        rows: u64,
        grounded: bool,
        tolerance: f64,
    ) -> Self {
        self.predicted_lookups = Some(lookups);
        self.predicted_rows = Some(rows);
        self.rows_grounded = grounded;
        self.tolerance = tolerance;
        self
    }

    /// Whether the deadline (if any) has passed — the `Instant` deadline
    /// and the clock-driven one are both honoured.
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() > d)
            || self.deadline_at.as_ref().is_some_and(|(clock, d)| clock.now_micros() > *d)
    }

    /// Whether a query of duration `dur` counts as slow.
    pub fn is_slow(&self, dur: Duration) -> bool {
        self.slow_threshold.is_some_and(|t| dur >= t)
    }
}

/// The slow-query threshold from `TPROV_SLOW_QUERY_MS`, if set.
pub fn slow_threshold_from_env() -> Option<Duration> {
    let raw = std::env::var(SLOW_QUERY_ENV).ok()?;
    raw.trim().parse::<u64>().ok().map(Duration::from_millis)
}

/// One typed journal event. Serialized externally tagged (the variant
/// name keys an object of its fields), which is what `tprov tail
/// --format json` emits per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalEvent {
    /// A lineage/impact query entered the query layer.
    QueryStarted {
        /// Trace id shared by all of this query's events.
        trace: TraceId,
        /// Query source text.
        query: String,
    },
    /// One plan step (or traversal slice) finished, with the exact probe
    /// counters it incurred — attribution stays per-query even when
    /// steps fan out across worker threads.
    PlanStep {
        /// Trace id of the owning query.
        trace: TraceId,
        /// Run the step probed.
        run: u64,
        /// Step ordinal within the plan.
        step: u32,
        /// Index lookups performed by this step.
        index_lookups: u64,
        /// Records materialised by this step.
        records_read: u64,
        /// Rows walked by this step's range scans.
        rows_scanned: u64,
        /// Bindings the step contributed to the answer.
        rows: u64,
        /// Step wall-clock duration.
        dur_ns: u64,
    },
    /// A query finished; totals, t1/t2 split, and the drift verdict.
    QueryFinished {
        /// Trace id of the query.
        trace: TraceId,
        /// Run this execution covered.
        run: u64,
        /// Plan fingerprint (stable hash of the query).
        fingerprint: u64,
        /// Plan steps (or traversal hops) executed.
        steps: u32,
        /// Bindings in the answer.
        bindings: u64,
        /// Graph-traversal / assembly time (the paper's t1).
        t1_ns: u64,
        /// Trace-access time summed over steps (the paper's t2).
        t2_ns: u64,
        /// End-to-end duration.
        dur_ns: u64,
        /// Total index lookups.
        index_lookups: u64,
        /// Total records materialised.
        records_read: u64,
        /// Total rows walked by range scans.
        rows_scanned: u64,
        /// Cost-model prediction, when one was attached.
        predicted_lookups: Option<u64>,
        /// Cost-model row prediction, when one was attached.
        predicted_rows: Option<u64>,
        /// True when observed cost violated the prediction beyond
        /// tolerance (cost-model drift).
        drift: bool,
        /// True when the duration crossed the slow threshold.
        slow: bool,
    },
    /// The engine flushed one ingest batch into the store.
    IngestBatch {
        /// Run the batch belongs to.
        run: u64,
        /// Trace events in the batch.
        records: u64,
    },
    /// The WAL group-committed and fsynced.
    WalSync {
        /// Frames appended since the previous sync.
        frames: u64,
        /// Bytes appended since the previous sync.
        bytes: u64,
    },
    /// A store snapshot was written.
    SnapshotWrite {
        /// Snapshot generation number.
        generation: u64,
        /// Encoded snapshot size.
        bytes: u64,
    },
    /// A processor invocation failed and was retried.
    Retry {
        /// The retried processor.
        processor: String,
        /// 1-based attempt number that failed.
        attempt: u64,
    },
    /// The plan cache had to compile a plan.
    PlanCacheMiss {
        /// Fingerprint of the missed query.
        fingerprint: u64,
    },
    /// A replication primary shipped a chunk of WAL frames to a follower.
    ReplFrameShipped {
        /// Frames in the shipped chunk.
        frames: u64,
        /// Bytes in the shipped chunk (headers included).
        bytes: u64,
        /// WAL offset just past the chunk — the follower's new position.
        offset: u64,
    },
    /// A follower abandoned its local state (divergence, corruption, or a
    /// generation change on the primary) and re-bootstrapped.
    FollowerResync {
        /// WAL generation the follower resynced onto.
        generation: u64,
        /// WAL offset the follower resumed streaming from.
        offset: u64,
        /// Why the resync happened (e.g. `"generation-changed"`,
        /// `"corrupt-frame"`, `"diverged"`).
        reason: String,
    },
    /// The serve daemon admitted a client connection.
    ConnAccepted {
        /// Connections active after the admit (this one included).
        active: u64,
    },
    /// The serve daemon shed a connection at its admission limit — the
    /// client received a typed `busy` refusal rather than queueing.
    ConnRefused {
        /// Connections active at refusal time.
        active: u64,
        /// The admission limit in force.
        limit: u64,
    },
    /// A served request ran past its deadline and was abandoned between
    /// plan steps; the client received a typed `timeout` error.
    RequestTimeout {
        /// Trace id of the abandoned query.
        trace: TraceId,
        /// The request's source text.
        query: String,
        /// The deadline budget that was exceeded, in microseconds.
        deadline_micros: u64,
    },
    /// Graceful shutdown began: the daemon stopped accepting, and live
    /// sessions entered the drain state machine.
    DrainStarted {
        /// Sessions still in flight when the drain began.
        active: u64,
    },
}

impl JournalEvent {
    /// The variant name, e.g. `"PlanStep"`.
    pub fn kind(&self) -> &'static str {
        match self {
            JournalEvent::QueryStarted { .. } => "QueryStarted",
            JournalEvent::PlanStep { .. } => "PlanStep",
            JournalEvent::QueryFinished { .. } => "QueryFinished",
            JournalEvent::IngestBatch { .. } => "IngestBatch",
            JournalEvent::WalSync { .. } => "WalSync",
            JournalEvent::SnapshotWrite { .. } => "SnapshotWrite",
            JournalEvent::Retry { .. } => "Retry",
            JournalEvent::PlanCacheMiss { .. } => "PlanCacheMiss",
            JournalEvent::ReplFrameShipped { .. } => "ReplFrameShipped",
            JournalEvent::FollowerResync { .. } => "FollowerResync",
            JournalEvent::ConnAccepted { .. } => "ConnAccepted",
            JournalEvent::ConnRefused { .. } => "ConnRefused",
            JournalEvent::RequestTimeout { .. } => "RequestTimeout",
            JournalEvent::DrainStarted { .. } => "DrainStarted",
        }
    }

    /// The trace id, for query-scoped events.
    pub fn trace(&self) -> Option<TraceId> {
        match self {
            JournalEvent::QueryStarted { trace, .. }
            | JournalEvent::PlanStep { trace, .. }
            | JournalEvent::QueryFinished { trace, .. }
            | JournalEvent::RequestTimeout { trace, .. } => Some(*trace),
            _ => None,
        }
    }

    /// Numeric fields as Chrome-trace args (strings are omitted; the
    /// instant-event `name` already carries the kind).
    pub fn numeric_args(&self) -> Vec<(&'static str, u64)> {
        match self {
            JournalEvent::QueryStarted { trace, .. } => vec![("trace", trace.0)],
            JournalEvent::PlanStep {
                trace,
                run,
                step,
                index_lookups,
                records_read,
                rows_scanned,
                rows,
                dur_ns,
            } => vec![
                ("trace", trace.0),
                ("run", *run),
                ("step", u64::from(*step)),
                ("index_lookups", *index_lookups),
                ("records_read", *records_read),
                ("rows_scanned", *rows_scanned),
                ("rows", *rows),
                ("dur_ns", *dur_ns),
            ],
            JournalEvent::QueryFinished {
                trace,
                run,
                fingerprint,
                steps,
                bindings,
                t1_ns,
                t2_ns,
                dur_ns,
                index_lookups,
                drift,
                slow,
                ..
            } => vec![
                ("trace", trace.0),
                ("run", *run),
                ("fingerprint", *fingerprint),
                ("steps", u64::from(*steps)),
                ("bindings", *bindings),
                ("t1_ns", *t1_ns),
                ("t2_ns", *t2_ns),
                ("dur_ns", *dur_ns),
                ("index_lookups", *index_lookups),
                ("drift", u64::from(*drift)),
                ("slow", u64::from(*slow)),
            ],
            JournalEvent::IngestBatch { run, records } => {
                vec![("run", *run), ("records", *records)]
            }
            JournalEvent::WalSync { frames, bytes } => {
                vec![("frames", *frames), ("bytes", *bytes)]
            }
            JournalEvent::SnapshotWrite { generation, bytes } => {
                vec![("generation", *generation), ("bytes", *bytes)]
            }
            JournalEvent::Retry { attempt, .. } => vec![("attempt", *attempt)],
            JournalEvent::PlanCacheMiss { fingerprint } => vec![("fingerprint", *fingerprint)],
            JournalEvent::ReplFrameShipped { frames, bytes, offset } => {
                vec![("frames", *frames), ("bytes", *bytes), ("offset", *offset)]
            }
            JournalEvent::FollowerResync { generation, offset, .. } => {
                vec![("generation", *generation), ("offset", *offset)]
            }
            JournalEvent::ConnAccepted { active } => vec![("active", *active)],
            JournalEvent::ConnRefused { active, limit } => {
                vec![("active", *active), ("limit", *limit)]
            }
            JournalEvent::RequestTimeout { trace, deadline_micros, .. } => {
                vec![("trace", trace.0), ("deadline_micros", *deadline_micros)]
            }
            JournalEvent::DrainStarted { active } => vec![("active", *active)],
        }
    }
}

/// A journal event with its ring metadata: global sequence number,
/// nanoseconds since the journal origin, and the writer's dense thread
/// ordinal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stamped {
    /// Global sequence number (total order across shards).
    pub seq: u64,
    /// Nanoseconds since the journal's origin instant.
    pub ts_ns: u64,
    /// Dense ordinal of the writing thread.
    pub tid: u64,
    /// The event itself.
    pub event: JournalEvent,
}

#[derive(Debug)]
struct JournalShard {
    head: AtomicU64,
    slots: Vec<Mutex<Option<Stamped>>>,
}

#[derive(Debug)]
struct JournalInner {
    origin: Instant,
    seq: AtomicU64,
    shards: Vec<JournalShard>,
    dropped: Counter,
}

impl JournalInner {
    fn record(&self, event: JournalEvent) {
        let stamped = Stamped {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            ts_ns: self.origin.elapsed().as_nanos() as u64,
            tid: thread_ordinal(),
            event,
        };
        let shard = &self.shards[(stamped.tid as usize) % self.shards.len()];
        let slot = shard.head.fetch_add(1, Ordering::Relaxed) as usize % shard.slots.len();
        let mut cell = shard.slots[slot].lock().unwrap_or_else(|e| e.into_inner());
        if cell.replace(stamped).is_some() {
            self.dropped.inc();
        }
    }
}

/// Dense process-wide thread ordinal (0 = first thread to write).
fn thread_ordinal() -> u64 {
    use std::cell::Cell;
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ORDINAL: Cell<u64> = const { Cell::new(u64::MAX) };
    }
    ORDINAL.with(|c| {
        if c.get() == u64::MAX {
            c.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        c.get()
    })
}

/// A shared handle to the event ring. Cloning shares the same ring; the
/// default handle is disabled and records nothing.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    inner: Option<Arc<JournalInner>>,
}

impl Journal {
    /// An enabled journal holding at most `capacity` events, with its
    /// timestamp origin at the current instant.
    pub fn new(capacity: usize) -> Self {
        Journal::with_origin(capacity, Instant::now())
    }

    /// An enabled journal whose timestamps are offsets from `origin` —
    /// pass the profiler's origin so journal instants and profiler spans
    /// share one Chrome-trace timeline.
    pub fn with_origin(capacity: usize, origin: Instant) -> Self {
        let per_shard = (capacity / SHARDS).max(1);
        let shards = (0..SHARDS)
            .map(|_| JournalShard {
                head: AtomicU64::new(0),
                slots: (0..per_shard).map(|_| Mutex::new(None)).collect(),
            })
            .collect();
        Journal {
            inner: Some(Arc::new(JournalInner {
                origin,
                seq: AtomicU64::new(0),
                shards,
                dropped: Counter::standalone(),
            })),
        }
    }

    /// An enabled journal sized by `TPROV_JOURNAL_CAP` (default
    /// [`DEFAULT_JOURNAL_CAP`]).
    pub fn from_env() -> Self {
        let cap = std::env::var(JOURNAL_CAP_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_JOURNAL_CAP);
        Journal::new(cap)
    }

    /// A journal that records nothing; every operation is one branch.
    pub fn disabled() -> Self {
        Journal { inner: None }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event (a single branch when disabled).
    #[inline]
    pub fn record(&self, event: JournalEvent) {
        if let Some(inner) = &self.inner {
            inner.record(event);
        }
    }

    /// Removes and returns every buffered event in sequence order.
    pub fn drain(&self) -> Vec<Stamped> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for shard in &inner.shards {
            for slot in &shard.slots {
                if let Some(e) = slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                    out.push(e);
                }
            }
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Copies every buffered event (without consuming) in sequence order.
    pub fn events(&self) -> Vec<Stamped> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for shard in &inner.shards {
            for slot in &shard.slots {
                if let Some(e) = slot.lock().unwrap_or_else(|e| e.into_inner()).as_ref() {
                    out.push(e.clone());
                }
            }
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Events overwritten before any drain observed them.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.dropped.get())
    }

    /// Registers the drop counter under `journal.dropped`.
    pub fn register_metrics(&self, registry: &Registry) {
        if let Some(inner) = &self.inner {
            registry.adopt_counter("journal.dropped", &inner.dropped);
        }
    }
}

/// Renders journal events as Chrome-trace *instant* events (`ph: "i"`,
/// global scope) so they overlay the profiler's spans on one timeline.
pub fn chrome_instant_events(events: &[Stamped]) -> Vec<ChromeEvent> {
    events
        .iter()
        .map(|e| ChromeEvent {
            name: e.event.kind().to_string(),
            cat: "journal".to_string(),
            ph: "i",
            ts: e.ts_ns as f64 / 1000.0,
            dur: 0.0,
            pid: 1,
            tid: e.tid,
            s: Some("g"),
            args: e.event.numeric_args().into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(trace: TraceId, step: u32) -> JournalEvent {
        JournalEvent::PlanStep {
            trace,
            run: 0,
            step,
            index_lookups: 3,
            records_read: 2,
            rows_scanned: 1,
            rows: 2,
            dur_ns: 10,
        }
    }

    #[test]
    fn disabled_journal_is_inert() {
        let j = Journal::disabled();
        j.record(step(TraceId(1), 0));
        assert!(!j.is_enabled());
        assert!(j.drain().is_empty());
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn events_drain_in_sequence_order() {
        let j = Journal::new(1024);
        let t = TraceId::next();
        j.record(JournalEvent::QueryStarted { trace: t, query: "q".into() });
        for i in 0..5 {
            j.record(step(t, i));
        }
        let events = j.drain();
        assert_eq!(events.len(), 6);
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        assert!(matches!(events[0].event, JournalEvent::QueryStarted { .. }));
        // Drain consumes.
        assert!(j.drain().is_empty());
    }

    #[test]
    fn overflow_is_counted_not_silent() {
        // 16 shards * 1 slot: a single-threaded writer cycles one shard.
        let j = Journal::new(16);
        for i in 0..10 {
            j.record(step(TraceId(1), i));
        }
        assert_eq!(j.dropped(), 9);
        let events = j.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].seq, 9, "survivor is the most recent event");
        let r = Registry::new();
        j.register_metrics(&r);
        assert_eq!(r.snapshot().counter("journal.dropped"), 9);
    }

    #[test]
    fn concurrent_writers_never_lose_sequence_totality() {
        let j = Journal::new(4096);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let j = j.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        j.record(step(TraceId(7), i));
                    }
                });
            }
        });
        let events = j.drain();
        assert_eq!(events.len(), 400);
        assert_eq!(j.dropped(), 0);
        let seqs: std::collections::HashSet<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs.len(), 400, "sequence numbers are unique");
    }

    #[test]
    fn stamped_events_roundtrip_through_json() {
        let j = Journal::new(64);
        j.record(JournalEvent::WalSync { frames: 2, bytes: 512 });
        j.record(JournalEvent::Retry { processor: "P".into(), attempt: 1 });
        for e in j.drain() {
            let text = serde_json::to_string(&e).unwrap();
            let back: Stamped = serde_json::from_str(&text).unwrap();
            assert_eq!(e, back);
        }
    }

    #[test]
    fn instant_events_share_the_span_timeline_shape() {
        let j = Journal::new(64);
        j.record(JournalEvent::SnapshotWrite { generation: 3, bytes: 1024 });
        let events = j.drain();
        let instants = chrome_instant_events(&events);
        assert_eq!(instants.len(), 1);
        assert_eq!(instants[0].ph, "i");
        assert_eq!(instants[0].s, Some("g"));
        assert_eq!(instants[0].args.get("generation"), Some(&3));
    }

    #[test]
    fn query_ctx_deadline_and_slow_checks() {
        let ctx = QueryCtx::new("lin(x)").with_deadline(Duration::from_secs(3600));
        assert!(!ctx.deadline_exceeded());
        let ctx = ctx.with_slow_threshold(Some(Duration::from_millis(5)));
        assert!(!ctx.is_slow(Duration::from_millis(4)));
        assert!(ctx.is_slow(Duration::from_millis(5)));
        let past = QueryCtx::new("q").with_deadline(Duration::from_nanos(0));
        std::thread::sleep(Duration::from_millis(1));
        assert!(past.deadline_exceeded());
    }

    #[test]
    fn clock_driven_deadline_follows_the_injected_source() {
        #[derive(Debug)]
        struct Fake(std::sync::atomic::AtomicU64);
        impl TimeSource for Fake {
            fn now_micros(&self) -> u64 {
                self.0.load(Ordering::Relaxed)
            }
        }
        let clock = Arc::new(Fake(AtomicU64::new(100)));
        let ctx = QueryCtx::new("lin(x)")
            .with_clock_deadline(Arc::clone(&clock) as Arc<dyn TimeSource>, 500);
        assert!(!ctx.deadline_exceeded());
        clock.0.store(501, Ordering::Relaxed);
        assert!(ctx.deadline_exceeded(), "deadline expires when the source advances");
    }

    #[test]
    fn serve_events_have_kinds_and_numeric_args() {
        let events = [
            JournalEvent::ConnAccepted { active: 3 },
            JournalEvent::ConnRefused { active: 8, limit: 8 },
            JournalEvent::RequestTimeout {
                trace: TraceId(7),
                query: "lin(x)".into(),
                deadline_micros: 1_000,
            },
            JournalEvent::DrainStarted { active: 2 },
        ];
        let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, ["ConnAccepted", "ConnRefused", "RequestTimeout", "DrainStarted"]);
        for e in &events {
            assert!(!e.numeric_args().is_empty(), "{} carries numeric args", e.kind());
            let text = serde_json::to_string(e).unwrap();
            let back: JournalEvent = serde_json::from_str(&text).unwrap();
            assert_eq!(e, &back);
        }
        assert_eq!(events[2].trace(), Some(TraceId(7)));
    }
}
