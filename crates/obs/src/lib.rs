//! # prov-obs
//!
//! Unified observability for the provenance workspace: a lock-light
//! metrics [`Registry`] (counters, gauges, log2-bucket histograms behind
//! stable dotted names) and a span-based [`Profiler`] whose timelines
//! export as Chrome/Perfetto trace-event JSON.
//!
//! The paper's evaluation (§4) is an accounting exercise — decomposing
//! lineage-query latency into graph-traversal work (`t1`) and
//! trace-access work (`t2`). This crate makes that decomposition a
//! first-class runtime artifact instead of ad-hoc counters: spans carry a
//! category naming the cost account they charge, and component-owned
//! counters are *adopted* by the registry (shared `Arc`s) so unification
//! costs nothing on the hot path.
//!
//! Everything is runtime-toggleable: [`Obs::disabled`] hands out handles
//! whose every operation is a single `None` branch, so instrumented code
//! stays hot when nobody is watching.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod journal;
mod metrics;
mod profiler;

pub use journal::{
    chrome_instant_events, slow_threshold_from_env, Journal, JournalEvent, QueryCtx, Stamped,
    TimeSource, TraceId, DEFAULT_JOURNAL_CAP, JOURNAL_CAP_ENV, SLOW_QUERY_ENV,
};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use profiler::{ChromeEvent, Profiler, SpanAgg, SpanGuard, SpanRecord};

/// A metrics registry, a profiler, and an event journal, bundled for
/// threading through query/engine entry points as one handle.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// The metrics registry.
    pub metrics: Registry,
    /// The span profiler.
    pub profiler: Profiler,
    /// The structured event journal.
    pub journal: Journal,
}

impl Obs {
    /// Enabled metrics, profiling, and journal. The journal shares the
    /// profiler's time origin, so journal instants and profiler spans
    /// line up on one Chrome-trace timeline.
    pub fn enabled() -> Self {
        let origin = std::time::Instant::now();
        Obs {
            metrics: Registry::new(),
            profiler: Profiler::with_origin(origin),
            journal: Journal::with_origin(DEFAULT_JOURNAL_CAP, origin),
        }
    }

    /// No-op observability; construction is free (three `None`s) and
    /// every instrumented operation is a single branch.
    pub fn disabled() -> Self {
        Obs {
            metrics: Registry::disabled(),
            profiler: Profiler::disabled(),
            journal: Journal::disabled(),
        }
    }

    /// Replaces the journal (e.g. with a shared env-sized ring) while
    /// keeping the other sides as they are.
    pub fn with_journal(mut self, journal: Journal) -> Self {
        self.journal = journal;
        self
    }

    /// Shorthand for [`Profiler::span`].
    pub fn span(
        &self,
        name: impl Into<std::borrow::Cow<'static, str>>,
        cat: &'static str,
    ) -> SpanGuard {
        self.profiler.span(name, cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_is_fully_inert() {
        let obs = Obs::disabled();
        obs.span("x", "t1").stop();
        obs.metrics.counter("c").inc();
        obs.journal.record(JournalEvent::WalSync { frames: 1, bytes: 1 });
        assert!(obs.profiler.spans().is_empty());
        assert!(obs.metrics.snapshot().is_empty());
        assert!(obs.journal.drain().is_empty());
    }

    #[test]
    fn enabled_obs_records_all_sides() {
        let obs = Obs::enabled();
        obs.span("x", "t1").stop();
        obs.metrics.counter("c").inc();
        obs.journal.record(JournalEvent::WalSync { frames: 1, bytes: 1 });
        assert_eq!(obs.profiler.spans().len(), 1);
        assert_eq!(obs.metrics.snapshot().counter("c"), 1);
        assert_eq!(obs.journal.drain().len(), 1);
    }
}
