//! # prov-obs
//!
//! Unified observability for the provenance workspace: a lock-light
//! metrics [`Registry`] (counters, gauges, log2-bucket histograms behind
//! stable dotted names) and a span-based [`Profiler`] whose timelines
//! export as Chrome/Perfetto trace-event JSON.
//!
//! The paper's evaluation (§4) is an accounting exercise — decomposing
//! lineage-query latency into graph-traversal work (`t1`) and
//! trace-access work (`t2`). This crate makes that decomposition a
//! first-class runtime artifact instead of ad-hoc counters: spans carry a
//! category naming the cost account they charge, and component-owned
//! counters are *adopted* by the registry (shared `Arc`s) so unification
//! costs nothing on the hot path.
//!
//! Everything is runtime-toggleable: [`Obs::disabled`] hands out handles
//! whose every operation is a single `None` branch, so instrumented code
//! stays hot when nobody is watching.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod metrics;
mod profiler;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use profiler::{ChromeEvent, Profiler, SpanAgg, SpanGuard, SpanRecord};

/// A metrics registry and a profiler, bundled for threading through
/// query/engine entry points as one handle.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// The metrics registry.
    pub metrics: Registry,
    /// The span profiler.
    pub profiler: Profiler,
}

impl Obs {
    /// Enabled metrics and profiling.
    pub fn enabled() -> Self {
        Obs { metrics: Registry::new(), profiler: Profiler::new() }
    }

    /// No-op observability; construction is free (two `None`s) and every
    /// instrumented operation is a single branch.
    pub fn disabled() -> Self {
        Obs { metrics: Registry::disabled(), profiler: Profiler::disabled() }
    }

    /// Shorthand for [`Profiler::span`].
    pub fn span(
        &self,
        name: impl Into<std::borrow::Cow<'static, str>>,
        cat: &'static str,
    ) -> SpanGuard {
        self.profiler.span(name, cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_is_fully_inert() {
        let obs = Obs::disabled();
        obs.span("x", "t1").stop();
        obs.metrics.counter("c").inc();
        assert!(obs.profiler.spans().is_empty());
        assert!(obs.metrics.snapshot().is_empty());
    }

    #[test]
    fn enabled_obs_records_both_sides() {
        let obs = Obs::enabled();
        obs.span("x", "t1").stop();
        obs.metrics.counter("c").inc();
        assert_eq!(obs.profiler.spans().len(), 1);
        assert_eq!(obs.metrics.snapshot().counter("c"), 1);
    }
}
