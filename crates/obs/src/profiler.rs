//! Span-based profiling with explicit start/stop guards.
//!
//! No `tracing` dependency: a [`Profiler`] is a shared vector of finished
//! [`SpanRecord`]s plus a common time origin. Instrumented code opens a
//! [`SpanGuard`] (one `Instant::now()`), optionally attaches numeric
//! arguments, and closes it explicitly with [`SpanGuard::stop`] or
//! implicitly on drop. A disabled profiler never reads the clock and
//! never locks — guards from it are inert.
//!
//! Spans record the OS thread they finished on, so work fanned out across
//! scoped threads (`prov-core`'s `par.rs`) aggregates correctly: every
//! worker pushes into the same vector under a short lock, and the Chrome
//! trace export lays threads out as separate `tid` rows.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

use serde::Serialize;

/// One finished span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name, e.g. `indexproj.step`.
    pub name: Cow<'static, str>,
    /// Category: the paper's cost account this span charges (`t1`, `t2`)
    /// or a subsystem tag (`engine`, `wal`, `query`).
    pub cat: &'static str,
    /// Start offset from the profiler's origin, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Dense per-profiler thread id (0 = first thread seen).
    pub tid: u64,
    /// Numeric span arguments (rows read, traversal depth, …).
    pub args: Vec<(&'static str, u64)>,
}

#[derive(Debug)]
struct ProfilerInner {
    origin: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    tids: Mutex<HashMap<ThreadId, u64>>,
}

impl ProfilerInner {
    fn tid(&self) -> u64 {
        let mut tids = self.tids.lock().unwrap_or_else(|e| e.into_inner());
        let next = tids.len() as u64;
        *tids.entry(std::thread::current().id()).or_insert(next)
    }
}

/// A shared recorder of spans. Cloning shares the same timeline.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<ProfilerInner>>,
}

impl Profiler {
    /// An enabled profiler with its origin at the current instant.
    pub fn new() -> Self {
        Profiler::with_origin(Instant::now())
    }

    /// An enabled profiler whose timestamps are offsets from `origin` —
    /// lets other recorders (the event journal) share one timeline.
    pub fn with_origin(origin: Instant) -> Self {
        Profiler {
            inner: Some(Arc::new(ProfilerInner {
                origin,
                spans: Mutex::new(Vec::new()),
                tids: Mutex::new(HashMap::new()),
            })),
        }
    }

    /// A profiler that records nothing; guards from it are inert and
    /// never read the clock.
    pub fn disabled() -> Self {
        Profiler { inner: None }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span. `cat` is the cost account it charges (`t1`/`t2`) or
    /// a subsystem tag. Dynamic names are accepted so callers can label
    /// per-processor spans; format them only when [`Profiler::is_enabled`].
    pub fn span(&self, name: impl Into<Cow<'static, str>>, cat: &'static str) -> SpanGuard {
        match &self.inner {
            None => SpanGuard { inner: None },
            Some(p) => SpanGuard {
                inner: Some(SpanGuardInner {
                    profiler: Arc::clone(p),
                    name: name.into(),
                    cat,
                    start: Instant::now(),
                    args: Vec::new(),
                }),
            },
        }
    }

    /// All spans recorded so far, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(p) => p.spans.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        }
    }

    /// Per-name totals over all recorded spans, sorted by name.
    pub fn aggregate(&self) -> Vec<SpanAgg> {
        let mut by_name: HashMap<(Cow<'static, str>, &'static str), SpanAgg> = HashMap::new();
        for s in self.spans() {
            let agg = by_name.entry((s.name.clone(), s.cat)).or_insert_with(|| SpanAgg {
                name: s.name.into_owned(),
                cat: s.cat,
                count: 0,
                total_ns: 0,
                max_ns: 0,
            });
            agg.count += 1;
            agg.total_ns += s.dur_ns;
            agg.max_ns = agg.max_ns.max(s.dur_ns);
        }
        let mut out: Vec<SpanAgg> = by_name.into_values().collect();
        out.sort_by(|a, b| a.name.cmp(&b.name).then(a.cat.cmp(b.cat)));
        out
    }

    /// Total nanoseconds across all spans in category `cat`.
    pub fn total_ns(&self, cat: &str) -> u64 {
        self.spans().iter().filter(|s| s.cat == cat).map(|s| s.dur_ns).sum()
    }

    /// The recorded timeline as Chrome/Perfetto trace-event JSON objects
    /// (complete events, `ph: "X"`, microsecond timestamps). Serialize
    /// the returned vector as a JSON array and load it in
    /// `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn chrome_trace_events(&self) -> Vec<ChromeEvent> {
        self.spans()
            .into_iter()
            .map(|s| ChromeEvent {
                name: s.name.into_owned(),
                cat: s.cat.to_string(),
                ph: "X",
                ts: s.start_ns as f64 / 1000.0,
                dur: s.dur_ns as f64 / 1000.0,
                pid: 1,
                tid: s.tid,
                s: None,
                args: s.args.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            })
            .collect()
    }
}

/// Per-span-name aggregate, for tabular reports.
#[derive(Debug, Clone)]
pub struct SpanAgg {
    /// Span name.
    pub name: String,
    /// Category (cost account).
    pub cat: &'static str,
    /// Number of spans with this name.
    pub count: u64,
    /// Summed duration in nanoseconds.
    pub total_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}

/// One Chrome trace-event: a "complete event" (`ph: "X"`) from the
/// profiler, or an "instant event" (`ph: "i"`) from the journal.
#[derive(Debug, Clone, Serialize)]
pub struct ChromeEvent {
    /// Event name shown in the timeline.
    pub name: String,
    /// Comma-separated categories.
    pub cat: String,
    /// Event phase: `"X"` (complete, with duration) or `"i"` (instant).
    pub ph: &'static str,
    /// Start timestamp in microseconds from the profiler origin.
    pub ts: f64,
    /// Duration in microseconds (0 for instant events).
    pub dur: f64,
    /// Process id (constant 1; the profiler is in-process).
    pub pid: u64,
    /// Dense thread id assigned in first-seen order.
    pub tid: u64,
    /// Instant-event scope (`"g"` = global); `null` on complete events.
    pub s: Option<&'static str>,
    /// Numeric span arguments.
    pub args: HashMap<String, u64>,
}

struct SpanGuardInner {
    profiler: Arc<ProfilerInner>,
    name: Cow<'static, str>,
    cat: &'static str,
    start: Instant,
    args: Vec<(&'static str, u64)>,
}

/// An open span; records itself when stopped or dropped.
#[must_use = "a span guard measures until it is stopped or dropped"]
pub struct SpanGuard {
    inner: Option<SpanGuardInner>,
}

impl SpanGuard {
    /// An inert guard, for callers that branch on profiler state
    /// themselves (e.g. to avoid formatting a dynamic span name).
    pub fn inert() -> Self {
        SpanGuard { inner: None }
    }

    /// Whether this guard will record a span.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches a numeric argument (visible in Chrome trace `args`).
    pub fn arg(&mut self, key: &'static str, value: u64) {
        if let Some(g) = &mut self.inner {
            g.args.push((key, value));
        }
    }

    /// Closes the span now. Equivalent to dropping, but explicit at call
    /// sites where span extent matters.
    pub fn stop(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(g) = self.inner.take() else { return };
        let end = Instant::now();
        let start_ns = g.start.duration_since(g.profiler.origin).as_nanos() as u64;
        let dur_ns = end.duration_since(g.start).as_nanos() as u64;
        let tid = g.profiler.tid();
        let record = SpanRecord { name: g.name, cat: g.cat, start_ns, dur_ns, tid, args: g.args };
        g.profiler.spans.lock().unwrap_or_else(|e| e.into_inner()).push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::disabled();
        let mut g = p.span("x", "t1");
        g.arg("rows", 3);
        g.stop();
        assert!(p.spans().is_empty());
        assert!(!p.is_enabled());
    }

    #[test]
    fn spans_record_name_cat_args_and_nesting() {
        let p = Profiler::new();
        {
            let mut outer = p.span("outer", "t1");
            outer.arg("k", 1);
            let inner = p.span("inner", "t2");
            inner.stop();
            outer.stop();
        }
        let spans = p.spans();
        assert_eq!(spans.len(), 2);
        // Completion order: inner first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].args, vec![("k", 1)]);
        // Outer encloses inner on the timeline.
        assert!(spans[1].start_ns <= spans[0].start_ns);
        assert!(spans[1].start_ns + spans[1].dur_ns >= spans[0].start_ns + spans[0].dur_ns);
    }

    #[test]
    fn cross_thread_spans_share_one_timeline() {
        let p = Profiler::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = p.clone();
                s.spawn(move || {
                    for _ in 0..5 {
                        p.span("work", "t2").stop();
                    }
                });
            }
        });
        let spans = p.spans();
        assert_eq!(spans.len(), 20);
        let tids: std::collections::HashSet<u64> = spans.iter().map(|s| s.tid).collect();
        assert!(tids.len() >= 2, "expected several worker tids, got {tids:?}");
        let agg = p.aggregate();
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].count, 20);
    }

    #[test]
    fn chrome_events_have_required_fields() {
        let p = Profiler::new();
        let mut g = p.span("step", "t2");
        g.arg("rows", 7);
        g.stop();
        let events = p.chrome_trace_events();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.ph, "X");
        assert_eq!(e.name, "step");
        assert!(e.dur >= 0.0);
        assert_eq!(e.args.get("rows"), Some(&7));
    }

    #[test]
    fn total_ns_sums_per_category() {
        let p = Profiler::new();
        p.span("a", "t1").stop();
        p.span("b", "t2").stop();
        p.span("c", "t2").stop();
        let t2: u64 = p.spans().iter().filter(|s| s.cat == "t2").map(|s| s.dur_ns).sum();
        assert_eq!(p.total_ns("t2"), t2);
        assert_eq!(p.total_ns("nope"), 0);
    }
}
