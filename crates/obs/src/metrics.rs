//! Lock-light metrics: counters, gauges, and log-scale histograms behind
//! a named registry.
//!
//! The design goal is that *instrumented* code never pays for
//! observability it did not ask for:
//!
//! * every handle ([`Counter`], [`Gauge`], [`Histogram`]) is an
//!   `Option<Arc<…>>`; a disabled handle is `None` and every operation on
//!   it is a single branch — no allocation, no clock read, no lock;
//! * enabled counters are plain relaxed atomics, exactly the cost of the
//!   hand-rolled `AtomicU64`s they replace;
//! * the registry's interior lock is touched only at registration and
//!   snapshot time, never on the increment path.
//!
//! Existing component-owned counters are unified via [`Registry::adopt_counter`]:
//! the registry clones the *same* `Arc<AtomicU64>` under a stable dotted
//! name, so there is one storage location and zero double counting.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::Serialize;

/// Number of log2 buckets in a [`Histogram`]: bucket `i` holds values
/// whose bit length is `i` (bucket 0 holds only zero), i.e. value `v`
/// lands in bucket `64 - v.leading_zeros()`, clamped to the last bucket.
const BUCKETS: usize = 40;

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i`, used for quantile estimates.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i).saturating_sub(1)
    }
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        bucket_upper(i - 1) + 1
    }
}

/// Midpoint of bucket `i`: the quantile estimate reported for a rank
/// landing in that bucket. Bounds the relative error to the bucket's
/// half-width (~±33% of the true value) instead of the upper bound's
/// systematic ≤2× overestimate.
fn bucket_midpoint(i: usize) -> u64 {
    let lo = bucket_lower(i);
    lo + (bucket_upper(i) - lo) / 2
}

/// A monotonically increasing event counter.
///
/// Cloning shares the underlying cell; a clone handed to another thread
/// or adopted by a [`Registry`] observes the same value.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// An always-recording counter not (yet) attached to any registry.
    pub fn standalone() -> Self {
        Counter { cell: Some(Arc::new(AtomicU64::new(0))) }
    }

    /// A no-op counter: every operation is a single `None` branch.
    pub fn disabled() -> Self {
        Counter { cell: None }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Overwrites the value; used by `reset()`-style maintenance APIs.
    pub fn set(&self, v: u64) {
        if let Some(c) = &self.cell {
            c.store(v, Ordering::Relaxed);
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    fn arc(&self) -> Option<&Arc<AtomicU64>> {
        self.cell.as_ref()
    }
}

/// A point-in-time value (set, not accumulated).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// An always-recording gauge not attached to any registry.
    pub fn standalone() -> Self {
        Gauge { cell: Some(Arc::new(AtomicU64::new(0))) }
    }

    /// A no-op gauge.
    pub fn disabled() -> Self {
        Gauge { cell: None }
    }

    /// Sets the current value.
    pub fn set(&self, v: u64) {
        if let Some(c) = &self.cell {
            c.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCell {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCell {
    fn new() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count: u64 = counts.iter().sum();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = (q * count as f64).ceil() as u64;
            let mut seen = 0u64;
            for (i, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_midpoint(i);
                }
            }
            bucket_midpoint(BUCKETS - 1)
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

/// A fixed log2-bucket latency/size histogram.
///
/// Buckets are powers of two, so recording is branch-free arithmetic on
/// relaxed atomics; quantiles reported by [`HistogramSnapshot`] are the
/// midpoint of the bucket containing the rank (midpoint-of-bucket
/// interpolation, bounded relative error instead of a systematic
/// overestimate).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// An always-recording histogram not attached to any registry.
    pub fn standalone() -> Self {
        Histogram { cell: Some(Arc::new(HistogramCell::new())) }
    }

    /// A no-op histogram.
    pub fn disabled() -> Self {
        Histogram { cell: None }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(c) = &self.cell {
            c.record(v);
        }
    }

    /// Number of recorded observations (0 when disabled).
    pub fn count(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// A point-in-time summary (empty when disabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cell.as_ref().map(|c| c.snapshot()).unwrap_or_default()
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
}

/// A named collection of metrics.
///
/// `Registry::new()` is enabled; [`Registry::disabled`] hands out no-op
/// handles and snapshots empty, making instrumented code free when
/// observability is off. Cloning shares the same underlying store.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        Registry { inner: Some(Arc::new(RegistryInner::default())) }
    }

    /// A registry that records nothing and hands out no-op handles.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether metrics are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The counter registered under `name`, creating it if absent.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            None => Counter::disabled(),
            Some(inner) => {
                let mut map = inner.counters.lock().unwrap_or_else(|e| e.into_inner());
                let arc = map.entry(name.to_string()).or_default();
                Counter { cell: Some(Arc::clone(arc)) }
            }
        }
    }

    /// The gauge registered under `name`, creating it if absent.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            None => Gauge::disabled(),
            Some(inner) => {
                let mut map = inner.gauges.lock().unwrap_or_else(|e| e.into_inner());
                let arc = map.entry(name.to_string()).or_default();
                Gauge { cell: Some(Arc::clone(arc)) }
            }
        }
    }

    /// The histogram registered under `name`, creating it if absent.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            None => Histogram::disabled(),
            Some(inner) => {
                let mut map = inner.histograms.lock().unwrap_or_else(|e| e.into_inner());
                let arc =
                    map.entry(name.to_string()).or_insert_with(|| Arc::new(HistogramCell::new()));
                Histogram { cell: Some(Arc::clone(arc)) }
            }
        }
    }

    /// Registers an existing component-owned counter under `name`.
    ///
    /// The registry clones the counter's own `Arc`, so subsequent
    /// increments through either handle show up in snapshots — one
    /// storage location, no double counting, no extra hot-path cost.
    /// No-op when either side is disabled.
    pub fn adopt_counter(&self, name: &str, counter: &Counter) {
        if let (Some(inner), Some(arc)) = (&self.inner, counter.arc()) {
            inner
                .counters
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(name.to_string(), Arc::clone(arc));
        }
    }

    /// Registers an existing component-owned histogram under `name`.
    /// Same sharing semantics as [`Registry::adopt_counter`].
    pub fn adopt_histogram(&self, name: &str, histogram: &Histogram) {
        if let (Some(inner), Some(arc)) = (&self.inner, histogram.cell.as_ref()) {
            inner
                .histograms
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(name.to_string(), Arc::clone(arc));
        }
    }

    /// Sets the gauge `name` to `v` (registering it if absent).
    pub fn set_gauge(&self, name: &str, v: u64) {
        self.gauge(name).set(v);
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// Summary of one histogram at snapshot time. Quantiles are log2-bucket
/// midpoints (midpoint-of-bucket interpolation), not exact order
/// statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Exact maximum observed value.
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

/// A point-in-time copy of a [`Registry`], ready for text or JSON output.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MetricsSnapshot {
    /// Counter values by dotted name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by dotted name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram summaries by dotted name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The counter `name`'s value, or 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Per-counter difference vs. an earlier snapshot (used for
    /// per-query deltas against process-lifetime totals).
    pub fn counters_since(&self, earlier: &MetricsSnapshot) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .map(|(k, v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
            .collect()
    }

    /// Plain-text rendering, one metric per line, grouped by kind.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(String::len)
            .max()
            .unwrap_or(0);
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<width$}  {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<width$}  {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &self.histograms {
                out.push_str(&format!(
                    "  {k:<width$}  count={} sum={} max={} p50={} p95={} p99={}\n",
                    h.count, h.sum, h.max, h.p50, h.p95, h.p99
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics registered)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_no_ops() {
        let c = Counter::disabled();
        c.inc();
        c.add(5);
        assert_eq!(c.get(), 0);
        let h = Histogram::disabled();
        h.record(42);
        assert_eq!(h.count(), 0);
        let r = Registry::disabled();
        r.counter("x").add(3);
        r.set_gauge("g", 7);
        r.histogram("h").record(1);
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn registry_counters_accumulate_and_snapshot() {
        let r = Registry::new();
        let a = r.counter("a.events");
        a.inc();
        r.counter("a.events").add(2); // same cell via name
        r.set_gauge("a.size", 9);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.events"), 3);
        assert_eq!(snap.gauges.get("a.size"), Some(&9));
    }

    #[test]
    fn adopt_counter_shares_storage() {
        let owned = Counter::standalone();
        owned.add(2);
        let r = Registry::new();
        r.adopt_counter("comp.owned", &owned);
        owned.add(3);
        assert_eq!(r.snapshot().counter("comp.owned"), 5);
        // And through the registry handle too.
        r.counter("comp.owned").inc();
        assert_eq!(owned.get(), 6);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::standalone();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        let r = Registry::new();
        r.adopt_histogram("lat", &h);
        let snap = r.snapshot();
        let hs = snap.histograms["lat"];
        assert_eq!(hs.count, 6);
        assert_eq!(hs.sum, 1106);
        assert_eq!(hs.max, 1000);
        assert_eq!(hs.p50, 2, "median rank lands in bucket [2,3], midpoint 2");
        assert_eq!(hs.p99, 767, "p99 rank lands in bucket [512,1023], midpoint 767");
        assert!(hs.p99 >= 512 && hs.p99 <= 1023, "estimate stays inside 1000's bucket");
    }

    #[test]
    fn quantile_estimates_pin_against_exact_values() {
        // Constant distribution: every quantile's true value is 100;
        // the estimator must answer 100's bucket midpoint, [64,127] -> 95.
        let h = Histogram::standalone();
        for _ in 0..1000 {
            h.record(100);
        }
        let r = Registry::new();
        r.adopt_histogram("const", &h);
        let hs = r.snapshot().histograms["const"];
        for (est, exact) in [(hs.p50, 100u64), (hs.p95, 100), (hs.p99, 100)] {
            assert_eq!(est, 95);
            let err = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.34, "midpoint error {err:.3} exceeds half-bucket bound");
        }

        // Uniform 1..=1024: exact p50 = 512, p95 = 973, p99 = 1014.
        let h = Histogram::standalone();
        for v in 1..=1024u64 {
            h.record(v);
        }
        let r = Registry::new();
        r.adopt_histogram("uniform", &h);
        let hs = r.snapshot().histograms["uniform"];
        // Rank 512 = value 512, the first value of bucket [512,1023],
        // whose midpoint is 767.
        assert_eq!(hs.p50, 767);
        assert_eq!(hs.p95, 767, "973 sits in [512,1023] too");
        assert_eq!(hs.p99, 767);
        for (est, exact) in [(hs.p50, 512u64), (hs.p95, 973), (hs.p99, 1014)] {
            let ratio = est as f64 / exact as f64;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "estimate {est} vs exact {exact}: ratio {ratio:.3} outside log2 bucket bound"
            );
        }

        // Two-point mass: 90% fast (8), 10% slow (1000). p50 estimates
        // from bucket [8,15] -> 11, p95/p99 from [512,1023] -> 767.
        let h = Histogram::standalone();
        for i in 0..100u64 {
            h.record(if i < 90 { 8 } else { 1000 });
        }
        let r = Registry::new();
        r.adopt_histogram("bimodal", &h);
        let hs = r.snapshot().histograms["bimodal"];
        assert_eq!(hs.p50, 11);
        assert_eq!(hs.p95, 767);
        assert_eq!(hs.p99, 767);
        assert_eq!(hs.max, 1000, "max stays exact");
    }

    #[test]
    fn bucket_midpoint_sits_inside_its_bucket() {
        assert_eq!(bucket_midpoint(0), 0);
        assert_eq!(bucket_midpoint(1), 1);
        assert_eq!(bucket_midpoint(2), 2, "bucket [2,3]");
        assert_eq!(bucket_midpoint(7), 95, "bucket [64,127]");
        for i in 0..BUCKETS {
            let m = bucket_midpoint(i);
            assert!(m >= bucket_lower(i) && m <= bucket_upper(i), "bucket {i}: {m}");
        }
    }

    #[test]
    fn bucket_of_is_monotone_and_clamped() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        let mut prev = 0;
        for shift in 0..64 {
            let b = bucket_of(1u64 << shift);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn text_rendering_lists_every_kind() {
        let r = Registry::new();
        r.counter("c").inc();
        r.set_gauge("g", 2);
        r.histogram("h").record(3);
        let text = r.snapshot().render_text();
        assert!(text.contains("counters:"));
        assert!(text.contains("gauges:"));
        assert!(text.contains("histograms:"));
        assert!(text.contains("count=1"));
    }

    #[test]
    fn counters_since_subtracts_earlier_snapshot() {
        let r = Registry::new();
        let c = r.counter("n");
        c.add(10);
        let before = r.snapshot();
        c.add(7);
        let delta = r.snapshot().counters_since(&before);
        assert_eq!(delta["n"], 7);
    }
}
