//! Model-level errors.

use std::fmt;

/// Errors raised by data-model operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Sibling elements of a list disagree on nesting depth; the uniform
    /// model (§2.1) has no defined depth for such a value.
    RaggedValue {
        /// Depth of an earlier sibling.
        left: usize,
        /// Depth of the conflicting sibling.
        right: usize,
    },
    /// A list operation was applied to a value without the required level of
    /// nesting.
    NotAList,
    /// An index path does not address an element of the given value.
    BadIndex {
        /// The offending index, rendered as `[p1,p2,…]`.
        index: String,
    },
    /// A port-type string could not be parsed.
    TypeParse(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::RaggedValue { left, right } => {
                write!(f, "ragged value: sibling elements have depths {left} and {right}")
            }
            ModelError::NotAList => write!(f, "operation requires a list value"),
            ModelError::BadIndex { index } => {
                write!(f, "index {index} does not address an element of the value")
            }
            ModelError::TypeParse(s) => write!(f, "cannot parse port type {s:?}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_useful_messages() {
        assert!(ModelError::RaggedValue { left: 1, right: 2 }
            .to_string()
            .contains("depths 1 and 2"));
        assert!(ModelError::TypeParse("xs".into()).to_string().contains("\"xs\""));
        assert!(ModelError::BadIndex { index: "[1]".into() }.to_string().contains("[1]"));
    }
}
