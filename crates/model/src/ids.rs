//! Identifier newtypes shared across the stack.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// The name of a processor in a dataflow specification (e.g.
/// `get_pathways_by_genes`). Interned via `Arc<str>`: processor names appear
/// in every trace record and are cloned constantly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ProcessorName(pub Arc<str>);

impl ProcessorName {
    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for ProcessorName {
    fn from(s: &str) -> Self {
        ProcessorName(Arc::from(s))
    }
}

impl From<String> for ProcessorName {
    fn from(s: String) -> Self {
        ProcessorName(Arc::from(s.as_str()))
    }
}

impl fmt::Display for ProcessorName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Identifies one workflow *run* (one execution `E` of a dataflow `D`, whose
/// trace is `T_{E_D}`). Trace IDs are key attributes in the relational trace
/// store, which is what makes multi-run queries cheap (paper §3.4).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct RunId(pub u64);

impl RunId {
    /// The next run id (used by the store when registering runs).
    pub fn next(self) -> RunId {
        RunId(self.0 + 1)
    }
}

impl fmt::Display for RunId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run:{}", self.0)
    }
}

/// Content-addressed identifier of a stored value. The store deduplicates
/// identical values (the same gene list is transferred along many arcs), so
/// trace records reference values by id rather than embedding them.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct ValueId(pub u64);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "val:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_name_interns_and_compares() {
        let a = ProcessorName::from("ListGen");
        let b = ProcessorName::from("ListGen");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "ListGen");
        assert_eq!(a.to_string(), "ListGen");
    }

    #[test]
    fn run_id_next_increments() {
        assert_eq!(RunId(0).next(), RunId(1));
        assert_eq!(RunId(41).next(), RunId(42));
    }

    #[test]
    fn ids_serialize_transparently() {
        assert_eq!(serde_json::to_string(&RunId(7)).unwrap(), "7");
        assert_eq!(serde_json::to_string(&ValueId(9)).unwrap(), "9");
        assert_eq!(serde_json::to_string(&ProcessorName::from("P")).unwrap(), "\"P\"");
    }

    #[test]
    fn display_formats() {
        assert_eq!(RunId(3).to_string(), "run:3");
        assert_eq!(ValueId(5).to_string(), "val:5");
    }
}
