//! Port references and bindings — the nodes of the provenance graph.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::{Index, ProcessorName, Value};

/// A reference to a port of a processor, written `P:X` in the paper.
///
/// Top-level workflow inputs and outputs are modelled as ports of the
/// distinguished processor named by the dataflow itself (the paper writes
/// e.g. `workflow:paths_per_gene`), so `PortRef` covers those uniformly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortRef {
    /// The processor.
    pub processor: ProcessorName,
    /// The port name on that processor.
    pub port: Arc<str>,
}

impl PortRef {
    /// Builds a `P:X` reference.
    pub fn new(processor: impl Into<ProcessorName>, port: &str) -> Self {
        PortRef { processor: processor.into(), port: Arc::from(port) }
    }

    /// The port name as a string slice.
    pub fn port_str(&self) -> &str {
        &self.port
    }
}

impl fmt::Display for PortRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.processor, self.port)
    }
}

/// A binding `⟨P:X[p], v⟩`: the value element `v[p]` observed at port `P:X`.
///
/// In trace records the value is referenced by id (see `prov-store`);
/// `Binding` carries the resolved [`Value`] element and is what lineage
/// queries return to users.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Binding {
    /// Which port.
    pub port: PortRef,
    /// Position within the port's (possibly nested) value; empty = whole.
    pub index: Index,
    /// The value element at that position.
    pub value: Value,
}

impl Binding {
    /// Builds a binding.
    pub fn new(port: PortRef, index: Index, value: Value) -> Self {
        Binding { port, index, value }
    }

    /// A whole-value (coarse-grained) binding.
    pub fn whole(port: PortRef, value: Value) -> Self {
        Binding { port, index: Index::empty(), value }
    }

    /// Whether this binding is fine-grained (addresses a strict part of the
    /// port's value).
    pub fn is_fine_grained(&self) -> bool {
        !self.index.is_empty()
    }
}

impl fmt::Display for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}{}, {}⟩", self.port, self.index, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_ref_displays_paper_notation() {
        let p = PortRef::new("get_pathways_by_genes", "genes_id_list");
        assert_eq!(p.to_string(), "get_pathways_by_genes:genes_id_list");
    }

    #[test]
    fn binding_displays_paper_notation() {
        let b = Binding::new(PortRef::new("P", "Y"), Index::from_slice(&[1, 2]), Value::str("bar"));
        assert_eq!(b.to_string(), "⟨P:Y[1,2], \"bar\"⟩");
    }

    #[test]
    fn whole_binding_is_coarse() {
        let b = Binding::whole(PortRef::new("P", "X"), Value::int(1));
        assert!(!b.is_fine_grained());
        assert!(b.index.is_empty());
        let f = Binding::new(PortRef::new("P", "X"), Index::single(0), Value::int(1));
        assert!(f.is_fine_grained());
    }

    #[test]
    fn port_ref_ordering_groups_by_processor() {
        let mut v = vec![PortRef::new("B", "x"), PortRef::new("A", "z"), PortRef::new("A", "a")];
        v.sort();
        assert_eq!(
            v,
            vec![PortRef::new("A", "a"), PortRef::new("A", "z"), PortRef::new("B", "x"),]
        );
    }

    #[test]
    fn binding_serde_round_trip() {
        let b = Binding::new(PortRef::new("P", "Y"), Index::single(3), Value::from(vec!["a", "b"]));
        let json = serde_json::to_string(&b).unwrap();
        assert_eq!(serde_json::from_str::<Binding>(&json).unwrap(), b);
    }
}
