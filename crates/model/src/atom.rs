//! Atomic (non-list) values flowing through a workflow.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// An `f64` wrapper with total equality and hashing by bit pattern.
///
/// Provenance traces must be able to key values by content (the store
/// deduplicates identical values), so atoms need `Eq + Hash`. Scientific
/// workflows do carry floating-point data; bit-pattern equality is the
/// standard compromise: it distinguishes `0.0` from `-0.0` and treats any
/// given NaN bit pattern as equal to itself, which is exactly what a
/// content-addressed store needs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
#[serde(transparent)]
pub struct F64(pub f64);

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}

impl Eq for F64 {}

impl std::hash::Hash for F64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Total order: IEEE total ordering via `total_cmp`.
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for F64 {
    fn from(v: f64) -> Self {
        F64(v)
    }
}

impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A Taverna-style error token: the value a failed elementary invocation
/// produces in place of real data.
///
/// Error tokens are first-class trace data — they flow through the remaining
/// iterations of an implicit-iteration sweep instead of aborting the run, and
/// downstream processors propagate them without invoking their behavior. The
/// token carries enough context for a lineage query to answer "which element
/// caused this error and after how many attempts".
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ErrorToken {
    /// The behavior's error message (for the originating token) or the
    /// originating token's message (for a propagated token).
    pub message: Arc<str>,
    /// The processor whose invocation originally failed. Propagation
    /// preserves the origin, so a token found at the workflow output still
    /// names the processor that raised it.
    pub origin: Arc<str>,
    /// How many invocation attempts were made before giving up (≥ 1 for an
    /// originating token; propagated tokens copy the origin's count).
    pub attempts: u32,
}

impl ErrorToken {
    /// Builds a token for a failure at `origin` after `attempts` tries.
    pub fn new(message: impl Into<Arc<str>>, origin: impl Into<Arc<str>>, attempts: u32) -> Self {
        ErrorToken { message: message.into(), origin: origin.into(), attempts }
    }
}

impl fmt::Display for ErrorToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error({}@{}: {})", self.origin, self.attempts, self.message)
    }
}

/// An atomic workflow value: the leaves of nested collections.
///
/// The paper's set `S` of basic types is left open; these variants cover the
/// data flowing through Taverna-style bioinformatics workflows (strings such
/// as gene and pathway identifiers, numbers, flags, raw payloads), plus the
/// [`ErrorToken`] a failed invocation leaves behind.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Atom {
    /// A UTF-8 string. `Arc<str>` keeps clones cheap: the same identifiers
    /// are copied along every arc of a trace.
    Str(Arc<str>),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float with bitwise equality (see [`F64`]).
    Float(F64),
    /// A boolean flag.
    Bool(bool),
    /// An opaque binary payload (e.g. an image produced by a processor).
    Bytes(bytes::Bytes),
    /// An error token standing in for data a failed invocation never
    /// produced. Boxed to keep `Atom` small for the common variants.
    Error(Box<ErrorToken>),
}

impl Atom {
    /// Returns the string content if this atom is a [`Atom::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Atom::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer content if this atom is an [`Atom::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Atom::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float content if this atom is an [`Atom::Float`].
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Atom::Float(F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Returns the boolean content if this atom is an [`Atom::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Atom::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the error token if this atom is an [`Atom::Error`].
    pub fn as_error(&self) -> Option<&ErrorToken> {
        match self {
            Atom::Error(t) => Some(t),
            _ => None,
        }
    }

    /// Whether this atom is an error token.
    pub fn is_error(&self) -> bool {
        matches!(self, Atom::Error(_))
    }

    /// A short lowercase name for the atom's base type, matching
    /// [`crate::BaseType`] rendering.
    pub fn type_name(&self) -> &'static str {
        match self {
            Atom::Str(_) => "string",
            Atom::Int(_) => "int",
            Atom::Float(_) => "float",
            Atom::Bool(_) => "bool",
            Atom::Bytes(_) => "bytes",
            Atom::Error(_) => "error",
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Str(s) => write!(f, "{s:?}"),
            Atom::Int(i) => write!(f, "{i}"),
            Atom::Float(v) => write!(f, "{v}"),
            Atom::Bool(b) => write!(f, "{b}"),
            Atom::Bytes(b) => write!(f, "bytes[{}]", b.len()),
            Atom::Error(t) => write!(f, "{t}"),
        }
    }
}

impl From<&str> for Atom {
    fn from(s: &str) -> Self {
        Atom::Str(Arc::from(s))
    }
}

impl From<String> for Atom {
    fn from(s: String) -> Self {
        Atom::Str(Arc::from(s.as_str()))
    }
}

impl From<i64> for Atom {
    fn from(i: i64) -> Self {
        Atom::Int(i)
    }
}

impl From<i32> for Atom {
    fn from(i: i32) -> Self {
        Atom::Int(i64::from(i))
    }
}

impl From<f64> for Atom {
    fn from(v: f64) -> Self {
        Atom::Float(F64(v))
    }
}

impl From<bool> for Atom {
    fn from(b: bool) -> Self {
        Atom::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn f64_nan_is_self_equal() {
        let nan = F64(f64::NAN);
        assert_eq!(nan, nan);
        assert_eq!(hash_of(&nan), hash_of(&nan));
    }

    #[test]
    fn f64_distinguishes_signed_zero() {
        assert_ne!(F64(0.0), F64(-0.0));
    }

    #[test]
    fn f64_total_order_sorts_normally() {
        let mut v = vec![F64(3.0), F64(-1.0), F64(2.5)];
        v.sort();
        assert_eq!(v, vec![F64(-1.0), F64(2.5), F64(3.0)]);
    }

    #[test]
    fn atom_conversions() {
        assert_eq!(Atom::from("x").as_str(), Some("x"));
        assert_eq!(Atom::from(7i64).as_int(), Some(7));
        assert_eq!(Atom::from(2.5f64).as_float(), Some(2.5));
        assert_eq!(Atom::from(true).as_bool(), Some(true));
    }

    #[test]
    fn atom_accessors_reject_other_variants() {
        assert_eq!(Atom::from(7i64).as_str(), None);
        assert_eq!(Atom::from("x").as_int(), None);
        assert_eq!(Atom::from(true).as_float(), None);
        assert_eq!(Atom::from(1.0f64).as_bool(), None);
    }

    #[test]
    fn atom_display_is_compact() {
        assert_eq!(Atom::from("foo").to_string(), "\"foo\"");
        assert_eq!(Atom::from(42i64).to_string(), "42");
        assert_eq!(Atom::Bytes(bytes::Bytes::from_static(b"abc")).to_string(), "bytes[3]");
    }

    #[test]
    fn atom_type_names() {
        assert_eq!(Atom::from("x").type_name(), "string");
        assert_eq!(Atom::from(1i64).type_name(), "int");
        assert_eq!(Atom::from(1.0f64).type_name(), "float");
        assert_eq!(Atom::from(false).type_name(), "bool");
        assert_eq!(Atom::Bytes(bytes::Bytes::new()).type_name(), "bytes");
        assert_eq!(Atom::Error(Box::new(ErrorToken::new("m", "P", 1))).type_name(), "error");
    }

    #[test]
    fn error_token_accessor_and_display() {
        let tok = ErrorToken::new("timed out", "BlastJob", 3);
        let a = Atom::Error(Box::new(tok.clone()));
        assert!(a.is_error());
        assert_eq!(a.as_error(), Some(&tok));
        assert_eq!(a.as_str(), None);
        assert!(!Atom::from("x").is_error());
        assert_eq!(a.to_string(), "error(BlastJob@3: timed out)");
    }

    #[test]
    fn atom_serde_round_trip() {
        let atoms = vec![
            Atom::from("gene"),
            Atom::from(-3i64),
            Atom::from(1.25f64),
            Atom::from(true),
            Atom::Bytes(bytes::Bytes::from_static(&[1, 2, 3])),
            Atom::Error(Box::new(ErrorToken::new("no such gene", "Lookup", 2))),
        ];
        for a in atoms {
            let json = serde_json::to_string(&a).unwrap();
            let back: Atom = serde_json::from_str(&json).unwrap();
            assert_eq!(a, back);
        }
    }
}
