//! Arbitrarily nested list values.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Atom, ErrorToken, Index, ModelError, Result};

/// A workflow value: an atom or an arbitrarily nested list.
///
/// The paper's model assumes *uniform* nesting: all elements of a list sit
/// at the same depth (`type([["foo","bar"],["red","fox"]]) =
/// list(list(string))`). [`Value::depth`] enforces that assumption; values
/// with ragged nesting are representable (they can arise transiently inside
/// a black-box processor) but are rejected where the iteration semantics
/// needs a well-defined depth.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A leaf value.
    Atom(Atom),
    /// A (possibly empty) ordered collection.
    List(Vec<Value>),
}

impl Value {
    /// Builds a string atom value.
    pub fn str(s: &str) -> Self {
        Value::Atom(Atom::from(s))
    }

    /// Builds an integer atom value.
    pub fn int(i: i64) -> Self {
        Value::Atom(Atom::from(i))
    }

    /// Builds a float atom value.
    pub fn float(v: f64) -> Self {
        Value::Atom(Atom::from(v))
    }

    /// Builds a boolean atom value.
    pub fn bool(b: bool) -> Self {
        Value::Atom(Atom::from(b))
    }

    /// Builds a list value.
    pub fn list(items: impl IntoIterator<Item = Value>) -> Self {
        Value::List(items.into_iter().collect())
    }

    /// An empty list.
    pub fn empty_list() -> Self {
        Value::List(Vec::new())
    }

    /// Builds an error-token atom value (see [`ErrorToken`]).
    pub fn error(
        message: impl Into<std::sync::Arc<str>>,
        origin: impl Into<std::sync::Arc<str>>,
        attempts: u32,
    ) -> Self {
        Value::Atom(Atom::Error(Box::new(ErrorToken::new(message, origin, attempts))))
    }

    /// The first error token in the value (lexicographic index order), if
    /// any. Downstream processors use this to short-circuit: an invocation
    /// whose inputs contain an error propagates it instead of running.
    pub fn first_error(&self) -> Option<&ErrorToken> {
        match self {
            Value::Atom(Atom::Error(t)) => Some(t),
            Value::Atom(_) => None,
            Value::List(items) => items.iter().find_map(Value::first_error),
        }
    }

    /// Whether any leaf of the value is an error token.
    pub fn contains_error(&self) -> bool {
        self.first_error().is_some()
    }

    /// Whether this value is an atom.
    pub fn is_atom(&self) -> bool {
        matches!(self, Value::Atom(_))
    }

    /// Returns the atom if this value is one.
    pub fn as_atom(&self) -> Option<&Atom> {
        match self {
            Value::Atom(a) => Some(a),
            Value::List(_) => None,
        }
    }

    /// Returns the list elements if this value is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::Atom(_) => None,
            Value::List(items) => Some(items),
        }
    }

    /// Number of direct elements (0 for an atom).
    pub fn len(&self) -> usize {
        match self {
            Value::Atom(_) => 0,
            Value::List(items) => items.len(),
        }
    }

    /// True for an empty list; false for atoms and non-empty lists.
    pub fn is_empty(&self) -> bool {
        matches!(self, Value::List(items) if items.is_empty())
    }

    /// The uniform nesting depth of this value: `0` for atoms, `1 + depth of
    /// elements` for lists.
    ///
    /// Errors with [`ModelError::RaggedValue`] if sibling elements disagree
    /// on depth. An empty list has no intrinsic element depth; by convention
    /// it reports depth `1` (a flat empty list) — when a deeper empty
    /// collection is required the engine consults the *declared* port depth
    /// instead (see `prov-dataflow`).
    pub fn depth(&self) -> Result<usize> {
        match self {
            Value::Atom(_) => Ok(0),
            Value::List(items) => {
                let mut element_depth: Option<usize> = None;
                for item in items {
                    let d = item.depth()?;
                    match element_depth {
                        None => element_depth = Some(d),
                        Some(prev) if prev != d => {
                            return Err(ModelError::RaggedValue { left: prev, right: d });
                        }
                        Some(_) => {}
                    }
                }
                Ok(1 + element_depth.unwrap_or(0))
            }
        }
    }

    /// The element at index `p`, i.e. the paper's `v[p1 … pk]`.
    ///
    /// The empty index returns the whole value. Returns `None` if the path
    /// leaves the value (descending into an atom or out-of-range position).
    pub fn at(&self, index: &Index) -> Option<&Value> {
        let mut cur = self;
        for p in index.iter() {
            match cur {
                Value::List(items) => cur = items.get(p as usize)?,
                Value::Atom(_) => return None,
            }
        }
        Some(cur)
    }

    /// Wraps this value in `n` singleton lists, producing an `n`-deeper
    /// value. This implements the paper's handling of *negative* depth
    /// mismatches (`d_i < 0`): "the mismatch is dealt with by nesting a
    /// value v within |d_i| new lists, creating a |d_i|-deep singleton."
    pub fn wrap(self, n: usize) -> Self {
        let mut v = self;
        for _ in 0..n {
            v = Value::List(vec![v]);
        }
        v
    }

    /// Removes one level of nesting: `[[a,b],[c]] → [a,b,c]` (the `flatten`
    /// processor used in the right branch of the paper's Fig. 1 workflow).
    ///
    /// Errors if the value is an atom or a list whose direct elements are
    /// atoms (there is no level to remove).
    pub fn flatten(&self) -> Result<Value> {
        let items = self.as_list().ok_or(ModelError::NotAList)?;
        let mut out = Vec::new();
        for item in items {
            match item {
                Value::List(inner) => out.extend(inner.iter().cloned()),
                Value::Atom(_) => return Err(ModelError::NotAList),
            }
        }
        Ok(Value::List(out))
    }

    /// Enumerates `(index, element)` pairs for all elements lying exactly
    /// `levels` deep, in lexicographic index order.
    ///
    /// With `levels == 0` this yields the single pair `([], self)`. This is
    /// the iteration pattern of the engine: a depth mismatch of `δ` on a
    /// port iterates over the elements `levels = δ` deep.
    pub fn enumerate_at(&self, levels: usize) -> Vec<(Index, &Value)> {
        let mut out = Vec::new();
        self.enumerate_at_inner(levels, Index::empty(), &mut out);
        out
    }

    fn enumerate_at_inner<'a>(
        &'a self,
        levels: usize,
        prefix: Index,
        out: &mut Vec<(Index, &'a Value)>,
    ) {
        if levels == 0 {
            out.push((prefix, self));
            return;
        }
        if let Value::List(items) = self {
            for (i, item) in items.iter().enumerate() {
                item.enumerate_at_inner(levels - 1, prefix.child(i as u32), out);
            }
        }
        // Descending `levels` into an atom yields nothing: there are no
        // elements that deep. (Callers validate depths beforehand; this
        // keeps enumeration total.)
    }

    /// Enumerates `(index, atom)` pairs for every leaf of the value, in
    /// lexicographic index order.
    pub fn leaves(&self) -> Vec<(Index, &Atom)> {
        let mut out = Vec::new();
        fn walk<'a>(v: &'a Value, prefix: Index, out: &mut Vec<(Index, &'a Atom)>) {
            match v {
                Value::Atom(a) => out.push((prefix, a)),
                Value::List(items) => {
                    for (i, item) in items.iter().enumerate() {
                        walk(item, prefix.child(i as u32), out);
                    }
                }
            }
        }
        walk(self, Index::empty(), &mut out);
        out
    }

    /// Total number of atoms in the value.
    pub fn atom_count(&self) -> usize {
        match self {
            Value::Atom(_) => 1,
            Value::List(items) => items.iter().map(Value::atom_count).sum(),
        }
    }

    /// The *shape* of the value: its per-level branching as nested lengths.
    /// Two values with equal shape have identical sets of valid indices.
    pub fn shape(&self) -> Shape {
        match self {
            Value::Atom(_) => Shape::Atom,
            Value::List(items) => Shape::List(items.iter().map(Value::shape).collect()),
        }
    }

    /// Builds a nested value from leaf content at the given `depth`, taking
    /// the elements from `leaves` in order with the given per-level
    /// `lengths` (all levels uniform). Utility for tests and generators.
    pub fn uniform<T: Into<Atom>>(lengths: &[usize], mut make_leaf: impl FnMut() -> T) -> Value {
        fn build<T: Into<Atom>>(lengths: &[usize], make_leaf: &mut impl FnMut() -> T) -> Value {
            match lengths.split_first() {
                None => Value::Atom(make_leaf().into()),
                Some((n, rest)) => Value::List((0..*n).map(|_| build(rest, make_leaf)).collect()),
            }
        }
        build(lengths, &mut make_leaf)
    }
}

/// The branching structure of a [`Value`], without leaf content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Shape {
    /// A leaf.
    Atom,
    /// A list of element shapes.
    List(Vec<Shape>),
}

impl From<Atom> for Value {
    fn from(a: Atom) -> Self {
        Value::Atom(a)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Atom(Atom::from(s))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::int(i)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::bool(b)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::List(v.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Atom(a) => write!(f, "{a}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nested() -> Value {
        // [["foo","bar"],["red","fox"]] — the paper's running example.
        Value::from(vec![vec!["foo", "bar"], vec!["red", "fox"]])
    }

    #[test]
    fn depth_of_paper_example_is_two() {
        assert_eq!(nested().depth().unwrap(), 2);
        assert_eq!(Value::str("x").depth().unwrap(), 0);
        assert_eq!(Value::from(vec!["a", "b"]).depth().unwrap(), 1);
    }

    #[test]
    fn depth_of_empty_list_is_one_by_convention() {
        assert_eq!(Value::empty_list().depth().unwrap(), 1);
    }

    #[test]
    fn ragged_value_is_rejected() {
        let ragged = Value::List(vec![Value::str("a"), Value::from(vec!["b"])]);
        assert!(matches!(ragged.depth(), Err(ModelError::RaggedValue { .. })));
    }

    #[test]
    fn at_matches_paper_accessor_example() {
        // ⟨P:X[1,2], [["foo","bar"],["red","fox"]]⟩ = "bar" in the paper's
        // 1-based notation; 0-based that is index [0,1].
        let v = nested();
        assert_eq!(v.at(&Index::from_slice(&[0, 1])), Some(&Value::str("bar")));
        assert_eq!(v.at(&Index::from_slice(&[1, 0])), Some(&Value::str("red")));
        assert_eq!(v.at(&Index::empty()), Some(&v));
    }

    #[test]
    fn at_rejects_invalid_paths() {
        let v = nested();
        assert_eq!(v.at(&Index::from_slice(&[2])), None); // out of range
        assert_eq!(v.at(&Index::from_slice(&[0, 0, 0])), None); // through an atom
    }

    #[test]
    fn wrap_builds_singletons() {
        let v = Value::str("x").wrap(2);
        assert_eq!(v, Value::List(vec![Value::List(vec![Value::str("x")])]));
        assert_eq!(v.depth().unwrap(), 2);
        assert_eq!(Value::int(1).wrap(0), Value::int(1));
    }

    #[test]
    fn flatten_removes_one_level() {
        let v = nested().flatten().unwrap();
        assert_eq!(v, Value::from(vec!["foo", "bar", "red", "fox"]));
        assert!(Value::str("x").flatten().is_err());
        assert!(Value::from(vec!["a"]).flatten().is_err());
    }

    #[test]
    fn flatten_of_empty_outer_list_is_empty() {
        assert_eq!(Value::empty_list().flatten().unwrap(), Value::empty_list());
    }

    #[test]
    fn enumerate_at_zero_yields_whole_value() {
        let v = nested();
        let pairs = v.enumerate_at(0);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, Index::empty());
        assert_eq!(pairs[0].1, &v);
    }

    #[test]
    fn enumerate_at_one_yields_sublists() {
        let v = nested();
        let pairs = v.enumerate_at(1);
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, Index::single(0));
        assert_eq!(pairs[1].1, &Value::from(vec!["red", "fox"]));
    }

    #[test]
    fn enumerate_at_two_yields_atoms_in_order() {
        let v = nested();
        let pairs = v.enumerate_at(2);
        let indices: Vec<String> = pairs.iter().map(|(i, _)| i.to_string()).collect();
        assert_eq!(indices, vec!["[0,0]", "[0,1]", "[1,0]", "[1,1]"]);
    }

    #[test]
    fn enumerate_past_atoms_is_empty() {
        assert!(Value::str("x").enumerate_at(1).is_empty());
        assert_eq!(nested().enumerate_at(3).len(), 0);
    }

    #[test]
    fn leaves_and_atom_count_agree() {
        let v = nested();
        assert_eq!(v.leaves().len(), v.atom_count());
        assert_eq!(v.atom_count(), 4);
        assert_eq!(Value::str("x").atom_count(), 1);
        assert_eq!(Value::empty_list().atom_count(), 0);
    }

    #[test]
    fn uniform_builder_produces_uniform_depth() {
        let mut n = 0i64;
        let v = Value::uniform(&[2, 3], || {
            n += 1;
            n
        });
        assert_eq!(v.depth().unwrap(), 2);
        assert_eq!(v.atom_count(), 6);
        assert_eq!(v.at(&Index::from_slice(&[1, 0])), Some(&Value::int(4)));
    }

    #[test]
    fn shape_equality_tracks_structure_not_content() {
        let a = Value::from(vec![vec![1i64, 2], vec![3]]);
        let b = Value::from(vec![vec![9i64, 9], vec![9]]);
        let c = Value::from(vec![vec![1i64], vec![2, 3]]);
        assert_eq!(a.shape(), b.shape());
        assert_ne!(a.shape(), c.shape());
    }

    #[test]
    fn display_renders_nested_lists() {
        assert_eq!(
            Value::from(vec![vec!["a"], vec!["b", "c"]]).to_string(),
            "[[\"a\"], [\"b\", \"c\"]]"
        );
    }

    #[test]
    fn first_error_finds_earliest_leaf_token() {
        let ok = Value::from(vec!["a", "b"]);
        assert!(!ok.contains_error());
        assert_eq!(ok.first_error(), None);
        let v = Value::List(vec![
            Value::from(vec!["a"]),
            Value::List(vec![Value::error("bad", "P", 2), Value::error("later", "Q", 1)]),
        ]);
        assert!(v.contains_error());
        let tok = v.first_error().unwrap();
        assert_eq!(&*tok.origin, "P");
        assert_eq!(tok.attempts, 2);
    }

    #[test]
    fn error_value_wraps_to_declared_depth() {
        let v = Value::error("boom", "P", 1).wrap(2);
        assert_eq!(v.depth().unwrap(), 2);
        assert!(v.contains_error());
    }

    #[test]
    fn serde_round_trip() {
        let v = nested();
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
