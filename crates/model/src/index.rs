//! Element accessor indices `p = [p1 … pk]` into nested list values.
//!
//! The paper writes `v[p1 … pk]` for the element of a nested list reached by
//! descending through positions `p1, …, pk`, and `[]` for the whole value.
//! Indices are the currency of fine-grained provenance: every *xform* and
//! *xfer* event carries one, and the index projection rule (Def. 4)
//! manipulates them by concatenation and slicing.
//!
//! Real workflows rarely nest deeper than 3; [`Index`] therefore stores up
//! to [`Index::INLINE`] components inline and only heap-allocates beyond
//! that (ablation #5 in DESIGN.md).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Maximum number of components stored without heap allocation.
const INLINE_CAP: usize = 8;

/// A position path into a nested list value.
///
/// The empty index denotes the entire value. Components are 0-based here
/// (the paper's prose examples are 1-based; the arithmetic is identical).
///
/// ```
/// use prov_model::Index;
/// let p = Index::from_slice(&[1, 2]);
/// let q = Index::from_slice(&[0]);
/// assert_eq!(p.concat(&q), Index::from_slice(&[1, 2, 0]));
/// assert_eq!(p.concat(&q).project(1, 2), Index::from_slice(&[2, 0]));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(from = "Vec<u32>", into = "Vec<u32>")]
pub enum Index {
    /// At most `INLINE_CAP` components, stored inline.
    #[doc(hidden)]
    Inline {
        /// Number of valid components in `buf`.
        len: u8,
        /// Component storage; entries past `len` are zero.
        buf: [u32; INLINE_CAP],
    },
    /// More than `INLINE_CAP` components.
    #[doc(hidden)]
    Heap(Vec<u32>),
}

impl Index {
    /// Number of components that fit without heap allocation.
    pub const INLINE: usize = INLINE_CAP;

    /// The empty index `[]`, denoting a whole value.
    pub const fn empty() -> Self {
        Index::Inline { len: 0, buf: [0; INLINE_CAP] }
    }

    /// Builds an index from a slice of components.
    pub fn from_slice(components: &[u32]) -> Self {
        if components.len() <= INLINE_CAP {
            let mut buf = [0u32; INLINE_CAP];
            buf[..components.len()].copy_from_slice(components);
            Index::Inline { len: components.len() as u8, buf }
        } else {
            Index::Heap(components.to_vec())
        }
    }

    /// A single-component index `[i]`.
    pub fn single(i: u32) -> Self {
        let mut buf = [0u32; INLINE_CAP];
        buf[0] = i;
        Index::Inline { len: 1, buf }
    }

    /// The components as a slice.
    pub fn as_slice(&self) -> &[u32] {
        match self {
            Index::Inline { len, buf } => &buf[..*len as usize],
            Index::Heap(v) => v,
        }
    }

    /// Number of components `k` in `[p1 … pk]`.
    pub fn len(&self) -> usize {
        match self {
            Index::Inline { len, .. } => *len as usize,
            Index::Heap(v) => v.len(),
        }
    }

    /// Whether this is the empty index (whole-value granularity).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a new index with `i` appended: `[p1 … pk, i]`.
    pub fn child(&self, i: u32) -> Self {
        let s = self.as_slice();
        if s.len() < INLINE_CAP {
            let mut buf = [0u32; INLINE_CAP];
            buf[..s.len()].copy_from_slice(s);
            buf[s.len()] = i;
            Index::Inline { len: (s.len() + 1) as u8, buf }
        } else {
            let mut v = Vec::with_capacity(s.len() + 1);
            v.extend_from_slice(s);
            v.push(i);
            Index::Heap(v)
        }
    }

    /// Concatenation `p · q` (Prop. 1: an output index is the concatenation
    /// of the per-port input indices).
    pub fn concat(&self, other: &Index) -> Self {
        let (a, b) = (self.as_slice(), other.as_slice());
        if a.is_empty() {
            return other.clone();
        }
        if b.is_empty() {
            return self.clone();
        }
        let total = a.len() + b.len();
        if total <= INLINE_CAP {
            let mut buf = [0u32; INLINE_CAP];
            buf[..a.len()].copy_from_slice(a);
            buf[a.len()..total].copy_from_slice(b);
            Index::Inline { len: total as u8, buf }
        } else {
            let mut v = Vec::with_capacity(total);
            v.extend_from_slice(a);
            v.extend_from_slice(b);
            Index::Heap(v)
        }
    }

    /// The projection `p(start : start+len-1)`: the contiguous fragment of
    /// `len` components beginning at 0-based position `start` (Def. 4).
    ///
    /// Requesting a fragment that extends past the end of the index returns
    /// the available suffix (this arises when a *coarse* query index is
    /// shorter than the full fine-grained index; the remaining components
    /// are simply "whole value" on the corresponding ports).
    pub fn project(&self, start: usize, len: usize) -> Self {
        let s = self.as_slice();
        if start >= s.len() || len == 0 {
            return Index::empty();
        }
        let end = (start + len).min(s.len());
        Index::from_slice(&s[start..end])
    }

    /// The first `n` components (or the whole index if shorter).
    pub fn prefix(&self, n: usize) -> Self {
        let s = self.as_slice();
        Index::from_slice(&s[..n.min(s.len())])
    }

    /// Whether `self` is a (non-strict) prefix of `other`: the element at
    /// `other` lies inside the sub-collection at `self`.
    pub fn is_prefix_of(&self, other: &Index) -> bool {
        other.as_slice().starts_with(self.as_slice())
    }

    /// Iterator over the components.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.as_slice().iter().copied()
    }
}

impl PartialOrd for Index {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Index {
    /// Lexicographic order on the components, regardless of the inline/heap
    /// representation. This is load-bearing: the trace store's B-tree
    /// indexes rely on all extensions of a prefix being contiguous.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Default for Index {
    fn default() -> Self {
        Index::empty()
    }
}

impl From<Vec<u32>> for Index {
    fn from(v: Vec<u32>) -> Self {
        if v.len() > INLINE_CAP {
            Index::Heap(v)
        } else {
            Index::from_slice(&v)
        }
    }
}

impl From<Index> for Vec<u32> {
    fn from(i: Index) -> Self {
        match i {
            Index::Heap(v) => v,
            inline => inline.as_slice().to_vec(),
        }
    }
}

impl From<&[u32]> for Index {
    fn from(s: &[u32]) -> Self {
        Index::from_slice(s)
    }
}

impl<const N: usize> From<[u32; N]> for Index {
    fn from(s: [u32; N]) -> Self {
        Index::from_slice(&s)
    }
}

impl FromIterator<u32> for Index {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let v: Vec<u32> = iter.into_iter().collect();
        Index::from(v)
    }
}

impl fmt::Display for Index {
    /// The paper's `[p1,p2,…]` notation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Debug for Index {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_index_is_whole_value() {
        let e = Index::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.to_string(), "[]");
    }

    #[test]
    fn from_slice_round_trips() {
        for n in [0usize, 1, 7, 8, 9, 20] {
            let comps: Vec<u32> = (0..n as u32).collect();
            let idx = Index::from_slice(&comps);
            assert_eq!(idx.as_slice(), comps.as_slice());
            assert_eq!(idx.len(), n);
        }
    }

    #[test]
    fn inline_to_heap_transition_preserves_equality() {
        // Equality must hold across representations; `child` on a full
        // inline index must spill to heap correctly.
        let mut idx = Index::empty();
        for i in 0..9 {
            idx = idx.child(i);
        }
        assert_eq!(idx, Index::from_slice(&[0, 1, 2, 3, 4, 5, 6, 7, 8]));
        assert_eq!(idx.len(), 9);
    }

    #[test]
    fn concat_matches_paper_prop1_example() {
        // q = p1 · p2 for [i]·[j] = [i,j]
        let p1 = Index::single(3);
        let p2 = Index::single(5);
        assert_eq!(p1.concat(&p2), Index::from_slice(&[3, 5]));
    }

    #[test]
    fn concat_with_empty_is_identity() {
        let p = Index::from_slice(&[1, 2, 3]);
        assert_eq!(p.concat(&Index::empty()), p);
        assert_eq!(Index::empty().concat(&p), p);
    }

    #[test]
    fn concat_spills_to_heap() {
        let a = Index::from_slice(&[0; 6]);
        let b = Index::from_slice(&[1; 6]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 12);
        assert_eq!(&c.as_slice()[..6], &[0; 6]);
        assert_eq!(&c.as_slice()[6..], &[1; 6]);
    }

    #[test]
    fn project_extracts_fragments() {
        let p = Index::from_slice(&[9, 8, 7, 6]);
        assert_eq!(p.project(0, 2), Index::from_slice(&[9, 8]));
        assert_eq!(p.project(2, 2), Index::from_slice(&[7, 6]));
        assert_eq!(p.project(1, 1), Index::single(8));
    }

    #[test]
    fn project_clamps_to_available_suffix() {
        let p = Index::from_slice(&[1, 2]);
        assert_eq!(p.project(1, 5), Index::single(2));
        assert_eq!(p.project(4, 2), Index::empty());
        assert_eq!(p.project(0, 0), Index::empty());
    }

    #[test]
    fn prefix_and_is_prefix_of() {
        let p = Index::from_slice(&[1, 2, 3]);
        assert_eq!(p.prefix(2), Index::from_slice(&[1, 2]));
        assert_eq!(p.prefix(9), p);
        assert!(Index::from_slice(&[1, 2]).is_prefix_of(&p));
        assert!(Index::empty().is_prefix_of(&p));
        assert!(!Index::from_slice(&[2]).is_prefix_of(&p));
        assert!(p.is_prefix_of(&p));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Index::from_slice(&[1, 2]).to_string(), "[1,2]");
        assert_eq!(format!("{:?}", Index::single(4)), "[4]");
    }

    #[test]
    fn ordering_is_lexicographic_on_components() {
        let mut v = vec![
            Index::from_slice(&[1, 0]),
            Index::from_slice(&[0, 5]),
            Index::empty(),
            Index::single(0),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Index::empty(),
                Index::single(0),
                Index::from_slice(&[0, 5]),
                Index::from_slice(&[1, 0]),
            ]
        );
    }

    #[test]
    fn ordering_is_lexicographic_across_representations() {
        // An inline [5] must sort AFTER a heap-backed 9-component index
        // starting with 0, and extensions of a prefix must be contiguous.
        let long_small = Index::from_slice(&[0, 0, 0, 0, 0, 0, 0, 0, 1]); // heap
        let short_big = Index::single(5); // inline
        assert!(long_small < short_big);
        // [1] < [1,0] < [1,0,…(9 comps)…] < [2]
        let a = Index::single(1);
        let b = Index::from_slice(&[1, 0]);
        let c = Index::from_slice(&[1, 0, 0, 0, 0, 0, 0, 0, 0]); // heap
        let d = Index::single(2);
        assert!(a < b && b < c && c < d);
    }

    #[test]
    fn serde_round_trip_via_vec() {
        for idx in [Index::empty(), Index::from_slice(&[1, 2, 3]), Index::from_slice(&[0; 12])] {
            let json = serde_json::to_string(&idx).unwrap();
            let back: Index = serde_json::from_str(&json).unwrap();
            assert_eq!(idx, back);
        }
    }

    #[test]
    fn collect_from_iterator() {
        let idx: Index = (0u32..4).collect();
        assert_eq!(idx, Index::from_slice(&[0, 1, 2, 3]));
    }
}
