//! Declared port types: `list^d(base)`.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::ModelError;

/// A nesting depth. The paper's `dd(X)` (declared depth) and `depth(P:X)`
/// (propagated actual depth) are both `Depth`s; the *mismatch*
/// `δ(X) = depth − dd` is a signed quantity and is kept as `i32`.
pub type Depth = usize;

/// Basic (atomic) value types — the paper's set `S`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum BaseType {
    /// UTF-8 text.
    String,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// Opaque binary payload.
    Bytes,
}

impl BaseType {
    /// Lowercase name, as used in the `list(list(string))` rendering.
    pub fn name(self) -> &'static str {
        match self {
            BaseType::String => "string",
            BaseType::Int => "int",
            BaseType::Float => "float",
            BaseType::Bool => "bool",
            BaseType::Bytes => "bytes",
        }
    }
}

impl fmt::Display for BaseType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A declared port type: a base type wrapped in `depth` list constructors.
///
/// `PortType { base: String, depth: 2 }` is the paper's
/// `list(list(string))`. The declared depth `dd(X)` of a port is
/// `port_type.depth`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PortType {
    /// The atomic element type.
    pub base: BaseType,
    /// Number of `list(·)` wrappers; `0` means a plain atom.
    pub depth: Depth,
}

impl PortType {
    /// A plain atomic type (depth 0).
    pub const fn atom(base: BaseType) -> Self {
        PortType { base, depth: 0 }
    }

    /// A flat list of `base` (depth 1).
    pub const fn list(base: BaseType) -> Self {
        PortType { base, depth: 1 }
    }

    /// A type nested to the given depth.
    pub const fn nested(base: BaseType, depth: Depth) -> Self {
        PortType { base, depth }
    }

    /// The type of the elements of this (list) type; `None` for atoms.
    pub fn element(self) -> Option<PortType> {
        if self.depth == 0 {
            None
        } else {
            Some(PortType { base: self.base, depth: self.depth - 1 })
        }
    }

    /// Wraps this type in one more list constructor.
    pub fn wrapped(self) -> PortType {
        PortType { base: self.base, depth: self.depth + 1 }
    }
}

impl fmt::Display for PortType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for _ in 0..self.depth {
            write!(f, "list(")?;
        }
        write!(f, "{}", self.base)?;
        for _ in 0..self.depth {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl FromStr for PortType {
    type Err = ModelError;

    /// Parses the `list(list(string))` notation used throughout the paper.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut depth = 0usize;
        let mut rest = s.trim();
        while let Some(inner) = rest.strip_prefix("list(") {
            let inner =
                inner.strip_suffix(')').ok_or_else(|| ModelError::TypeParse(s.to_string()))?;
            depth += 1;
            rest = inner.trim();
        }
        let base = match rest {
            "string" => BaseType::String,
            "int" => BaseType::Int,
            "float" => BaseType::Float,
            "bool" => BaseType::Bool,
            "bytes" => BaseType::Bytes,
            _ => return Err(ModelError::TypeParse(s.to_string())),
        };
        Ok(PortType { base, depth })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(PortType::atom(BaseType::String).to_string(), "string");
        assert_eq!(PortType::list(BaseType::String).to_string(), "list(string)");
        assert_eq!(PortType::nested(BaseType::String, 2).to_string(), "list(list(string))");
    }

    #[test]
    fn parse_round_trips() {
        for t in [
            PortType::atom(BaseType::Int),
            PortType::list(BaseType::Float),
            PortType::nested(BaseType::Bool, 3),
            PortType::nested(BaseType::Bytes, 1),
        ] {
            let s = t.to_string();
            assert_eq!(s.parse::<PortType>().unwrap(), t, "{s}");
        }
    }

    #[test]
    fn parse_tolerates_whitespace() {
        assert_eq!(
            " list( list( string ) ) ".parse::<PortType>().unwrap(),
            PortType::nested(BaseType::String, 2)
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!("list(string".parse::<PortType>().is_err());
        assert!("array(string)".parse::<PortType>().is_err());
        assert!("list(strings)".parse::<PortType>().is_err());
        assert!("".parse::<PortType>().is_err());
    }

    #[test]
    fn element_and_wrapped_are_inverses() {
        let t = PortType::nested(BaseType::String, 2);
        assert_eq!(t.element().unwrap().wrapped(), t);
        assert_eq!(PortType::atom(BaseType::Int).element(), None);
    }
}
