//! # prov-model
//!
//! The nested-collection data model underpinning collection-based workflow
//! provenance, after Missier, Paton & Belhajjame, *"Fine-grained and
//! efficient lineage querying of collection-based workflow provenance"*
//! (EDBT 2010), Section 2.
//!
//! The model has four ingredients:
//!
//! * [`Value`] — an arbitrarily nested list of [`Atom`]s, e.g.
//!   `[["foo","bar"],["red","fox"]]`, with `type(v) = list(list(string))`.
//! * [`Index`] — an element accessor `p = [p1..pk]` into a nested value,
//!   following the paper's `v[p1 … pk]` notation. The empty index `[]`
//!   denotes the whole value.
//! * [`PortType`] / [`Depth`] — declared port types `list^d(base)`; the
//!   *declared depth* `dd(X)` drives Taverna's implicit iteration.
//! * [`Binding`] — `⟨P:X[p], v⟩`: a (possibly fine-grained) association of a
//!   value element with a processor port, the node type of the provenance
//!   graph.
//!
//! Everything here is deliberately independent of how workflows are
//! specified (`prov-dataflow`), executed (`prov-engine`) or traced
//! (`prov-store`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod atom;
mod binding;
mod error;
mod ids;
mod index;
mod types;
mod value;

pub use atom::{Atom, ErrorToken, F64};
pub use binding::{Binding, PortRef};
pub use error::ModelError;
pub use ids::{ProcessorName, RunId, ValueId};
pub use index::Index;
pub use types::{BaseType, Depth, PortType};
pub use value::{Shape, Value};

/// Convenience result alias for model operations.
pub type Result<T> = std::result::Result<T, ModelError>;
