//! Property-based tests for the data model invariants.

use proptest::prelude::*;
use prov_model::{Index, Value};

/// Strategy for uniform-depth values with bounded fanout.
fn uniform_value() -> impl Strategy<Value = Value> {
    // depth 0..=3, per-level lengths 1..=4
    (0usize..=3).prop_flat_map(|depth| {
        proptest::collection::vec(1usize..=4, depth).prop_map(|lengths| {
            let mut n = 0i64;
            Value::uniform(&lengths, || {
                n += 1;
                n
            })
        })
    })
}

fn arb_index() -> impl Strategy<Value = Index> {
    proptest::collection::vec(0u32..64, 0..12).prop_map(Index::from)
}

proptest! {
    /// depth() of a uniform value equals the number of levels it was built with.
    #[test]
    fn uniform_values_have_uniform_depth(lengths in proptest::collection::vec(1usize..=4, 0..4)) {
        let v = Value::uniform(&lengths, || 0i64);
        prop_assert_eq!(v.depth().unwrap(), lengths.len());
    }

    /// Accessor law: v.at(p.concat(q)) == v.at(p).and_then(|w| w.at(q)).
    #[test]
    fn accessor_composes_over_concat(v in uniform_value(), p in arb_index(), q in arb_index()) {
        let direct = v.at(&p.concat(&q));
        let staged = v.at(&p).and_then(|w| w.at(&q));
        prop_assert_eq!(direct, staged);
    }

    /// Every index yielded by enumerate_at(k) has length k and resolves to
    /// the same element via at().
    #[test]
    fn enumerate_at_is_consistent_with_at(v in uniform_value(), k in 0usize..=3) {
        for (idx, elem) in v.enumerate_at(k) {
            prop_assert_eq!(idx.len(), k);
            prop_assert_eq!(v.at(&idx), Some(elem));
        }
    }

    /// enumerate_at(depth) yields exactly the leaves, in the same order.
    #[test]
    fn enumerate_at_full_depth_equals_leaves(v in uniform_value()) {
        let d = v.depth().unwrap();
        let at_depth = v.enumerate_at(d);
        let leaves = v.leaves();
        prop_assert_eq!(at_depth.len(), leaves.len());
        for ((i1, v1), (i2, a2)) in at_depth.iter().zip(leaves.iter()) {
            prop_assert_eq!(i1, i2);
            prop_assert_eq!(v1.as_atom(), Some(*a2));
        }
    }

    /// Index concat is associative with empty as identity.
    #[test]
    fn index_concat_monoid(a in arb_index(), b in arb_index(), c in arb_index()) {
        prop_assert_eq!(a.concat(&b).concat(&c), a.concat(&b.concat(&c)));
        prop_assert_eq!(a.concat(&Index::empty()), a.clone());
        prop_assert_eq!(Index::empty().concat(&a), a);
    }

    /// Splitting an index with project() at any point reassembles to the original.
    #[test]
    fn project_partitions_reassemble(idx in arb_index(), cut in 0usize..12) {
        let cut = cut.min(idx.len());
        let head = idx.project(0, cut);
        let tail = idx.project(cut, idx.len() - cut);
        prop_assert_eq!(head.concat(&tail), idx);
    }

    /// wrap(n) adds exactly n to the depth and the inner value is reachable
    /// at index [0; n].
    #[test]
    fn wrap_depth_law(v in uniform_value(), n in 0usize..4) {
        let d = v.depth().unwrap();
        let w = v.clone().wrap(n);
        prop_assert_eq!(w.depth().unwrap(), d + n);
        let zeros: Index = std::iter::repeat_n(0u32, n).collect();
        prop_assert_eq!(w.at(&zeros), Some(&v));
    }

    /// Serde round-trip through JSON preserves values exactly.
    #[test]
    fn value_serde_round_trip(v in uniform_value()) {
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(v, back);
    }

    /// flatten reduces depth by one and preserves leaf order.
    #[test]
    fn flatten_preserves_leaf_order(lengths in proptest::collection::vec(1usize..=4, 2..4)) {
        let mut n = 0i64;
        let v = Value::uniform(&lengths, || { n += 1; n });
        let f = v.flatten().unwrap();
        prop_assert_eq!(f.depth().unwrap(), v.depth().unwrap() - 1);
        let a: Vec<_> = v.leaves().into_iter().map(|(_, a)| a.clone()).collect();
        let b: Vec<_> = f.leaves().into_iter().map(|(_, a)| a.clone()).collect();
        prop_assert_eq!(a, b);
    }
}
