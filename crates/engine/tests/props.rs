//! Property tests for the iteration semantics and Prop. 1 (index
//! projection): for arbitrary values and mismatch vectors, every emitted
//! xform index satisfies `q = p1 · … · pn` with `|p_i| = max(δ_i, 0)`, and
//! executing any generated chain workflow preserves the invariants the
//! INDEXPROJ algorithm relies on.

use proptest::prelude::*;

use prov_dataflow::{BaseType, DataflowBuilder, IterationStrategy, PortType};
use prov_engine::{iteration_tuples, BehaviorRegistry, Engine, VecSink};
use prov_model::{Index, Value};

/// A uniform value of the given depth with 1..=3 fanout per level.
fn value_of_depth(depth: usize) -> impl Strategy<Value = Value> {
    proptest::collection::vec(1usize..=3, depth).prop_map(|lengths| {
        let mut n = 0i64;
        Value::uniform(&lengths, || {
            n += 1;
            n
        })
    })
}

/// A vector of (value, mismatch) pairs where 0 <= mismatch <= depth(value).
fn ports() -> impl Strategy<Value = Vec<(Value, i64)>> {
    proptest::collection::vec(
        (0usize..=2).prop_flat_map(|d| (value_of_depth(d), 0i64..=(d as i64))),
        1..=3,
    )
}

proptest! {
    /// Prop. 1 for the cross strategy: output index concatenates per-port
    /// fragments whose lengths equal the mismatches.
    #[test]
    fn prop1_cross_indices_concatenate(ports in ports()) {
        let values: Vec<Value> = ports.iter().map(|(v, _)| v.clone()).collect();
        let mismatches: Vec<i64> = ports.iter().map(|(_, d)| *d).collect();
        let tuples = iteration_tuples("P", &values, &mismatches, IterationStrategy::Cross).unwrap();

        // Invocation count = product of per-port element counts.
        let expected: usize = ports
            .iter()
            .map(|(v, d)| if *d == 0 { 1 } else { v.enumerate_at(*d as usize).len() })
            .product();
        prop_assert_eq!(tuples.len(), expected);

        for t in &tuples {
            let mut q = Index::empty();
            for ((idx, elem), (value, d)) in t.inputs.iter().zip(&ports) {
                prop_assert_eq!(idx.len(), (*d).max(0) as usize);
                // The element really is value[idx].
                prop_assert_eq!(value.at(idx), Some(elem));
                q = q.concat(idx);
            }
            prop_assert_eq!(&q, &t.output_index);
        }
    }

    /// All cross-product output indices are distinct and lexicographically
    /// sorted (row-major order).
    #[test]
    fn cross_indices_are_sorted_and_unique(ports in ports()) {
        let values: Vec<Value> = ports.iter().map(|(v, _)| v.clone()).collect();
        let mismatches: Vec<i64> = ports.iter().map(|(_, d)| *d).collect();
        let tuples = iteration_tuples("P", &values, &mismatches, IterationStrategy::Cross).unwrap();
        let indices: Vec<&Index> = tuples.iter().map(|t| &t.output_index).collect();
        for w in indices.windows(2) {
            prop_assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
    }

    /// Executing an identity chain of arbitrary length over an arbitrary
    /// flat list reproduces the input at the output, with one xform event
    /// per element per stage.
    #[test]
    fn identity_chain_roundtrip(len in 1usize..6, items in proptest::collection::vec("[a-z]{1,4}", 1..6)) {
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::list(BaseType::String));
        let names: Vec<String> = (0..len).map(|i| format!("P{i}")).collect();
        for name in &names {
            b.processor_with_behavior(name, "identity")
                .in_port("x", PortType::atom(BaseType::String))
                .out_port("y", PortType::atom(BaseType::String));
        }
        b.arc_from_input("in", &names[0], "x").unwrap();
        for w in names.windows(2) {
            b.arc(&w[0], "y", &w[1], "x").unwrap();
        }
        b.output("out", PortType::list(BaseType::String));
        b.arc_to_output(&names[len - 1], "y", "out").unwrap();
        let df = b.build().unwrap();

        let value = Value::from(items.iter().map(String::as_str).collect::<Vec<_>>());
        let sink = VecSink::new();
        let engine = Engine::new(BehaviorRegistry::new().with_builtins());
        let run = engine.execute(&df, vec![("in".into(), value.clone())], &sink).unwrap();
        prop_assert_eq!(run.output("out"), Some(&value));
        prop_assert_eq!(sink.xforms_of(run.run_id).len(), len * items.len());
        // Fine xfer: (len + 1) arcs × |items| element transfers.
        prop_assert_eq!(sink.xfers_of(run.run_id).len(), (len + 1) * items.len());
    }

    /// Dot vs cross on equal-length lists: dot produces exactly the
    /// diagonal of the cross product.
    #[test]
    fn dot_is_diagonal_of_cross(n in 1usize..5) {
        let a = Value::from((0..n as i64).map(Value::int).collect::<Vec<_>>());
        let b = Value::from((10..10 + n as i64).map(Value::int).collect::<Vec<_>>());
        let dot = iteration_tuples("P", &[a.clone(), b.clone()], &[1, 1], IterationStrategy::Dot).unwrap();
        let cross = iteration_tuples("P", &[a, b], &[1, 1], IterationStrategy::Cross).unwrap();
        prop_assert_eq!(dot.len(), n);
        prop_assert_eq!(cross.len(), n * n);
        for t in &dot {
            let i = t.inputs[0].0.clone();
            let diag = cross.iter().find(|c| c.inputs[0].0 == i && c.inputs[1].0 == i).unwrap();
            prop_assert_eq!(&t.inputs, &diag.inputs);
        }
    }
}
