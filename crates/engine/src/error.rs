//! Execution errors.

use std::fmt;

use prov_dataflow::DataflowError;
use prov_model::ModelError;

/// Errors raised while executing a dataflow.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The specification itself is invalid (propagated from `prov-dataflow`).
    Spec(DataflowError),
    /// A value-level operation failed (propagated from `prov-model`).
    Model(ModelError),
    /// No behaviour is registered under the given key.
    UnknownBehavior(String),
    /// A required workflow input was not supplied by the caller.
    MissingWorkflowInput(String),
    /// A processor input port has neither an incoming arc nor a default.
    UnboundInput {
        /// Processor name.
        processor: String,
        /// Port name.
        port: String,
    },
    /// A runtime value's depth disagrees with the statically propagated
    /// depth — assumption 1 or 2 of §3.1 was violated by a behaviour or by
    /// the caller.
    DepthMismatch {
        /// Where the mismatch was observed, e.g. `P:x`.
        at: String,
        /// Statically expected depth.
        expected: usize,
        /// Observed depth.
        actual: usize,
    },
    /// A behaviour returned the wrong number of outputs.
    ArityMismatch {
        /// Processor name.
        processor: String,
        /// Number of declared output ports.
        expected: usize,
        /// Number of values returned.
        actual: usize,
    },
    /// Dot (zip) iteration was asked to combine lists of unequal length.
    DotLengthMismatch {
        /// Processor name.
        processor: String,
    },
    /// A behaviour failed; carries its message.
    Behavior {
        /// Processor name.
        processor: String,
        /// The behaviour's error message.
        message: String,
    },
    /// The static pre-flight analysis found error-level diagnostics, so the
    /// run was refused before any event was recorded. Disable with
    /// [`crate::Engine::without_preflight`].
    Preflight {
        /// Rendered error-level diagnostics, one per entry.
        errors: Vec<String>,
    },
    /// A crashed run could not be resumed — the run is missing from the
    /// trace, or was recorded under a different workflow.
    Resume {
        /// Why the resume was refused.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Spec(e) => write!(f, "invalid dataflow: {e}"),
            EngineError::Model(e) => write!(f, "value error: {e}"),
            EngineError::UnknownBehavior(k) => write!(f, "no behaviour registered for {k:?}"),
            EngineError::MissingWorkflowInput(p) => {
                write!(f, "workflow input {p:?} was not supplied")
            }
            EngineError::UnboundInput { processor, port } => {
                write!(f, "input {processor}:{port} has neither an arc nor a default")
            }
            EngineError::DepthMismatch { at, expected, actual } => write!(
                f,
                "depth mismatch at {at}: static analysis expected {expected}, value has {actual}"
            ),
            EngineError::ArityMismatch { processor, expected, actual } => {
                write!(f, "behaviour of {processor} returned {actual} outputs, {expected} declared")
            }
            EngineError::DotLengthMismatch { processor } => {
                write!(f, "dot iteration over unequal list lengths at {processor}")
            }
            EngineError::Behavior { processor, message } => {
                write!(f, "behaviour of {processor} failed: {message}")
            }
            EngineError::Preflight { errors } => {
                write!(f, "pre-flight analysis rejected the workflow: {}", errors.join("; "))
            }
            EngineError::Resume { message } => write!(f, "cannot resume: {message}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<DataflowError> for EngineError {
    fn from(e: DataflowError) -> Self {
        EngineError::Spec(e)
    }
}

impl From<ModelError> for EngineError {
    fn from(e: ModelError) -> Self {
        EngineError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = EngineError::DepthMismatch { at: "P:x".into(), expected: 1, actual: 3 };
        assert!(e.to_string().contains("P:x"));
        assert!(e.to_string().contains("expected 1"));
        let e = EngineError::ArityMismatch { processor: "P".into(), expected: 2, actual: 1 };
        assert!(e.to_string().contains("returned 1"));
    }

    #[test]
    fn conversions_wrap_sources() {
        let e: EngineError = DataflowError::UnknownProcessor("P".into()).into();
        assert!(matches!(e, EngineError::Spec(_)));
        let e: EngineError = ModelError::NotAList.into();
        assert!(matches!(e, EngineError::Model(_)));
    }
}
