//! # prov-engine
//!
//! A data-driven executor for collection-oriented dataflows, implementing
//! the Taverna iteration semantics formalised in the paper's Section 3:
//!
//! * the **generalized cross product** `⊗` over depth-mismatched inputs
//!   (Def. 2), plus the footnote-7 dot-product ("zip") combinator;
//! * the recursive evaluation function **`eval_l`** (Def. 3), which
//!   dispatches one elementary invocation of a black-box processor per
//!   combination of iterated input elements;
//! * singleton **wrapping** for negative mismatches;
//! * emission of the *observable* provenance events of §2.3 — one *xform*
//!   record per elementary invocation (with fine-grained indices satisfying
//!   Prop. 1: `q = p1 · … · pn`) and *xfer* records for element transfers
//!   along arcs — into any [`TraceSink`].
//!
//! Processors remain black boxes throughout ([`Behavior`] sees only values,
//! never indices); all fine-grained structure comes from the iteration
//! machinery, exactly as in the paper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod behavior;
mod error;
mod events;
mod exec;
mod iteration;
mod resume;
mod retry;

pub use behavior::{builtin, Behavior, BehaviorRegistry, FnBehavior};
pub use error::EngineError;
pub use events::{
    NullSink, PortBinding, ReportingSink, RunReport, TraceEvent, TraceGranularity, TraceSink,
    VecSink, XferEvent, XformEvent,
};
pub use exec::{Engine, ExecutionMode, FailedInvocation, RunOutcome, RunStatus};
pub use iteration::{assemble_nested, iteration_tuples, IterationTuple};
pub use resume::ResumeSource;
pub use retry::{
    invocation_salt, Backoff, Clock, ClockSource, RetryOn, RetryPolicy, SystemClock, VirtualClock,
};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, EngineError>;
