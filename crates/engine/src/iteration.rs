//! The iteration semantics: Def. 2 (generalized cross product), Def. 3
//! (`eval_l`), and the dot-product combinator of footnote 7.
//!
//! Rather than literally building the nested tuple structure of Def. 2 and
//! recursing through `eval_l`, [`iteration_tuples`] enumerates the
//! *flattened* result: one [`IterationTuple`] per elementary invocation,
//! carrying the iteration index `q` and, per input port, the element value
//! and its source index `p_i`. This is provably the same set of
//! invocations (the property tests in this module check Prop. 1 directly:
//! `q = p1 · … · pn` with `|p_i| = max(δ_s(X_i), 0)`), and it is the form
//! both the executor and the provenance records need.

use prov_dataflow::IterationStrategy;
use prov_model::{Index, Value};

use crate::{EngineError, Result};

/// One elementary invocation of a processor: the combination of input
/// elements selected by the iteration structure.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationTuple {
    /// The iteration index `q` under which this invocation's outputs are
    /// placed (empty when no iteration occurs).
    pub output_index: Index,
    /// Per input port, in port order: the index `p_i` of the consumed
    /// element within the port's value (empty = whole value) and the
    /// element itself.
    pub inputs: Vec<(Index, Value)>,
}

/// Enumerates the elementary invocations for a processor whose input ports
/// are bound to `values` with static mismatches `mismatches` (`δ_s(X_i)`),
/// under the given iteration strategy.
///
/// Negative mismatches must be resolved by the caller (by wrapping the
/// value; see `Engine`): this function treats `δ < 0` as `δ = 0`.
///
/// For the cross strategy, tuples are produced in lexicographic order of
/// `q`, which is the row-major order of Def. 2's nested comprehension. For
/// the dot strategy, mismatched ports are iterated in lockstep and must
/// yield equally many elements.
///
/// An empty list on an iterated port yields **no** invocations (the map
/// over an empty list is empty) — downstream values are then empty lists.
pub fn iteration_tuples(
    processor: &str,
    values: &[Value],
    mismatches: &[i64],
    strategy: IterationStrategy,
) -> Result<Vec<IterationTuple>> {
    assert_eq!(values.len(), mismatches.len(), "one mismatch per port");

    // Per port: the list of (index, element) pairs it contributes.
    // Ports with δ ≤ 0 contribute the single pair ([], whole value).
    let per_port: Vec<Vec<(Index, &Value)>> = values
        .iter()
        .zip(mismatches)
        .map(|(v, &d)| if d <= 0 { vec![(Index::empty(), v)] } else { v.enumerate_at(d as usize) })
        .collect();

    match strategy {
        IterationStrategy::Cross => Ok(cross(&per_port)),
        IterationStrategy::Dot => dot(processor, &per_port, mismatches),
    }
}

/// Row-major cross product of the per-port element enumerations; the
/// output index is the concatenation of the per-port indices (Prop. 1).
fn cross(per_port: &[Vec<(Index, &Value)>]) -> Vec<IterationTuple> {
    let total: usize = per_port.iter().map(Vec::len).product();
    let mut out = Vec::with_capacity(total);
    if total == 0 {
        return out;
    }
    // Odometer over the per-port positions.
    let mut cursor = vec![0usize; per_port.len()];
    loop {
        let mut output_index = Index::empty();
        let mut inputs = Vec::with_capacity(per_port.len());
        for (port, &c) in per_port.iter().zip(&cursor) {
            let (idx, v) = &port[c];
            output_index = output_index.concat(idx);
            inputs.push((idx.clone(), (*v).clone()));
        }
        out.push(IterationTuple { output_index, inputs });

        // Advance the odometer, least-significant (last port) first.
        let mut k = per_port.len();
        loop {
            if k == 0 {
                return out;
            }
            k -= 1;
            cursor[k] += 1;
            if cursor[k] < per_port[k].len() {
                break;
            }
            cursor[k] = 0;
        }
    }
}

/// Lockstep ("zip") combination: all iterated ports advance together and
/// share the index of the iteration; non-iterated ports repeat their whole
/// value.
fn dot(
    processor: &str,
    per_port: &[Vec<(Index, &Value)>],
    mismatches: &[i64],
) -> Result<Vec<IterationTuple>> {
    let mut steps: Option<usize> = None;
    for (port, &d) in per_port.iter().zip(mismatches) {
        if d > 0 {
            match steps {
                None => steps = Some(port.len()),
                Some(n) if n != port.len() => {
                    return Err(EngineError::DotLengthMismatch { processor: processor.into() })
                }
                Some(_) => {}
            }
        }
    }
    let steps = steps.unwrap_or(1);
    let mut out = Vec::with_capacity(steps);
    for s in 0..steps {
        let mut output_index = Index::empty();
        let mut inputs = Vec::with_capacity(per_port.len());
        for (port, &d) in per_port.iter().zip(mismatches) {
            if d > 0 {
                let (idx, v) = &port[s];
                if output_index.is_empty() {
                    output_index = idx.clone();
                } else if &output_index != idx {
                    // Lockstep over uniform values always agrees; disagreement
                    // means ragged input shapes.
                    return Err(EngineError::DotLengthMismatch { processor: processor.into() });
                }
                inputs.push((idx.clone(), (*v).clone()));
            } else {
                let (_, v) = &port[0];
                inputs.push((Index::empty(), (*v).clone()));
            }
        }
        out.push(IterationTuple { output_index, inputs });
    }
    Ok(out)
}

/// Rebuilds the nested output value from per-invocation results.
///
/// `pairs` holds `(q, value)` for every elementary invocation, in any
/// order; `levels` is the total iteration depth (every `q` has exactly
/// `levels` components). The result wraps the invocation outputs in
/// `levels` list layers according to the indices — the structure `eval_l`
/// builds via nested `map`s.
///
/// With `levels == 0` there is exactly one pair and its value is returned
/// as-is. Missing indices are impossible when pairs come from
/// [`iteration_tuples`] (the cross product is dense); the function is
/// nevertheless total and fills nothing in: it groups whatever it is given.
pub fn assemble_nested(mut pairs: Vec<(Index, Value)>, levels: usize) -> Value {
    if levels == 0 {
        debug_assert!(pairs.len() <= 1);
        return pairs.pop().map(|(_, v)| v).unwrap_or_else(Value::empty_list);
    }
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    build_level(&pairs, 0, levels)
}

fn build_level(pairs: &[(Index, Value)], depth: usize, levels: usize) -> Value {
    if depth == levels {
        debug_assert_eq!(pairs.len(), 1);
        return pairs[0].1.clone();
    }
    let mut items = Vec::new();
    let mut start = 0usize;
    while start < pairs.len() {
        let head = pairs[start].0.as_slice()[depth];
        let mut end = start + 1;
        while end < pairs.len() && pairs[end].0.as_slice()[depth] == head {
            end += 1;
        }
        items.push(build_level(&pairs[start..end], depth + 1, levels));
        start = end;
    }
    Value::List(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(items: &[&str]) -> Value {
        Value::from(items.to_vec())
    }

    #[test]
    fn no_mismatch_is_single_invocation() {
        let tuples =
            iteration_tuples("P", &[strs(&["a", "b"])], &[0], IterationStrategy::Cross).unwrap();
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].output_index, Index::empty());
        assert_eq!(tuples[0].inputs[0], (Index::empty(), strs(&["a", "b"])));
    }

    #[test]
    fn single_port_mismatch_one_iterates_elements() {
        // (eval_1 P [a,b]) = [P a, P b]
        let tuples =
            iteration_tuples("P", &[strs(&["a", "b"])], &[1], IterationStrategy::Cross).unwrap();
        assert_eq!(tuples.len(), 2);
        assert_eq!(tuples[0].output_index, Index::single(0));
        assert_eq!(tuples[0].inputs[0], (Index::single(0), Value::str("a")));
        assert_eq!(tuples[1].inputs[0], (Index::single(1), Value::str("b")));
    }

    #[test]
    fn paper_eval2_example_shape() {
        // (eval_2 P [[a,b]]) touches a then b, with 2-component indices.
        let v = Value::from(vec![vec!["a", "b"]]);
        let tuples = iteration_tuples("P", &[v], &[2], IterationStrategy::Cross).unwrap();
        assert_eq!(tuples.len(), 2);
        assert_eq!(tuples[0].output_index, Index::from_slice(&[0, 0]));
        assert_eq!(tuples[1].output_index, Index::from_slice(&[0, 1]));
        assert_eq!(tuples[1].inputs[0].1, Value::str("b"));
    }

    #[test]
    fn fig3_cross_product_indices() {
        // P⟨a, c, b⟩ with δ = (1, 0, 1): n·m invocations, q = [i] · [j],
        // X2 consumed whole — the paper's Fig. 3 trace.
        let a = strs(&["a1", "a2"]);
        let c = strs(&["c1", "c2", "c3"]);
        let b = strs(&["b1", "b2", "b3"]);
        let tuples = iteration_tuples(
            "P",
            &[a.clone(), c.clone(), b.clone()],
            &[1, 0, 1],
            IterationStrategy::Cross,
        )
        .unwrap();
        assert_eq!(tuples.len(), 6);
        // Row-major: last port varies fastest.
        assert_eq!(tuples[0].output_index, Index::from_slice(&[0, 0]));
        assert_eq!(tuples[1].output_index, Index::from_slice(&[0, 1]));
        assert_eq!(tuples[3].output_index, Index::from_slice(&[1, 0]));
        for t in &tuples {
            // Prop. 1: q = p1 · p2 · p3 with |p1|=1, |p2|=0, |p3|=1.
            let q = t.inputs[0].0.concat(&t.inputs[1].0).concat(&t.inputs[2].0);
            assert_eq!(q, t.output_index);
            assert_eq!(t.inputs[1].0, Index::empty());
            assert_eq!(t.inputs[1].1, c);
        }
        // Elements line up with their indices.
        assert_eq!(tuples[5].inputs[0].1, Value::str("a2"));
        assert_eq!(tuples[5].inputs[2].1, Value::str("b3"));
    }

    #[test]
    fn negative_mismatch_treated_as_whole_value() {
        let tuples =
            iteration_tuples("P", &[Value::str("x")], &[-2], IterationStrategy::Cross).unwrap();
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].inputs[0].0, Index::empty());
    }

    #[test]
    fn empty_iterated_list_yields_no_invocations() {
        let tuples = iteration_tuples(
            "P",
            &[Value::empty_list(), strs(&["c"])],
            &[1, 0],
            IterationStrategy::Cross,
        )
        .unwrap();
        assert!(tuples.is_empty());
    }

    #[test]
    fn dot_iterates_in_lockstep() {
        let a = strs(&["a1", "a2", "a3"]);
        let b = strs(&["b1", "b2", "b3"]);
        let tuples = iteration_tuples("P", &[a, b], &[1, 1], IterationStrategy::Dot).unwrap();
        assert_eq!(tuples.len(), 3);
        assert_eq!(tuples[1].output_index, Index::single(1));
        assert_eq!(tuples[1].inputs[0].1, Value::str("a2"));
        assert_eq!(tuples[1].inputs[1].1, Value::str("b2"));
    }

    #[test]
    fn dot_rejects_unequal_lengths() {
        let a = strs(&["a1", "a2"]);
        let b = strs(&["b1", "b2", "b3"]);
        assert!(matches!(
            iteration_tuples("P", &[a, b], &[1, 1], IterationStrategy::Dot),
            Err(EngineError::DotLengthMismatch { .. })
        ));
    }

    #[test]
    fn dot_passes_unmismatched_ports_whole() {
        let a = strs(&["a1", "a2"]);
        let c = Value::str("c");
        let tuples =
            iteration_tuples("P", &[a, c.clone()], &[1, 0], IterationStrategy::Dot).unwrap();
        assert_eq!(tuples.len(), 2);
        assert_eq!(tuples[0].inputs[1], (Index::empty(), c));
    }

    #[test]
    fn assemble_zero_levels_returns_single_value() {
        let v = assemble_nested(vec![(Index::empty(), Value::int(7))], 0);
        assert_eq!(v, Value::int(7));
    }

    #[test]
    fn assemble_one_level_builds_flat_list() {
        let pairs = vec![
            (Index::single(1), Value::str("b")),
            (Index::single(0), Value::str("a")),
            (Index::single(2), Value::str("c")),
        ];
        assert_eq!(assemble_nested(pairs, 1), strs(&["a", "b", "c"]));
    }

    #[test]
    fn assemble_two_levels_builds_matrix() {
        let mut pairs = Vec::new();
        for i in 0..2u32 {
            for j in 0..3u32 {
                pairs.push((Index::from_slice(&[i, j]), Value::str(&format!("y{i}{j}"))));
            }
        }
        let v = assemble_nested(pairs, 2);
        assert_eq!(v.depth().unwrap(), 1 + 1); // two list levels over atoms
        assert_eq!(v.at(&Index::from_slice(&[1, 2])), Some(&Value::str("y12")));
        assert_eq!(v.len(), 2);
        assert_eq!(v.as_list().unwrap()[0].len(), 3);
    }

    #[test]
    fn assemble_handles_ragged_group_sizes() {
        // Iteration over values whose sublists differ in length produces
        // ragged (but depth-uniform) outputs.
        let pairs = vec![
            (Index::from_slice(&[0, 0]), Value::int(1)),
            (Index::from_slice(&[1, 0]), Value::int(2)),
            (Index::from_slice(&[1, 1]), Value::int(3)),
        ];
        let v = assemble_nested(pairs, 2);
        assert_eq!(v.as_list().unwrap()[0].len(), 1);
        assert_eq!(v.as_list().unwrap()[1].len(), 2);
    }

    #[test]
    fn round_trip_iterate_then_assemble_preserves_value() {
        // Identity processor over any iterated value reassembles to the
        // original value.
        let v = Value::from(vec![vec!["x", "y"], vec!["z", "w"]]);
        let tuples =
            iteration_tuples("P", std::slice::from_ref(&v), &[2], IterationStrategy::Cross)
                .unwrap();
        let pairs: Vec<(Index, Value)> =
            tuples.into_iter().map(|t| (t.output_index, t.inputs[0].1.clone())).collect();
        assert_eq!(assemble_nested(pairs, 2), v);
    }
}
