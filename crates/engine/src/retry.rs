//! Retry policies for elementary invocations.
//!
//! A behavior invocation that fails is retried according to a
//! [`RetryPolicy`]: up to `max_attempts` tries, separated by a
//! deterministic [`Backoff`] delay, bounded by an optional wall-clock
//! `deadline`, and filtered by a [`RetryOn`] predicate over the error
//! message (so permanent errors don't burn attempts). Time comes from an
//! injectable [`Clock`], which keeps retry behaviour — including backoff
//! arithmetic and deadline expiry — fully deterministic under test via
//! [`VirtualClock`].

use std::fmt;
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// A deterministic backoff schedule: the delay before retry `n` (the delay
/// after the `n`-th failed attempt, 1-based) is a pure function of `n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Backoff {
    /// No delay between attempts.
    None,
    /// The same delay before every retry.
    Fixed {
        /// Delay in microseconds.
        micros: u64,
    },
    /// `base · 2^(n-1)`, capped at `max`.
    Exponential {
        /// Delay before the first retry, in microseconds.
        base_micros: u64,
        /// Upper bound on any single delay, in microseconds.
        max_micros: u64,
    },
}

impl Backoff {
    /// The delay before the retry following failed attempt `attempt`
    /// (1-based), in microseconds.
    pub fn delay_micros(&self, attempt: u32) -> u64 {
        match self {
            Backoff::None => 0,
            Backoff::Fixed { micros } => *micros,
            Backoff::Exponential { base_micros, max_micros } => {
                let shift = attempt.saturating_sub(1).min(63);
                base_micros.saturating_mul(1u64 << shift).min(*max_micros)
            }
        }
    }
}

/// Which failures are worth retrying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryOn {
    /// Retry every failure (the default).
    Any,
    /// Retry only failures whose message contains the given substring;
    /// anything else fails on the first attempt.
    MessageContains(Arc<str>),
}

impl RetryOn {
    /// Whether a failure with this message should be retried.
    pub fn matches(&self, message: &str) -> bool {
        match self {
            RetryOn::Any => true,
            RetryOn::MessageContains(needle) => message.contains(&**needle),
        }
    }
}

/// A per-processor retry policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total invocation attempts (≥ 1); `1` means no retries.
    pub max_attempts: u32,
    /// Delay schedule between attempts.
    pub backoff: Backoff,
    /// Optional budget in microseconds, measured from the first attempt's
    /// start on the engine's [`Clock`]; once exceeded, no further retries
    /// are made even if attempts remain.
    pub deadline_micros: Option<u64>,
    /// Predicate selecting retryable failures.
    pub retry_on: RetryOn,
    /// Seed for deterministic backoff jitter. `None` (the default) keeps
    /// the raw [`Backoff`] schedule; with a seed, each delay is spread over
    /// the half-to-full range of the base delay, keyed by the seed, the
    /// per-invocation salt, and the attempt — so parallel iterations don't
    /// retry in lock-step, yet every schedule replays identically.
    pub jitter_seed: Option<u64>,
}

impl RetryPolicy {
    /// The default policy: one attempt, no retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Backoff::None,
            deadline_micros: None,
            retry_on: RetryOn::Any,
            jitter_seed: None,
        }
    }

    /// A policy with `max_attempts` total attempts and no delay.
    pub fn attempts(max_attempts: u32) -> Self {
        RetryPolicy { max_attempts: max_attempts.max(1), ..RetryPolicy::none() }
    }

    /// Sets the backoff schedule.
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// Sets the deadline budget in microseconds.
    pub fn with_deadline_micros(mut self, micros: u64) -> Self {
        self.deadline_micros = Some(micros);
        self
    }

    /// Sets the retry predicate.
    pub fn with_retry_on(mut self, retry_on: RetryOn) -> Self {
        self.retry_on = retry_on;
        self
    }

    /// Enables deterministic jitter under the given seed.
    pub fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// The delay before the retry following failed attempt `attempt`
    /// (1-based), in microseconds — the [`Backoff`] schedule, spread over
    /// `[base/2, base]` when jitter is enabled. `salt` identifies the
    /// invocation (see [`invocation_salt`]): different invocations get
    /// decorrelated schedules, the same invocation replays the same one.
    pub fn delay_micros(&self, attempt: u32, salt: u64) -> u64 {
        let base = self.backoff.delay_micros(attempt);
        let Some(seed) = self.jitter_seed else { return base };
        if base == 0 {
            return 0;
        }
        let half = base / 2;
        let span = base - half + 1;
        half + splitmix64(seed ^ splitmix64(salt ^ u64::from(attempt))) % span
    }

    /// Whether another attempt is allowed after failed attempt `attempt`
    /// (1-based) with the given message, `elapsed_micros` into the
    /// invocation.
    pub fn should_retry(&self, attempt: u32, message: &str, elapsed_micros: u64) -> bool {
        attempt < self.max_attempts
            && self.retry_on.matches(message)
            && self.deadline_micros.is_none_or(|d| elapsed_micros < d)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// SplitMix64: a tiny, high-quality bit mixer. Used to decorrelate jitter
/// streams; statistical quality matters here only enough to avoid retry
/// synchronisation, and determinism matters completely.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A stable per-invocation salt for [`RetryPolicy::delay_micros`]: FNV-1a
/// over the qualified processor name and the absolute iteration index.
/// Pure data — two runs of the same workflow produce identical salts, so
/// jittered schedules replay bit-for-bit.
pub fn invocation_salt(processor: &str, index: &prov_model::Index) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x100000001b3);
    };
    for b in processor.as_bytes() {
        eat(*b);
    }
    for component in index.iter() {
        for b in component.to_le_bytes() {
            eat(b);
        }
    }
    h
}

/// An injectable time source for retry scheduling.
///
/// The engine only ever observes time through its clock, so tests can swap
/// in a [`VirtualClock`] and assert exact backoff/deadline behaviour
/// without sleeping.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Monotonic-enough microseconds since an arbitrary epoch.
    fn now_micros(&self) -> u64;
    /// Blocks (or pretends to) for the given number of microseconds.
    fn sleep_micros(&self, micros: u64);
}

/// The real wall clock: `SystemTime` plus `thread::sleep`.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_micros(&self) -> u64 {
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(0)
    }

    fn sleep_micros(&self, micros: u64) {
        if micros > 0 {
            std::thread::sleep(std::time::Duration::from_micros(micros));
        }
    }
}

/// A deterministic clock for tests: `sleep` advances a counter instead of
/// blocking, and every slept duration is recorded.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: parking_lot::Mutex<u64>,
    slept: parking_lot::Mutex<Vec<u64>>,
}

impl VirtualClock {
    /// A virtual clock starting at time 0.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Every `sleep_micros` duration observed, in order.
    pub fn sleeps(&self) -> Vec<u64> {
        self.slept.lock().clone()
    }
}

impl Clock for VirtualClock {
    fn now_micros(&self) -> u64 {
        *self.now.lock()
    }

    fn sleep_micros(&self, micros: u64) {
        *self.now.lock() += micros;
        self.slept.lock().push(micros);
    }
}

/// Adapter exposing any [`Clock`] as a [`prov_obs::TimeSource`], so a
/// service can hand the query layer per-request deadlines driven by the
/// same injectable clock that schedules its retries — a `VirtualClock`
/// then expires a served request deterministically under test.
#[derive(Debug, Clone)]
pub struct ClockSource(pub Arc<dyn Clock>);

impl prov_obs::TimeSource for ClockSource {
    fn now_micros(&self) -> u64 {
        self.0.now_micros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_backoff_doubles_and_caps() {
        let b = Backoff::Exponential { base_micros: 100, max_micros: 450 };
        assert_eq!(b.delay_micros(1), 100);
        assert_eq!(b.delay_micros(2), 200);
        assert_eq!(b.delay_micros(3), 400);
        assert_eq!(b.delay_micros(4), 450);
        assert_eq!(b.delay_micros(64), 450); // shift clamp, no overflow
    }

    #[test]
    fn fixed_and_none_backoff() {
        assert_eq!(Backoff::Fixed { micros: 7 }.delay_micros(5), 7);
        assert_eq!(Backoff::None.delay_micros(1), 0);
    }

    #[test]
    fn policy_counts_attempts() {
        let p = RetryPolicy::attempts(3);
        assert!(p.should_retry(1, "x", 0));
        assert!(p.should_retry(2, "x", 0));
        assert!(!p.should_retry(3, "x", 0));
    }

    #[test]
    fn policy_respects_retry_on_filter() {
        let p =
            RetryPolicy::attempts(5).with_retry_on(RetryOn::MessageContains(Arc::from("timeout")));
        assert!(p.should_retry(1, "connection timeout", 0));
        assert!(!p.should_retry(1, "no such gene", 0));
    }

    #[test]
    fn policy_respects_deadline() {
        let p = RetryPolicy::attempts(10).with_deadline_micros(1_000);
        assert!(p.should_retry(1, "x", 999));
        assert!(!p.should_retry(1, "x", 1_000));
    }

    #[test]
    fn attempts_floor_is_one() {
        assert_eq!(RetryPolicy::attempts(0).max_attempts, 1);
    }

    #[test]
    fn virtual_clock_advances_on_sleep() {
        let c = VirtualClock::new();
        assert_eq!(c.now_micros(), 0);
        c.sleep_micros(100);
        c.sleep_micros(200);
        assert_eq!(c.now_micros(), 300);
        assert_eq!(c.sleeps(), vec![100, 200]);
    }

    fn schedule(p: &RetryPolicy, salt: u64) -> Vec<u64> {
        (1..=4).map(|a| p.delay_micros(a, salt)).collect()
    }

    #[test]
    fn no_jitter_seed_keeps_the_raw_schedule() {
        let p = RetryPolicy::attempts(4)
            .with_backoff(Backoff::Exponential { base_micros: 100, max_micros: 1_000 });
        assert_eq!(schedule(&p, 0), vec![100, 200, 400, 800]);
        assert_eq!(schedule(&p, 99), vec![100, 200, 400, 800]);
    }

    #[test]
    fn jitter_stays_in_half_to_full_range_and_replays_identically() {
        let p = RetryPolicy::attempts(4)
            .with_backoff(Backoff::Exponential { base_micros: 100, max_micros: 1_000 })
            .with_jitter(42);
        for salt in [0u64, 1, 0xDEAD, u64::MAX] {
            let s = schedule(&p, salt);
            for (i, (d, base)) in s.iter().zip([100u64, 200, 400, 800]).enumerate() {
                assert!(*d >= base / 2 && *d <= base, "attempt {}: {d} vs base {base}", i + 1);
            }
            // A fixed (seed, salt) replays the identical schedule.
            assert_eq!(s, schedule(&p, salt));
        }
        // Zero base never jitters into a positive delay.
        assert_eq!(RetryPolicy::attempts(2).with_jitter(42).delay_micros(1, 7), 0);
    }

    #[test]
    fn jitter_schedules_differ_across_invocations() {
        let p = RetryPolicy::attempts(4)
            .with_backoff(Backoff::Exponential { base_micros: 1_000_000, max_micros: u64::MAX })
            .with_jitter(42);
        let a = schedule(&p, invocation_salt("wf/P", &prov_model::Index::single(0)));
        let b = schedule(&p, invocation_salt("wf/P", &prov_model::Index::single(1)));
        let c = schedule(&p, invocation_salt("wf/Q", &prov_model::Index::single(0)));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // And across seeds for the same invocation.
        let p2 = p.clone().with_jitter(43);
        assert_ne!(a, schedule(&p2, invocation_salt("wf/P", &prov_model::Index::single(0))));
    }

    #[test]
    fn invocation_salt_is_stable_data() {
        let idx = prov_model::Index::from_slice(&[1, 2, 3]);
        assert_eq!(invocation_salt("wf/P", &idx), invocation_salt("wf/P", &idx));
        assert_ne!(
            invocation_salt("wf/P", &idx),
            invocation_salt("wf/P", &prov_model::Index::empty())
        );
    }
}
