//! Observable provenance events (§2.3) and the sink abstraction.
//!
//! The trace `T_{E_D}` of a run is the collection of all observable *xform*
//! and *xfer* events. The engine pushes them into a [`TraceSink`] as they
//! happen; `prov-store` provides the durable, indexed implementation, and
//! [`VecSink`] / [`NullSink`] serve tests and benchmarks.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use prov_model::{Index, PortRef, ProcessorName, RunId, Value};

/// One port's side of an *xform* event: `⟨P:X[p], v⟩` with the value
/// resolved inline (sinks may deduplicate values by content).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortBinding {
    /// Port name on the event's processor.
    pub port: Arc<str>,
    /// Element index within the value bound to the port (empty = whole).
    pub index: Index,
    /// The consumed/produced element.
    pub value: Value,
}

impl PortBinding {
    /// Builds a port binding.
    pub fn new(port: &str, index: Index, value: Value) -> Self {
        PortBinding { port: Arc::from(port), index, value }
    }
}

/// An *xform* event: one elementary invocation of a processor,
/// `⟨P:X1[p1],v1⟩ … ⟨P:Xn[pn],vn⟩ → ⟨P:Y1[q],w1⟩ …` (relation (1), §2.3).
///
/// With implicit iteration a single processor contributes many xform
/// events per run — e.g. `|a|·|b|` of them for the cross product of Fig. 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XformEvent {
    /// The (scope-qualified) processor name.
    pub processor: ProcessorName,
    /// Invocation ordinal within this processor and run (0-based).
    pub invocation: u32,
    /// Consumed input elements, one per input port, in port order.
    pub inputs: Vec<PortBinding>,
    /// Produced output elements, one per output port, in port order. All
    /// share the same iteration index `q`.
    pub outputs: Vec<PortBinding>,
}

impl fmt::Display for XformEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.inputs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "⟨{}:{}{}, {}⟩", self.processor, b.port, b.index, b.value)?;
        }
        write!(f, " → ")?;
        for (i, b) in self.outputs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "⟨{}:{}{}, {}⟩", self.processor, b.port, b.index, b.value)?;
        }
        Ok(())
    }
}

/// An *xfer* event: the transfer of one element along an arc,
/// `⟨P:X[p], v⟩ → ⟨P′:Y[p′], v⟩` (relation (2), §2.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XferEvent {
    /// Source port.
    pub src: PortRef,
    /// Element index at the source.
    pub src_index: Index,
    /// Destination port.
    pub dst: PortRef,
    /// Element index at the destination (equal to `src_index` for plain
    /// arcs; kept separate because the relation allows reindexing).
    pub dst_index: Index,
    /// The transferred element.
    pub value: Value,
}

impl fmt::Display for XferEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨{}{}, {}⟩ → ⟨{}{}, _⟩",
            self.src, self.src_index, self.value, self.dst, self.dst_index
        )
    }
}

/// One recorded event of either kind, in recording order — the unit of
/// batched ingest ([`TraceSink::record_batch`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// An elementary invocation.
    Xform(XformEvent),
    /// An element transfer.
    Xfer(XferEvent),
}

/// How finely the engine records *xfer* events (ablation #4, DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TraceGranularity {
    /// One xfer record per transferred *element* (atom-level enumeration):
    /// the fine-grained mode the paper's Table 1 record counts reflect.
    #[default]
    Fine,
    /// One xfer record per arc and value (whole-value transfers): cheaper
    /// traces, coarse lineage through arcs.
    Coarse,
}

/// Receives provenance events as a run executes.
///
/// Implementations must be internally synchronised ( `&self` methods), so
/// the engine can be driven from multiple threads.
pub trait TraceSink: Send + Sync {
    /// Registers a new run of the given workflow and returns its id.
    fn begin_run(&self, workflow: &ProcessorName) -> RunId;
    /// Records one xform event.
    fn record_xform(&self, run: RunId, event: XformEvent);
    /// Records one xfer event.
    fn record_xfer(&self, run: RunId, event: XferEvent);
    /// Records a batch of events in order. The engine accumulates the
    /// events of one processor (or one scope's output transfers) and hands
    /// them over in a single call, so sinks that serialise ingest through a
    /// lock or a log can amortise the acquisition across the whole batch.
    /// The default forwards event-at-a-time, so existing sinks observe the
    /// exact per-event sequence they always did.
    fn record_batch(&self, run: RunId, events: Vec<TraceEvent>) {
        for event in events {
            match event {
                TraceEvent::Xform(e) => self.record_xform(run, e),
                TraceEvent::Xfer(e) => self.record_xfer(run, e),
            }
        }
    }
    /// Marks a run complete. Sinks may flush here.
    fn finish_run(&self, run: RunId);
}

/// Shared-ownership forwarding: an `Arc<impl TraceSink>` is itself a
/// sink, so a store shared between a daemon's sessions and a local engine
/// can be passed wherever a sink is expected without re-borrowing
/// gymnastics. `record_batch` forwards as a batch (the whole point of the
/// shared store's group-commit ingest).
impl<T: TraceSink + ?Sized> TraceSink for Arc<T> {
    fn begin_run(&self, workflow: &ProcessorName) -> RunId {
        (**self).begin_run(workflow)
    }
    fn record_xform(&self, run: RunId, event: XformEvent) {
        (**self).record_xform(run, event)
    }
    fn record_xfer(&self, run: RunId, event: XferEvent) {
        (**self).record_xfer(run, event)
    }
    fn record_batch(&self, run: RunId, events: Vec<TraceEvent>) {
        (**self).record_batch(run, events)
    }
    fn finish_run(&self, run: RunId) {
        (**self).finish_run(run)
    }
}

/// A sink that discards everything (for measuring pure execution cost).
#[derive(Debug, Default)]
pub struct NullSink {
    next: Mutex<u64>,
}

impl TraceSink for NullSink {
    fn begin_run(&self, _workflow: &ProcessorName) -> RunId {
        let mut next = self.next.lock();
        let id = RunId(*next);
        *next += 1;
        id
    }
    fn record_xform(&self, _run: RunId, _event: XformEvent) {}
    fn record_xfer(&self, _run: RunId, _event: XferEvent) {}
    fn finish_run(&self, _run: RunId) {}
}

/// A sink that collects events in memory, for tests and inspection.
#[derive(Debug, Default)]
pub struct VecSink {
    next: Mutex<u64>,
    /// Collected xform events with their run ids.
    pub xforms: Mutex<Vec<(RunId, XformEvent)>>,
    /// Collected xfer events with their run ids.
    pub xfers: Mutex<Vec<(RunId, XferEvent)>>,
}

impl VecSink {
    /// An empty collecting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of recorded events (xform + xfer) — the "number of
    /// trace database records" measure of Table 1.
    pub fn record_count(&self) -> usize {
        self.xforms.lock().len() + self.xfers.lock().len()
    }

    /// All xform events of a run, in recording order.
    pub fn xforms_of(&self, run: RunId) -> Vec<XformEvent> {
        self.xforms.lock().iter().filter(|(r, _)| *r == run).map(|(_, e)| e.clone()).collect()
    }

    /// All xfer events of a run, in recording order.
    pub fn xfers_of(&self, run: RunId) -> Vec<XferEvent> {
        self.xfers.lock().iter().filter(|(r, _)| *r == run).map(|(_, e)| e.clone()).collect()
    }
}

impl TraceSink for VecSink {
    fn begin_run(&self, _workflow: &ProcessorName) -> RunId {
        let mut next = self.next.lock();
        let id = RunId(*next);
        *next += 1;
        id
    }
    fn record_xform(&self, run: RunId, event: XformEvent) {
        self.xforms.lock().push((run, event));
    }
    fn record_xfer(&self, run: RunId, event: XferEvent) {
        self.xfers.lock().push((run, event));
    }
    fn finish_run(&self, _run: RunId) {}
}

/// A decorator sink that tallies per-processor work while forwarding
/// everything to an inner sink — the cheap way to get an execution report
/// without touching the engine.
pub struct ReportingSink<'a> {
    inner: &'a dyn TraceSink,
    invocations: Mutex<std::collections::BTreeMap<ProcessorName, u64>>,
    xform_events: prov_obs::Counter,
    xfer_elements: prov_obs::Counter,
}

/// Per-run execution summary assembled by [`ReportingSink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Per processor (scope-qualified), the number of elementary
    /// invocations — i.e. how hard the implicit iteration worked.
    pub invocations: Vec<(ProcessorName, u64)>,
    /// Total elements transferred along arcs.
    pub xfer_elements: u64,
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "invocations per processor:")?;
        for (p, n) in &self.invocations {
            writeln!(f, "  {p}: {n}")?;
        }
        writeln!(f, "elements transferred: {}", self.xfer_elements)
    }
}

impl<'a> ReportingSink<'a> {
    /// Wraps an inner sink.
    pub fn new(inner: &'a dyn TraceSink) -> Self {
        ReportingSink {
            inner,
            invocations: Mutex::new(Default::default()),
            xform_events: prov_obs::Counter::standalone(),
            xfer_elements: prov_obs::Counter::standalone(),
        }
    }

    /// Exposes this sink's tallies in `registry` as `engine.sink.xforms`
    /// and `engine.sink.xfer_elements` (shared storage, not copies).
    pub fn register_metrics(&self, registry: &prov_obs::Registry) {
        registry.adopt_counter("engine.sink.xforms", &self.xform_events);
        registry.adopt_counter("engine.sink.xfer_elements", &self.xfer_elements);
    }

    /// The accumulated report (across all runs recorded through this
    /// wrapper).
    pub fn report(&self) -> RunReport {
        RunReport {
            invocations: self.invocations.lock().iter().map(|(p, n)| (p.clone(), *n)).collect(),
            xfer_elements: self.xfer_elements.get(),
        }
    }
}

impl TraceSink for ReportingSink<'_> {
    fn begin_run(&self, workflow: &ProcessorName) -> RunId {
        self.inner.begin_run(workflow)
    }
    fn record_xform(&self, run: RunId, event: XformEvent) {
        *self.invocations.lock().entry(event.processor.clone()).or_insert(0) += 1;
        self.xform_events.inc();
        self.inner.record_xform(run, event);
    }
    fn record_xfer(&self, run: RunId, event: XferEvent) {
        self.xfer_elements.inc();
        self.inner.record_xfer(run, event);
    }
    fn record_batch(&self, run: RunId, events: Vec<TraceEvent>) {
        // Tally here, then hand the whole batch through so the inner sink
        // keeps its single-lock ingest.
        {
            let mut invocations = self.invocations.lock();
            for event in &events {
                match event {
                    TraceEvent::Xform(e) => {
                        *invocations.entry(e.processor.clone()).or_insert(0) += 1;
                        self.xform_events.inc();
                    }
                    TraceEvent::Xfer(_) => self.xfer_elements.inc(),
                }
            }
        }
        self.inner.record_batch(run, events);
    }
    fn finish_run(&self, run: RunId) {
        self.inner.finish_run(run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xform_event_displays_paper_notation() {
        let e = XformEvent {
            processor: ProcessorName::from("P"),
            invocation: 0,
            inputs: vec![PortBinding::new("X1", Index::single(1), Value::str("a"))],
            outputs: vec![PortBinding::new("Y", Index::from_slice(&[1, 0]), Value::str("y"))],
        };
        assert_eq!(e.to_string(), "⟨P:X1[1], \"a\"⟩ → ⟨P:Y[1,0], \"y\"⟩");
    }

    #[test]
    fn xfer_event_displays_paper_notation() {
        let e = XferEvent {
            src: PortRef::new("Q", "Y"),
            src_index: Index::single(2),
            dst: PortRef::new("P", "X1"),
            dst_index: Index::single(2),
            value: Value::str("v"),
        };
        assert!(e.to_string().starts_with("⟨Q:Y[2], \"v\"⟩ → ⟨P:X1[2]"));
    }

    #[test]
    fn null_sink_hands_out_distinct_run_ids() {
        let s = NullSink::default();
        let a = s.begin_run(&"wf".into());
        let b = s.begin_run(&"wf".into());
        assert_ne!(a, b);
    }

    #[test]
    fn reporting_sink_tallies_and_forwards() {
        let base = VecSink::new();
        let reporting = ReportingSink::new(&base);
        let run = reporting.begin_run(&"wf".into());
        for i in 0..3 {
            reporting.record_xform(
                run,
                XformEvent {
                    processor: ProcessorName::from("P"),
                    invocation: i,
                    inputs: vec![],
                    outputs: vec![PortBinding::new("y", Index::single(i), Value::int(1))],
                },
            );
        }
        reporting.record_xfer(
            run,
            XferEvent {
                src: PortRef::new("P", "y"),
                src_index: Index::empty(),
                dst: PortRef::new("wf", "out"),
                dst_index: Index::empty(),
                value: Value::int(1),
            },
        );
        reporting.finish_run(run);
        let report = reporting.report();
        assert_eq!(report.invocations, vec![(ProcessorName::from("P"), 3)]);
        assert_eq!(report.xfer_elements, 1);
        assert!(report.to_string().contains("P: 3"));
        // Everything reached the inner sink too.
        assert_eq!(base.record_count(), 4);
    }

    #[test]
    fn default_record_batch_preserves_per_event_order() {
        let s = VecSink::new();
        let run = s.begin_run(&"wf".into());
        let xf = XformEvent {
            processor: ProcessorName::from("P"),
            invocation: 0,
            inputs: vec![],
            outputs: vec![PortBinding::new("y", Index::single(0), Value::int(1))],
        };
        let tr = XferEvent {
            src: PortRef::new("P", "y"),
            src_index: Index::single(0),
            dst: PortRef::new("wf", "out"),
            dst_index: Index::single(0),
            value: Value::int(1),
        };
        s.record_batch(run, vec![TraceEvent::Xfer(tr.clone()), TraceEvent::Xform(xf.clone())]);
        assert_eq!(s.xforms_of(run), vec![xf]);
        assert_eq!(s.xfers_of(run), vec![tr]);
    }

    #[test]
    fn reporting_sink_tallies_batches() {
        let base = VecSink::new();
        let reporting = ReportingSink::new(&base);
        let run = reporting.begin_run(&"wf".into());
        let xf = |i| {
            TraceEvent::Xform(XformEvent {
                processor: ProcessorName::from("P"),
                invocation: i,
                inputs: vec![],
                outputs: vec![PortBinding::new("y", Index::single(i), Value::int(1))],
            })
        };
        let tr = TraceEvent::Xfer(XferEvent {
            src: PortRef::new("P", "y"),
            src_index: Index::empty(),
            dst: PortRef::new("wf", "out"),
            dst_index: Index::empty(),
            value: Value::int(1),
        });
        reporting.record_batch(run, vec![xf(0), xf(1), tr]);
        let report = reporting.report();
        assert_eq!(report.invocations, vec![(ProcessorName::from("P"), 2)]);
        assert_eq!(report.xfer_elements, 1);
        assert_eq!(base.record_count(), 3);
    }

    #[test]
    fn vec_sink_collects_and_filters_by_run() {
        let s = VecSink::new();
        let r1 = s.begin_run(&"wf".into());
        let r2 = s.begin_run(&"wf".into());
        let ev = XferEvent {
            src: PortRef::new("A", "y"),
            src_index: Index::empty(),
            dst: PortRef::new("B", "x"),
            dst_index: Index::empty(),
            value: Value::int(1),
        };
        s.record_xfer(r1, ev.clone());
        s.record_xfer(r2, ev.clone());
        assert_eq!(s.record_count(), 2);
        assert_eq!(s.xfers_of(r1).len(), 1);
        assert_eq!(s.xforms_of(r1).len(), 0);
    }
}
