//! Resuming crashed runs from a durable trace.
//!
//! The provenance trace is a complete record of execution (§2.2–2.3), which
//! makes it a *checkpoint*: every elementary invocation whose records
//! survived a crash has already published its outputs into the trace, and a
//! re-execution of the same deterministic workflow on the same inputs would
//! reproduce them bit for bit. [`Engine::resume`](crate::Engine::resume)
//! exploits this — it re-walks the dataflow under the original run id,
//! reuses the outputs of every invocation the trace proves *settled*, and
//! actually invokes only the work the crash swallowed.
//!
//! An invocation is **settled** iff its xform record is durable with an
//! output binding at exactly its absolute iteration index for every output
//! port — partial frames never decode (the WAL is CRC-framed and batches
//! are atomic), so a record that reads back is a record that was written
//! whole. Transfers are re-emitted individually unless an identical xfer
//! row already exists, so a resumed trace converges on the uninterrupted
//! one without duplicate records.

use std::sync::Arc;

use prov_model::{Index, ProcessorName, RunId, Value};

use crate::events::{TraceSink, XferEvent};

/// A durable trace that a crashed run can be resumed against.
///
/// The resume path both *reads* the trace (to find settled invocations and
/// already-recorded transfers) and *writes* it (to record the re-executed
/// remainder), hence the [`TraceSink`] supertrait. `prov-store`'s
/// `TraceStore` is the canonical implementation.
pub trait ResumeSource: TraceSink {
    /// The workflow name `run` was recorded under, or `None` if the run is
    /// unknown to the trace.
    fn run_workflow(&self, run: RunId) -> Option<ProcessorName>;

    /// Whether the run's finish record is durable (the crash happened after
    /// all work completed; resuming is then a pure replay).
    fn run_finished(&self, run: RunId) -> bool;

    /// The recorded outputs of the elementary invocation of `processor` at
    /// absolute iteration index `index`, in `ports` order — `Some` iff the
    /// invocation is settled: a durable xform record carries an output
    /// binding at exactly `index` for every requested port. Invocations of
    /// zero-output processors can never prove themselves settled and always
    /// re-execute (idempotence of their behaviours is assumed, as for any
    /// re-run).
    fn settled_outputs(
        &self,
        run: RunId,
        processor: &ProcessorName,
        index: &Index,
        ports: &[Arc<str>],
    ) -> Option<Vec<Value>>;

    /// Whether an identical xfer record (same endpoints, same indices, same
    /// value) is already durable in the trace.
    fn has_xfer(&self, run: RunId, event: &XferEvent) -> bool;
}
