//! Black-box processor behaviours.
//!
//! The paper treats processors as black boxes: the engine observes only
//! which inputs each elementary invocation consumed and which outputs it
//! produced. [`Behavior`] is therefore deliberately minimal: values in,
//! values out, no access to indices or to the trace.

use std::collections::HashMap;
use std::sync::Arc;

use prov_model::Value;

/// A black-box software component invoked by the engine. One invocation
/// receives one value per declared input port (already at declared depth —
/// the engine handles all iteration) and must return one value per
/// declared output port, each of declared type/depth (assumption 1, §3.1).
pub trait Behavior: Send + Sync {
    /// Performs the data transformation.
    fn invoke(&self, inputs: &[Value]) -> std::result::Result<Vec<Value>, String>;
}

/// A behaviour backed by a closure.
pub struct FnBehavior<F>(pub F);

impl<F> Behavior for FnBehavior<F>
where
    F: Fn(&[Value]) -> std::result::Result<Vec<Value>, String> + Send + Sync,
{
    fn invoke(&self, inputs: &[Value]) -> std::result::Result<Vec<Value>, String> {
        (self.0)(inputs)
    }
}

/// Maps behaviour keys (from `ProcessorKind::Task`) to implementations.
#[derive(Default, Clone)]
pub struct BehaviorRegistry {
    map: HashMap<String, Arc<dyn Behavior>>,
}

impl BehaviorRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a behaviour object under `key`, replacing any previous one.
    pub fn register(&mut self, key: &str, behavior: Arc<dyn Behavior>) -> &mut Self {
        self.map.insert(key.to_string(), behavior);
        self
    }

    /// Registers a closure behaviour under `key`.
    pub fn register_fn<F>(&mut self, key: &str, f: F) -> &mut Self
    where
        F: Fn(&[Value]) -> std::result::Result<Vec<Value>, String> + Send + Sync + 'static,
    {
        self.register(key, Arc::new(FnBehavior(f)))
    }

    /// Looks up a behaviour.
    pub fn get(&self, key: &str) -> Option<&Arc<dyn Behavior>> {
        self.map.get(key)
    }

    /// Number of registered behaviours.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Registers the [`builtin`] behaviours under their standard keys.
    pub fn with_builtins(mut self) -> Self {
        builtin::install(&mut self);
        self
    }
}

impl std::fmt::Debug for BehaviorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut keys: Vec<&str> = self.map.keys().map(String::as_str).collect();
        keys.sort_unstable();
        f.debug_struct("BehaviorRegistry").field("keys", &keys).finish()
    }
}

/// A small standard library of behaviours used by the examples, the
/// synthetic testbed and the simulated bioinformatics workflows.
pub mod builtin {
    use super::*;
    use prov_model::Atom;

    /// Installs every builtin under its standard key.
    pub fn install(reg: &mut BehaviorRegistry) {
        reg.register_fn("identity", |inputs| Ok(vec![inputs[0].clone()]));
        reg.register_fn("flatten", |inputs| {
            inputs[0].flatten().map(|v| vec![v]).map_err(|e| e.to_string())
        });
        reg.register_fn("concat_lists", |inputs| {
            let mut out = Vec::new();
            for v in inputs {
                match v.as_list() {
                    Some(items) => out.extend(items.iter().cloned()),
                    None => return Err("concat_lists requires list inputs".into()),
                }
            }
            Ok(vec![Value::List(out)])
        });
        reg.register_fn("string_upper", |inputs| {
            let s = expect_str(&inputs[0])?;
            Ok(vec![Value::str(&s.to_uppercase())])
        });
        reg.register_fn("string_split_ws", |inputs| {
            let s = expect_str(&inputs[0])?;
            Ok(vec![Value::List(s.split_whitespace().map(Value::str).collect())])
        });
        reg.register_fn("list_length", |inputs| {
            let n = inputs[0].as_list().map(<[Value]>::len).unwrap_or(0);
            Ok(vec![Value::int(n as i64)])
        });
        reg.register_fn("intersect", |inputs| {
            let a = inputs[0].as_list().ok_or("intersect requires lists")?;
            let b = inputs[1].as_list().ok_or("intersect requires lists")?;
            let keep: Vec<Value> = a.iter().filter(|x| b.contains(x)).cloned().collect();
            Ok(vec![Value::List(keep)])
        });
        reg.register_fn("dedup", |inputs| {
            let items = inputs[0].as_list().ok_or("dedup requires a list")?;
            let mut seen = Vec::new();
            for v in items {
                if !seen.contains(v) {
                    seen.push(v.clone());
                }
            }
            Ok(vec![Value::List(seen)])
        });
    }

    /// Extracts a `&str` from an atom value or errors.
    pub fn expect_str(v: &Value) -> std::result::Result<&str, String> {
        v.as_atom().and_then(Atom::as_str).ok_or_else(|| format!("expected a string atom, got {v}"))
    }

    /// A behaviour that appends `suffix` to its string input — handy for
    /// building observable chains in tests and workloads.
    pub fn tagger(suffix: &str) -> Arc<dyn Behavior> {
        let suffix = suffix.to_string();
        Arc::new(FnBehavior(move |inputs: &[Value]| {
            let s = expect_str(&inputs[0])?;
            Ok(vec![Value::str(&format!("{s}{suffix}"))])
        }))
    }

    /// A behaviour that ignores its inputs and returns a constant.
    pub fn constant(value: Value) -> Arc<dyn Behavior> {
        Arc::new(FnBehavior(move |_: &[Value]| Ok(vec![value.clone()])))
    }

    /// A deterministic flake: wraps `inner` so that the first `fail_first`
    /// invocations fail with "transient flake", after which it delegates.
    /// The counter is global across inputs — intended for retry tests,
    /// where the injected flake count must show up exactly in
    /// `engine.retries`.
    pub fn flaky(fail_first: u32, inner: Arc<dyn Behavior>) -> Arc<dyn Behavior> {
        let remaining = std::sync::atomic::AtomicU32::new(fail_first);
        Arc::new(FnBehavior(move |inputs: &[Value]| {
            let prev = remaining
                .fetch_update(
                    std::sync::atomic::Ordering::SeqCst,
                    std::sync::atomic::Ordering::SeqCst,
                    |n| n.checked_sub(1),
                )
                .unwrap_or(0);
            if prev > 0 {
                Err("transient flake".to_string())
            } else {
                inner.invoke(inputs)
            }
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> BehaviorRegistry {
        BehaviorRegistry::new().with_builtins()
    }

    fn call(key: &str, inputs: &[Value]) -> Vec<Value> {
        reg().get(key).unwrap().invoke(inputs).unwrap()
    }

    #[test]
    fn registry_register_and_lookup() {
        let mut r = BehaviorRegistry::new();
        assert!(r.is_empty());
        r.register_fn("x", |_| Ok(vec![]));
        assert_eq!(r.len(), 1);
        assert!(r.get("x").is_some());
        assert!(r.get("y").is_none());
    }

    #[test]
    fn identity_returns_input() {
        let v = Value::from(vec!["a", "b"]);
        assert_eq!(call("identity", std::slice::from_ref(&v)), vec![v]);
    }

    #[test]
    fn flatten_builtin() {
        let v = Value::from(vec![vec!["a"], vec!["b", "c"]]);
        assert_eq!(call("flatten", &[v]), vec![Value::from(vec!["a", "b", "c"])]);
    }

    #[test]
    fn flatten_propagates_model_errors() {
        let err = reg().get("flatten").unwrap().invoke(&[Value::str("x")]);
        assert!(err.is_err());
    }

    #[test]
    fn concat_lists_builtin() {
        let a = Value::from(vec!["a"]);
        let b = Value::from(vec!["b", "c"]);
        assert_eq!(call("concat_lists", &[a, b]), vec![Value::from(vec!["a", "b", "c"])]);
    }

    #[test]
    fn string_builtins() {
        assert_eq!(call("string_upper", &[Value::str("kegg")]), vec![Value::str("KEGG")]);
        assert_eq!(
            call("string_split_ws", &[Value::str("p53 binds dna")]),
            vec![Value::from(vec!["p53", "binds", "dna"])]
        );
    }

    #[test]
    fn list_length_builtin() {
        assert_eq!(call("list_length", &[Value::from(vec![1i64, 2, 3])]), vec![Value::int(3)]);
        assert_eq!(call("list_length", &[Value::int(5)]), vec![Value::int(0)]);
    }

    #[test]
    fn intersect_builtin_preserves_first_order() {
        let a = Value::from(vec!["x", "y", "z"]);
        let b = Value::from(vec!["z", "x"]);
        assert_eq!(call("intersect", &[a, b]), vec![Value::from(vec!["x", "z"])]);
    }

    #[test]
    fn dedup_builtin() {
        let v = Value::from(vec!["a", "b", "a", "c", "b"]);
        assert_eq!(call("dedup", &[v]), vec![Value::from(vec!["a", "b", "c"])]);
    }

    #[test]
    fn tagger_and_constant_helpers() {
        let t = builtin::tagger("!");
        assert_eq!(t.invoke(&[Value::str("hi")]).unwrap(), vec![Value::str("hi!")]);
        let c = builtin::constant(Value::int(9));
        assert_eq!(c.invoke(&[]).unwrap(), vec![Value::int(9)]);
    }

    #[test]
    fn debug_lists_keys_sorted() {
        let r = reg();
        let dbg = format!("{r:?}");
        assert!(dbg.contains("identity"));
        assert!(dbg.contains("flatten"));
    }
}
