//! The data-driven executor.
//!
//! Execution follows the pure dataflow model of §2.1: a processor fires as
//! soon as all of its connected inputs are bound. Because validated
//! dataflows are DAGs, firing order is realised here as a topological
//! sweep, which produces exactly the same bindings and events as an
//! eager/parallel schedule but deterministically (the provenance *trace* of
//! a run is schedule-independent in this model — a property the
//! cross-crate tests rely on).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use prov_dataflow::{
    ArcSrc, Dataflow, DepthInfo, IterationStrategy, ProcessorKind, ProjectionLayout,
};
use prov_model::{Atom, Index, PortRef, ProcessorName, RunId, Value};
use prov_obs::{Counter, Histogram, Obs, SpanGuard};

use crate::behavior::{Behavior, BehaviorRegistry};
use crate::events::{PortBinding, TraceEvent, TraceGranularity, TraceSink, XferEvent, XformEvent};
use crate::iteration::{assemble_nested, iteration_tuples};
use crate::resume::ResumeSource;
use crate::retry::{invocation_salt, Clock, RetryPolicy, SystemClock};
use crate::{EngineError, Result};

/// Resume state threaded through the executor: the durable trace to check
/// invocations against, and the run being resumed. `None` everywhere for a
/// fresh run.
#[derive(Clone, Copy)]
struct ResumeCtx<'a> {
    source: &'a dyn ResumeSource,
    run: RunId,
}

/// Pushes an xfer event unless an identical one is already durable in the
/// resumed trace — re-emitting would duplicate rows and skew lineage
/// answers against the uninterrupted run.
fn push_xfer(resume: Option<ResumeCtx<'_>>, batch: &mut Vec<TraceEvent>, event: XferEvent) {
    if resume.is_none_or(|ctx| !ctx.source.has_xfer(ctx.run, &event)) {
        batch.push(TraceEvent::Xfer(event));
    }
}

/// The engine's own counters, behind `engine.*` names in the registry the
/// engine was built with ([`Engine::with_obs`]). Disabled-obs engines hold
/// no-op handles, so the default construction costs nothing at runtime.
#[derive(Debug, Clone)]
struct EngineMetrics {
    /// Processor firings (one per `process_one`, including nested scopes).
    firings: Counter,
    /// Elementary invocations (iteration tuples evaluated).
    invocations: Counter,
    /// Event batches handed to the sink.
    batches: Counter,
    /// Events per non-empty batch.
    batch_size: Histogram,
    /// Retried invocation attempts (attempts beyond each tuple's first).
    retries: Counter,
    /// Elementary invocations that exhausted their retry policy and
    /// produced an error token.
    failed_invocations: Counter,
    /// Per-attempt behavior latency in clock microseconds.
    attempt_micros: Histogram,
    /// Event-journal handle (shares the `Obs` journal); ingest batches and
    /// retries are recorded as journal events. Disabled: one branch each.
    journal: prov_obs::Journal,
}

impl EngineMetrics {
    fn new(obs: &Obs) -> Self {
        EngineMetrics {
            firings: obs.metrics.counter("engine.firings"),
            invocations: obs.metrics.counter("engine.invocations"),
            batches: obs.metrics.counter("engine.batches"),
            batch_size: obs.metrics.histogram("engine.batch_size"),
            retries: obs.metrics.counter("engine.retries"),
            failed_invocations: obs.metrics.counter("engine.failed_invocations"),
            attempt_micros: obs.metrics.histogram("engine.attempt_micros"),
            journal: obs.journal.clone(),
        }
    }
}

/// Hands accumulated events to the sink as one batch. Batches are flushed
/// at processor boundaries and before recursing into a nested scope, so the
/// per-event order a sink observes is identical to event-at-a-time
/// recording — batching only changes how many events arrive per call.
fn flush_batch(
    sink: &dyn TraceSink,
    run_id: RunId,
    batch: &mut Vec<TraceEvent>,
    metrics: &EngineMetrics,
) {
    if !batch.is_empty() {
        metrics.batches.inc();
        metrics.batch_size.record(batch.len() as u64);
        metrics.journal.record(prov_obs::JournalEvent::IngestBatch {
            run: run_id.0,
            records: batch.len() as u64,
        });
        sink.record_batch(run_id, std::mem::take(batch));
    }
}

/// How the processors of a scope are scheduled.
///
/// The provenance trace of a run is schedule-independent in the pure
/// dataflow model (events differ at most in interleaving), so the mode is
/// purely a throughput knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// One processor at a time, in topological order (deterministic event
    /// order; the default).
    #[default]
    Sequential,
    /// Independent processors run concurrently on scoped threads, level by
    /// level of the longest-path layering.
    Parallel,
}

/// Executes dataflows against a behaviour registry, streaming provenance
/// events into a [`TraceSink`].
#[derive(Debug)]
pub struct Engine {
    registry: BehaviorRegistry,
    granularity: TraceGranularity,
    mode: ExecutionMode,
    preflight: bool,
    fail_fast: bool,
    default_retry: RetryPolicy,
    retry_overrides: HashMap<ProcessorName, RetryPolicy>,
    clock: Arc<dyn Clock>,
    obs: Obs,
    metrics: EngineMetrics,
}

/// One elementary invocation that exhausted its retry policy.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FailedInvocation {
    /// The qualified name of the failing processor (`outer/inner` style for
    /// nested scopes).
    pub processor: ProcessorName,
    /// The absolute iteration index `q` of the failed tuple — the index its
    /// error-token outputs carry in the trace.
    pub index: Index,
    /// The behavior's error message from the final attempt.
    pub message: String,
    /// Total attempts made (1 when no retry policy applied).
    pub attempts: u32,
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub enum RunStatus {
    /// Every elementary invocation succeeded.
    #[default]
    Completed,
    /// At least one invocation exhausted its retries; its outputs are error
    /// tokens in the trace, and sibling iterations completed normally.
    PartialFailure {
        /// The failed invocations, in the order they were observed.
        failed_xforms: Vec<FailedInvocation>,
    },
}

impl RunStatus {
    /// Whether the run completed without failed invocations.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunStatus::Completed)
    }
}

/// The result of one run: its trace id, the workflow's output values, and
/// how the run ended.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The run (trace) id assigned by the sink.
    pub run_id: RunId,
    /// Output port values, in workflow-output declaration order. Under
    /// [`RunStatus::PartialFailure`], outputs downstream of a failure carry
    /// error tokens in the failed elements' positions.
    pub outputs: Vec<(Arc<str>, Value)>,
    /// Whether every invocation succeeded or some produced error tokens.
    pub status: RunStatus,
}

impl RunOutcome {
    /// The value of the named workflow output.
    pub fn output(&self, name: &str) -> Option<&Value> {
        self.outputs.iter().find(|(n, _)| &**n == name).map(|(_, v)| v)
    }

    /// The failed invocations, empty when the run completed.
    pub fn failed_xforms(&self) -> &[FailedInvocation] {
        match &self.status {
            RunStatus::Completed => &[],
            RunStatus::PartialFailure { failed_xforms } => failed_xforms,
        }
    }
}

impl Engine {
    /// An engine over the given behaviours, recording fine-grained traces
    /// with sequential scheduling.
    pub fn new(registry: BehaviorRegistry) -> Self {
        let obs = Obs::disabled();
        let metrics = EngineMetrics::new(&obs);
        Engine {
            registry,
            granularity: TraceGranularity::Fine,
            mode: ExecutionMode::Sequential,
            preflight: true,
            fail_fast: false,
            default_retry: RetryPolicy::none(),
            retry_overrides: HashMap::new(),
            clock: Arc::new(SystemClock),
            obs,
            metrics,
        }
    }

    /// Attaches observability: counters under `engine.*` in the registry
    /// and per-processor firing spans on the profiler. The default is
    /// [`Obs::disabled`], which keeps every instrumented operation a
    /// single branch.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.metrics = EngineMetrics::new(&obs);
        self.obs = obs;
        self
    }

    /// Selects the xfer recording granularity (ablation #4 in DESIGN.md).
    pub fn with_granularity(mut self, granularity: TraceGranularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Selects the scheduling mode.
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Restores the pre-error-token semantics: the first behavior failure
    /// (after its retries are exhausted) aborts the whole run with
    /// [`EngineError::Behavior`] instead of flowing on as an error token.
    pub fn fail_fast(mut self) -> Self {
        self.fail_fast = true;
        self
    }

    /// Sets the retry policy applied to every task processor that has no
    /// per-processor override. The default is [`RetryPolicy::none`].
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.default_retry = policy;
        self
    }

    /// Sets a retry policy for one processor (by its unqualified name, as
    /// declared in the dataflow), overriding the default policy.
    pub fn with_retry_for(
        mut self,
        processor: impl Into<ProcessorName>,
        policy: RetryPolicy,
    ) -> Self {
        self.retry_overrides.insert(processor.into(), policy);
        self
    }

    /// Replaces the clock used for retry backoff and deadlines (a
    /// [`crate::VirtualClock`] makes retry timing deterministic in tests).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Disables the static pre-flight analysis.
    ///
    /// By default [`Engine::execute`] refuses workflows on which
    /// `prov_dataflow::analyze` reports error-level diagnostics (unbound
    /// inputs, base-type-mismatched arcs, unequal dot mismatches) — all of
    /// them guaranteed runtime failures or silent nonsense. Opt out to
    /// reproduce the unchecked behaviour, e.g. when experimenting with
    /// deliberately broken specifications.
    pub fn without_preflight(mut self) -> Self {
        self.preflight = false;
        self
    }

    /// Runs `df` on the given workflow-input bindings, recording the trace
    /// into `sink` under a fresh run id.
    pub fn execute(
        &self,
        df: &Dataflow,
        inputs: Vec<(String, Value)>,
        sink: &dyn TraceSink,
    ) -> Result<RunOutcome> {
        self.run_internal(df, inputs, sink, None)
    }

    /// Resumes a crashed run: re-walks `df` under the existing `run_id`,
    /// reusing the outputs of every invocation whose trace records are
    /// durable in `source` (see [`ResumeSource::settled_outputs`]) and
    /// re-executing only the rest. The caller must pass the same workflow
    /// and inputs as the original run — behaviours are assumed
    /// deterministic, which is also what makes the reuse sound. The
    /// returned outcome (outputs, status, failure accounting) is identical
    /// to what the uninterrupted run would have produced.
    pub fn resume<S: ResumeSource>(
        &self,
        df: &Dataflow,
        inputs: Vec<(String, Value)>,
        source: &S,
        run_id: RunId,
    ) -> Result<RunOutcome> {
        let Some(recorded) = source.run_workflow(run_id) else {
            return Err(EngineError::Resume {
                message: format!("run {run_id} is not in the trace store"),
            });
        };
        if recorded != df.name {
            return Err(EngineError::Resume {
                message: format!(
                    "run {run_id} was recorded for workflow {recorded:?}, not {:?}",
                    df.name
                ),
            });
        }
        self.run_internal(df, inputs, source, Some(ResumeCtx { source, run: run_id }))
    }

    fn run_internal(
        &self,
        df: &Dataflow,
        inputs: Vec<(String, Value)>,
        sink: &dyn TraceSink,
        resume: Option<ResumeCtx<'_>>,
    ) -> Result<RunOutcome> {
        if self.preflight {
            let errors: Vec<String> = prov_dataflow::analyze(df)
                .into_iter()
                .filter(prov_dataflow::Diagnostic::is_error)
                .map(|d| d.to_string())
                .collect();
            if !errors.is_empty() {
                return Err(EngineError::Preflight { errors });
            }
        }
        let run_id = match resume {
            Some(ctx) => ctx.run,
            None => sink.begin_run(&df.name),
        };
        let input_map: HashMap<Arc<str>, Value> =
            inputs.into_iter().map(|(k, v)| (Arc::from(k.as_str()), v)).collect();
        let offsets = ScopeOffsets::top_level();
        let failures: Mutex<Vec<FailedInvocation>> = Mutex::new(Vec::new());
        let outputs = self.execute_scoped(
            df,
            df.name.clone(),
            "",
            input_map,
            &offsets,
            sink,
            run_id,
            &failures,
            resume,
        )?;
        // Idempotent on resume: a duplicate FinishRun replay just re-marks
        // the run finished.
        sink.finish_run(run_id);
        let failed_xforms = failures.into_inner();
        let status = if failed_xforms.is_empty() {
            RunStatus::Completed
        } else {
            RunStatus::PartialFailure { failed_xforms }
        };
        Ok(RunOutcome { run_id, outputs, status })
    }

    /// Executes one (possibly nested) dataflow.
    ///
    /// * `scope_name` — the processor name under which this workflow's own
    ///   I/O bindings are reported (`workflow:paths_per_gene` style); for a
    ///   nested invocation it is the qualified name of the nested
    ///   processor.
    /// * `prefix` — prepended to inner processor names in events, so that
    ///   nested traces stay addressable (`outer/inner` style).
    /// * `offsets` — how element-relative indices inside this scope map to
    ///   absolute indices on the enclosing values. Events on the scope's
    ///   own I/O ports are emitted with **absolute** indices so that traces
    ///   chain seamlessly across nesting boundaries even when the nested
    ///   processor is implicitly iterated.
    #[allow(clippy::too_many_arguments)]
    fn execute_scoped(
        &self,
        df: &Dataflow,
        scope_name: ProcessorName,
        prefix: &str,
        inputs: HashMap<Arc<str>, Value>,
        offsets: &ScopeOffsets,
        sink: &dyn TraceSink,
        run_id: RunId,
        failures: &Mutex<Vec<FailedInvocation>>,
        resume: Option<ResumeCtx<'_>>,
    ) -> Result<Vec<(Arc<str>, Value)>> {
        // Assumption 2 (§3.1): workflow inputs carry values of declared type.
        for port in &df.inputs {
            let v = inputs
                .get(&port.name)
                .ok_or_else(|| EngineError::MissingWorkflowInput(port.name.to_string()))?;
            check_depth(v, port.declared.depth, &format!("{scope_name}:{}", port.name))?;
        }

        let depths = DepthInfo::compute(df)?;
        let mut out_values: HashMap<(ProcessorName, Arc<str>), Value> = HashMap::new();

        match self.mode {
            ExecutionMode::Sequential => {
                for pname in depths.topo_order() {
                    let produced = self.process_one(
                        df,
                        &depths,
                        pname,
                        &scope_name,
                        prefix,
                        &inputs,
                        offsets,
                        &out_values,
                        sink,
                        run_id,
                        failures,
                        resume,
                    )?;
                    for (port, value) in produced {
                        out_values.insert((pname.clone(), port), value);
                    }
                }
            }
            ExecutionMode::Parallel => {
                // Longest-path layering: processors within a level are
                // mutually independent and run concurrently; levels form a
                // barrier, so every upstream value is available.
                type LevelResult = (ProcessorName, Result<Vec<(Arc<str>, Value)>>);
                for level in layer_processors(df, &depths) {
                    let results: Vec<LevelResult> = crossbeam::thread::scope(|s| {
                        let handles: Vec<_> = level
                            .iter()
                            .map(|pname| {
                                let out_ref = &out_values;
                                let inputs_ref = &inputs;
                                let depths_ref = &depths;
                                let scope_ref = &scope_name;
                                s.spawn(move |_| {
                                    (
                                        pname.clone(),
                                        self.process_one(
                                            df, depths_ref, pname, scope_ref, prefix, inputs_ref,
                                            offsets, out_ref, sink, run_id, failures, resume,
                                        ),
                                    )
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                            .collect()
                    })
                    .unwrap_or_else(|p| std::panic::resume_unwind(p));
                    for (pname, produced) in results {
                        for (port, value) in produced? {
                            out_values.insert((pname.clone(), port), value);
                        }
                    }
                }
            }
        }

        // Workflow outputs: transfer from the feeding port. Destination
        // indices are offset by q so outer consumers see absolute indices.
        // All output transfers of the scope go to the sink as one batch.
        let mut outputs = Vec::with_capacity(df.outputs.len());
        let mut batch: Vec<TraceEvent> = Vec::new();
        for port in &df.outputs {
            let arc = df.arc_into_output(&port.name).ok_or_else(|| {
                EngineError::Spec(prov_dataflow::DataflowError::UnboundOutput(
                    port.name.to_string(),
                ))
            })?;
            let (src_ref, src_offset, v) =
                self.resolve_src(df, &arc.src, &scope_name, prefix, &inputs, offsets, &out_values)?;
            self.emit_xfer(
                &mut batch,
                src_ref,
                src_offset,
                PortRef { processor: scope_name.clone(), port: port.name.clone() },
                offsets.global.clone(),
                &v,
                resume,
            );
            outputs.push((port.name.clone(), v));
        }
        flush_batch(sink, run_id, &mut batch, &self.metrics);
        Ok(outputs)
    }

    /// Executes one processor of a scope: gathers its inputs (emitting
    /// xfer events), performs the implicit iteration, invokes the
    /// behaviour (or recurses into a nested dataflow) per tuple, records
    /// xform events, and assembles the output port values.
    #[allow(clippy::too_many_arguments)]
    fn process_one(
        &self,
        df: &Dataflow,
        depths: &DepthInfo,
        pname: &ProcessorName,
        scope_name: &ProcessorName,
        prefix: &str,
        inputs: &HashMap<Arc<str>, Value>,
        offsets: &ScopeOffsets,
        out_values: &HashMap<(ProcessorName, Arc<str>), Value>,
        sink: &dyn TraceSink,
        run_id: RunId,
        failures: &Mutex<Vec<FailedInvocation>>,
        resume: Option<ResumeCtx<'_>>,
    ) -> Result<Vec<(Arc<str>, Value)>> {
        {
            let p = df.processor_required(pname)?;
            let qualified = qualify(prefix, pname.as_str());
            self.metrics.firings.inc();
            // Dynamic span name: only pay the `format!` when profiling.
            let mut span = if self.obs.profiler.is_enabled() {
                self.obs.profiler.span(format!("engine.process {}", qualified.as_str()), "engine")
            } else {
                SpanGuard::inert()
            };

            // Events of this processor accumulate here and reach the sink
            // in batches: the gathered input transfers plus the xform
            // events of all elementary invocations. Flushed before any
            // recursion into a nested scope, so the overall event sequence
            // is the exact per-event order.
            let mut batch: Vec<TraceEvent> = Vec::new();

            // Gather inputs, emitting xfer events for each arc crossed.
            let mut values = Vec::with_capacity(p.inputs.len());
            let mut mismatches = Vec::with_capacity(p.inputs.len());
            for port in &p.inputs {
                let info = depths.input_depths(pname, &port.name).ok_or_else(|| {
                    EngineError::Spec(prov_dataflow::DataflowError::UnknownPort {
                        processor: pname.to_string(),
                        port: port.name.to_string(),
                    })
                })?;
                let value = match df.arc_into(pname, &port.name) {
                    Some(arc) => {
                        let (src_ref, src_offset, v) = self.resolve_src(
                            df, &arc.src, scope_name, prefix, inputs, offsets, out_values,
                        )?;
                        self.emit_xfer(
                            &mut batch,
                            src_ref,
                            src_offset,
                            PortRef { processor: qualified.clone(), port: port.name.clone() },
                            offsets.global.clone(),
                            &v,
                            resume,
                        );
                        v
                    }
                    None => port.default.clone().ok_or_else(|| EngineError::UnboundInput {
                        processor: pname.to_string(),
                        port: port.name.to_string(),
                    })?,
                };
                check_depth(&value, info.actual, &format!("{pname}:{}", port.name))?;
                let mismatch = info.mismatch();
                // Negative mismatch: wrap into a singleton, no iteration.
                let value = if mismatch < 0 { value.wrap((-mismatch) as usize) } else { value };
                values.push(value);
                mismatches.push(mismatch.max(0));
            }

            let layout = depths.layout_of(pname).ok_or_else(|| {
                EngineError::Spec(prov_dataflow::DataflowError::UnknownProcessor(pname.to_string()))
            })?;
            let tuples = {
                let mut iter_span = self.obs.span("engine.iterate", "engine");
                let tuples = iteration_tuples(pname.as_str(), &values, &mismatches, p.iteration)?;
                iter_span.arg("tuples", tuples.len() as u64);
                tuples
            };
            self.metrics.invocations.add(tuples.len() as u64);
            span.arg("invocations", tuples.len() as u64);

            // Invoke once per tuple, recording one xform event each (task
            // processors only: a nested dataflow's computation is fully
            // described by its inner events, so no redundant black-box
            // xform is recorded for it).
            let mut per_output: Vec<Vec<(Index, Value)>> =
                vec![Vec::with_capacity(tuples.len()); p.outputs.len()];
            let out_port_names: Vec<Arc<str>> =
                p.outputs.iter().map(|port| port.name.clone()).collect();
            for (invocation, tuple) in tuples.into_iter().enumerate() {
                let elements: Vec<Value> = tuple.inputs.iter().map(|(_, v)| v.clone()).collect();
                // The absolute iteration index `q` of this elementary
                // invocation — what its trace events carry.
                let q_abs = offsets.global.concat(&tuple.output_index);
                let mut record_event = true;
                let results = match &p.kind {
                    ProcessorKind::Task { behavior } => {
                        let b = self
                            .registry
                            .get(behavior)
                            .ok_or_else(|| EngineError::UnknownBehavior(behavior.clone()))?;
                        let settled = resume.and_then(|ctx| {
                            ctx.source.settled_outputs(ctx.run, &qualified, &q_abs, &out_port_names)
                        });
                        if let Some(values) = settled {
                            // The invocation's records survived the crash:
                            // reuse its recorded outputs and skip both the
                            // behaviour and the xform event. Failure
                            // accounting is rebuilt from error tokens this
                            // invocation *originated*; a propagated foreign
                            // token adds no entry, exactly as in a fresh
                            // run.
                            record_event = false;
                            if let Some(tok) = values
                                .iter()
                                .find_map(|v| v.first_error())
                                .filter(|t| &*t.origin == qualified.as_str())
                            {
                                self.metrics.failed_invocations.inc();
                                failures.lock().push(FailedInvocation {
                                    processor: qualified.clone(),
                                    index: q_abs.clone(),
                                    message: tok.message.to_string(),
                                    attempts: tok.attempts,
                                });
                            }
                            values
                        } else if let Some(tok) = elements.iter().find_map(|v| v.first_error()) {
                            // Short-circuit: an input element carries an
                            // error token, so this elementary invocation
                            // propagates it to every output (at declared
                            // depth) without calling the behavior. Origin
                            // and attempt count survive propagation, so a
                            // token at the workflow output still names the
                            // invocation that raised it. The xform event is
                            // still recorded: lineage traverses the
                            // propagation chain back to the origin.
                            p.outputs
                                .iter()
                                .map(|port| {
                                    Value::Atom(Atom::Error(Box::new(tok.clone())))
                                        .wrap(port.declared.depth)
                                })
                                .collect()
                        } else {
                            let salt = invocation_salt(qualified.as_str(), &q_abs);
                            match self.invoke_with_retry(pname, b.as_ref(), &elements, salt) {
                                Ok(results) => results,
                                Err((message, _attempts)) if self.fail_fast => {
                                    return Err(EngineError::Behavior {
                                        processor: pname.to_string(),
                                        message,
                                    });
                                }
                                Err((message, attempts)) => {
                                    // Taverna-style isolation: the failed
                                    // tuple yields error tokens at declared
                                    // depth; sibling iterations proceed.
                                    self.metrics.failed_invocations.inc();
                                    failures.lock().push(FailedInvocation {
                                        processor: qualified.clone(),
                                        index: q_abs.clone(),
                                        message: message.clone(),
                                        attempts,
                                    });
                                    p.outputs
                                        .iter()
                                        .map(|port| {
                                            Value::error(
                                                message.as_str(),
                                                qualified.as_str(),
                                                attempts,
                                            )
                                            .wrap(port.declared.depth)
                                        })
                                        .collect()
                                }
                            }
                        }
                    }
                    ProcessorKind::Nested { dataflow } => {
                        record_event = false;
                        // The nested scope's events must follow everything
                        // recorded so far — flush before recursing.
                        flush_batch(sink, run_id, &mut batch, &self.metrics);
                        let inner_inputs: HashMap<Arc<str>, Value> = dataflow
                            .inputs
                            .iter()
                            .zip(&elements)
                            .map(|(port, v)| (port.name.clone(), v.clone()))
                            .collect();
                        let inner_prefix = format!("{}{}/", prefix, pname.as_str());
                        // Inside the nested scope, indices on the scope's
                        // I/O ports are made absolute: inputs by the
                        // per-port iteration fragment, outputs by q.
                        let inner_offsets = ScopeOffsets {
                            inputs: p
                                .inputs
                                .iter()
                                .zip(&tuple.inputs)
                                .map(|(port, (idx, _))| {
                                    (port.name.clone(), offsets.global.concat(idx))
                                })
                                .collect(),
                            global: q_abs.clone(),
                        };
                        self.execute_scoped(
                            dataflow,
                            qualified.clone(),
                            &inner_prefix,
                            inner_inputs,
                            &inner_offsets,
                            sink,
                            run_id,
                            failures,
                            resume,
                        )?
                        .into_iter()
                        .map(|(_, v)| v)
                        .collect()
                    }
                };
                if results.len() != p.outputs.len() {
                    return Err(EngineError::ArityMismatch {
                        processor: pname.to_string(),
                        expected: p.outputs.len(),
                        actual: results.len(),
                    });
                }
                let mut out_bindings = Vec::with_capacity(results.len());
                for (port, value) in p.outputs.iter().zip(&results) {
                    // Assumption 1: outputs are of declared type.
                    check_depth(value, port.declared.depth, &format!("{pname}:{}", port.name))?;
                    out_bindings.push(PortBinding {
                        port: port.name.clone(),
                        index: q_abs.clone(),
                        value: value.clone(),
                    });
                }
                if record_event {
                    batch.push(TraceEvent::Xform(XformEvent {
                        processor: qualified.clone(),
                        invocation: invocation as u32,
                        inputs: p
                            .inputs
                            .iter()
                            .zip(&tuple.inputs)
                            .map(|(port, (idx, v))| PortBinding {
                                port: port.name.clone(),
                                index: offsets.global.concat(idx),
                                value: v.clone(),
                            })
                            .collect(),
                        outputs: out_bindings,
                    }));
                }
                for (slot, value) in per_output.iter_mut().zip(results) {
                    slot.push((tuple.output_index.clone(), value));
                }
            }
            flush_batch(sink, run_id, &mut batch, &self.metrics);
            span.stop();

            // Assemble each output port's full value from the invocations.
            Ok(p.outputs
                .iter()
                .zip(per_output)
                .map(|(port, pairs)| (port.name.clone(), assemble_from(pairs, layout)))
                .collect())
        }
    }

    /// Invokes a behavior under the processor's retry policy. Returns the
    /// behavior's outputs, or `(final message, total attempts)` once the
    /// policy gives up. All timing goes through the engine's [`Clock`].
    fn invoke_with_retry(
        &self,
        pname: &ProcessorName,
        behavior: &dyn Behavior,
        elements: &[Value],
        salt: u64,
    ) -> std::result::Result<Vec<Value>, (String, u32)> {
        let policy = self.retry_overrides.get(pname).unwrap_or(&self.default_retry);
        let start = self.clock.now_micros();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let t0 = self.clock.now_micros();
            let result = behavior.invoke(elements);
            self.metrics.attempt_micros.record(self.clock.now_micros().saturating_sub(t0));
            match result {
                Ok(values) => return Ok(values),
                Err(message) => {
                    let elapsed = self.clock.now_micros().saturating_sub(start);
                    if !policy.should_retry(attempt, &message, elapsed) {
                        return Err((message, attempt));
                    }
                    self.metrics.retries.inc();
                    self.metrics.journal.record(prov_obs::JournalEvent::Retry {
                        processor: pname.to_string(),
                        attempt: u64::from(attempt),
                    });
                    self.clock.sleep_micros(policy.delay_micros(attempt, salt));
                }
            }
        }
    }

    /// Resolves an arc source to its qualified port reference, the index
    /// offset its events carry (nonempty only for nested-scope inputs), and
    /// its value.
    #[allow(clippy::too_many_arguments)]
    fn resolve_src(
        &self,
        df: &Dataflow,
        src: &ArcSrc,
        scope_name: &ProcessorName,
        prefix: &str,
        inputs: &HashMap<Arc<str>, Value>,
        offsets: &ScopeOffsets,
        out_values: &HashMap<(ProcessorName, Arc<str>), Value>,
    ) -> Result<(PortRef, Index, Value)> {
        match src {
            ArcSrc::WorkflowInput { port } => {
                let v = inputs
                    .get(port)
                    .ok_or_else(|| EngineError::MissingWorkflowInput(port.to_string()))?;
                Ok((
                    PortRef { processor: scope_name.clone(), port: port.clone() },
                    offsets.input(port),
                    v.clone(),
                ))
            }
            ArcSrc::Processor { processor, port } => {
                let v = out_values.get(&(processor.clone(), port.clone())).unwrap_or_else(|| {
                    unreachable!(
                        "toposort guarantees {processor}:{port} is computed before use in {}",
                        df.name
                    )
                });
                Ok((
                    PortRef { processor: qualify(prefix, processor.as_str()), port: port.clone() },
                    offsets.global.clone(),
                    v.clone(),
                ))
            }
        }
    }

    /// Emits the xfer events for a value crossing an arc, at the configured
    /// granularity, into the caller's event batch. `src_offset`/`dst_offset`
    /// translate element-relative indices to absolute ones at nested-scope
    /// boundaries. On resume, transfers already durable in the trace are
    /// suppressed so the resumed trace has no duplicate rows.
    #[allow(clippy::too_many_arguments)]
    fn emit_xfer(
        &self,
        batch: &mut Vec<TraceEvent>,
        src: PortRef,
        src_offset: Index,
        dst: PortRef,
        dst_offset: Index,
        value: &Value,
        resume: Option<ResumeCtx<'_>>,
    ) {
        match self.granularity {
            TraceGranularity::Coarse => {
                push_xfer(
                    resume,
                    batch,
                    XferEvent {
                        src,
                        src_index: src_offset,
                        dst,
                        dst_index: dst_offset,
                        value: value.clone(),
                    },
                );
            }
            TraceGranularity::Fine => {
                if value.is_atom() {
                    push_xfer(
                        resume,
                        batch,
                        XferEvent {
                            src,
                            src_index: src_offset,
                            dst,
                            dst_index: dst_offset,
                            value: value.clone(),
                        },
                    );
                    return;
                }
                for (index, atom) in value.leaves() {
                    push_xfer(
                        resume,
                        batch,
                        XferEvent {
                            src: src.clone(),
                            src_index: src_offset.concat(&index),
                            dst: dst.clone(),
                            dst_index: dst_offset.concat(&index),
                            value: Value::Atom(atom.clone()),
                        },
                    );
                }
            }
        }
    }
}

/// Index offsets translating a nested scope's element-relative indices into
/// globally unambiguous absolute indices (all empty at top level).
///
/// Every event inside a nested scope is prefixed with `global` — the
/// concatenated iteration indices of the chain of invocations that led to
/// it. This (a) disambiguates the events of different invocations of the
/// same nested processor, and (b) makes indices chain correctly across
/// scope boundaries, so lineage traversals stay fine-grained through
/// arbitrarily nested, implicitly iterated sub-workflows.
#[derive(Debug, Clone, Default)]
struct ScopeOffsets {
    /// Per workflow-input port: the absolute index of the consumed element
    /// within the (outer-addressed) value feeding that port.
    inputs: HashMap<Arc<str>, Index>,
    /// Prefix applied to every index recorded inside this scope (the outer
    /// scope's `global` concatenated with this invocation's iteration
    /// index `q`).
    global: Index,
}

impl ScopeOffsets {
    fn top_level() -> Self {
        Self::default()
    }

    fn input(&self, port: &Arc<str>) -> Index {
        self.inputs.get(port).cloned().unwrap_or_default()
    }
}

/// Assembles an output port's full value from per-invocation results.
fn assemble_from(pairs: Vec<(Index, Value)>, layout: &ProjectionLayout) -> Value {
    match layout.strategy {
        IterationStrategy::Cross => assemble_nested(pairs, layout.total),
        // A dot iteration's indices are a single run of [i] (or deeper)
        // prefixes — assemble_nested groups them just the same.
        IterationStrategy::Dot => assemble_nested(pairs, layout.total),
    }
}

/// Longest-path layering of a scope's processors: level 0 holds the
/// sources; every processor sits one past its deepest predecessor. All
/// processors within a level are mutually independent.
fn layer_processors(df: &Dataflow, depths: &DepthInfo) -> Vec<Vec<ProcessorName>> {
    let mut level_of: HashMap<&ProcessorName, usize> = HashMap::new();
    let mut levels: Vec<Vec<ProcessorName>> = Vec::new();
    for pname in depths.topo_order() {
        let level = df
            .predecessors(pname)
            .iter()
            .map(|p| level_of.get(p).copied().unwrap_or(0) + 1)
            .max()
            .unwrap_or(0);
        // topo_order guarantees predecessors were placed already.
        level_of.insert(pname, level);
        if levels.len() <= level {
            levels.resize_with(level + 1, Vec::new);
        }
        levels[level].push(pname.clone());
    }
    levels
}

/// Qualified processor name for nested scopes (`prefix` already ends in
/// `/` when nonempty).
fn qualify(prefix: &str, name: &str) -> ProcessorName {
    if prefix.is_empty() {
        ProcessorName::from(name)
    } else {
        ProcessorName::from(format!("{prefix}{name}"))
    }
}

/// Checks a runtime value depth against the statically computed depth,
/// tolerating *hollow* values (collections containing no atoms) whose
/// depth is structurally under-determined — e.g. an empty result list at a
/// stage where static analysis expects depth 2.
fn check_depth(value: &Value, expected: usize, at: &str) -> Result<()> {
    let actual = value.depth()?;
    if actual != expected && !is_hollow(value) {
        return Err(EngineError::DepthMismatch { at: at.to_string(), expected, actual });
    }
    Ok(())
}

/// True when the value contains no atoms at all.
fn is_hollow(value: &Value) -> bool {
    match value {
        Value::Atom(_) => false,
        Value::List(items) => items.iter().all(is_hollow),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::builtin;
    use crate::events::VecSink;
    use prov_dataflow::{BaseType, DataflowBuilder, PortType};

    fn registry() -> BehaviorRegistry {
        let mut r = BehaviorRegistry::new().with_builtins();
        r.register("excl", builtin::tagger("!"));
        r.register("q", builtin::tagger("-q"));
        r.register_fn("pair", |inputs: &[Value]| {
            let a = builtin::expect_str(&inputs[0])?;
            let b = builtin::expect_str(&inputs[1])?;
            Ok(vec![Value::str(&format!("{a}+{b}"))])
        });
        r.register_fn("listify", |inputs: &[Value]| {
            let s = builtin::expect_str(&inputs[0])?;
            Ok(vec![Value::from(vec![format!("{s}.1"), format!("{s}.2")])])
        });
        r
    }

    /// `in:list(string) → excl(atom→atom) → out` — one implicit iteration.
    fn simple_chain() -> Dataflow {
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::list(BaseType::String));
        b.processor_with_behavior("E", "excl")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        b.arc_from_input("in", "E", "x").unwrap();
        b.output("out", PortType::list(BaseType::String));
        b.arc_to_output("E", "y", "out").unwrap();
        b.build().unwrap()
    }

    /// A workflow with a base-type-mismatched arc: structurally valid
    /// (passes `validate`), but the analyzer flags E001.
    fn mistyped_chain() -> Dataflow {
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::atom(BaseType::Int));
        b.processor_with_behavior("E", "identity")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        b.arc_from_input("in", "E", "x").unwrap();
        b.output("out", PortType::atom(BaseType::String));
        b.arc_to_output("E", "y", "out").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn preflight_refuses_error_level_diagnostics() {
        let sink = VecSink::new();
        let err = Engine::new(registry())
            .execute(&mistyped_chain(), vec![("in".into(), Value::int(1))], &sink)
            .unwrap_err();
        match err {
            EngineError::Preflight { errors } => {
                assert_eq!(errors.len(), 1);
                assert!(errors[0].contains("E001"), "{errors:?}");
            }
            other => panic!("expected Preflight, got {other:?}"),
        }
        // Refused before any event was recorded.
        assert!(sink.xforms_of(RunId(0)).is_empty());
    }

    #[test]
    fn preflight_opt_out_restores_unchecked_execution() {
        let sink = VecSink::new();
        // The engine never checks base types at runtime, so with the
        // pre-flight disabled the mistyped workflow "works": the int value
        // flows through the string-typed port unconverted.
        let run = Engine::new(registry())
            .without_preflight()
            .execute(&mistyped_chain(), vec![("in".into(), Value::int(1))], &sink)
            .unwrap();
        assert_eq!(run.output("out"), Some(&Value::int(1)));
    }

    #[test]
    fn iterates_list_through_atom_port() {
        let engine = Engine::new(registry());
        let sink = VecSink::new();
        let run = engine
            .execute(&simple_chain(), vec![("in".into(), Value::from(vec!["a", "b"]))], &sink)
            .unwrap();
        assert_eq!(run.output("out"), Some(&Value::from(vec!["a!", "b!"])));
        // Two elementary invocations → two xform events.
        let xforms = sink.xforms_of(run.run_id);
        assert_eq!(xforms.len(), 2);
        assert_eq!(xforms[0].inputs[0].index, Index::single(0));
        assert_eq!(xforms[0].outputs[0].index, Index::single(0));
        assert_eq!(xforms[1].inputs[0].value, Value::str("b"));
    }

    #[test]
    fn fine_granularity_emits_per_element_xfers() {
        let engine = Engine::new(registry());
        let sink = VecSink::new();
        let run = engine
            .execute(&simple_chain(), vec![("in".into(), Value::from(vec!["a", "b"]))], &sink)
            .unwrap();
        let xfers = sink.xfers_of(run.run_id);
        // arc in→E: 2 elements; arc E→out: 2 elements.
        assert_eq!(xfers.len(), 4);
        assert_eq!(xfers[0].src, PortRef::new("wf", "in"));
        assert_eq!(xfers[0].dst, PortRef::new("E", "x"));
        assert_eq!(xfers[0].src_index, Index::single(0));
        let out_xfer = &xfers[3];
        assert_eq!(out_xfer.dst, PortRef::new("wf", "out"));
        assert_eq!(out_xfer.value, Value::str("b!"));
    }

    #[test]
    fn coarse_granularity_emits_one_xfer_per_arc() {
        let engine = Engine::new(registry()).with_granularity(TraceGranularity::Coarse);
        let sink = VecSink::new();
        let run = engine
            .execute(&simple_chain(), vec![("in".into(), Value::from(vec!["a", "b"]))], &sink)
            .unwrap();
        let xfers = sink.xfers_of(run.run_id);
        assert_eq!(xfers.len(), 2);
        assert!(xfers.iter().all(|e| e.src_index.is_empty()));
    }

    #[test]
    fn cross_product_join_produces_matrix_and_prop1_indices() {
        // Two list inputs into a two-atom-port join: |a|·|b| invocations.
        let mut b = DataflowBuilder::new("wf");
        b.input("a", PortType::list(BaseType::String));
        b.input("b", PortType::list(BaseType::String));
        b.processor_with_behavior("J", "pair")
            .in_port("x", PortType::atom(BaseType::String))
            .in_port("y", PortType::atom(BaseType::String))
            .out_port("z", PortType::atom(BaseType::String));
        b.arc_from_input("a", "J", "x").unwrap();
        b.arc_from_input("b", "J", "y").unwrap();
        b.output("out", PortType::nested(BaseType::String, 2));
        b.arc_to_output("J", "z", "out").unwrap();
        let df = b.build().unwrap();

        let engine = Engine::new(registry());
        let sink = VecSink::new();
        let run = engine
            .execute(
                &df,
                vec![
                    ("a".into(), Value::from(vec!["a1", "a2"])),
                    ("b".into(), Value::from(vec!["b1", "b2", "b3"])),
                ],
                &sink,
            )
            .unwrap();
        let out = run.output("out").unwrap();
        assert_eq!(out.depth().unwrap(), 2);
        assert_eq!(out.at(&Index::from_slice(&[1, 2])), Some(&Value::str("a2+b3")));
        let xforms = sink.xforms_of(run.run_id);
        assert_eq!(xforms.len(), 6);
        for e in &xforms {
            // Prop. 1: q = p_x · p_y.
            let q = e.inputs[0].index.concat(&e.inputs[1].index);
            assert_eq!(q, e.outputs[0].index);
        }
    }

    #[test]
    fn many_to_one_list_port_consumes_whole_value() {
        // list_length has a list input port; a flat list arrives → δ = 0,
        // single invocation, coarse lineage (paper's R-style processor).
        let mut b = DataflowBuilder::new("wf");
        b.input("xs", PortType::list(BaseType::Int));
        b.processor_with_behavior("len", "list_length")
            .in_port("xs", PortType::list(BaseType::Int))
            .out_port("n", PortType::atom(BaseType::Int));
        b.arc_from_input("xs", "len", "xs").unwrap();
        b.output("n", PortType::atom(BaseType::Int));
        b.arc_to_output("len", "n", "n").unwrap();
        let df = b.build().unwrap();
        let sink = VecSink::new();
        let run = Engine::new(registry())
            .execute(&df, vec![("xs".into(), Value::from(vec![1i64, 2, 3]))], &sink)
            .unwrap();
        assert_eq!(run.output("n"), Some(&Value::int(3)));
        let xforms = sink.xforms_of(run.run_id);
        assert_eq!(xforms.len(), 1);
        assert!(xforms[0].inputs[0].index.is_empty());
    }

    #[test]
    fn one_to_many_listify_gains_depth() {
        // An atom→list processor fed a list: output actual depth 2.
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::list(BaseType::String));
        b.processor_with_behavior("L", "listify")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("ys", PortType::list(BaseType::String));
        b.arc_from_input("in", "L", "x").unwrap();
        b.output("out", PortType::nested(BaseType::String, 2));
        b.arc_to_output("L", "ys", "out").unwrap();
        let df = b.build().unwrap();
        let sink = VecSink::new();
        let run = Engine::new(registry())
            .execute(&df, vec![("in".into(), Value::from(vec!["g1", "g2"]))], &sink)
            .unwrap();
        let out = run.output("out").unwrap();
        assert_eq!(out, &Value::from(vec![vec!["g1.1", "g1.2"], vec!["g2.1", "g2.2"]]));
        // The xform records carry iteration index q of length 1 (not 2):
        // the inner level belongs to the declared output structure.
        let xforms = sink.xforms_of(run.run_id);
        assert_eq!(xforms[0].outputs[0].index, Index::single(0));
    }

    #[test]
    fn negative_mismatch_wraps_into_singleton() {
        // An atom arrives at a list(string) port: wrapped, no iteration.
        let mut b = DataflowBuilder::new("wf");
        b.input("x", PortType::atom(BaseType::String));
        b.processor_with_behavior("len", "list_length")
            .in_port("xs", PortType::list(BaseType::String))
            .out_port("n", PortType::atom(BaseType::Int));
        b.arc_from_input("x", "len", "xs").unwrap();
        b.output("n", PortType::atom(BaseType::Int));
        b.arc_to_output("len", "n", "n").unwrap();
        let df = b.build().unwrap();
        let sink = VecSink::new();
        let run = Engine::new(registry())
            .execute(&df, vec![("x".into(), Value::str("only"))], &sink)
            .unwrap();
        assert_eq!(run.output("n"), Some(&Value::int(1)));
    }

    #[test]
    fn default_values_feed_unconnected_ports() {
        let mut b = DataflowBuilder::new("wf");
        b.input("a", PortType::list(BaseType::String));
        b.processor_with_behavior("J", "pair")
            .in_port("x", PortType::atom(BaseType::String))
            .in_port_with_default("y", PortType::atom(BaseType::String), Value::str("dflt"))
            .out_port("z", PortType::atom(BaseType::String));
        b.arc_from_input("a", "J", "x").unwrap();
        b.output("out", PortType::list(BaseType::String));
        b.arc_to_output("J", "z", "out").unwrap();
        let df = b.build().unwrap();
        let sink = VecSink::new();
        let run = Engine::new(registry())
            .execute(&df, vec![("a".into(), Value::from(vec!["p"]))], &sink)
            .unwrap();
        assert_eq!(run.output("out"), Some(&Value::from(vec!["p+dflt"])));
    }

    #[test]
    fn missing_input_and_unknown_behavior_error() {
        let df = simple_chain();
        let sink = VecSink::new();
        let err = Engine::new(registry()).execute(&df, vec![], &sink);
        assert!(matches!(err, Err(EngineError::MissingWorkflowInput(_))));

        let err = Engine::new(BehaviorRegistry::new()).execute(
            &df,
            vec![("in".into(), Value::from(vec!["a"]))],
            &sink,
        );
        assert!(matches!(err, Err(EngineError::UnknownBehavior(_))));
    }

    #[test]
    fn wrong_input_depth_is_rejected() {
        let df = simple_chain();
        let sink = VecSink::new();
        let err = Engine::new(registry()).execute(
            &df,
            vec![("in".into(), Value::str("flat-atom"))],
            &sink,
        );
        assert!(matches!(err, Err(EngineError::DepthMismatch { .. })));
    }

    #[test]
    fn behavior_breaking_assumption1_is_rejected() {
        // Behaviour declares atom output but returns a list.
        let mut r = registry();
        r.register_fn("liar", |_| Ok(vec![Value::from(vec!["x"])]));
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::atom(BaseType::String));
        b.processor_with_behavior("L", "liar")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        b.arc_from_input("in", "L", "x").unwrap();
        b.output("out", PortType::atom(BaseType::String));
        b.arc_to_output("L", "y", "out").unwrap();
        let df = b.build().unwrap();
        let err =
            Engine::new(r).execute(&df, vec![("in".into(), Value::str("a"))], &VecSink::new());
        assert!(matches!(err, Err(EngineError::DepthMismatch { .. })));
    }

    #[test]
    fn empty_input_list_produces_empty_output() {
        let df = simple_chain();
        let sink = VecSink::new();
        let run = Engine::new(registry())
            .execute(&df, vec![("in".into(), Value::empty_list())], &sink)
            .unwrap();
        assert_eq!(run.output("out"), Some(&Value::empty_list()));
        assert_eq!(sink.xforms_of(run.run_id).len(), 0);
    }

    #[test]
    fn nested_dataflow_executes_with_qualified_names() {
        // inner: tag with "-q"; outer: iterate inner over a list.
        let mut inner = DataflowBuilder::new("inner");
        inner.input("a", PortType::atom(BaseType::String));
        inner
            .processor_with_behavior("Q", "q")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        inner.arc_from_input("a", "Q", "x").unwrap();
        inner.output("b", PortType::atom(BaseType::String));
        inner.arc_to_output("Q", "y", "b").unwrap();
        let inner = Arc::new(inner.build().unwrap());

        let mut outer = DataflowBuilder::new("outer");
        outer.input("xs", PortType::list(BaseType::String));
        outer.nested("sub", inner);
        outer.arc_from_input("xs", "sub", "a").unwrap();
        outer.output("ys", PortType::list(BaseType::String));
        outer.arc_to_output("sub", "b", "ys").unwrap();
        let df = outer.build().unwrap();

        let sink = VecSink::new();
        let run = Engine::new(registry())
            .execute(&df, vec![("xs".into(), Value::from(vec!["u", "v"]))], &sink)
            .unwrap();
        assert_eq!(run.output("ys"), Some(&Value::from(vec!["u-q", "v-q"])));
        // Inner invocations recorded under the qualified name sub/Q; the
        // nested workflow's own I/O under "sub".
        let xforms = sink.xforms_of(run.run_id);
        let names: Vec<&str> = xforms.iter().map(|e| e.processor.as_str()).collect();
        assert_eq!(names.iter().filter(|n| **n == "sub/Q").count(), 2);
        let xfers = sink.xfers_of(run.run_id);
        assert!(xfers
            .iter()
            .any(|e| e.src.processor.as_str() == "sub" && e.dst.processor.as_str() == "sub/Q"));
    }

    #[test]
    fn parallel_mode_produces_identical_outputs_and_trace_multiset() {
        // A diamond with independent branches: in → (L, R) → join.
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::list(BaseType::String));
        b.processor_with_behavior("L", "excl")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        b.processor_with_behavior("R", "q")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        b.processor_with_behavior("J", "pair")
            .in_port("a", PortType::atom(BaseType::String))
            .in_port("b", PortType::atom(BaseType::String))
            .out_port("z", PortType::atom(BaseType::String));
        b.arc_from_input("in", "L", "x").unwrap();
        b.arc_from_input("in", "R", "x").unwrap();
        b.arc("L", "y", "J", "a").unwrap();
        b.arc("R", "y", "J", "b").unwrap();
        b.output("out", PortType::nested(BaseType::String, 2));
        b.arc_to_output("J", "z", "out").unwrap();
        let df = b.build().unwrap();
        let inputs = vec![("in".to_string(), Value::from(vec!["u", "v", "w"]))];

        let seq_sink = VecSink::new();
        let seq = Engine::new(registry()).execute(&df, inputs.clone(), &seq_sink).unwrap();

        let par_sink = VecSink::new();
        let par = Engine::new(registry())
            .with_mode(ExecutionMode::Parallel)
            .execute(&df, inputs, &par_sink)
            .unwrap();

        assert_eq!(seq.outputs, par.outputs);
        // Same event multisets (order may differ across threads).
        let norm = |sink: &VecSink, run| {
            let mut xf: Vec<String> = sink.xforms_of(run).iter().map(|e| e.to_string()).collect();
            xf.sort();
            let mut xr: Vec<String> = sink.xfers_of(run).iter().map(|e| e.to_string()).collect();
            xr.sort();
            (xf, xr)
        };
        assert_eq!(norm(&seq_sink, seq.run_id), norm(&par_sink, par.run_id));
    }

    /// `in:atom → B(boom) → out` with an always-failing behavior.
    fn boom_chain() -> (BehaviorRegistry, Dataflow) {
        let mut r = registry();
        r.register_fn("boom", |_| Err("kaput".into()));
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::atom(BaseType::String));
        b.processor_with_behavior("B", "boom")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        b.arc_from_input("in", "B", "x").unwrap();
        b.output("out", PortType::atom(BaseType::String));
        b.arc_to_output("B", "y", "out").unwrap();
        (r, b.build().unwrap())
    }

    #[test]
    fn parallel_fail_fast_surfaces_behavior_errors() {
        let (r, df) = boom_chain();
        let err = Engine::new(r).fail_fast().with_mode(ExecutionMode::Parallel).execute(
            &df,
            vec![("in".into(), Value::str("x"))],
            &VecSink::new(),
        );
        assert!(matches!(err, Err(EngineError::Behavior { .. })));
    }

    #[test]
    fn default_semantics_turn_failures_into_error_tokens() {
        let (r, df) = boom_chain();
        let sink = VecSink::new();
        let run = Engine::new(r).execute(&df, vec![("in".into(), Value::str("x"))], &sink).unwrap();
        assert!(!run.status.is_completed());
        let failed = run.failed_xforms();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].processor, ProcessorName::from("B"));
        assert_eq!(failed[0].message, "kaput");
        assert_eq!(failed[0].attempts, 1);
        let tok = run.output("out").unwrap().first_error().unwrap();
        assert_eq!(&*tok.origin, "B");
        assert_eq!(&*tok.message, "kaput");
        // The failed invocation is still on the trace.
        assert_eq!(sink.xforms_of(run.run_id).len(), 1);
    }

    #[test]
    fn failed_element_isolates_and_siblings_complete() {
        // One element of the implicit iteration fails; its siblings'
        // outputs are unaffected and the failed position carries the token.
        let mut r = registry();
        r.register_fn("excl_but_b", |inputs: &[Value]| {
            let s = builtin::expect_str(&inputs[0])?;
            if s == "b" {
                Err("element b is cursed".to_string())
            } else {
                Ok(vec![Value::str(&format!("{s}!"))])
            }
        });
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::list(BaseType::String));
        b.processor_with_behavior("E", "excl_but_b")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        b.arc_from_input("in", "E", "x").unwrap();
        b.output("out", PortType::list(BaseType::String));
        b.arc_to_output("E", "y", "out").unwrap();
        let df = b.build().unwrap();
        let sink = VecSink::new();
        let run = Engine::new(r)
            .execute(&df, vec![("in".into(), Value::from(vec!["a", "b", "c"]))], &sink)
            .unwrap();
        let out = run.output("out").unwrap();
        assert_eq!(out.at(&Index::single(0)), Some(&Value::str("a!")));
        assert_eq!(out.at(&Index::single(2)), Some(&Value::str("c!")));
        let tok = out.at(&Index::single(1)).unwrap().first_error().unwrap();
        assert_eq!(&*tok.origin, "E");
        assert_eq!(run.failed_xforms().len(), 1);
        assert_eq!(run.failed_xforms()[0].index, Index::single(1));
        // All three elementary invocations recorded, including the failed one.
        assert_eq!(sink.xforms_of(run.run_id).len(), 3);
    }

    #[test]
    fn downstream_processors_short_circuit_on_error_inputs() {
        // E fails on "b"; downstream D must not see the error element.
        let invoked = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let seen = invoked.clone();
        let mut r = registry();
        r.register_fn("fail_b", |inputs: &[Value]| {
            let s = builtin::expect_str(&inputs[0])?;
            if s == "b" {
                Err("bad b".to_string())
            } else {
                Ok(vec![inputs[0].clone()])
            }
        });
        r.register_fn("count_upper", move |inputs: &[Value]| {
            seen.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            let s = builtin::expect_str(&inputs[0])?;
            Ok(vec![Value::str(&s.to_uppercase())])
        });
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::list(BaseType::String));
        b.processor_with_behavior("E", "fail_b")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        b.processor_with_behavior("D", "count_upper")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        b.arc_from_input("in", "E", "x").unwrap();
        b.arc("E", "y", "D", "x").unwrap();
        b.output("out", PortType::list(BaseType::String));
        b.arc_to_output("D", "y", "out").unwrap();
        let df = b.build().unwrap();
        let sink = VecSink::new();
        let run = Engine::new(r)
            .execute(&df, vec![("in".into(), Value::from(vec!["a", "b", "c"]))], &sink)
            .unwrap();
        // D's behavior ran only for the two healthy elements.
        assert_eq!(invoked.load(std::sync::atomic::Ordering::SeqCst), 2);
        let out = run.output("out").unwrap();
        assert_eq!(out.at(&Index::single(0)), Some(&Value::str("A")));
        assert_eq!(out.at(&Index::single(2)), Some(&Value::str("C")));
        // The propagated token still names E as its origin.
        let tok = out.at(&Index::single(1)).unwrap().first_error().unwrap();
        assert_eq!(&*tok.origin, "E");
        // Only E's invocation counts as failed; D propagated.
        assert_eq!(run.failed_xforms().len(), 1);
        assert_eq!(run.failed_xforms()[0].processor, ProcessorName::from("E"));
        // D's propagating invocation is still on the trace (3 for E + 3 for D).
        assert_eq!(sink.xforms_of(run.run_id).len(), 6);
    }

    #[test]
    fn retry_policy_recovers_flaky_behaviors_deterministically() {
        let mut r = registry();
        r.register("flaky2", builtin::flaky(2, builtin::tagger("!")));
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::atom(BaseType::String));
        b.processor_with_behavior("F", "flaky2")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        b.arc_from_input("in", "F", "x").unwrap();
        b.output("out", PortType::atom(BaseType::String));
        b.arc_to_output("F", "y", "out").unwrap();
        let df = b.build().unwrap();

        let clock = Arc::new(crate::retry::VirtualClock::new());
        let obs = Obs::enabled();
        let run = Engine::new(r)
            .with_obs(obs.clone())
            .with_clock(clock.clone())
            .with_retry(crate::retry::RetryPolicy::attempts(3).with_backoff(
                crate::retry::Backoff::Exponential { base_micros: 100, max_micros: 1_000 },
            ))
            .execute(&df, vec![("in".into(), Value::str("x"))], &VecSink::new())
            .unwrap();
        assert!(run.status.is_completed());
        assert_eq!(run.output("out"), Some(&Value::str("x!")));
        // Two injected flakes → exactly two retries, with deterministic
        // exponential backoff observed on the virtual clock.
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("engine.retries"), 2);
        assert_eq!(snap.counter("engine.failed_invocations"), 0);
        assert_eq!(clock.sleeps(), vec![100, 200]);
    }

    #[test]
    fn exhausted_retries_record_attempt_count_in_token_and_outcome() {
        let mut r = registry();
        r.register("flaky9", builtin::flaky(9, builtin::tagger("!")));
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::atom(BaseType::String));
        b.processor_with_behavior("F", "flaky9")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        b.arc_from_input("in", "F", "x").unwrap();
        b.output("out", PortType::atom(BaseType::String));
        b.arc_to_output("F", "y", "out").unwrap();
        let df = b.build().unwrap();

        let obs = Obs::enabled();
        let run = Engine::new(r)
            .with_obs(obs.clone())
            .with_clock(Arc::new(crate::retry::VirtualClock::new()))
            .with_retry_for("F", crate::retry::RetryPolicy::attempts(3))
            .execute(&df, vec![("in".into(), Value::str("x"))], &VecSink::new())
            .unwrap();
        assert_eq!(run.failed_xforms().len(), 1);
        assert_eq!(run.failed_xforms()[0].attempts, 3);
        let tok = run.output("out").unwrap().first_error().unwrap();
        assert_eq!(tok.attempts, 3);
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("engine.retries"), 2);
        assert_eq!(snap.counter("engine.failed_invocations"), 1);
        assert_eq!(snap.histograms.get("engine.attempt_micros").map(|h| h.count), Some(3));
    }

    #[test]
    fn error_outputs_are_wrapped_to_declared_depth() {
        // A failing processor with a list(string) output: the token is
        // emitted as a depth-1 singleton so downstream depth checks hold.
        let mut r = registry();
        r.register_fn("boomlist", |_| Err("no list today".into()));
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::atom(BaseType::String));
        b.processor_with_behavior("L", "boomlist")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("ys", PortType::list(BaseType::String));
        b.arc_from_input("in", "L", "x").unwrap();
        b.output("out", PortType::list(BaseType::String));
        b.arc_to_output("L", "ys", "out").unwrap();
        let df = b.build().unwrap();
        let run = Engine::new(r)
            .execute(&df, vec![("in".into(), Value::str("g"))], &VecSink::new())
            .unwrap();
        let out = run.output("out").unwrap();
        assert_eq!(out.depth().unwrap(), 1);
        assert!(out.contains_error());
    }

    #[test]
    fn layering_groups_independent_processors() {
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::atom(BaseType::Int));
        for n in ["A", "B"] {
            b.processor_with_behavior(n, "identity")
                .in_port("x", PortType::atom(BaseType::Int))
                .out_port("y", PortType::atom(BaseType::Int));
        }
        b.processor_with_behavior("C", "identity")
            .in_port("x", PortType::atom(BaseType::Int))
            .out_port("y", PortType::atom(BaseType::Int));
        b.arc_from_input("in", "A", "x").unwrap();
        b.arc_from_input("in", "B", "x").unwrap();
        b.arc("A", "y", "C", "x").unwrap();
        b.output("out", PortType::atom(BaseType::Int));
        b.arc_to_output("C", "y", "out").unwrap();
        let df = b.build().unwrap();
        let depths = prov_dataflow::DepthInfo::compute(&df).unwrap();
        let levels = layer_processors(&df, &depths);
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].len(), 2); // A and B together
        assert_eq!(levels[1], vec![ProcessorName::from("C")]);
    }

    #[test]
    fn observed_run_records_firing_spans_and_engine_counters() {
        let obs = Obs::enabled();
        let sink = VecSink::new();
        let run = Engine::new(registry())
            .with_obs(obs.clone())
            .execute(&simple_chain(), vec![("in".into(), Value::from(vec!["a", "b"]))], &sink)
            .unwrap();
        assert_eq!(run.output("out"), Some(&Value::from(vec!["a!", "b!"])));

        let spans = obs.profiler.spans();
        let firings: Vec<_> =
            spans.iter().filter(|s| s.name.starts_with("engine.process ")).collect();
        assert_eq!(firings.len(), 1);
        assert_eq!(firings[0].name, "engine.process E");
        assert_eq!(firings[0].cat, "engine");
        assert_eq!(firings[0].args, vec![("invocations", 2)]);
        assert_eq!(spans.iter().filter(|s| s.name == "engine.iterate").count(), 1);

        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("engine.firings"), 1);
        assert_eq!(snap.counter("engine.invocations"), 2);
        // 1 input-xfer batch per processor firing + 1 output batch; batch
        // sizes cover all 6 events (2 in-xfers, 2 xforms, 2 out-xfers).
        assert!(snap.counter("engine.batches") >= 2);
        assert_eq!(snap.histograms.get("engine.batch_size").map(|h| h.sum), Some(6));
    }

    #[test]
    fn disabled_obs_engine_behaves_identically() {
        let sink_a = VecSink::new();
        let sink_b = VecSink::new();
        let inputs = vec![("in".to_string(), Value::from(vec!["a", "b"]))];
        let plain = Engine::new(registry()).execute(&simple_chain(), inputs.clone(), &sink_a);
        let observed = Engine::new(registry()).with_obs(Obs::disabled()).execute(
            &simple_chain(),
            inputs,
            &sink_b,
        );
        assert_eq!(plain.unwrap().outputs, observed.unwrap().outputs);
        assert_eq!(sink_a.xforms_of(RunId(0)).len(), sink_b.xforms_of(RunId(0)).len());
    }

    #[test]
    fn parallel_mode_aggregates_spans_across_threads() {
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::list(BaseType::String));
        for n in ["A", "B", "C"] {
            b.processor_with_behavior(n, "excl")
                .in_port("x", PortType::atom(BaseType::String))
                .out_port("y", PortType::atom(BaseType::String));
            b.arc_from_input("in", n, "x").unwrap();
        }
        b.output("out", PortType::list(BaseType::String));
        b.arc_to_output("A", "y", "out").unwrap();
        let df = b.build().unwrap();

        let obs = Obs::enabled();
        let sink = VecSink::new();
        Engine::new(registry())
            .with_obs(obs.clone())
            .with_mode(ExecutionMode::Parallel)
            .execute(&df, vec![("in".into(), Value::from(vec!["u", "v"]))], &sink)
            .unwrap();
        let spans = obs.profiler.spans();
        let firing_names: std::collections::BTreeSet<String> = spans
            .iter()
            .filter(|s| s.name.starts_with("engine.process "))
            .map(|s| s.name.to_string())
            .collect();
        assert_eq!(
            firing_names,
            ["engine.process A", "engine.process B", "engine.process C"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        );
        assert_eq!(obs.metrics.snapshot().counter("engine.firings"), 3);
        assert_eq!(obs.metrics.snapshot().counter("engine.invocations"), 6);
    }

    #[test]
    fn source_processor_with_no_inputs_runs_once() {
        let mut r = registry();
        r.register("five", builtin::constant(Value::int(5)));
        let mut b = DataflowBuilder::new("wf");
        b.processor_with_behavior("C", "five").out_port("y", PortType::atom(BaseType::Int));
        b.output("out", PortType::atom(BaseType::Int));
        b.arc_to_output("C", "y", "out").unwrap();
        let df = b.build().unwrap();
        let sink = VecSink::new();
        let run = Engine::new(r).execute(&df, vec![], &sink).unwrap();
        assert_eq!(run.output("out"), Some(&Value::int(5)));
        assert_eq!(sink.xforms_of(run.run_id).len(), 1);
    }
}
