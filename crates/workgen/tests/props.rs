//! Property tests for the synthetic testbed: the trace-size growth law
//! behind Table 1, and NI ≡ INDEXPROJ with clean audits across the
//! configuration space.

use proptest::prelude::*;

use prov_core::{audit_run, IndexProj, LineageQuery, NaiveLineage};
use prov_model::{Index, PortRef, ProcessorName};
use prov_store::TraceStore;
use prov_workgen::testbed;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The record count of one run follows the closed form
    /// `4·l·d + 2·d² + 2·d + 2` (one xform row per elementary invocation:
    /// 1 + 2ld + d²; one xfer row per transferred element:
    /// 1 + 2d + 2(l−1)d + 2d + d²).
    #[test]
    fn table1_growth_law_holds(l in 1usize..12, d in 1usize..12) {
        let df = testbed::generate(l);
        let store = TraceStore::in_memory();
        let run = testbed::run(&df, d, &store).run_id;
        let expected = 4 * l * d + 2 * d * d + 2 * d + 2;
        prop_assert_eq!(store.trace_record_count(run), expected as u64);
    }

    /// Every cell of the (small) configuration space gives equivalent
    /// NI/INDEXPROJ answers and audits clean.
    #[test]
    fn testbed_is_consistent_across_configs(l in 1usize..8, d in 1usize..6,
                                            i in 0u32..6, j in 0u32..6) {
        prop_assume!((i as usize) < d && (j as usize) < d);
        let df = testbed::generate(l);
        let store = TraceStore::in_memory();
        let run = testbed::run(&df, d, &store).run_id;
        let q = LineageQuery::focused(
            PortRef::new("2TO1_FINAL", "Y"),
            Index::from_slice(&[i, j]),
            [ProcessorName::from("LISTGEN_1")],
        );
        let ni = NaiveLineage::new().run(&store, run, &q).unwrap();
        let ip = IndexProj::new(&df).run(&store, run, &q).unwrap();
        prop_assert!(ni.same_bindings(&ip));
        prop_assert_eq!(ni.bindings.len(), 1);
        prop_assert!(audit_run(&df, &store, run).unwrap().is_clean());
    }

    /// INDEXPROJ's record accesses are constant across the whole space
    /// (the flat lines of Fig. 9, as a property).
    #[test]
    fn indexproj_work_is_config_independent(l in 1usize..8, d in 2usize..6) {
        let df = testbed::generate(l);
        let store = TraceStore::in_memory();
        let run = testbed::run(&df, d, &store).run_id;
        let q = LineageQuery::focused(
            PortRef::new("2TO1_FINAL", "Y"),
            Index::from_slice(&[0, 1]),
            [ProcessorName::from("LISTGEN_1")],
        );
        let before = store.stats().snapshot();
        IndexProj::new(&df).run(&store, run, &q).unwrap();
        let work = store.stats().snapshot().since(before);
        // One Q lookup: prefix-chain walk (hits the one exact row) plus
        // the descendant scan touching that same row — independent of l
        // and d.
        prop_assert_eq!(work.records_read, 2);
    }
}
