//! Batch-run helpers for multi-run experiments (§3.4, Fig. 4, Fig. 6).

// The workloads here are built from literal specs and run on inputs the
// module itself generates; a builder or engine failure is a bug in the
// generator, so unwrap/expect is the intended failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use prov_dataflow::Dataflow;
use prov_engine::{BehaviorRegistry, Engine, TraceSink};
use prov_model::{RunId, Value};

/// Runs `df` once per input set in `inputs_per_run`, returning the run
/// ids in order — a parameter sweep, "a standard technique in scientific
/// applications".
pub fn record_runs(
    registry: BehaviorRegistry,
    df: &Dataflow,
    inputs_per_run: Vec<Vec<(String, Value)>>,
    sink: &dyn TraceSink,
) -> Vec<RunId> {
    let engine = Engine::new(registry);
    inputs_per_run
        .into_iter()
        .map(|inputs| engine.execute(df, inputs, sink).expect("sweep runs are valid").run_id)
        .collect()
}

/// Convenience: `n` runs of the synthetic testbed at list size `d`.
pub fn testbed_runs(df: &Dataflow, d: usize, n: usize, sink: &dyn TraceSink) -> Vec<RunId> {
    (0..n).map(|_| crate::testbed::run(df, d, sink).run_id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed;
    use prov_store::TraceStore;

    #[test]
    fn testbed_runs_accumulate_traces() {
        let df = testbed::generate(2);
        let store = TraceStore::in_memory();
        let runs = testbed_runs(&df, 3, 4, &store);
        assert_eq!(runs.len(), 4);
        assert_eq!(store.runs().len(), 4);
        let per_run = store.trace_record_count(runs[0]);
        assert_eq!(store.total_record_count(), 4 * per_run);
    }

    #[test]
    fn record_runs_varies_inputs() {
        let df = testbed::generate(1);
        let store = TraceStore::in_memory();
        let inputs: Vec<Vec<(String, Value)>> =
            (1..=3).map(|d| vec![("ListSize".to_string(), Value::int(d))]).collect();
        let runs = record_runs(testbed::registry(), &df, inputs, &store);
        assert_eq!(runs.len(), 3);
        // Trace size grows with d across the sweep.
        assert!(store.trace_record_count(runs[2]) > store.trace_record_count(runs[0]));
    }
}
