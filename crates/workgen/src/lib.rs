//! # prov-workgen
//!
//! Workload generation for the experimental evaluation:
//!
//! * [`testbed`] — the synthetic dataflow family of §4.1 / Fig. 5
//!   (`ListGen` → two linear chains of length `l` → binary cross product),
//!   parameterised by chain length `l` and input list size `d`;
//! * [`bio`] — faithful re-creations of the two real-life workflows used
//!   in §4: **GK** (`genes2Kegg`, Fig. 1) and **PD** (BioAid protein
//!   discovery), running against deterministic synthetic substitutes for
//!   KEGG and PubMed (see DESIGN.md §3 for the substitution rationale);
//! * [`imaging`] — a synthetic tiled-image pipeline (the Woodruff &
//!   Stonebraker motivating domain from §1.2), exercising byte payloads;
//! * [`sweep`] — batch-run helpers for multi-run experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod bio;
pub mod imaging;
pub mod sweep;
pub mod testbed;
